//! Offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! Implements the subset of the criterion 0.5 API the bench targets use —
//! [`Criterion::benchmark_group`], group configuration (`sample_size`,
//! `warm_up_time`, `measurement_time`), [`BenchmarkGroup::bench_with_input`]
//! with [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — so `[[bench]]` targets with
//! `harness = false` compile and run unchanged.
//!
//! Instead of criterion's statistical machinery, each benchmark is warmed up
//! once and then timed over `sample_size` iterations; the mean, minimum and
//! maximum per-iteration wall-clock times are printed. That is enough to eye
//! asymptotic growth, which is what the paper-reproduction benches are for.

//!
//! Not walked by `agossip-lint` (the linter's `no-unsafe` rule covers
//! `crates/` and `tests/` only); this stub instead carries the stronger,
//! compiler-enforced `#![forbid(unsafe_code)]` below.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration. The stand-in accepts and ignores
    /// whatever harness flags `cargo bench`/`cargo test` pass.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.run_one(name.to_string(), &mut f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing configuration, mirroring
/// `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in always warms up with a
    /// single untimed iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stand-in times exactly
    /// `sample_size` iterations instead of a wall-clock budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` with `input`, reporting under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(id.label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks `f`, reporting under `name`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name.to_string(), &mut f);
        self
    }

    fn run_one(&mut self, label: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("  {label}: no samples");
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "  {label}: mean {mean:?} (min {min:?}, max {max:?}, {} samples)",
            samples.len()
        );
    }

    /// Ends the group. (The stand-in reports eagerly, so this is a no-op.)
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a displayed parameter.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        let mut label = function_name.into();
        let _ = write!(label, "/{parameter}");
        BenchmarkId { label }
    }

    /// An id made of the displayed parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Calls `routine` once untimed (warm-up) and then `sample_size` times
    /// timed, recording one sample per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench-target `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_sample_size_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &3u32, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            })
        });
        group.finish();
        // One warm-up call plus five timed samples.
        assert_eq!(calls, 6);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("ears", 64).label, "ears/64");
        assert_eq!(BenchmarkId::from_parameter(128).label, "128");
    }
}
