//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the exact subset of the `rand` 0.8 API the workspace uses — [`RngCore`],
//! [`SeedableRng`], [`Rng`] (with `gen`, `gen_range`, `gen_bool`),
//! [`rngs::StdRng`] and [`seq::SliceRandom`] — with the same names and
//! signatures, so the real crate can be swapped back in without touching any
//! call site.
//!
//! [`rngs::StdRng`] here is xoshiro256** seeded through SplitMix64: a small,
//! fast, well-studied generator that is fully deterministic from
//! `seed_from_u64`, which is the only property the workspace relies on (the
//! simulator derives every stream from a master seed). It makes no attempt to
//! be cryptographically secure and does not reproduce the exact streams of
//! the real `StdRng`.

//!
//! Not walked by `agossip-lint` (the linter's `no-unsafe` rule covers
//! `crates/` and `tests/` only); this stub instead carries the stronger,
//! compiler-enforced `#![forbid(unsafe_code)]` below.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of uniformly random 32- and 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator that can be reproducibly seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator whose entire stream is determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from their full value range.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if the range is
    /// empty, mirroring the real `rand` behaviour.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniformly picks an offset in `[0, span)` given `span >= 1`.
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span >= 1);
    // A simple widening-multiply reduction: unbiased enough for simulation
    // purposes and never slower than the modulo it replaces.
    let wide = u128::from(rng.next_u64()) * span;
    wide >> 64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + sample_span(rng, span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + sample_span(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Convenience methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from the full range of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Random operations on slices.

    use super::{RngCore, SampleRange};

    /// Extension trait adding random shuffling and selection to slices.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u64..=5);
            assert!((1..=5).contains(&y));
            let z = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }
}
