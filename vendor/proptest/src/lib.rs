//! Offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! Implements the subset of the proptest 1.x API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`any`], [`collection::vec`], [`test_runner::ProptestConfig`],
//! and the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! The semantics are simplified relative to real proptest:
//!
//! * inputs are drawn from a deterministic per-test RNG (seeded from the
//!   test name and case index), so every run explores the same cases;
//! * there is no shrinking — a failing case panics with the ordinary
//!   `assert!` message, and being deterministic it reproduces on re-run;
//! * `prop_assert*` panics instead of returning a `TestCaseError`.
//!
//! Those differences do not change what the tests verify, only how failures
//! are minimised and reported.

//!
//! Not walked by `agossip-lint` (the linter's `no-unsafe` rule covers
//! `crates/` and `tests/` only); this stub instead carries the stronger,
//! compiler-enforced `#![forbid(unsafe_code)]` below.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use test_runner::TestRng;

pub mod test_runner {
    //! Test execution configuration and the deterministic RNG.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic RNG driving strategy sampling (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG whose stream is fixed by `(test_name, case)`.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in test_name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: hash ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Returns the next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Returns a uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Returns a uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound >= 1);
            (u128::from(self.next_u64()) * bound) >> 64
        }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            strategy: self,
            map,
        }
    }

    /// Derives a second strategy from every generated value and draws from
    /// it (dependent generation, e.g. "a size n, then a set over `0..n`").
    fn prop_flat_map<S2, F>(self, flat_map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap {
            strategy: self,
            flat_map,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.strategy.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    strategy: S,
    flat_map: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.flat_map)(self.strategy.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`: uniform over its full value range.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty size range");
            SizeRange {
                min: *range.start(),
                max: *range.end(),
            }
        }
    }

    /// Strategy generating a `Vec` of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u128 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a property-test module needs in scope.

    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        //! Namespaced re-exports mirroring `proptest::prelude::prop`.
        pub use crate::collection;
    }
}

/// Asserts a property-test condition, panicking with the formatted message
/// on failure (the stand-in has no shrinking, so this is a plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Declares property tests: each `fn name(pattern in strategy, ..) { body }`
/// becomes a `#[test]` running `body` against `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    let ($($pat,)+) = (
                        $($crate::Strategy::generate(&($strategy), &mut rng),)+
                    );
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strategy),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("ranges", 0);
        for _ in 0..500 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let y = (-2.0f64..3.0).generate(&mut rng);
            assert!((-2.0..3.0).contains(&y));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = crate::test_runner::TestRng::for_case("vec", 1);
        for _ in 0..200 {
            let v = prop::collection::vec(0u64..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strategy = (0usize..4, any::<u64>()).prop_map(|(a, b)| (a, b % 2));
        let mut rng = crate::test_runner::TestRng::for_case("map", 2);
        for _ in 0..100 {
            let (a, parity) = strategy.generate(&mut rng);
            assert!(a < 4);
            assert!(parity < 2);
        }
    }

    #[test]
    fn same_case_reproduces_identically() {
        let mut a = crate::test_runner::TestRng::for_case("repro", 7);
        let mut b = crate::test_runner::TestRng::for_case("repro", 7);
        let strategy = prop::collection::vec(any::<u64>(), 0..8);
        assert_eq!(strategy.generate(&mut a), strategy.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, multiple bindings, and asserts.
        #[test]
        fn macro_binds_patterns((a, b) in (0usize..5, 0usize..5), c in 1u64..10) {
            prop_assert!(a < 5);
            prop_assert!(b < 5, "b = {}", b);
            prop_assert_ne!(c, 0);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
