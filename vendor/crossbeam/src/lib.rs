//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! Only the [`channel`] module is provided, and of it only what the runtime
//! harness uses: [`channel::unbounded`], cloneable [`channel::Sender`] /
//! [`channel::Receiver`] handles, `send`, `recv` and `try_recv` with
//! disconnect detection. The implementation is a `Mutex<VecDeque>` plus a
//! `Condvar` — far simpler than crossbeam's lock-free queues, but with the
//! same observable semantics for an unbounded MPMC channel.

//!
//! Not walked by `agossip-lint` (the linter's `no-unsafe` rule covers
//! `crates/` and `tests/` only); this stub instead carries the stronger,
//! compiler-enforced `#![forbid(unsafe_code)]` below.
#![forbid(unsafe_code)]

pub mod channel {
    //! Multi-producer multi-consumer unbounded FIFO channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; gives
    /// the message back.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Appends `value` to the queue; fails only when every receiver has
        /// been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared.lock().push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Release);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake blocked receivers so they can observe the disconnect.
                // The queue mutex must be held while notifying: a receiver
                // that has just observed `senders > 0` under the lock is not
                // registered on the condvar until its `wait` releases that
                // lock, so an unlocked notify could fire in between and be
                // lost — with no sender left to ever notify again, the
                // receiver would sleep forever. (`send` gets this for free:
                // its push acquires the mutex, which forces it to happen
                // after the racing receiver's atomic check-and-wait.)
                let _queue = self.shared.lock();
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Removes the oldest message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.lock();
            match queue.pop_front() {
                Some(value) => Ok(value),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.lock();
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Returns `true` when no message is currently queued.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().is_empty()
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().len()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::Release);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = (0..10).map(|_| rx.try_recv().unwrap()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observable() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_to_dropped_receiver_fails() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(1u8), Err(SendError(1u8)));
        }

        #[test]
        fn drop_of_last_sender_wakes_blocked_receivers() {
            // Stress the disconnect path that the sweep engine's worker pool
            // relies on: a receiver blocked in `recv` must observe the last
            // sender's drop (the notify must not be lost between the
            // receiver's senders-alive check and its condvar wait).
            for _ in 0..200 {
                let (tx, rx) = unbounded::<u8>();
                let sender = std::thread::spawn(move || {
                    tx.send(1).unwrap();
                    // tx dropped here, while the receiver may be mid-recv.
                });
                assert_eq!(rx.recv(), Ok(1));
                assert_eq!(rx.recv(), Err(RecvError));
                sender.join().unwrap();
            }
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100u64 {
                    tx.send(i).unwrap();
                }
            });
            let mut sum = 0;
            for _ in 0..100 {
                sum += rx.recv().unwrap();
            }
            handle.join().unwrap();
            assert_eq!(sum, 4950);
        }
    }
}
