//! Offline stand-in for the
//! [`parking_lot`](https://crates.io/crates/parking_lot) crate.
//!
//! Provides [`Mutex`] with `parking_lot`'s signature — `lock()` returns the
//! guard directly instead of a poisoning `Result` — implemented on top of
//! `std::sync::Mutex` (poisoned locks are recovered, matching
//! `parking_lot`'s indifference to panics in critical sections).

//!
//! Not walked by `agossip-lint` (the linter's `no-unsafe` rule covers
//! `crates/` and `tests/` only); this stub instead carries the stronger,
//! compiler-enforced `#![forbid(unsafe_code)]` below.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A mutual-exclusion primitive whose `lock` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn contended_increments_are_not_lost() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
