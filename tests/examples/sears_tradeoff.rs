//! Demonstrates the Theorem 7 trade-off of `sears`: larger ε means fewer
//! epidemic phases (less time) but a polynomially larger fan-out (more
//! messages).
//!
//! ```text
//! cargo run --release --example sears_tradeoff
//! ```

use agossip_analysis::experiments::sears_sweep::{
    default_epsilons, run_sears_sweep, sears_sweep_to_table,
};
use agossip_analysis::experiments::ExperimentScale;

fn main() {
    let scale = ExperimentScale {
        n_values: vec![256],
        trials: 3,
        failure_fraction: 0.25,
        d: 2,
        delta: 2,
        seed: 2008,
        idle_fast_forward: false,
    };
    println!("sweeping ε at n = 256 (this takes a minute)...\n");
    let rows = run_sears_sweep(&scale, &default_epsilons()).expect("sweep failed");
    println!("{}", sears_sweep_to_table(&rows).render());
}
