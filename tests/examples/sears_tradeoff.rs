//! Demonstrates the Theorem 7 trade-off of `sears`: larger ε means fewer
//! epidemic phases (less time) but a polynomially larger fan-out (more
//! messages).
//!
//! ```text
//! cargo run --release --example sears_tradeoff -- [--threads N] [--trials N] [--n A,B,C]
//! ```

use agossip_analysis::experiments::sears_sweep::{
    default_epsilons, sears_sweep_rows, sears_sweep_to_table,
};
use agossip_analysis::experiments::ExperimentScale;
use agossip_analysis::sweep::SweepArgs;

fn main() {
    let args = SweepArgs::from_env();
    args.reject_registry_flags("sears_tradeoff");
    let mut scale = ExperimentScale {
        n_values: vec![256],
        trials: 3,
        failure_fraction: 0.25,
        d: 2,
        delta: 2,
        seed: 2008,
        idle_fast_forward: false,
    };
    args.apply(&mut scale);
    let pool = args.pool();
    let n = *scale.n_values.iter().max().expect("at least one size");
    println!(
        "sweeping ε at n = {n} on {} worker thread(s)...\n",
        pool.threads()
    );
    let rows = sears_sweep_rows(&pool, &scale, &default_epsilons()).expect("sweep failed");
    println!("{}", sears_sweep_to_table(&rows).render());
}
