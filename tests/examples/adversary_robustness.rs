//! Robustness of the gossip protocols across the oblivious adversary family,
//! with `(d, δ)`-compliance auditing of the adversary itself.
//!
//! ```text
//! cargo run --release --example adversary_robustness -- [--threads N] [--trials N] [--n A,B,C]
//! ```
//!
//! The paper's upper bounds hold w.h.p. against *every* oblivious
//! `(d, δ)`-adversary. This example (1) runs every Table 1 protocol under a
//! grid of scheduling/delay policies — worst-case delays, a slow link between
//! two halves of the system, skewed and round-robin schedules — and
//! (2) demonstrates the [`RecordingAdversary`] wrapper by auditing one of the
//! nastier adversaries against the claimed bounds.

use agossip_adversary::{DelayPolicy, PolicyAdversary, RecordingAdversary, SchedulePolicy};
use agossip_analysis::experiments::robustness::{robustness_rows, robustness_to_table};
use agossip_analysis::experiments::ExperimentScale;
use agossip_analysis::sweep::SweepArgs;
use agossip_core::{run_gossip, Ears, GossipSpec};
use agossip_sim::SimConfig;

fn main() {
    let args = SweepArgs::from_env();
    args.reject_registry_flags("adversary_robustness");
    let mut scale = ExperimentScale {
        n_values: vec![96],
        trials: 2,
        failure_fraction: 0.25,
        d: 3,
        delta: 2,
        seed: 2008,
        idle_fast_forward: false,
    };
    args.apply(&mut scale);
    let pool = args.pool();
    println!(
        "running the robustness grid (protocols × adversary environments) on {} worker thread(s)...\n",
        pool.threads()
    );
    let rows = robustness_rows(&pool, &scale).expect("robustness sweep failed");
    println!("{}", robustness_to_table(&rows).render());

    // Audit one adversary: the skewed scheduler with worst-case delays.
    let n = 96;
    let f = n / 4;
    let config = SimConfig::new(n, f).with_d(3).with_delta(4).with_seed(7);
    let inner = PolicyAdversary::new(
        config.d,
        config.delta,
        config.seed,
        SchedulePolicy::Skewed {
            slow: (0..n / 4).map(agossip_sim::ProcessId).collect(),
        },
        DelayPolicy::AlwaysMax,
    );
    let mut recording = RecordingAdversary::new(inner, config.d, config.delta, config.f);
    let report = run_gossip(&config, GossipSpec::Full, &mut recording, Ears::new)
        .expect("simulation failed");
    let trace = recording.into_trace();
    println!("audit of the skewed / max-delay adversary:");
    println!("  gossip completed:      {}", report.check.all_ok());
    println!("  scheduling decisions:  {}", trace.len());
    println!("  delay decisions:       {}", trace.delays.len());
    println!("  crash victims:         {}", trace.crash_victims().len());
    let violations = trace.violations();
    println!(
        "  (d, δ, f) compliant:   {} ({} violations)",
        violations.is_empty(),
        violations.len()
    );
}
