//! Ablation of the hidden `Θ(·)` constants behind the protocols.
//!
//! ```text
//! cargo run --release --example ablation
//! ```
//!
//! Every phase length and fan-out in the paper hides a constant: the `ears`
//! shut-down phase, the `sears` per-step fan-out, and the `tears`
//! neighbourhood size `a` and trigger window `κ`. This example sweeps each
//! constant from "far too small" to "comfortably above the default" and
//! reports where the high-probability guarantees start to fail and what the
//! larger constants cost.

use agossip_analysis::experiments::ablation::{ablation_to_table, run_ablation};
use agossip_analysis::experiments::ExperimentScale;

fn main() {
    let scale = ExperimentScale {
        n_values: vec![128],
        trials: 3,
        failure_fraction: 0.25,
        d: 2,
        delta: 2,
        seed: 2008,
        idle_fast_forward: false,
    };
    println!("running the parameter ablation (this takes a minute)...\n");
    let rows = run_ablation(&scale).expect("ablation failed");
    println!("{}", ablation_to_table(&rows).render());
    println!(
        "reading guide: success below 100% marks the point where a constant is\n\
         too small for the w.h.p. argument to hold at this n; message counts\n\
         show what the safety margin of the default constant costs."
    );
}
