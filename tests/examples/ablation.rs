//! Ablation of the hidden `Θ(·)` constants behind the protocols.
//!
//! ```text
//! cargo run --release --example ablation -- [--threads N] [--trials N] [--n A,B,C]
//! ```
//!
//! Every phase length and fan-out in the paper hides a constant: the `ears`
//! shut-down phase, the `sears` per-step fan-out, and the `tears`
//! neighbourhood size `a` and trigger window `κ`. This example sweeps each
//! constant from "far too small" to "comfortably above the default" and
//! reports where the high-probability guarantees start to fail and what the
//! larger constants cost.

use agossip_analysis::experiments::ablation::{ablation_rows, ablation_to_table};
use agossip_analysis::experiments::ExperimentScale;
use agossip_analysis::sweep::SweepArgs;

fn main() {
    let args = SweepArgs::from_env();
    args.reject_registry_flags("ablation");
    let mut scale = ExperimentScale {
        n_values: vec![128],
        trials: 3,
        failure_fraction: 0.25,
        d: 2,
        delta: 2,
        seed: 2008,
        idle_fast_forward: false,
    };
    args.apply(&mut scale);
    let pool = args.pool();
    println!(
        "running the parameter ablation on {} worker thread(s)...\n",
        pool.threads()
    );
    let rows = ablation_rows(&pool, &scale).expect("ablation failed");
    println!("{}", ablation_to_table(&rows).render());
    println!(
        "reading guide: success below 100% marks the point where a constant is\n\
         too small for the w.h.p. argument to hold at this n; message counts\n\
         show what the safety margin of the default constant costs."
    );
}
