//! Quickstart: run one asynchronous gossip execution and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 64-process system in which a quarter of the processes may crash,
//! runs the `ears` epidemic protocol under an oblivious adversary with
//! message delays up to `d = 3` and scheduling gaps up to `δ = 2`, and prints
//! the complexity metrics and the correctness verdict.

use agossip_adversary::oblivious::{crash_patterns, ObliviousPlan};
use agossip_core::{run_gossip, Ears, GossipSpec};
use agossip_sim::SimConfig;

fn main() {
    let n = 64;
    let f = n / 4;
    let config = SimConfig::new(n, f).with_d(3).with_delta(2).with_seed(42);

    // An oblivious adversary: random delays up to d, δ-fair scheduling, and f
    // staggered crashes committed in advance.
    let mut adversary = ObliviousPlan::from_config(&config)
        .with_crashes(crash_patterns::staggered(n, f, 20, config.seed))
        .build();

    let report = run_gossip(&config, GossipSpec::Full, &mut adversary, Ears::new)
        .expect("simulation failed");

    println!("ears gossip, n = {n}, f = {f}, d = 3, δ = 2");
    println!("  completed:        {}", report.check.all_ok());
    println!(
        "  completion time:  {} steps ({:.1} × (d+δ))",
        report.time_steps().unwrap_or(0),
        report.normalized_time.unwrap_or(f64::NAN)
    );
    println!("  messages sent:    {}", report.messages());
    println!(
        "  messages/process: {:.1}",
        report.metrics.mean_sent_per_process()
    );
    println!("  crashes:          {}", report.metrics.crashes);
    println!("  trivial gossip would have sent ~{} messages", n * (n - 1));
}
