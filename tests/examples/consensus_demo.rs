//! Regenerates the paper's Table 2: randomized consensus protocols built on
//! gossip-based `get-core`.
//!
//! ```text
//! cargo run --release --example consensus_demo -- [--threads N] [--trials N] [--n A,B,C]
//! ```

use agossip_analysis::experiments::table2::{table2_rows, table2_to_table};
use agossip_analysis::experiments::ExperimentScale;
use agossip_analysis::sweep::SweepArgs;
use agossip_consensus::{run_consensus, ConsensusProtocol};
use agossip_sim::{FairObliviousAdversary, SimConfig};

fn main() {
    let args = SweepArgs::from_env();
    args.reject_registry_flags("consensus_demo");

    // One detailed run first: CR-tears on a split input.
    let n = 64;
    let config = SimConfig::new(n, n / 4)
        .with_d(2)
        .with_delta(2)
        .with_seed(7);
    let inputs: Vec<u64> = (0..n).map(|i| (i % 2) as u64).collect();
    let mut adversary = FairObliviousAdversary::new(config.d, config.delta, config.seed);
    let report = run_consensus(&config, ConsensusProtocol::CrTears, &inputs, &mut adversary)
        .expect("consensus failed");
    println!("CR-tears, n = {n}, split 0/1 inputs:");
    println!(
        "  agreement/validity/termination: {}",
        report.check.all_ok()
    );
    println!(
        "  decided value:                  {:?}",
        report.check.decided_value
    );
    println!("  voting rounds:                  {}", report.max_rounds);
    println!("  messages:                       {}", report.messages());
    println!(
        "  time:                           {} steps\n",
        report.time_steps().unwrap_or(0)
    );

    // Then the full Table 2 sweep.
    let mut scale = ExperimentScale {
        n_values: vec![16, 32, 64, 128],
        trials: 2,
        failure_fraction: 0.2,
        d: 2,
        delta: 2,
        seed: 2008,
        idle_fast_forward: false,
    };
    args.apply(&mut scale);
    let pool = args.pool();
    println!(
        "running the Table 2 sweep on {} worker thread(s)...\n",
        pool.threads()
    );
    let rows = table2_rows(&pool, &scale).expect("sweep failed");
    println!("{}", table2_to_table(&rows).render());
}
