//! Bit complexity of the gossip protocols (the paper's Section 7 open
//! question): how much *information*, not just how many messages, each
//! protocol puts on the wire.
//!
//! ```text
//! cargo run --release --example bit_complexity -- [--threads N] [--trials N] [--n A,B,C]
//! ```
//!
//! Message counts alone (Table 1) hide the fact that `ears`/`sears` messages
//! carry the sender's entire rumor set plus its informed-list, while `tears`
//! carries only rumors and the trivial protocol carries exactly one rumor per
//! message. This example measures both axes for every protocol.

use agossip_analysis::experiments::bit_complexity::{
    bit_complexity_rows, bit_complexity_to_table, wire_unit_exponent,
};
use agossip_analysis::experiments::{ExperimentScale, GossipProtocolKind};
use agossip_analysis::sweep::SweepArgs;

fn main() {
    let args = SweepArgs::from_env();
    args.reject_registry_flags("bit_complexity");
    // Stops at n = 128 by default for the same reason as the table1
    // example: the tears row at n = 256 needs tens of GB and tens of
    // minutes. Pass --n 32,64,128,256 for the full grid.
    let mut scale = ExperimentScale {
        n_values: vec![32, 64, 128],
        trials: 3,
        failure_fraction: 0.25,
        d: 2,
        delta: 2,
        seed: 2008,
        idle_fast_forward: false,
    };
    args.apply(&mut scale);
    let pool = args.pool();
    println!(
        "running the bit-complexity sweep at n = {:?} on {} worker thread(s)...\n",
        scale.n_values,
        pool.threads()
    );
    let rows = bit_complexity_rows(&pool, &scale).expect("sweep failed");
    println!("{}", bit_complexity_to_table(&rows).render());

    println!("fitted wire-unit growth exponents (units ≈ c·n^k):");
    for kind in GossipProtocolKind::table1_rows() {
        if let Some(fit) = wire_unit_exponent(&rows, kind.name()) {
            println!(
                "  {:8} k = {:.2}  (R² = {:.3})",
                kind.name(),
                fit.exponent,
                fit.r_squared
            );
        }
    }
    println!(
        "\nobservation: ears wins Table 1 on message count but pays a large\n\
         per-message factor once bit complexity is counted, which is exactly\n\
         why the paper lists bit complexity as an open direction."
    );
}
