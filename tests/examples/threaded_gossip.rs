//! Runs the same `ears` protocol outside the simulator: one OS thread per
//! process, crossbeam channels with randomized injected delays, and two
//! crash-injected nodes — demonstrating that the protocol state machines are
//! genuinely asynchronous.
//!
//! ```text
//! cargo run --release --example threaded_gossip
//! ```

use agossip_core::{check_gossip, Ears, GossipSpec, Rumor};
use agossip_runtime::{run_threaded, RuntimeConfig};
use agossip_sim::ProcessId;
use std::time::Duration;

fn main() {
    let n = 32;
    let f = 4;
    let config = RuntimeConfig {
        n,
        f,
        max_delay: Duration::from_millis(5),
        max_step_pause: Duration::from_millis(2),
        crashes: vec![(ProcessId(30), 3), (ProcessId(31), 10)],
        max_duration: Duration::from_secs(30),
        quiet_period: Duration::from_millis(200),
        seed: 99,
    };
    println!("running ears on {n} threads with injected delays and 2 crashes...");
    let report = run_threaded(&config, Ears::new);

    let initial: Vec<Rumor> = (0..n).map(|i| Rumor::new(ProcessId(i), i as u64)).collect();
    let check = check_gossip(
        GossipSpec::Full,
        &report.final_rumors,
        &initial,
        &report.correct,
        report.quiescent,
    );
    println!("  quiescent:         {}", report.quiescent);
    println!("  wall-clock:        {:?}", report.elapsed);
    println!("  messages sent:     {}", report.messages_sent);
    println!("  messages delivered:{}", report.messages_delivered);
    println!("  gathering ok:      {}", check.gathering_ok);
    println!("  validity ok:       {}", check.validity_ok);
}
