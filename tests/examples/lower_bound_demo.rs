//! Demonstrates the Theorem 1 adaptive adversary (Figure 1): every gossip
//! protocol is forced to either send Ω(n + f²) messages or run for
//! Ω(f·(d+δ)) time.
//!
//! ```text
//! cargo run --release --example lower_bound_demo -- [--threads N] [--n A,B,C]
//! ```

use agossip_analysis::experiments::lower_bound::{lower_bound_rows, lower_bound_to_table};
use agossip_analysis::sweep::SweepArgs;

fn main() {
    let args = SweepArgs::from_env();
    args.reject_registry_flags("lower_bound_demo");
    if args.trials.is_some() {
        eprintln!(
            "lower_bound_demo: the Theorem 1 construction is deterministic per (n, protocol); \
             --trials does not apply"
        );
        std::process::exit(2);
    }
    let sizes = args
        .n_values
        .clone()
        .unwrap_or_else(|| vec![64, 128, 256, 512]);
    let pool = args.pool();
    println!(
        "running the Theorem 1 adversary against trivial / ears / sears on {} worker thread(s)...\n",
        pool.threads()
    );
    let rows = lower_bound_rows(&pool, &sizes, 2008).expect("lower bound experiment failed");
    println!("{}", lower_bound_to_table(&rows).render());
    println!("every row must report 'holds': the adversary forces the dichotomy of Theorem 1.");
}
