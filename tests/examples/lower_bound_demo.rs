//! Demonstrates the Theorem 1 adaptive adversary (Figure 1): every gossip
//! protocol is forced to either send Ω(n + f²) messages or run for
//! Ω(f·(d+δ)) time.
//!
//! ```text
//! cargo run --release --example lower_bound_demo
//! ```

use agossip_analysis::experiments::lower_bound::{
    lower_bound_to_table, run_lower_bound_experiment,
};

fn main() {
    let sizes = [64usize, 128, 256, 512];
    println!("running the Theorem 1 adversary against trivial / ears / sears...\n");
    let rows = run_lower_bound_experiment(&sizes, 2008).expect("lower bound experiment failed");
    println!("{}", lower_bound_to_table(&rows).render());
    println!("every row must report 'holds': the adversary forces the dichotomy of Theorem 1.");
}
