//! Regenerates the paper's Table 1: gossip protocols under an oblivious
//! adversary, compared on completion time and message complexity.
//!
//! ```text
//! cargo run --release --example table1 -- [--threads N] [--trials N] [--n A,B,C]
//! ```
//!
//! The default grid stops at `n = 128`: the `tears` row at `n = 256` holds a
//! rumor-set working set of tens of GB and runs for tens of minutes on one
//! core. Pass `--n 32,64,128,256` to reproduce the full-size grid on a
//! machine with the memory for it.

use agossip_analysis::experiments::table1::{message_exponent, table1_rows, table1_to_table};
use agossip_analysis::experiments::{ExperimentScale, GossipProtocolKind};
use agossip_analysis::sweep::SweepArgs;

fn main() {
    let args = SweepArgs::from_env();
    args.reject_registry_flags("table1");
    let mut scale = ExperimentScale {
        n_values: vec![32, 64, 128],
        trials: 3,
        failure_fraction: 0.25,
        d: 2,
        delta: 2,
        seed: 2008,
        idle_fast_forward: false,
    };
    args.apply(&mut scale);
    let pool = args.pool();
    println!(
        "running the Table 1 sweep at n = {:?} on {} worker thread(s)...\n",
        scale.n_values,
        pool.threads()
    );
    let rows = table1_rows(&pool, &scale).expect("sweep failed");
    println!("{}", table1_to_table(&rows).render());

    println!("fitted message-complexity growth exponents (messages ≈ c·n^k):");
    for kind in GossipProtocolKind::table1_rows() {
        if let Some(fit) = message_exponent(&rows, kind.name()) {
            println!(
                "  {:8} k = {:.2}  (R² = {:.3})",
                kind.name(),
                fit.exponent,
                fit.r_squared
            );
        }
    }
    println!(
        "\npaper shape: trivial ≈ n², ears ≈ n·polylog, sears ≈ n^(1+ε), tears ≈ n^(7/4)·polylog"
    );
}
