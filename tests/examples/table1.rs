//! Regenerates the paper's Table 1: gossip protocols under an oblivious
//! adversary, compared on completion time and message complexity.
//!
//! ```text
//! cargo run --release --example table1
//! ```

use agossip_analysis::experiments::table1::{message_exponent, run_table1, table1_to_table};
use agossip_analysis::experiments::{ExperimentScale, GossipProtocolKind};

fn main() {
    let scale = ExperimentScale {
        n_values: vec![32, 64, 128, 256],
        trials: 3,
        failure_fraction: 0.25,
        d: 2,
        delta: 2,
        seed: 2008,
        idle_fast_forward: false,
    };
    println!("running the Table 1 sweep (this takes a minute)...\n");
    let rows = run_table1(&scale).expect("sweep failed");
    println!("{}", table1_to_table(&rows).render());

    println!("fitted message-complexity growth exponents (messages ≈ c·n^k):");
    for kind in GossipProtocolKind::table1_rows() {
        if let Some(fit) = message_exponent(&rows, kind.name()) {
            println!(
                "  {:8} k = {:.2}  (R² = {:.3})",
                kind.name(),
                fit.exponent,
                fit.r_squared
            );
        }
    }
    println!(
        "\npaper shape: trivial ≈ n², ears ≈ n·polylog, sears ≈ n^(1+ε), tears ≈ n^(7/4)·polylog"
    );
}
