//! The live runtime end to end: `ears` on 32 OS threads with crash
//! injection, every message crossing a real transport as codec-encoded
//! bytes.
//!
//! Three runs are shown:
//!
//! 1. deterministic lockstep over the in-process channel transport (run
//!    twice to demonstrate bit-identical outcomes for one seed);
//! 2. the same configuration over loopback TCP — every frame crosses the
//!    kernel;
//! 3. on Unix, the same again over Unix-domain sockets.
//!
//! ```text
//! cargo run --release --example live_gossip
//! ```

use agossip_core::{check_gossip, Ears, GossipCtx, GossipSpec, Rumor};
use agossip_runtime::{
    run_live, ChannelTransport, LiveConfig, LiveReport, SocketTransport, Transport,
};
use agossip_sim::ProcessId;

fn config() -> LiveConfig {
    let n = 32;
    let f = 4;
    LiveConfig::lockstep(n, f, 2008).with_crashes(vec![
        (ProcessId(31), 0),
        (ProcessId(30), 3),
        (ProcessId(29), 10),
        (ProcessId(28), 25),
    ])
}

fn run_and_check<T: Transport>(transport: &T, config: &LiveConfig) -> LiveReport {
    let report = run_live(config, transport, Ears::new).expect("live run failed");
    let initial: Vec<Rumor> = ProcessId::all(config.n)
        .map(|pid| GossipCtx::new(pid, config.n, config.f, config.seed).rumor)
        .collect();
    let check = check_gossip(
        GossipSpec::Full,
        &report.final_rumors,
        &initial,
        &report.correct,
        report.quiescent,
    );
    println!("[{}]", report.transport);
    println!("  quiescent:      {}", report.quiescent);
    println!("  ticks:          {}", report.ticks);
    println!("  wall-clock:     {:?}", report.elapsed);
    println!("  messages sent:  {}", report.messages_sent);
    println!("  bytes sent:     {}", report.bytes_sent);
    println!(
        "  bytes/message:  {:.1}",
        report.bytes_sent as f64 / report.messages_sent.max(1) as f64
    );
    println!("  decode errors:  {}", report.decode_errors);
    println!("  gathering ok:   {}", check.gathering_ok);
    println!("  validity ok:    {}", check.validity_ok);
    assert!(check.all_ok(), "checker rejected the live run: {check:?}");
    report
}

fn main() {
    let config = config();
    println!(
        "ears, n = {}, {} staggered crashes, lockstep d = 2, seed {}\n",
        config.n,
        config.crashes.len(),
        config.seed
    );

    let first = run_and_check(&ChannelTransport, &config);
    let second = run_and_check(&ChannelTransport, &config);
    assert_eq!(first.final_rumors, second.final_rumors);
    assert_eq!(first.messages_sent, second.messages_sent);
    assert_eq!(first.bytes_sent, second.bytes_sent);
    assert_eq!(first.ticks, second.ticks);
    println!("\nchannel transport: two runs with the same seed were bit-identical");

    run_and_check(&SocketTransport::tcp(), &config);
    #[cfg(unix)]
    run_and_check(&SocketTransport::uds(), &config);
    println!("\nevery correct process holds the checker-verified rumor set on every transport");
}
