//! Runs any registered evaluation scenario through the parallel sweep
//! engine — the one front door to every artifact the repository reproduces.
//!
//! ```text
//! cargo run --release --example scenarios -- --list
//! cargo run --release --example scenarios -- --scenario table1 --threads 0
//! cargo run --release --example scenarios -- --scenario robustness --trials 5 --n 64
//! ```
//!
//! Without `--scenario`, every scenario in the registry runs in sequence
//! (slow at the default scale; pass `--n`/`--trials` to shrink it). Results
//! are bit-identical for any `--threads` value — the engine derives each
//! trial's seed from its index, not from scheduling order.

use agossip_analysis::sweep::{find_scenario, registry, SweepArgs};

fn main() {
    let args = SweepArgs::from_env();
    if args.list {
        println!("registered scenarios:\n");
        for scenario in registry() {
            println!(
                "  {:15} {:28} {}",
                scenario.name(),
                scenario.artifact(),
                scenario.summary()
            );
        }
        println!("\nrun one with: --scenario NAME [--threads N] [--trials N] [--n A,B,C]");
        return;
    }

    let pool = args.pool();

    let selected = match &args.scenario {
        Some(name) => match find_scenario(name) {
            Some(scenario) => vec![scenario],
            None => {
                eprintln!("unknown scenario '{name}'; try --list");
                std::process::exit(2);
            }
        },
        None => registry(),
    };

    for scenario in selected {
        if args.trials.is_some() && !scenario.trials_apply() {
            eprintln!(
                "note: '{}' ignores --trials — the Theorem 1 adversary construction is \
                 deterministic per (n, protocol)",
                scenario.name()
            );
        }
        // Each scenario starts from its own curated scale (the one its
        // standalone example uses), so the registry path and the example
        // produce the same rows; --trials/--n override per run.
        let mut scale = scenario.default_scale();
        args.apply(&mut scale);
        println!(
            "running '{}' ({}) at n = {:?} on {} worker thread(s)...\n",
            scenario.name(),
            scenario.artifact(),
            scale.n_values,
            pool.threads()
        );
        match scenario.run(&pool, &scale) {
            Ok(table) => println!("{}", table.render()),
            Err(e) => {
                eprintln!("scenario '{}' failed: {e}", scenario.name());
                std::process::exit(1);
            }
        }
    }
}
