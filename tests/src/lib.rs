//! # agossip-xtests
//!
//! Workspace-level integration and property tests, plus one shared library
//! module: [`live_harness`], the live-vs-simulator differential machinery
//! that `live_differential` and the CI smoke jobs drive. Everything else
//! lives in `tests/` and exercises the public APIs of the other `agossip`
//! crates together:
//!
//! * `gossip_correctness` — every protocol satisfies Gathering / Validity /
//!   Quiescence (or the majority variant) across a grid of system sizes,
//!   failure budgets, timing bounds and seeds;
//! * `consensus_correctness` — every Table 2 protocol satisfies Agreement /
//!   Validity / Termination, with and without crashes;
//! * `adversary_dichotomy` — the Theorem 1 adversary forces its dichotomy on
//!   every full-gossip protocol;
//! * `runtime_threads` — the thread runtime reaches the same outcomes as the
//!   discrete-event simulator;
//! * `props_core` / `props_sim` — proptest invariants on the data structures
//!   and the simulator.

pub mod live_harness;
