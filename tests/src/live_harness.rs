//! The live-vs-simulator differential harness.
//!
//! One entry point, [`live_vs_sim`], runs a protocol on the live runtime
//! (any transport, any pacing, any threading) and optionally the
//! discrete-event simulator at the same parameters, and judges both
//! executions with the *same* correctness checker. The returned [`Verdict`]
//! carries everything a test needs to assert: the live report, both
//! checker verdicts, and the simulator's final rumor sets for exact-set
//! comparison where the protocol guarantees it (full gossip, no crashes).
//!
//! The point of centralising this: PR 5's differential tests each hand-rolled
//! the run-both-sides-and-compare dance, so a new execution substrate (the
//! reactor) would have meant another copy per case. Expressed through the
//! harness, the whole matrix — channel/TCP/UDS × lockstep/free-running —
//! re-runs under any [`Threading`] by flipping one field on the
//! [`LiveConfig`].

use agossip_core::{
    check_gossip, run_gossip, CheckReport, GossipCtx, GossipEngine, GossipSpec, Rumor, RumorSet,
    WireCodec, WireDecodeView,
};
use agossip_runtime::{
    run_live, ChannelTransport, LiveConfig, LiveReport, RuntimeError, SocketTransport, Threading,
};
use agossip_sim::{FairObliviousAdversary, ProcessId, SimConfig};

/// Which transport the live side runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process crossbeam channels.
    Channel,
    /// Loopback TCP.
    Tcp,
    /// Unix-domain sockets.
    #[cfg(unix)]
    Uds,
}

impl TransportKind {
    /// Every transport available on this platform.
    pub fn all() -> Vec<TransportKind> {
        vec![
            TransportKind::Channel,
            TransportKind::Tcp,
            #[cfg(unix)]
            TransportKind::Uds,
        ]
    }
}

/// The simulator side of a differential case: run the discrete-event
/// simulator at these timing bounds (and the live config's `n`/`f`/`seed`)
/// and compare checker verdicts.
#[derive(Debug, Clone, Copy)]
pub struct SimSide {
    /// The simulator's delivery bound `d`.
    pub d: u64,
    /// The simulator's step bound `δ`.
    pub delta: u64,
}

/// One differential case: a live configuration, the transport to run it
/// over, the spec to judge it against, and optionally a simulator run to
/// differ against.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// The live-runtime configuration (pacing, threading, crashes).
    pub live: LiveConfig,
    /// The transport the live side runs over.
    pub transport: TransportKind,
    /// What the checker demands (full or majority gossip).
    pub spec: GossipSpec,
    /// `Some` to also run the simulator and compare verdicts.
    pub sim: Option<SimSide>,
}

impl DiffConfig {
    /// A live-only case (no simulator side) judged as full gossip.
    pub fn live_only(live: LiveConfig, transport: TransportKind) -> Self {
        DiffConfig {
            live,
            transport,
            spec: GossipSpec::Full,
            sim: None,
        }
    }
}

/// What [`live_vs_sim`] hands back.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// The spec both sides were judged against.
    pub spec: GossipSpec,
    /// The live run's report.
    pub live: LiveReport,
    /// The checker's verdict on the live run.
    pub live_check: CheckReport,
    /// The checker's verdict on the simulator run, when one was requested.
    pub sim_check: Option<CheckReport>,
    /// The simulator's final rumor sets, when a simulator run was requested.
    pub sim_final_rumors: Option<Vec<RumorSet>>,
}

impl Verdict {
    /// True when the live and simulated runs got the same
    /// (gathering, validity, quiescence) verdict; vacuously true without a
    /// simulator side.
    pub fn checks_agree(&self) -> bool {
        self.sim_check
            .as_ref()
            .is_none_or(|sim| triple(sim) == triple(&self.live_check))
    }

    /// Panics unless the live run completed quiescent, decoded every frame,
    /// passed the checker for its spec, and (if a simulator ran) both
    /// verdicts agree.
    pub fn assert_checker_verified(&self) {
        assert!(
            self.live.quiescent,
            "[{}] live run hit its limit before quiescing",
            self.live.transport
        );
        assert_eq!(
            self.live.decode_errors, 0,
            "[{}] live run dropped undecodable frames",
            self.live.transport
        );
        let ok = match self.spec {
            GossipSpec::Full => self.live_check.all_ok(),
            GossipSpec::Majority => self.live_check.gathering_ok && self.live_check.validity_ok,
        };
        assert!(ok, "[{}] {:?}", self.live.transport, self.live_check);
        assert!(
            self.checks_agree(),
            "[{}] live {:?} vs sim {:?}",
            self.live.transport,
            self.live_check,
            self.sim_check
        );
    }

    /// Panics unless the live run ended with exactly the simulator's final
    /// rumor sets. Only meaningful for full gossip without crashes, where
    /// both substrates must converge on all-rumors-everywhere.
    pub fn assert_rumor_sets_match_sim(&self) {
        let sim = self
            .sim_final_rumors
            .as_ref()
            .expect("case has no simulator side to compare rumor sets against");
        assert_eq!(&self.live.final_rumors, sim);
    }
}

fn triple(report: &CheckReport) -> (bool, bool, bool) {
    (
        report.gathering_ok,
        report.validity_ok,
        report.quiescence_ok,
    )
}

/// The initial rumor assignment both substrates start from.
pub fn initial_rumors(n: usize, f: usize, seed: u64) -> Vec<Rumor> {
    ProcessId::all(n)
        .map(|pid| GossipCtx::new(pid, n, f, seed).rumor)
        .collect()
}

/// Runs the live side (and, when configured, the simulator side) of one
/// differential case and judges both with the checker.
pub fn live_vs_sim<G, F>(config: &DiffConfig, make: F) -> Result<Verdict, RuntimeError>
where
    G: GossipEngine + Send,
    G::Msg: WireCodec + WireDecodeView + PartialEq,
    F: Fn(GossipCtx) -> G,
{
    let (n, f, seed) = (config.live.n, config.live.f, config.live.seed);
    let live = match config.transport {
        TransportKind::Channel => run_live(&config.live, &ChannelTransport, &make)?,
        TransportKind::Tcp => run_live(&config.live, &SocketTransport::tcp(), &make)?,
        #[cfg(unix)]
        TransportKind::Uds => run_live(&config.live, &SocketTransport::uds(), &make)?,
    };
    let live_check = check_gossip(
        config.spec,
        &live.final_rumors,
        &initial_rumors(n, f, seed),
        &live.correct,
        live.quiescent,
    );

    let (sim_check, sim_final_rumors) = match config.sim {
        Some(SimSide { d, delta }) => {
            let sim_config = SimConfig::new(n, f)
                .with_d(d)
                .with_delta(delta)
                .with_seed(seed);
            let mut adversary = FairObliviousAdversary::new(d, delta, seed);
            let simulated = run_gossip(&sim_config, config.spec, &mut adversary, &make)
                .expect("simulator side of differential case failed");
            (Some(simulated.check), Some(simulated.final_rumors))
        }
        None => (None, None),
    };

    Ok(Verdict {
        spec: config.spec,
        live,
        live_check,
        sim_check,
        sim_final_rumors,
    })
}

/// The threading disciplines every differential case should survive: the
/// PR 5 thread-per-process runtime and a small multi-reactor configuration.
pub fn threadings() -> Vec<Threading> {
    vec![Threading::PerProcess, Threading::Reactor { reactors: 2 }]
}

/// Panics unless two lockstep reports are bit-identical: same rumor sets,
/// counters, ticks and per-node step counts.
pub fn assert_bit_identical(label: &str, a: &LiveReport, b: &LiveReport) {
    assert_eq!(a.final_rumors, b.final_rumors, "{label}: rumor sets differ");
    assert_eq!(a.messages_sent, b.messages_sent, "{label}: sends differ");
    assert_eq!(
        a.messages_delivered, b.messages_delivered,
        "{label}: deliveries differ"
    );
    assert_eq!(a.bytes_sent, b.bytes_sent, "{label}: byte counts differ");
    assert_eq!(a.ticks, b.ticks, "{label}: tick counts differ");
    assert_eq!(a.steps, b.steps, "{label}: step counts differ");
}
