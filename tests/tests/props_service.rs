//! Property-based tests (proptest) on the service mode's deterministic
//! spine: the epoch workload generator, the admission frontier, and the
//! simulated multi-epoch driver.
//!
//! The service design leans on two pure functions — `epoch_initial_rumors`
//! (the workload every epoch injects) and `service_open_upto` (the
//! admission frontier) — being deterministic and scheduling-independent:
//! they are what lets a checker reconstruct an epoch's input without
//! receiving it, and what keeps service runs bit-identical across
//! worker/reactor counts (the runtime-side pin lives in
//! `service_determinism.rs`). These properties check that foundation across
//! randomly drawn seeds, sizes, and loop parameters.

use proptest::prelude::*;

use agossip_core::{
    epoch_initial_rumors, epoch_rumor, epoch_seed, run_service_sim, service_open_upto, LoopMode,
    SimServiceConfig, Trivial,
};
use agossip_sim::ProcessId;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The epoch workload generator is a pure function of
    /// `(master seed, epoch, n)`: recomputing it — from any thread, in any
    /// order, under either loop mode — yields the identical rumor slate.
    /// This is what lets the driver check a settled epoch without ever
    /// having been sent its input.
    #[test]
    fn epoch_workload_is_a_pure_function_of_seed_and_epoch(
        seed in any::<u64>(),
        epoch in 0u64..1024,
        n in 1usize..64,
    ) {
        let slate = epoch_initial_rumors(seed, epoch, n);
        prop_assert_eq!(&slate, &epoch_initial_rumors(seed, epoch, n));
        prop_assert_eq!(slate.len(), n);
        for (i, rumor) in slate.iter().enumerate() {
            prop_assert_eq!(rumor.origin, ProcessId(i));
            prop_assert_eq!(*rumor, epoch_rumor(seed, epoch, ProcessId(i)));
        }
    }

    /// Distinct epochs of the same service run draw distinct per-epoch
    /// seeds (and so distinct workloads): the splitmix-based derivation
    /// must not fold consecutive epochs onto one stream.
    #[test]
    fn distinct_epochs_draw_distinct_seeds(
        seed in any::<u64>(),
        e1 in 0u64..4096,
        offset in 1u64..4096,
    ) {
        let e2 = e1 + offset;
        prop_assert_ne!(epoch_seed(seed, e1), epoch_seed(seed, e2));
        prop_assert_ne!(
            epoch_rumor(seed, e1, ProcessId(0)),
            epoch_rumor(seed, e2, ProcessId(0))
        );
    }

    /// The admission frontier is monotone in `(now, finalized)` and never
    /// exceeds the slot-ring capacity `finalized + window` or the epoch
    /// total — for both loop modes, at every drawn parameterisation. The
    /// driver recomputes it between ticks; monotonicity is what makes the
    /// recomputation race-free to publish.
    #[test]
    fn admission_frontier_is_monotone_and_window_bounded(
        window in 1usize..16,
        total in 1u64..64,
        now in 0u64..256,
        finalized in 0u64..64,
        period in 1u64..8,
        in_flight in 1usize..16,
    ) {
        for mode in [
            LoopMode::Open { period },
            LoopMode::Closed { in_flight },
        ] {
            let upto = service_open_upto(mode, window, total, now, finalized);
            prop_assert!(upto <= total);
            prop_assert!(upto <= finalized.saturating_add(window as u64));
            prop_assert!(
                service_open_upto(mode, window, total, now + 1, finalized) >= upto,
                "frontier must be monotone in time under {mode:?}"
            );
            prop_assert!(
                service_open_upto(mode, window, total, now, finalized + 1) >= upto,
                "frontier must be monotone in completions under {mode:?}"
            );
        }
    }

    /// Open and closed loop admit epochs on different schedules but settle
    /// the *same* epoch stream — every epoch, in order, each passing its
    /// check — and a replay of either run is lifecycle-identical (same
    /// opened/settled/finalized steps, same message count). Together these
    /// pin that the epoch stream per seed is a function of the
    /// configuration alone, not of admission timing or scheduling.
    #[test]
    fn loop_modes_settle_identical_epoch_streams_and_replays_are_exact(
        n in 4usize..12,
        seed in 0u64..500,
        epochs in 2u64..6,
    ) {
        let mut closed = SimServiceConfig::closed(n, 0, 2, seed, epochs);
        closed.window = 4;
        closed.mode = LoopMode::Closed { in_flight: 2 };
        let mut open = closed.clone();
        open.mode = LoopMode::Open { period: 3 };

        let first = run_service_sim(&closed, Trivial::new).unwrap();
        let replay = run_service_sim(&closed, Trivial::new).unwrap();
        let other = run_service_sim(&open, Trivial::new).unwrap();

        prop_assert!(first.all_ok());
        prop_assert!(other.all_ok());
        prop_assert_eq!(first.epochs.len(), epochs as usize);
        prop_assert_eq!(other.epochs.len(), epochs as usize);
        for (i, (a, b)) in first.epochs.iter().zip(&other.epochs).enumerate() {
            prop_assert_eq!(a.epoch, i as u64, "closed loop finalizes in epoch order");
            prop_assert_eq!(b.epoch, i as u64, "open loop finalizes in epoch order");
        }

        prop_assert_eq!(first.steps, replay.steps);
        prop_assert_eq!(first.messages_sent, replay.messages_sent);
        prop_assert_eq!(first.stale_drops, replay.stale_drops);
        prop_assert_eq!(first.max_open, replay.max_open);
        for (a, b) in first.epochs.iter().zip(&replay.epochs) {
            prop_assert_eq!(a.epoch, b.epoch);
            prop_assert_eq!(a.opened_at, b.opened_at);
            prop_assert_eq!(a.settled_at, b.settled_at);
            prop_assert_eq!(a.finalized_at, b.finalized_at);
        }
    }
}
