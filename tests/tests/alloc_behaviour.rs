//! Allocation-counting regression test for the copy-on-write broadcast
//! payloads.
//!
//! Before the `Arc` snapshot rework, every `tears` broadcast deep-cloned a
//! full rumor map *per destination*, so a trial allocated
//! O(messages × rumor-set size) — with at least one heap allocation per
//! point-to-point message. With shared snapshots a broadcast allocates one
//! payload regardless of the neighbourhood size, so whole-trial allocations
//! are a small fraction of the message count. This test pins that property
//! with a counting global allocator: a regression back to per-destination
//! deep clones trips the assertion by an order of magnitude.
//!
//! A second test pins the *scale* regression this counter exists to catch:
//! an early-phase `tears` step at `n = 65 536` must allocate in proportion
//! to what the process has actually heard (O(informed)), not to the system
//! size (a single accidental densification costs `n/8` bytes and would
//! multiply across 65 536 processes into gigabytes).
//!
//! The tests share one global allocation counter, so they serialise on
//! [`ALLOC_WINDOW`]: only one measurement window is open at a time.

// The counting allocator is the one place in the workspace that needs
// `unsafe`: `GlobalAlloc` is an unsafe trait. The workspace-level
// `unsafe_code = "deny"` lint is relaxed for this test crate only.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

use std::sync::Arc;

use agossip_adversary::ObliviousPlan;
use agossip_analysis::experiments::scale::{
    scale_a_target, scale_tears_params, tears_params_for_a,
};
use agossip_core::{
    run_gossip, run_service_sim, GossipCtx, GossipEngine, GossipSpec, LoopMode, Rumor, RumorSet,
    SimServiceConfig, Tears, TearsFlag, TearsMessage, Trivial,
};
use agossip_runtime::{run_live, ChannelTransport, LiveConfig, Threading};
use agossip_sim::{ProcessId, SimConfig};

/// Forwards to the system allocator, counting every allocation call and the
/// bytes it requested.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Bytes currently live (allocated minus freed). Signed: memory allocated
/// before the counter existed may be freed under it.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
/// High-water mark of [`LIVE_BYTES`] since the last window reset.
static PEAK_LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

/// Raises the live-bytes count by `delta` and folds it into the peak.
fn track_live(delta: i64) {
    let live = LIVE_BYTES.fetch_add(delta, Ordering::Relaxed) + delta;
    PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
}

/// Held for the duration of each test's measurement window so the counters
/// only ever observe one workload at a time.
static ALLOC_WINDOW: Mutex<()> = Mutex::new(());

// SAFETY: delegates verbatim to `System`, which upholds the `GlobalAlloc`
// contract; the added atomic counters have no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        track_live(layout.size() as i64);
        // SAFETY: `layout` is the caller's layout, passed through unchanged.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        track_live(-(layout.size() as i64));
        // SAFETY: `ptr` was allocated by `System::alloc` above with `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        track_live(new_size as i64 - layout.size() as i64);
        // SAFETY: forwarded unchanged; `ptr`/`layout` come from this
        // allocator and `new_size` is the caller's request.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn tears_trial_allocates_per_broadcast_not_per_destination() {
    // The canonical allocation workload: one tears n = 64 majority-gossip
    // trial under the reference oblivious adversary.
    let cfg = SimConfig::new(64, 0).with_d(2).with_delta(2).with_seed(9);
    let mut adv = ObliviousPlan::from_config(&cfg).build();

    let window = ALLOC_WINDOW.lock().unwrap();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let report = run_gossip(&cfg, GossipSpec::Majority, &mut adv, Tears::new).unwrap();
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
    drop(window);

    assert!(report.check.all_ok(), "{:?}", report.check);
    let messages = report.metrics.messages_sent;
    assert!(
        messages > 10_000,
        "the workload must be broadcast-heavy to be meaningful, got {messages} messages"
    );

    eprintln!("allocations: {during}, messages: {messages}");

    // With per-destination deep clones every message costs at least one
    // allocation (a ~64-rumor tree costs several), so `during` would exceed
    // `messages`. With shared snapshots, allocations track broadcasts plus
    // engine bookkeeping — well under one per message. The factor 4 leaves
    // headroom for allocator noise while still failing hard on a regression.
    assert!(
        during < messages / 4,
        "a tears n=64 trial should allocate O(broadcasts), not O(messages): \
         {during} allocations for {messages} messages"
    );
}

#[test]
fn reactor_lockstep_run_allocates_amortized_zero_per_frame() {
    // The hot-path-squeeze pin: in reactor steady state every frame rides
    // reused scratch. The encode buffer, the per-send head stamp, the due
    // batch and the poll vector are all reused across ticks; a broadcast
    // body is one shared `Arc<[u8]>` cloned per destination (a refcount
    // bump, not an allocation); received bodies stay encoded in that shared
    // allocation until their tick, and delivery folds the whole batch with
    // at most one copy-on-write per set. What remains is O(broadcasts +
    // ticks) bookkeeping — amortized zero per point-to-point frame. A
    // regression anywhere on the path (a per-destination body clone, an
    // owned decode per message, a per-frame scratch Vec) costs at least one
    // allocation per frame and trips the assertion by an order of
    // magnitude.
    let crashes: Vec<(ProcessId, u64)> = (0..16)
        .map(|i| (ProcessId(255 - i), (i % 4) as u64))
        .collect();
    let mut config = LiveConfig::lockstep(256, 16, 0xD1CE_2008).with_crashes(crashes);
    config.threading = Threading::Reactor { reactors: 8 };
    let params = tears_params_for_a(config.n, scale_a_target(config.n));

    let window = ALLOC_WINDOW.lock().unwrap();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let report = run_live(&config, &ChannelTransport, move |ctx| {
        Tears::with_params(ctx, params)
    })
    .unwrap();
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;
    drop(window);

    assert!(report.quiescent);
    assert_eq!(report.decode_errors, 0);
    let frames = report.messages_sent;
    assert!(
        frames > 20_000,
        "the workload must be frame-heavy to be meaningful, got {frames} frames"
    );

    eprintln!("allocations: {during}, frames: {frames}");

    // The whole run — setup and teardown of 256 engines, channel wiring,
    // checker inputs — is inside the window, so the bound is not zero: the
    // fixed Θ(n) cost measures ~8.3k allocations and the frame-dependent
    // remainder ~0.17 per frame (mpsc block allocations, one `Arc<[u8]>`
    // per distinct broadcast, set growth), ~12.4k in total. The lockstep
    // runtime is deterministic, so the count is exact across repeats; half
    // an allocation per frame is a true upper bound today, while the
    // cheapest possible per-frame regression (one allocation each) adds
    // `frames` on top and overshoots the bound threefold.
    assert!(
        during < frames / 2,
        "a reactor lockstep run should allocate O(n + broadcasts), not \
         O(frames): {during} allocations for {frames} frames"
    );
}

#[test]
fn early_phase_tears_step_at_n_65536_allocates_o_informed_not_theta_n() {
    // The regression the adaptive sparse/dense representation exists to
    // prevent: before the µ−κ trigger threshold a process has heard only a
    // handful of rumors, so delivering those rumors and taking a local step
    // must cost O(informed) bytes. A single accidental densification (or any
    // other Θ(n) allocation on this path) costs at least `n/8` bytes for the
    // origin bitset alone — across 65 536 processes that is the difference
    // between megabytes and gigabytes for the early phase of a scale run.
    const N: usize = 65_536;
    let params = scale_tears_params(N);
    // Construction is Θ(n) by definition (two Bernoulli draws per peer) and
    // happens outside the measured window, as does building the incoming
    // messages.
    let mut engine = Tears::with_params(GossipCtx::new(ProcessId(7), N, N / 4, 2008), params);
    let informed = usize::try_from((engine.mu() - engine.kappa()) / 2).unwrap();
    assert!(
        informed > 0 && engine.is_trigger_count(informed as u64).eq(&false),
        "the workload must stay below the second-level trigger window"
    );
    // Origins start at 100 so none collides with the engine's own pid.
    let incoming: Vec<(ProcessId, TearsMessage)> = (100..100 + informed)
        .map(|i| {
            let msg = TearsMessage {
                rumors: Arc::new(RumorSet::singleton(Rumor::new(ProcessId(i), i as u64))),
                flag: TearsFlag::Up,
            };
            (ProcessId(i), msg)
        })
        .collect();
    let mut out = Vec::new();

    let window = ALLOC_WINDOW.lock().unwrap();
    let before = ALLOCATED_BYTES.load(Ordering::Relaxed);
    for (from, msg) in incoming {
        engine.deliver(from, msg);
    }
    engine.local_step(&mut out);
    let during = ALLOCATED_BYTES.load(Ordering::Relaxed) - before;
    drop(window);

    // Sanity: the workload did what it claims — the rumors arrived and the
    // step sent the first-level broadcast to the Θ(a)-sized neighbourhood.
    assert_eq!(engine.rumors().len(), informed + 1);
    assert_eq!(out.len(), engine.pi1().len());
    assert!(!out.is_empty());

    eprintln!("bytes allocated: {during}, informed: {informed}, n: {N}");

    // O(informed) here means a few hundred bytes of sparse-set growth plus
    // the ~a-element broadcast buffer. The threshold sits well above that
    // but below `n/8` — the cheapest possible Θ(n) allocation — so the
    // assertion is robust to allocator noise yet cannot miss a
    // densification.
    assert!(
        during < (N / 16) as u64,
        "an early-phase tears step at n = {N} must allocate O(informed) \
         bytes, got {during} (Θ(n) would be ≥ {})",
        N / 8
    );
}

#[test]
fn service_epoch_gc_keeps_live_state_o_window_not_o_epochs() {
    // The epoch-GC pin: a service run streams epochs through a fixed-size
    // slot ring, freeing each epoch's engines, harvest, and in-flight
    // frames when it finalizes. Live state must therefore be bounded by the
    // *window*, not by how many epochs the log has pushed through — a
    // 16×-longer run may not raise the live-bytes high-water mark by more
    // than the finalized-epoch ledger it legitimately accumulates (one
    // ~100-byte outcome record per epoch, dwarfed by a single open epoch's
    // engines). A GC regression — slots never reclaimed, per-epoch engines
    // retained past finalization — multiplies peak live bytes by the epoch
    // ratio and trips the assertion by an order of magnitude.
    let config = |epochs: u64| {
        let mut cfg = SimServiceConfig::closed(16, 0, 2, 0xEC0_2008, epochs);
        cfg.window = 4;
        cfg.mode = LoopMode::Closed { in_flight: 2 };
        cfg
    };
    let short_cfg = config(16);
    let long_cfg = config(256);

    // Both runs measure under one lock hold: identical ambient noise, no
    // interleaving between the two windows.
    let window = ALLOC_WINDOW.lock().unwrap();
    let measure = |cfg: &SimServiceConfig| {
        let floor = LIVE_BYTES.load(Ordering::Relaxed);
        PEAK_LIVE_BYTES.store(floor, Ordering::Relaxed);
        let report = run_service_sim(cfg, Trivial::new).unwrap();
        let peak = (PEAK_LIVE_BYTES.load(Ordering::Relaxed) - floor).max(1) as u64;
        (report, peak)
    };
    let (short_report, short_peak) = measure(&short_cfg);
    let (long_report, long_peak) = measure(&long_cfg);
    drop(window);

    assert!(short_report.all_ok(), "short service run must verify");
    assert!(long_report.all_ok(), "long service run must verify");
    assert_eq!(short_report.epochs.len(), 16);
    assert_eq!(long_report.epochs.len(), 256);

    eprintln!("peak live bytes: short (16 epochs) = {short_peak}, long (256 epochs) = {long_peak}");

    // 16× the epochs through the same window: O(window) live state keeps
    // the peaks within a small constant of each other (the factor 4 leaves
    // room for the outcome ledger and allocator noise), while O(epochs)
    // live state — the regression this test exists to catch — puts the
    // long run's peak an epoch-ratio multiple above the short one's.
    assert!(
        long_peak < short_peak.saturating_mul(4),
        "a 256-epoch service run must keep live state O(window), not \
         O(epochs): peak {long_peak} bytes vs {short_peak} for 16 epochs"
    );
}
