//! Allocation-counting regression test for the copy-on-write broadcast
//! payloads.
//!
//! Before the `Arc` snapshot rework, every `tears` broadcast deep-cloned a
//! full rumor map *per destination*, so a trial allocated
//! O(messages × rumor-set size) — with at least one heap allocation per
//! point-to-point message. With shared snapshots a broadcast allocates one
//! payload regardless of the neighbourhood size, so whole-trial allocations
//! are a small fraction of the message count. This test pins that property
//! with a counting global allocator: a regression back to per-destination
//! deep clones trips the assertion by an order of magnitude.
//!
//! The file contains exactly one `#[test]` so no concurrent test pollutes
//! the allocation counter.

// The counting allocator is the one place in the workspace that needs
// `unsafe`: `GlobalAlloc` is an unsafe trait. The workspace-level
// `unsafe_code = "deny"` lint is relaxed for this test crate only.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use agossip_adversary::ObliviousPlan;
use agossip_core::{run_gossip, GossipSpec, Tears};
use agossip_sim::SimConfig;

/// Forwards to the system allocator, counting every allocation call.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates verbatim to `System`, which upholds the `GlobalAlloc`
// contract; the added atomic counter has no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is the caller's layout, passed through unchanged.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was allocated by `System::alloc` above with `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded unchanged; `ptr`/`layout` come from this
        // allocator and `new_size` is the caller's request.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn tears_trial_allocates_per_broadcast_not_per_destination() {
    // The canonical allocation workload: one tears n = 64 majority-gossip
    // trial under the reference oblivious adversary.
    let cfg = SimConfig::new(64, 0).with_d(2).with_delta(2).with_seed(9);
    let mut adv = ObliviousPlan::from_config(&cfg).build();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let report = run_gossip(&cfg, GossipSpec::Majority, &mut adv, Tears::new).unwrap();
    let during = ALLOCATIONS.load(Ordering::Relaxed) - before;

    assert!(report.check.all_ok(), "{:?}", report.check);
    let messages = report.metrics.messages_sent;
    assert!(
        messages > 10_000,
        "the workload must be broadcast-heavy to be meaningful, got {messages} messages"
    );

    eprintln!("allocations: {during}, messages: {messages}");

    // With per-destination deep clones every message costs at least one
    // allocation (a ~64-rumor tree costs several), so `during` would exceed
    // `messages`. With shared snapshots, allocations track broadcasts plus
    // engine bookkeeping — well under one per message. The factor 4 leaves
    // headroom for allocator noise while still failing hard on a regression.
    assert!(
        during < messages / 4,
        "a tears n=64 trial should allocate O(broadcasts), not O(messages): \
         {during} allocations for {messages} messages"
    );
}
