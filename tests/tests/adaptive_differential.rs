//! Representation-differential proptests for the adaptive sparse/dense
//! rework: the same operation sequence is driven once against sets left in
//! their natural adaptive representation (sparse id lists promoting to dense
//! word-packed form past [`ADAPTIVE_SPARSE_LIMIT`]) and once against copies
//! force-promoted to dense up front. Every observable — membership, length,
//! union deltas, iteration order, coverage queries, equality, and the exact
//! wire bytes of the codec — must be identical regardless of which
//! representation each set happens to be in.
//!
//! The origin universe deliberately straddles the promotion crossover so
//! sequences exercise sparse-only, mixed, and post-promotion states; together
//! with the oracle tests in `rumor_differential.rs` and the golden pins in
//! `seed_equivalence.rs` this proves the adaptive rework is bit-for-bit
//! equivalent to the dense-only behaviour.

use std::sync::Arc;

use proptest::prelude::*;

use agossip_core::informed_list::InformedList;
use agossip_core::{EarsMessage, Rumor, RumorSet, WireCodec, ADAPTIVE_SPARSE_LIMIT};
use agossip_sim::ProcessId;

/// Universe of origins: wide enough that a union can jump a set from far
/// below the crossover to far above it in one operation.
const UNIVERSE: usize = 3 * ADAPTIVE_SPARSE_LIMIT;

/// One operation of the differential driver, applied to both twins.
#[derive(Debug, Clone)]
enum Op {
    Insert(usize, u64),
    /// Union with a set built from these rumors (the argument itself is
    /// built adaptively on one side and force-promoted on the other).
    Union(Vec<(usize, u64)>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0..2usize,
        (0..UNIVERSE, any::<u64>()),
        prop::collection::vec((0..UNIVERSE, any::<u64>()), 0..(ADAPTIVE_SPARSE_LIMIT + 64)),
    )
        .prop_map(|(tag, (o, p), rumors)| match tag {
            0 => Op::Insert(o, p),
            _ => Op::Union(rumors),
        })
}

/// Payload strategy biased towards the identity encoding (`payload ==
/// origin`) the gossip protocols use, with enough explicit payloads mixed in
/// to exercise the materialized path.
fn set_from(rumors: &[(usize, u64)]) -> RumorSet {
    let mut set = RumorSet::new();
    for &(o, p) in rumors {
        set.insert(Rumor::new(ProcessId(o), p));
    }
    set
}

fn dense_twin(set: &RumorSet) -> RumorSet {
    let mut twin = set.clone();
    twin.force_dense();
    twin
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary insert/union sequences observe identical state whether the
    /// sets stay adaptive or are force-promoted to dense after every step.
    #[test]
    fn rumor_set_observables_are_representation_independent(
        ops in prop::collection::vec(op_strategy(), 0..16),
        identity_payloads in any::<bool>(),
    ) {
        let mut adaptive = RumorSet::new();
        let mut dense = RumorSet::new();
        dense.force_dense();
        for op in ops {
            match op {
                Op::Insert(origin, payload) => {
                    let payload = if identity_payloads { origin as u64 } else { payload };
                    let r = Rumor::new(ProcessId(origin), payload);
                    prop_assert_eq!(adaptive.insert(r), dense.insert(r));
                }
                Op::Union(rumors) => {
                    let rumors: Vec<(usize, u64)> = if identity_payloads {
                        rumors.iter().map(|&(o, _)| (o, o as u64)).collect()
                    } else {
                        rumors
                    };
                    let arg = set_from(&rumors);
                    // Cross the representations on the argument side too:
                    // adaptive ∪ dense-arg and dense ∪ adaptive-arg.
                    prop_assert_eq!(adaptive.union(&dense_twin(&arg)), dense.union(&arg));
                }
            }
            prop_assert_eq!(adaptive.len(), dense.len());
            prop_assert_eq!(adaptive == dense, true, "PartialEq must ignore representation");
            let a: Vec<Rumor> = adaptive.iter().collect();
            let d: Vec<Rumor> = dense.iter().collect();
            prop_assert_eq!(a, d, "iteration order must match");
            for q in ProcessId::all(UNIVERSE) {
                prop_assert_eq!(adaptive.get(q), dense.get(q));
            }
            prop_assert_eq!(
                adaptive.is_superset_of(&dense) && dense.is_superset_of(&adaptive),
                true
            );
        }
    }

    /// The wire codec emits byte-identical frames for a message whose sets
    /// are adaptive and its force-promoted twin — the sparse-vs-dense wire
    /// section choice is a pure function of the contents.
    #[test]
    fn wire_bytes_are_representation_independent(
        rumors in prop::collection::vec(0..UNIVERSE, 0..(ADAPTIVE_SPARSE_LIMIT + 32)),
        pairs in prop::collection::vec((0..UNIVERSE, 0..64usize), 0..(ADAPTIVE_SPARSE_LIMIT + 32)),
    ) {
        let mut set = RumorSet::new();
        for &o in &rumors {
            set.insert(Rumor::new(ProcessId(o), o as u64));
        }
        let mut informed = InformedList::new();
        for &(o, t) in &pairs {
            informed.insert(ProcessId(o), ProcessId(t));
        }
        let mut dense_set = set.clone();
        dense_set.force_dense();
        let mut dense_informed = informed.clone();
        dense_informed.force_dense();

        let adaptive_frame = EarsMessage {
            rumors: Arc::new(set),
            informed: Arc::new(informed),
        }
        .encode();
        let dense_frame = EarsMessage {
            rumors: Arc::new(dense_set),
            informed: Arc::new(dense_informed),
        }
        .encode();
        prop_assert_eq!(&adaptive_frame, &dense_frame, "wire bytes diverged across representations");

        // And the frame round-trips back to equal state.
        let decoded = EarsMessage::decode(&adaptive_frame).unwrap();
        let reencoded = decoded.encode();
        prop_assert_eq!(adaptive_frame, reencoded);
    }

    /// `InformedList` coverage queries and unions agree between adaptive
    /// rows and force-promoted rows.
    #[test]
    fn informed_list_observables_are_representation_independent(
        pairs in prop::collection::vec((0..UNIVERSE, 0..48usize), 0..(ADAPTIVE_SPARSE_LIMIT + 32)),
        extra in prop::collection::vec((0..UNIVERSE, 0..48usize), 0..32),
        probe_origins in prop::collection::vec(0..UNIVERSE, 0..8),
    ) {
        let n = 48;
        let mut adaptive = InformedList::new();
        let mut dense = InformedList::new();
        for &(o, t) in &pairs {
            prop_assert_eq!(
                adaptive.insert(ProcessId(o), ProcessId(t)),
                dense.insert(ProcessId(o), ProcessId(t))
            );
        }
        dense.force_dense();

        let mut probe = RumorSet::new();
        for &o in &probe_origins {
            probe.insert(Rumor::new(ProcessId(o), o as u64));
        }
        prop_assert_eq!(adaptive.len(), dense.len());
        let a: Vec<_> = adaptive.iter().collect();
        let d: Vec<_> = dense.iter().collect();
        prop_assert_eq!(a, d, "pair iteration order must match");
        prop_assert_eq!(
            adaptive.uncovered_targets(&probe, n),
            dense.uncovered_targets(&probe, n)
        );
        prop_assert_eq!(adaptive.covers_all(&probe, n), dense.covers_all(&probe, n));

        // Union across mixed representations: adaptive ∪ dense-arg must
        // report the same delta as dense ∪ adaptive-arg.
        let mut adaptive_arg = InformedList::new();
        for &(o, t) in &extra {
            adaptive_arg.insert(ProcessId(o), ProcessId(t));
        }
        let mut dense_arg = adaptive_arg.clone();
        dense_arg.force_dense();
        prop_assert_eq!(adaptive.union(&dense_arg), dense.union(&adaptive_arg));
        prop_assert_eq!(adaptive.len(), dense.len());
        let a: Vec<_> = adaptive.iter().collect();
        let d: Vec<_> = dense.iter().collect();
        prop_assert_eq!(a, d, "post-union pair iteration order must match");
    }
}
