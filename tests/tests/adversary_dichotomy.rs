//! Cross-crate integration tests for the Theorem 1 lower bound: the adaptive
//! adversary forces every full-gossip protocol to be either message-heavy or
//! slow, at every size we try.

use agossip_adversary::theorem1::{run_lower_bound, LowerBoundCase, LowerBoundParams};
use agossip_analysis::experiments::lower_bound::{
    lower_bound_rows, DICHOTOMY_C_MSG, DICHOTOMY_C_TIME,
};
use agossip_analysis::sweep::TrialPool;
use agossip_core::{Ears, Sears, Trivial};

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive sweep; run with --release")]
fn dichotomy_holds_for_every_protocol_and_size() {
    let rows = lower_bound_rows(&TrialPool::serial(), &[32, 64, 128], 2024).unwrap();
    assert_eq!(rows.len(), 9);
    for row in &rows {
        assert!(
            row.dichotomy_holds,
            "Theorem 1 dichotomy violated for {} at n = {}: {:?}",
            row.protocol, row.n, row
        );
    }
}

#[test]
fn dichotomy_holds_across_seeds() {
    for seed in 0..4u64 {
        let params = LowerBoundParams::new(64, 16, seed);
        for (name, outcome) in [
            ("trivial", run_lower_bound(params, Trivial::new).unwrap()),
            ("ears", run_lower_bound(params, Ears::new).unwrap()),
            ("sears", run_lower_bound(params, Sears::new).unwrap()),
        ] {
            assert!(
                outcome.dichotomy_holds(DICHOTOMY_C_MSG, DICHOTOMY_C_TIME),
                "{name} seed {seed}: {outcome:?}"
            );
        }
    }
}

#[test]
fn trivial_always_lands_in_the_message_heavy_case() {
    for seed in 0..3u64 {
        let params = LowerBoundParams::new(64, 16, seed);
        let outcome = run_lower_bound(params, Trivial::new).unwrap();
        assert_eq!(outcome.case, LowerBoundCase::MessageHeavy);
        // Messages dominate n + f² by a wide margin (trivial is Θ(n²)).
        assert!(outcome.messages_sent as f64 >= outcome.message_bound() as f64 * 0.5);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive sweep; run with --release")]
fn crash_budget_is_never_exceeded() {
    let rows = lower_bound_rows(&TrialPool::serial(), &[64, 128], 7).unwrap();
    for row in rows {
        // The construction promises < f failures.
        assert!(row.f < row.n);
    }
    // Direct check of the outcome's crash counter.
    let params = LowerBoundParams::new(128, 32, 7);
    let outcome = run_lower_bound(params, Ears::new).unwrap();
    assert!(outcome.crashes_used <= outcome.f);
}

#[test]
fn slow_startup_outcome_reports_enough_elapsed_time() {
    // EARS needs ω(f) steps to quiesce a large core when f is small relative
    // to its log² n completion time, so the SlowStartup branch fires; its
    // elapsed time must be at least the phase-1 cap (= f steps).
    let params = LowerBoundParams::new(128, 32, 3);
    let outcome = run_lower_bound(params, Ears::new).unwrap();
    if outcome.case == LowerBoundCase::SlowStartup {
        assert!(outcome.elapsed_steps >= outcome.f as u64);
    }
    assert!(outcome.dichotomy_holds(DICHOTOMY_C_MSG, DICHOTOMY_C_TIME));
}
