//! Representation-differential proptests: the dense word-packed `RumorSet`
//! and `InformedList` against the historical tree-based implementations,
//! kept as test-only oracles.
//!
//! The seed representations are `BTreeMap<ProcessId, u64>` keyed by origin
//! ([`agossip_bench::rumorset::BTreeRumorSet`], shared with the
//! `rumor_baseline` perf runner) and `BTreeSet<(ProcessId, ProcessId)>` of
//! pairs (re-implemented verbatim below). Arbitrary operation sequences
//! must drive the dense and tree representations to observably identical
//! states — same membership, same lengths, same union deltas, same
//! iteration order, same coverage queries. Together with the golden pins in
//! `seed_equivalence.rs` this proves the bitset rewrite is bit-for-bit
//! equivalent to the pre-change behaviour.

use std::collections::BTreeSet;

use proptest::prelude::*;

use agossip_bench::rumorset::BTreeRumorSet;
use agossip_core::informed_list::InformedList;
use agossip_core::{Rumor, RumorSet};
use agossip_sim::ProcessId;

/// The seed `InformedList`: a sorted set of `(origin, target)` pairs.
#[derive(Default, Clone)]
struct OracleInformedList {
    pairs: BTreeSet<(ProcessId, ProcessId)>,
}

impl OracleInformedList {
    fn insert(&mut self, origin: ProcessId, target: ProcessId) -> bool {
        self.pairs.insert((origin, target))
    }

    fn insert_all(&mut self, rumors: &BTreeRumorSet, target: ProcessId) {
        for r in rumors.iter() {
            self.pairs.insert((r.origin, target));
        }
    }

    fn contains(&self, origin: ProcessId, target: ProcessId) -> bool {
        self.pairs.contains(&(origin, target))
    }

    fn union(&mut self, other: &OracleInformedList) -> usize {
        let before = self.pairs.len();
        self.pairs.extend(other.pairs.iter().copied());
        self.pairs.len() - before
    }

    fn uncovered_targets(&self, rumors: &BTreeRumorSet, n: usize) -> Vec<ProcessId> {
        ProcessId::all(n)
            .filter(|&q| rumors.iter().any(|r| !self.contains(r.origin, q)))
            .collect()
    }

    fn covers_all(&self, rumors: &BTreeRumorSet, n: usize) -> bool {
        ProcessId::all(n).all(|q| rumors.iter().all(|r| self.contains(r.origin, q)))
    }
}

/// One operation of the `RumorSet` differential driver.
#[derive(Debug, Clone)]
enum SetOp {
    Insert(usize, u64),
    /// Union with a set built from these rumors.
    Union(Vec<(usize, u64)>),
}

fn set_op_strategy(universe: usize) -> impl Strategy<Value = SetOp> {
    (
        0..2usize,
        (0..universe, any::<u64>()),
        prop::collection::vec((0..universe, any::<u64>()), 0..12),
    )
        .prop_map(|(tag, (o, p), rumors)| match tag {
            0 => SetOp::Insert(o, p),
            _ => SetOp::Union(rumors),
        })
}

/// One operation of the `InformedList` differential driver.
#[derive(Debug, Clone)]
enum ListOp {
    Insert(usize, usize),
    /// `insert_all` of a rumor set built from these origins.
    InsertAll(Vec<usize>, usize),
    /// Union with a list built from these pairs.
    Union(Vec<(usize, usize)>),
}

fn list_op_strategy(universe: usize) -> impl Strategy<Value = ListOp> {
    (
        0..3usize,
        (0..universe, 0..universe),
        prop::collection::vec(0..universe, 0..6),
        prop::collection::vec((0..universe, 0..universe), 0..16),
    )
        .prop_map(|(tag, (o, t), origins, pairs)| match tag {
            0 => ListOp::Insert(o, t),
            1 => ListOp::InsertAll(origins, t),
            _ => ListOp::Union(pairs),
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary insert/union sequences drive the dense and tree-based rumor
    /// sets to identical observable states.
    #[test]
    fn rumor_set_matches_btreemap_oracle(
        ops in prop::collection::vec(set_op_strategy(200), 0..24),
    ) {
        let mut dense = RumorSet::new();
        let mut oracle = BTreeRumorSet::default();
        for op in ops {
            match op {
                SetOp::Insert(origin, payload) => {
                    let r = Rumor::new(ProcessId(origin), payload);
                    prop_assert_eq!(dense.insert(r), oracle.insert(r));
                }
                SetOp::Union(rumors) => {
                    let mut dense_arg = RumorSet::new();
                    let mut oracle_arg = BTreeRumorSet::default();
                    for (o, p) in rumors {
                        let r = Rumor::new(ProcessId(o), p);
                        dense_arg.insert(r);
                        oracle_arg.insert(r);
                    }
                    prop_assert_eq!(dense.union(&dense_arg), oracle.union(&oracle_arg));
                    // Superset relations agree in both directions.
                    prop_assert_eq!(
                        dense.is_superset_of(&dense_arg),
                        oracle.is_superset_of(&oracle_arg)
                    );
                    prop_assert_eq!(
                        dense_arg.is_superset_of(&dense),
                        oracle_arg.is_superset_of(&oracle)
                    );
                }
            }
            // Observable state is identical after every operation.
            prop_assert_eq!(dense.len(), oracle.len());
            prop_assert_eq!(dense.is_empty(), oracle.is_empty());
            let dense_rumors: Vec<Rumor> = dense.iter().collect();
            let oracle_rumors: Vec<Rumor> = oracle.iter().collect();
            prop_assert_eq!(dense_rumors, oracle_rumors, "iteration order must match");
            for q in ProcessId::all(200) {
                prop_assert_eq!(dense.get(q), oracle.get(q));
            }
        }
    }

    /// Arbitrary insert/insert_all/union sequences drive the dense and
    /// tree-based informed-lists to identical observable states, including
    /// the `L(p)` coverage queries `ears`/`sears` evaluate every step.
    #[test]
    fn informed_list_matches_btreeset_oracle(
        ops in prop::collection::vec(list_op_strategy(48), 0..24),
        probe_origins in prop::collection::vec(0..48usize, 0..6),
    ) {
        let n = 48;
        let mut dense = InformedList::new();
        let mut oracle = OracleInformedList::default();
        // A probe rumor set for the coverage queries.
        let mut dense_probe = RumorSet::new();
        let mut oracle_probe = BTreeRumorSet::default();
        for o in probe_origins {
            let r = Rumor::new(ProcessId(o), o as u64);
            dense_probe.insert(r);
            oracle_probe.insert(r);
        }
        for op in ops {
            match op {
                ListOp::Insert(o, t) => {
                    prop_assert_eq!(
                        dense.insert(ProcessId(o), ProcessId(t)),
                        oracle.insert(ProcessId(o), ProcessId(t))
                    );
                }
                ListOp::InsertAll(origins, t) => {
                    let mut dense_arg = RumorSet::new();
                    let mut oracle_arg = BTreeRumorSet::default();
                    for o in origins {
                        let r = Rumor::new(ProcessId(o), 0);
                        dense_arg.insert(r);
                        oracle_arg.insert(r);
                    }
                    dense.insert_all(&dense_arg, ProcessId(t));
                    oracle.insert_all(&oracle_arg, ProcessId(t));
                }
                ListOp::Union(pairs) => {
                    let mut dense_arg = InformedList::new();
                    let mut oracle_arg = OracleInformedList::default();
                    for (o, t) in pairs {
                        dense_arg.insert(ProcessId(o), ProcessId(t));
                        oracle_arg.insert(ProcessId(o), ProcessId(t));
                    }
                    prop_assert_eq!(dense.union(&dense_arg), oracle.union(&oracle_arg));
                }
            }
            prop_assert_eq!(dense.len(), oracle.pairs.len());
            let dense_pairs: Vec<_> = dense.iter().collect();
            let oracle_pairs: Vec<_> = oracle.pairs.iter().copied().collect();
            prop_assert_eq!(dense_pairs, oracle_pairs, "pair iteration order must match");
            prop_assert_eq!(
                dense.uncovered_targets(&dense_probe, n),
                oracle.uncovered_targets(&oracle_probe, n)
            );
            prop_assert_eq!(
                dense.covers_all(&dense_probe, n),
                oracle.covers_all(&oracle_probe, n)
            );
        }
    }
}
