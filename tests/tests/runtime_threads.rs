//! Cross-crate integration tests: the thread-per-process runtime reaches the
//! same protocol outcomes as the discrete-event simulator.

use std::time::Duration;

use agossip_core::{check_gossip, Ears, GossipSpec, Rumor, Sears, Tears, Trivial};
use agossip_runtime::{run_threaded, RuntimeConfig};
use agossip_sim::ProcessId;

fn initial_rumors(n: usize) -> Vec<Rumor> {
    (0..n).map(|i| Rumor::new(ProcessId(i), i as u64)).collect()
}

#[test]
fn ears_full_gossip_holds_on_threads() {
    let n = 16;
    let config = RuntimeConfig::quick(n, 4, 11);
    let report = run_threaded(&config, Ears::new);
    let check = check_gossip(
        GossipSpec::Full,
        &report.final_rumors,
        &initial_rumors(n),
        &report.correct,
        report.quiescent,
    );
    assert!(check.all_ok(), "{check:?}");
}

#[test]
fn sears_full_gossip_holds_on_threads() {
    let n = 16;
    let config = RuntimeConfig::quick(n, 4, 12);
    let report = run_threaded(&config, Sears::new);
    let check = check_gossip(
        GossipSpec::Full,
        &report.final_rumors,
        &initial_rumors(n),
        &report.correct,
        report.quiescent,
    );
    assert!(check.all_ok(), "{check:?}");
}

#[test]
fn tears_majority_gossip_holds_on_threads() {
    let n = 32;
    let config = RuntimeConfig::quick(n, 0, 13);
    let report = run_threaded(&config, Tears::new);
    let check = check_gossip(
        GossipSpec::Majority,
        &report.final_rumors,
        &initial_rumors(n),
        &report.correct,
        true,
    );
    assert!(check.gathering_ok, "{check:?}");
    assert!(check.validity_ok);
}

#[test]
fn threaded_and_simulated_trivial_gossip_send_the_same_message_count() {
    let n = 12;
    // The trivial protocol's message count is deterministic (n(n-1))
    // regardless of scheduling, so the two execution substrates must agree
    // exactly.
    let threaded = run_threaded(&RuntimeConfig::quick(n, 0, 14), Trivial::new);
    assert_eq!(threaded.messages_sent, (n * (n - 1)) as u64);

    let cfg = agossip_sim::SimConfig::new(n, 0).with_seed(14);
    let mut adv = agossip_sim::FairObliviousAdversary::new(1, 1, 14);
    let simulated =
        agossip_core::run_gossip(&cfg, GossipSpec::Full, &mut adv, Trivial::new).unwrap();
    assert_eq!(simulated.messages(), threaded.messages_sent);
}

#[test]
fn crash_injection_reduces_correct_set_but_not_correctness() {
    let n = 12;
    let config =
        RuntimeConfig::quick(n, 4, 15).with_crashes(vec![(ProcessId(10), 0), (ProcessId(11), 2)]);
    let report = run_threaded(&config, Ears::new);
    assert_eq!(report.correct.iter().filter(|c| !**c).count(), 2);
    let check = check_gossip(
        GossipSpec::Full,
        &report.final_rumors,
        &initial_rumors(n),
        &report.correct,
        true,
    );
    assert!(check.gathering_ok, "{check:?}");
    assert!(check.validity_ok);
}

#[test]
fn slow_network_still_completes_within_the_deadline() {
    let n = 8;
    let config = RuntimeConfig {
        n,
        f: 0,
        max_delay: Duration::from_millis(20),
        max_step_pause: Duration::from_millis(10),
        crashes: Vec::new(),
        max_duration: Duration::from_secs(30),
        quiet_period: Duration::from_millis(150),
        seed: 16,
    };
    let report = run_threaded(&config, Ears::new);
    assert!(
        report.quiescent,
        "did not finish before the wall-clock limit"
    );
    let check = check_gossip(
        GossipSpec::Full,
        &report.final_rumors,
        &initial_rumors(n),
        &report.correct,
        report.quiescent,
    );
    assert!(check.all_ok(), "{check:?}");
}
