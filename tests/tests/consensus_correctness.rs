//! Cross-crate integration tests: every Table 2 consensus protocol satisfies
//! Agreement / Validity / Termination across input patterns, seeds, timing
//! bounds and crash patterns.

use agossip_adversary::oblivious::{crash_patterns, ObliviousPlan};
use agossip_consensus::{run_consensus, ConsensusProtocol};
use agossip_sim::{FairObliviousAdversary, SimConfig};

fn all_protocols() -> Vec<ConsensusProtocol> {
    vec![
        ConsensusProtocol::CanettiRabin,
        ConsensusProtocol::CrEars,
        ConsensusProtocol::CrSears { epsilon: 0.5 },
        ConsensusProtocol::CrTears,
    ]
}

fn split_inputs(n: usize) -> Vec<u64> {
    (0..n).map(|i| (i % 2) as u64).collect()
}

#[test]
fn all_protocols_agree_on_unanimous_inputs() {
    for protocol in all_protocols() {
        for value in [0u64, 1] {
            let n = 16;
            let cfg = SimConfig::new(n, 3).with_seed(10 + value);
            let mut adv = FairObliviousAdversary::new(1, 1, cfg.seed);
            let report = run_consensus(&cfg, protocol, &vec![value; n], &mut adv).unwrap();
            assert!(
                report.check.all_ok(),
                "{} unanimous {value}: {:?}",
                protocol.name(),
                report.check
            );
            assert_eq!(
                report.check.decided_value,
                Some(value),
                "{} must decide the unanimous input (validity)",
                protocol.name()
            );
        }
    }
}

#[test]
fn all_protocols_agree_on_split_inputs_across_seeds() {
    for protocol in all_protocols() {
        for seed in 0..3u64 {
            let n = 16;
            let cfg = SimConfig::new(n, 3).with_d(2).with_delta(2).with_seed(seed);
            let mut adv = FairObliviousAdversary::new(2, 2, seed);
            let report = run_consensus(&cfg, protocol, &split_inputs(n), &mut adv).unwrap();
            assert!(
                report.check.all_ok(),
                "{} seed {seed}: {:?}",
                protocol.name(),
                report.check
            );
        }
    }
}

#[test]
fn all_protocols_tolerate_minority_crashes() {
    for protocol in all_protocols() {
        let n = 20;
        let f = 5;
        let cfg = SimConfig::new(n, f).with_d(2).with_delta(1).with_seed(31);
        let mut adv = ObliviousPlan::from_config(&cfg)
            .with_crashes(crash_patterns::staggered(n, f, 5, cfg.seed))
            .build();
        let report = run_consensus(&cfg, protocol, &split_inputs(n), &mut adv).unwrap();
        assert!(
            report.check.all_ok(),
            "{} with crashes: {:?}",
            protocol.name(),
            report.check
        );
        // The staggered plan spreads crash times out, so a protocol that
        // decides quickly may outrun the tail of the schedule; what must hold
        // is that crashes actually occurred and never exceeded the budget.
        assert!(report.metrics.crashes >= 1);
        assert!(report.metrics.crashes <= f);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive sweep; run with --release")]
fn cr_tears_stays_within_its_reference_envelope() {
    // The asymptotic crossover where n^{7/4} log² n drops below n² lies far
    // beyond any size a unit test can run (the log² factor dominates until
    // astronomically large n), so CR-tears cannot literally beat the
    // all-to-all baseline here. What is checkable at n = 96 is that both
    // protocols decide correctly and that CR-tears' message count stays
    // within a constant factor of the paper's O(n^{7/4} log² n) reference —
    // a termination bug in the majority-gossip instances (the regression
    // this test guards against) overshoots that envelope by orders of
    // magnitude.
    let n = 96;
    let inputs = split_inputs(n);
    let cfg = SimConfig::new(n, n / 4).with_seed(5);

    let mut adv = FairObliviousAdversary::new(1, 1, 5);
    let baseline = run_consensus(&cfg, ConsensusProtocol::CanettiRabin, &inputs, &mut adv).unwrap();
    let mut adv = FairObliviousAdversary::new(1, 1, 5);
    let tears = run_consensus(&cfg, ConsensusProtocol::CrTears, &inputs, &mut adv).unwrap();

    assert!(baseline.check.all_ok());
    assert!(tears.check.all_ok());
    let ln_n = (n as f64).ln();
    let reference = (n as f64).powf(1.75) * ln_n * ln_n;
    assert!(
        (tears.messages() as f64) < 32.0 * reference,
        "CR-tears sent {} messages, over 32 × its n^{{7/4}} log² n reference ({:.0})",
        tears.messages(),
        reference
    );
}

#[test]
fn constant_time_protocols_need_few_rounds() {
    let n = 32;
    let cfg = SimConfig::new(n, 6).with_seed(9);
    for protocol in [ConsensusProtocol::CanettiRabin, ConsensusProtocol::CrTears] {
        let mut adv = FairObliviousAdversary::new(1, 1, 9);
        let report = run_consensus(&cfg, protocol, &split_inputs(n), &mut adv).unwrap();
        assert!(report.check.all_ok());
        assert!(
            report.max_rounds <= 4,
            "{} needed {} rounds",
            protocol.name(),
            report.max_rounds
        );
    }
}

#[test]
fn consensus_is_deterministic_given_seed() {
    let n = 16;
    let cfg = SimConfig::new(n, 3).with_seed(123);
    let inputs = split_inputs(n);
    let mut adv1 = FairObliviousAdversary::new(1, 1, 123);
    let mut adv2 = FairObliviousAdversary::new(1, 1, 123);
    let a = run_consensus(&cfg, ConsensusProtocol::CrEars, &inputs, &mut adv1).unwrap();
    let b = run_consensus(&cfg, ConsensusProtocol::CrEars, &inputs, &mut adv2).unwrap();
    assert_eq!(a.messages(), b.messages());
    assert_eq!(a.check.decided_value, b.check.decided_value);
}

#[test]
fn decisions_respect_validity_with_all_zero_inputs_under_crashes() {
    let n = 12;
    let f = 3;
    let cfg = SimConfig::new(n, f).with_seed(77);
    let mut adv = ObliviousPlan::from_config(&cfg)
        .with_crashes(crash_patterns::immediate_suffix(n, f))
        .build();
    let report = run_consensus(
        &cfg,
        ConsensusProtocol::CrSears { epsilon: 0.4 },
        &vec![0; n],
        &mut adv,
    )
    .unwrap();
    assert!(report.check.all_ok(), "{:?}", report.check);
    assert_eq!(report.check.decided_value, Some(0));
}
