//! Golden-digest determinism pin for the live *service* runtime, alongside
//! the one-shot pin in `live_determinism.rs`: a closed-loop multi-epoch
//! lockstep run with staggered crashes is folded into a single `u64` digest
//! covering every observable of the report — each epoch's full lifecycle
//! (admission, settle, finalize steps and its checker verdict), the
//! per-process step counts, and the global wire counters. The digest must
//! reproduce the pinned constant exactly, on thread-per-process *and* on
//! every reactor count — multiplexing the processes (and their concurrently
//! open epochs) onto 1, 2 or 8 reactor threads may not perturb a single bit
//! of the outcome.
//!
//! This is the acceptance pin for the service mode's determinism story: the
//! admission frontier is a pure function republished between tick barriers,
//! the per-epoch engines derive everything from `epoch_seed`, and stale
//! frames cannot occur under lockstep — so the whole epoch pipeline is as
//! reproducible as a single one-shot run.
//!
//! If a deliberate change to the service driver shifts the execution (new
//! admission schedule, different harvest timing), the failure message
//! prints the new digest — re-pin the constant. An *unintentional* shift is
//! a determinism regression.

use agossip_core::{GossipSpec, LoopMode, Tears};
use agossip_runtime::{
    run_service, ChannelTransport, LiveConfig, ServiceConfig, ServiceReport, Threading,
};
use agossip_sim::rng::splitmix64;
use agossip_sim::ProcessId;

/// The digest every threading discipline must reproduce for the pinned
/// configuration below. Captured from the thread-per-process run.
const GOLDEN_DIGEST: u64 = 0x4BBC_9B56_BFEE_079F;

fn fold(h: u64, x: u64) -> u64 {
    splitmix64(h ^ x)
}

/// Canonical digest of a service report: every epoch lifecycle in epoch
/// order, then per-process step counts, then the global counters. Any
/// bit-level divergence between two runs changes the digest with
/// overwhelming probability. (`elapsed` and the transport label are the
/// only fields excluded — one is wall-clock, the other is static.)
fn digest(report: &ServiceReport) -> u64 {
    let mut h = 0x5E41_2008u64; // domain tag: PODC'08 service digest
    h = fold(h, report.epochs.len() as u64);
    for e in &report.epochs {
        h = fold(h, e.epoch);
        h = fold(h, e.opened_at);
        h = fold(h, e.settled_at);
        h = fold(h, e.finalized_at);
        h = fold(h, u64::from(e.check.all_ok()));
    }
    for &steps in &report.steps {
        h = fold(h, steps);
    }
    h = fold(h, report.messages_sent);
    h = fold(h, report.messages_delivered);
    h = fold(h, report.bytes_sent);
    h = fold(h, report.decode_errors);
    h = fold(h, report.stale_drops);
    h = fold(h, report.max_open);
    h = fold(h, report.ticks);
    h = fold(h, u64::from(report.quiescent));
    h
}

/// The pinned configuration: `n = 48`, 6 epochs through a 4-slot window at
/// 3 in flight (so epochs genuinely overlap), 6 crashes among the highest
/// pids staggered across the first epochs' lifetime, majority-checked
/// `tears` — the same engine family the service baseline and smoke runs
/// drive, at a size cheap enough for tier-1.
fn pinned_config() -> ServiceConfig {
    let crashes: Vec<(ProcessId, u64)> = (0..6)
        .map(|i| (ProcessId(47 - i), (4 + 3 * i) as u64))
        .collect();
    let live = LiveConfig::lockstep(48, 6, 0x5E41_2008).with_crashes(crashes);
    ServiceConfig::new(live, 6)
        .with_window(4)
        .with_mode(LoopMode::Closed { in_flight: 3 })
        .with_spec(GossipSpec::Majority)
}

fn pinned_run(threading: Threading) -> ServiceReport {
    let mut config = pinned_config();
    config.live.threading = threading;
    let report = run_service(&config, &ChannelTransport, Tears::new).expect("pinned service run");
    assert!(report.quiescent, "{threading:?} run did not finalize");
    assert!(report.all_ok(), "{threading:?} run failed an epoch check");
    assert_eq!(report.decode_errors, 0, "{threading:?}");
    assert_eq!(
        report.stale_drops, 0,
        "lockstep service must not race frames"
    );
    assert!(report.max_open >= 2, "the pin must exercise epoch overlap");
    report
}

#[test]
fn closed_loop_n48_with_crashes_digest_is_pinned_across_threadings() {
    for threading in [
        Threading::PerProcess,
        Threading::Reactor { reactors: 1 },
        Threading::Reactor { reactors: 2 },
        Threading::Reactor { reactors: 8 },
    ] {
        let d = digest(&pinned_run(threading));
        assert_eq!(
            d, GOLDEN_DIGEST,
            "service digest under {threading:?} diverged from the pin \
             (got {d:#018x}); if the service driver changed deliberately, re-pin"
        );
    }
}

/// Repeating the run on the same threading reproduces the digest too —
/// determinism across repeats, not just across disciplines.
#[test]
fn closed_loop_n48_digest_is_stable_across_repeats() {
    let first = digest(&pinned_run(Threading::Reactor { reactors: 8 }));
    let second = digest(&pinned_run(Threading::Reactor { reactors: 8 }));
    assert_eq!(first, second);
    assert_eq!(first, GOLDEN_DIGEST);
}
