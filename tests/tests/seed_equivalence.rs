//! Golden-value pins proving the event-indexed network and the unified step
//! core reproduce the seed (`VecDeque`-scan) engine bit for bit.
//!
//! Every constant below was captured by running the *seed* implementation
//! (commit `d0df141`) on the exact configuration in the test; the rebuilt
//! engine must reproduce each metric exactly. Together with the model-based
//! differential tests in `crates/sim/tests/network_differential.rs`, this
//! pins end-to-end executions — protocol RNG streams, adversary RNG streams,
//! delivery order, crash handling, wire accounting — across the
//! representation change.

use agossip_adversary::{
    crash_patterns, DelayPolicy, ObliviousPlan, PolicyAdversary, SchedulePolicy,
};
use agossip_consensus::{run_consensus, ConsensusProtocol, ConsensusValue};
use agossip_core::{run_gossip, Ears, GossipSpec, Tears};
use agossip_sim::{Metrics, SimConfig, TimeStep};

#[derive(Debug, PartialEq, Eq)]
struct Pin {
    sent: u64,
    delivered: u64,
    dropped: u64,
    quiescence: Option<TimeStep>,
    max_delivery_delay: u64,
    max_schedule_gap: u64,
    crashes: usize,
    elapsed_steps: u64,
}

impl Pin {
    fn of(m: &Metrics) -> Self {
        Pin {
            sent: m.messages_sent,
            delivered: m.messages_delivered,
            dropped: m.messages_dropped,
            quiescence: m.quiescence_time,
            max_delivery_delay: m.max_delivery_delay,
            max_schedule_gap: m.max_schedule_gap,
            crashes: m.crashes,
            elapsed_steps: m.elapsed_steps,
        }
    }
}

#[test]
fn ears_under_oblivious_adversary_with_crashes_matches_seed() {
    let cfg = SimConfig::new(32, 8)
        .with_d(3)
        .with_delta(2)
        .with_seed(2024);
    let mut adv = ObliviousPlan::from_config(&cfg)
        .with_crashes(crash_patterns::random(32, 8, 10, 2024))
        .build();
    let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, Ears::new).unwrap();
    assert!(report.check.all_ok(), "{:?}", report.check);
    assert_eq!(
        Pin::of(&report.metrics),
        Pin {
            sent: 859,
            delivered: 663,
            dropped: 196,
            quiescence: Some(TimeStep(41)),
            max_delivery_delay: 3,
            max_schedule_gap: 1,
            crashes: 8,
            elapsed_steps: 42,
        }
    );
    assert_eq!(report.rumor_units_sent, 472_722);
}

#[test]
fn tears_majority_gossip_matches_seed() {
    let cfg = SimConfig::new(48, 0).with_d(2).with_delta(2).with_seed(7);
    let mut adv = ObliviousPlan::from_config(&cfg).build();
    let report = run_gossip(&cfg, GossipSpec::Majority, &mut adv, Tears::new).unwrap();
    assert!(report.check.all_ok(), "{:?}", report.check);
    assert_eq!(
        Pin::of(&report.metrics),
        Pin {
            sent: 103_866,
            delivered: 103_866,
            dropped: 0,
            quiescence: Some(TimeStep(5)),
            max_delivery_delay: 2,
            max_schedule_gap: 1,
            crashes: 0,
            elapsed_steps: 6,
        }
    );
    assert_eq!(report.rumor_units_sent, 4_117_331);
}

#[test]
fn ears_under_policy_adversary_matches_seed() {
    let cfg = SimConfig::new(24, 6).with_d(4).with_delta(3).with_seed(31);
    let mut adv = PolicyAdversary::new(
        4,
        3,
        31,
        SchedulePolicy::RoundRobin { per_step: 8 },
        DelayPolicy::CrossPartitionSlow { boundary: 12 },
    )
    .with_crashes(crash_patterns::staggered(24, 6, 4, 31).crashes);
    let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, Ears::new).unwrap();
    assert!(report.check.all_ok(), "{:?}", report.check);
    assert_eq!(
        Pin::of(&report.metrics),
        Pin {
            sent: 523,
            delivered: 425,
            dropped: 98,
            quiescence: Some(TimeStep(48)),
            max_delivery_delay: 5,
            max_schedule_gap: 2,
            crashes: 6,
            elapsed_steps: 49,
        }
    );
    assert_eq!(report.rumor_units_sent, 167_000);
}

#[test]
fn cr_ears_consensus_matches_seed() {
    let cfg = SimConfig::new(12, 2).with_d(2).with_delta(2).with_seed(5);
    let mut adv = ObliviousPlan::from_config(&cfg).build();
    let inputs: Vec<ConsensusValue> = (0..12).map(|i| (i % 2) as u64).collect();
    let report = run_consensus(&cfg, ConsensusProtocol::CrEars, &inputs, &mut adv).unwrap();
    assert!(report.check.all_ok(), "{:?}", report.check);
    assert_eq!(
        Pin::of(&report.metrics),
        Pin {
            sent: 666,
            delivered: 666,
            dropped: 0,
            quiescence: Some(TimeStep(59)),
            max_delivery_delay: 2,
            max_schedule_gap: 1,
            crashes: 0,
            elapsed_steps: 60,
        }
    );
    assert_eq!(report.max_rounds, 3);
}
