//! Property-based tests for the parallel sweep engine: an arbitrary
//! scenario run on an arbitrary number of workers must serialize to exactly
//! the bytes the serial run produces.
//!
//! This is the engine's load-bearing contract — experiment results must
//! depend only on `(spec, base_seed)`, never on how trials were sharded
//! across threads or in which order workers finished.

use proptest::prelude::*;

use agossip_adversary::{DelayPolicy, SchedulePolicy};
use agossip_analysis::experiments::{ExperimentScale, GossipProtocolKind};
use agossip_analysis::sweep::{AdversarySpec, ScenarioSpec, TrialPool, TrialProtocol};
use agossip_consensus::ConsensusProtocol;

/// Maps a drawn index to a protocol covering every engine dispatch path
/// (gossip kinds, the parameterised sears variant, and consensus).
fn protocol_for(idx: usize) -> TrialProtocol {
    match idx % 6 {
        0 => TrialProtocol::Gossip(GossipProtocolKind::Trivial),
        1 => TrialProtocol::Gossip(GossipProtocolKind::Ears),
        2 => TrialProtocol::Gossip(GossipProtocolKind::Sears { epsilon: 0.5 }),
        3 => TrialProtocol::Gossip(GossipProtocolKind::Tears),
        4 => TrialProtocol::Gossip(GossipProtocolKind::SyncEpidemic),
        _ => TrialProtocol::Consensus(ConsensusProtocol::CanettiRabin),
    }
}

/// Maps a drawn index to an adversary family.
fn adversary_for(idx: usize) -> AdversarySpec {
    match idx % 3 {
        0 => AdversarySpec::FairOblivious,
        1 => AdversarySpec::Policy {
            schedule: SchedulePolicy::FairRandom,
            delay: DelayPolicy::AlwaysMax,
        },
        _ => AdversarySpec::Policy {
            schedule: SchedulePolicy::EveryStep,
            delay: DelayPolicy::Uniform,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary scenario × worker count in 1..=8: the aggregated summaries
    /// (and therefore every derived experiment row) serialize byte-identically
    /// no matter how many workers ran the trials.
    #[test]
    fn sharded_sweep_serializes_identically_to_serial(
        protocol_idx in 0usize..6,
        adversary_idx in 0usize..3,
        n in 8usize..17,
        trials in 1usize..4,
        d in 1u64..3,
        delta in 1u64..3,
        seed in 0u64..1000,
        workers in 1usize..9,
    ) {
        let scale = ExperimentScale {
            n_values: vec![n],
            trials,
            failure_fraction: 0.2,
            d,
            delta,
            seed,
            idle_fast_forward: false,
        };
        let spec = ScenarioSpec::from_scale(protocol_for(protocol_idx), &scale, n)
            .with_adversary(adversary_for(adversary_idx));

        let serial = spec.run(&TrialPool::serial()).unwrap();
        let sharded = spec.run(&TrialPool::new(workers)).unwrap();

        let serial_bytes = format!("{serial:?}");
        let sharded_bytes = format!("{sharded:?}");
        prop_assert_eq!(
            serial_bytes,
            sharded_bytes,
            "worker count {} changed the aggregate of {:?}",
            workers,
            spec
        );
        prop_assert_eq!(serial, sharded);
    }

    /// The per-trial seeds themselves are order-independent: trial `t`'s
    /// config is the same whether derived first, last, or alone.
    #[test]
    fn trial_configs_are_pure_functions_of_the_index(
        n in 8usize..33,
        seed in 0u64..1000,
        trial in 0usize..32,
    ) {
        let scale = ExperimentScale { n_values: vec![n], seed, ..ExperimentScale::tiny() };
        let spec = ScenarioSpec::from_scale(
            TrialProtocol::Gossip(GossipProtocolKind::Ears),
            &scale,
            n,
        );
        prop_assert_eq!(spec.config_for(trial), spec.config_for(trial));
        prop_assert_eq!(spec.config_for(trial).seed, scale.seed_for(n, trial));
        if trial > 0 {
            prop_assert_ne!(spec.config_for(trial).seed, spec.config_for(trial - 1).seed);
        }
    }
}
