//! Golden-digest determinism pin for the live lockstep runtime, alongside
//! the simulator pins in `seed_equivalence.rs`: a lockstep `n = 256` run
//! with staggered crashes is folded into a single `u64` digest covering
//! every observable of the report — per-process rumor sets, step counts,
//! correctness flags, and the global wire counters. The digest must
//! reproduce the pinned constant exactly, on thread-per-process *and* on
//! every reactor count — multiplexing 256 processes onto 1, 2 or 8 reactor
//! threads may not perturb a single bit of the outcome.
//!
//! The protocol is `tears` with the scale-calibrated neighbourhood size
//! (the same parameterisation the `live_scale` scenario runs): its
//! multi-rumor second-level messages exercise large frames and heavy
//! fan-out without `ears`'s `O(n²)`-entry informed-list payloads, which
//! would make an `n = 256` live run too slow for tier-1.
//!
//! If a deliberate change to the runtime shifts the execution (new RNG
//! stream, different delivery order), the failure message prints the new
//! digest — re-pin the constant. An *unintentional* shift is a determinism
//! regression.

use agossip_analysis::experiments::scale::{scale_a_target, tears_params_for_a};
use agossip_core::Tears;
use agossip_runtime::{run_live, ChannelTransport, LiveConfig, LiveReport, Threading};
use agossip_sim::rng::splitmix64;
use agossip_sim::ProcessId;

/// The digest every threading discipline must reproduce for the pinned
/// configuration below. Captured from the thread-per-process run.
const GOLDEN_DIGEST: u64 = 0xCDBC_B8D8_ECD7_BD89;

fn fold(h: u64, x: u64) -> u64 {
    splitmix64(h ^ x)
}

/// Canonical digest of a live report: every per-process observable in pid
/// order (rumor sets serialised as sorted `(origin, payload)` pairs), then
/// the global counters. Any bit-level divergence between two runs changes
/// the digest with overwhelming probability.
fn digest(report: &LiveReport) -> u64 {
    let mut h = 0xA605_2008u64; // domain tag: PODC'08 live digest
    for (pid, rumors) in report.final_rumors.iter().enumerate() {
        h = fold(h, pid as u64);
        h = fold(h, report.steps[pid]);
        h = fold(h, u64::from(report.correct[pid]));
        let mut entries: Vec<(u64, u64)> = rumors
            .iter()
            .map(|r| (r.origin.index() as u64, r.payload))
            .collect();
        entries.sort_unstable();
        h = fold(h, entries.len() as u64);
        for (origin, payload) in entries {
            h = fold(h, origin);
            h = fold(h, payload);
        }
    }
    h = fold(h, report.messages_sent);
    h = fold(h, report.messages_delivered);
    h = fold(h, report.bytes_sent);
    h = fold(h, report.decode_errors);
    h = fold(h, report.ticks);
    h = fold(h, u64::from(report.quiescent));
    h
}

/// The pinned configuration: `n = 256`, 16 crashes among the highest pids
/// staggered across the first four local steps (the run quiesces in a
/// handful of ticks, so a wider stagger would leave late crashes unfired),
/// lockstep pacing.
fn pinned_config() -> LiveConfig {
    let crashes: Vec<(ProcessId, u64)> = (0..16)
        .map(|i| (ProcessId(255 - i), (i % 4) as u64))
        .collect();
    LiveConfig::lockstep(256, 16, 0xD1CE_2008).with_crashes(crashes)
}

fn pinned_run(threading: Threading) -> LiveReport {
    let mut config = pinned_config();
    config.threading = threading;
    let params = tears_params_for_a(config.n, scale_a_target(config.n));
    let report = run_live(&config, &ChannelTransport, move |ctx| {
        Tears::with_params(ctx, params)
    })
    .unwrap();
    assert!(report.quiescent, "{threading:?} run did not quiesce");
    assert_eq!(report.decode_errors, 0, "{threading:?}");
    report
}

#[test]
fn lockstep_n256_with_crashes_digest_is_pinned_across_threadings() {
    for threading in [
        Threading::PerProcess,
        Threading::Reactor { reactors: 1 },
        Threading::Reactor { reactors: 2 },
        Threading::Reactor { reactors: 8 },
    ] {
        let d = digest(&pinned_run(threading));
        assert_eq!(
            d, GOLDEN_DIGEST,
            "digest under {threading:?} diverged from the pin \
             (got {d:#018x}); if the runtime changed deliberately, re-pin"
        );
    }
}

/// Repeating the run on the same threading reproduces the digest too —
/// determinism across repeats, not just across disciplines.
#[test]
fn lockstep_n256_digest_is_stable_across_repeats() {
    let first = digest(&pinned_run(Threading::Reactor { reactors: 8 }));
    let second = digest(&pinned_run(Threading::Reactor { reactors: 8 }));
    assert_eq!(first, second);
    assert_eq!(first, GOLDEN_DIGEST);
}
