//! Integration tests for wire-unit (bit complexity) accounting across the
//! protocols, exercising the Section 7 open question end to end: the driver
//! must report per-execution wire volume consistent with each protocol's
//! message structure.

use agossip_core::{run_gossip, Ears, GossipSpec, Sears, Tears, Trivial};
use agossip_sim::{FairObliviousAdversary, SimConfig};

fn config(n: usize, f: usize, seed: u64) -> SimConfig {
    SimConfig::new(n, f).with_d(2).with_delta(2).with_seed(seed)
}

#[test]
fn trivial_wire_volume_is_exactly_two_units_per_message() {
    let cfg = config(24, 0, 1);
    let mut adv = FairObliviousAdversary::new(2, 2, 1);
    let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, Trivial::new).unwrap();
    assert!(report.check.all_ok());
    assert_eq!(report.rumor_units_sent, 2 * report.messages());
}

#[test]
fn ears_wire_volume_exceeds_its_message_count() {
    let cfg = config(24, 6, 2);
    let mut adv = FairObliviousAdversary::new(2, 2, 2);
    let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, Ears::new).unwrap();
    assert!(report.check.all_ok());
    // Every ears message carries at least the header plus one rumor, and most
    // carry the full rumor set plus informed pairs.
    assert!(report.rumor_units_sent > 2 * report.messages());
}

#[test]
fn sears_and_tears_report_nonzero_wire_volume() {
    let cfg = config(32, 8, 3);
    let mut adv = FairObliviousAdversary::new(2, 2, 3);
    let sears = run_gossip(&cfg, GossipSpec::Full, &mut adv, Sears::new).unwrap();
    assert!(sears.check.all_ok());
    assert!(sears.rumor_units_sent >= sears.messages());

    let mut adv = FairObliviousAdversary::new(2, 2, 3);
    let tears = run_gossip(&cfg, GossipSpec::Majority, &mut adv, Tears::new).unwrap();
    assert!(tears.check.all_ok());
    assert!(tears.rumor_units_sent >= tears.messages());
}

#[test]
fn ears_per_message_weight_grows_with_system_size() {
    // Larger systems mean larger rumor sets and informed-lists inside each
    // ears message, so wire units per message must grow with n.
    let mut ratios = Vec::new();
    for (n, seed) in [(16usize, 10u64), (48, 11)] {
        let cfg = config(n, 0, seed);
        let mut adv = FairObliviousAdversary::new(2, 2, seed);
        let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, Ears::new).unwrap();
        assert!(report.check.all_ok());
        ratios.push(report.rumor_units_sent as f64 / report.messages() as f64);
    }
    assert!(
        ratios[1] > ratios[0],
        "per-message weight should grow with n: {ratios:?}"
    );
}
