//! Property-based tests (proptest) on the simulator: message conservation,
//! timing-bound compliance, and end-to-end protocol correctness across
//! randomly drawn configurations.

use proptest::prelude::*;

use agossip_core::{run_gossip, Ears, GossipSpec, Trivial};
use agossip_sim::{FairObliviousAdversary, SimConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Message conservation: every message sent is either delivered or
    /// dropped (sent to a crashed process); nothing is lost or duplicated.
    /// Checked at quiescence, when nothing remains in flight.
    #[test]
    fn message_conservation_trivial(
        n in 2usize..24,
        seed in 0u64..1000,
        d in 1u64..4,
        delta in 1u64..4,
    ) {
        let cfg = SimConfig::new(n, 0).with_d(d).with_delta(delta).with_seed(seed);
        let mut adv = FairObliviousAdversary::new(d, delta, seed);
        let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, Trivial::new).unwrap();
        prop_assert!(report.check.all_ok());
        let m = &report.metrics;
        prop_assert_eq!(m.messages_sent, m.messages_delivered + m.messages_dropped);
        prop_assert_eq!(m.messages_sent, (n * (n - 1)) as u64);
    }

    /// The oblivious adversary honours its declared (d, δ) bounds. A message
    /// becomes deliverable within `d` steps of being sent but is received at
    /// the recipient's first *scheduled* step past that deadline, so the
    /// observed send-to-receipt delay is bounded by `d + δ − 1`; the observed
    /// scheduling gap never exceeds δ.
    #[test]
    fn observed_bounds_never_exceed_declared_bounds(
        n in 2usize..20,
        seed in 0u64..500,
        d in 1u64..5,
        delta in 1u64..5,
    ) {
        let cfg = SimConfig::new(n, 0).with_d(d).with_delta(delta).with_seed(seed);
        let mut adv = FairObliviousAdversary::new(d, delta, seed);
        let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, Ears::new).unwrap();
        prop_assert!(report.check.all_ok());
        prop_assert!(report.metrics.max_delivery_delay < d + delta,
            "observed delay = {} ≥ d + δ = {}", report.metrics.max_delivery_delay, d + delta);
        prop_assert!(report.metrics.max_schedule_gap <= delta,
            "observed δ = {} > declared {}", report.metrics.max_schedule_gap, delta);
    }

    /// EARS correctness and quiescence hold for arbitrary small
    /// configurations with crashes drawn from the failure budget.
    #[test]
    fn ears_correct_under_random_crashes(
        n in 4usize..20,
        seed in 0u64..500,
        crash_fraction in 0.0f64..0.45,
    ) {
        let f = ((n as f64) * crash_fraction) as usize;
        let cfg = SimConfig::new(n, f).with_seed(seed);
        let crashes = agossip_adversary::crash_patterns::random(n, f, 10, seed);
        let mut adv = agossip_adversary::ObliviousPlan::from_config(&cfg)
            .with_crashes(crashes)
            .build();
        let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, Ears::new).unwrap();
        prop_assert!(report.check.all_ok(), "{:?}", report.check);
        prop_assert!(report.metrics.crashes <= f);
        // Quiescence time is defined and the execution stopped there.
        prop_assert!(report.time_steps().is_some());
    }

    /// The per-process message accounting sums to the global counter.
    #[test]
    fn per_process_counters_sum_to_total(
        n in 2usize..16,
        seed in 0u64..200,
    ) {
        let cfg = SimConfig::new(n, 0).with_seed(seed);
        let mut adv = FairObliviousAdversary::new(1, 1, seed);
        let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, Ears::new).unwrap();
        let m = &report.metrics;
        prop_assert_eq!(m.sent_by.iter().sum::<u64>(), m.messages_sent);
        prop_assert_eq!(m.delivered_to.iter().sum::<u64>(), m.messages_delivered);
        prop_assert!(m.max_sent_by_any() <= m.messages_sent);
    }
}
