//! Property-based tests on the stream-framing reassembly layer
//! (`agossip_runtime::FrameBuf`) — the read path shared by the socket
//! endpoints and the reactor. Extends the `props_codec` stance one level
//! down the stack: arbitrary segmentation of a valid frame stream (1-byte
//! reads, split varint headers, coalesced frames) must reassemble the
//! identical frame sequence, and truncation or garbage must yield typed
//! errors or "need more bytes" — never panics.
//!
//! These run in debug mode as part of tier-1.

use proptest::prelude::*;

use agossip_core::codec::write_varint;
use agossip_runtime::{frame_bytes, FrameBuf, RawFrame, MAX_FRAME_BYTES};
use agossip_sim::ProcessId;

/// An arbitrary sequence of valid frames: senders across a wide pid range
/// (exercising multi-byte varint headers), payloads from empty to a few
/// hundred bytes.
fn frames_strategy() -> impl Strategy<Value = Vec<RawFrame>> {
    prop::collection::vec(
        (
            0..2usize,
            0..16usize,
            prop::collection::vec(any::<u8>(), 0..300),
        ),
        0..12,
    )
    .prop_map(|entries| {
        entries
            .into_iter()
            .map(|(wide, from, payload)| {
                // Half the senders get pids past 2^17, forcing multi-byte
                // varint sender headers.
                RawFrame::owned(ProcessId(from + wide * 150_000), payload)
            })
            .collect()
    })
}

/// The wire bytes of a frame sequence.
fn stream_of(frames: &[RawFrame]) -> Vec<u8> {
    let mut stream = Vec::new();
    for frame in frames {
        stream.extend_from_slice(&frame_bytes(frame.from, frame.body()));
    }
    stream
}

/// Feeds `stream` into a fresh buffer in the given chunk sizes (cycled) and
/// returns every frame extracted. Panics on a framing error — valid streams
/// must never produce one.
fn reassemble(stream: &[u8], chunk_sizes: &[usize]) -> Vec<RawFrame> {
    let mut buf = FrameBuf::new();
    let mut got = Vec::new();
    let mut offset = 0;
    let mut cursor = chunk_sizes.iter().cycle();
    while offset < stream.len() {
        let take =
            (*cursor.next().expect("cycled slice is never empty")).min(stream.len() - offset);
        buf.extend(&stream[offset..offset + take]);
        offset += take;
        while let Some(frame) = buf.next_frame().expect("valid stream must reassemble") {
            got.push(frame);
        }
    }
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any segmentation of a valid frame stream — down to 1-byte reads that
    /// split the varint headers, up to chunks coalescing several frames —
    /// reassembles the identical frame sequence.
    #[test]
    fn arbitrary_segmentation_reassembles_identically(
        frames in frames_strategy(),
        chunk_sizes in prop::collection::vec(1..64usize, 1..24),
    ) {
        let stream = stream_of(&frames);
        prop_assert_eq!(reassemble(&stream, &chunk_sizes), frames);
    }

    /// The degenerate segmentations: the whole stream at once, and one byte
    /// at a time, agree with each other and the original.
    #[test]
    fn one_byte_reads_equal_one_shot_reads(frames in frames_strategy()) {
        let stream = stream_of(&frames);
        prop_assert_eq!(reassemble(&stream, &[stream.len().max(1)]), frames.clone());
        prop_assert_eq!(reassemble(&stream, &[1]), frames);
    }

    /// A strict prefix of a valid stream yields a prefix of its frames and
    /// then reports "need more bytes" — truncation mid-frame is indistinct
    /// from a slow sender, never an error, never a panic.
    #[test]
    fn truncation_yields_a_frame_prefix(
        frames in frames_strategy(),
        cut in 0.0..1.0f64,
    ) {
        let stream = stream_of(&frames);
        let len = ((stream.len() as f64) * cut) as usize; // < stream.len()
        let mut buf = FrameBuf::new();
        buf.extend(&stream[..len]);
        let mut got = Vec::new();
        while let Some(frame) = buf.next_frame().expect("prefix of a valid stream") {
            got.push(frame);
        }
        prop_assert!(got.len() <= frames.len());
        prop_assert_eq!(&got[..], &frames[..got.len()]);
        // And the remainder still completes the original sequence.
        buf.extend(&stream[len..]);
        while let Some(frame) = buf.next_frame().expect("completed stream") {
            got.push(frame);
        }
        prop_assert_eq!(got, frames);
    }

    /// Arbitrary garbage bytes never panic the reassembler: every pull is a
    /// frame, "need more", or a typed error. After an error the test stops —
    /// a real endpoint treats the connection as poisoned.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let mut buf = FrameBuf::new();
        buf.extend(&bytes);
        for _ in 0..=bytes.len() {
            match buf.next_frame() {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// A length header above the frame cap is rejected with a typed error
    /// no matter what sender id precedes it or what bytes follow.
    #[test]
    fn oversized_length_headers_are_typed_errors(
        from in 0..1_000_000u64,
        oversize in (MAX_FRAME_BYTES + 1)..u64::MAX / 2,
        tail in prop::collection::vec(any::<u8>(), 0..40),
    ) {
        let mut bytes = Vec::new();
        write_varint(&mut bytes, from);
        write_varint(&mut bytes, oversize);
        bytes.extend_from_slice(&tail);
        let mut buf = FrameBuf::new();
        buf.extend(&bytes);
        prop_assert!(buf.next_frame().is_err());
    }
}
