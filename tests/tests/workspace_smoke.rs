//! Workspace smoke test: constructs the public entry point of every crate in
//! the workspace, so a broken manifest, a dropped re-export or a severed
//! inter-crate dependency fails here before anything subtler does.

use agossip_adversary::{DelayPolicy, ObliviousPlan, PolicyAdversary, SchedulePolicy};
use agossip_analysis::experiments::ExperimentScale;
use agossip_analysis::fit_power_law;
use agossip_bench::bench_scale;
use agossip_consensus::{run_consensus, ConsensusProtocol, ConsensusValue};
use agossip_core::{run_gossip, Ears, GossipCtx, GossipEngine, GossipSpec, Sears, Tears, Trivial};
use agossip_runtime::{run_threaded, RuntimeConfig};
use agossip_sim::{FairObliviousAdversary, ProcessId, SimConfig, Simulation};

/// agossip-core: every protocol engine is constructible from a `GossipCtx`
/// and starts out knowing its own rumor.
#[test]
fn core_engines_are_constructible() {
    let ctx = GossipCtx::new(ProcessId(0), 8, 2, 42);
    assert_eq!(Trivial::new(ctx).rumors().len(), 1);
    assert_eq!(Ears::new(ctx).rumors().len(), 1);
    assert_eq!(Sears::new(ctx).rumors().len(), 1);
    assert_eq!(Tears::new(ctx).rumors().len(), 1);
}

/// agossip-sim: the simulator is constructible over per-process state
/// machines and starts at time zero with no messages in flight.
#[test]
fn sim_scheduler_is_constructible() {
    let config = SimConfig::new(8, 2).with_seed(7);
    let processes: Vec<_> = ProcessId::all(8)
        .map(|pid| agossip_core::SimGossip::new(Trivial::new(GossipCtx::new(pid, 8, 2, 7))))
        .collect();
    let sim = Simulation::new(config, processes).unwrap();
    assert_eq!(sim.now().0, 0);
    assert_eq!(sim.in_flight(), 0);
}

/// agossip-core + agossip-sim: the gossip driver runs end to end.
#[test]
fn gossip_driver_runs() {
    let config = SimConfig::new(6, 0).with_seed(3);
    let mut adversary = FairObliviousAdversary::new(1, 1, 3);
    let report = run_gossip(&config, GossipSpec::Full, &mut adversary, Trivial::new).unwrap();
    assert!(report.check.all_ok(), "{:?}", report.check);
}

/// agossip-consensus: the consensus driver runs one instance to agreement.
#[test]
fn consensus_driver_runs() {
    let config = SimConfig::new(5, 0).with_seed(11);
    let mut adversary = FairObliviousAdversary::new(1, 1, 11);
    let inputs: Vec<ConsensusValue> = (0..5u64).map(|i| i % 2).collect();
    let report = run_consensus(
        &config,
        ConsensusProtocol::CanettiRabin,
        &inputs,
        &mut adversary,
    )
    .unwrap();
    assert!(report.check.all_ok(), "{:?}", report.check);
}

/// agossip-adversary: both adversary families are constructible.
#[test]
fn adversaries_are_constructible() {
    let config = SimConfig::new(8, 2).with_seed(5);
    let _oblivious = ObliviousPlan::from_config(&config).build();
    let _policy = PolicyAdversary::new(2, 2, 5, SchedulePolicy::FairRandom, DelayPolicy::Uniform);
}

/// agossip-runtime: the thread harness completes a tiny run.
#[test]
fn runtime_harness_runs() {
    let report = run_threaded(&RuntimeConfig::quick(2, 0, 9), Trivial::new);
    assert_eq!(report.final_rumors.len(), 2);
}

/// agossip-analysis + agossip-bench: the experiment scale helpers and the
/// power-law fitter are reachable.
#[test]
fn analysis_and_bench_helpers_are_reachable() {
    let scale = bench_scale();
    assert!(!scale.n_values.is_empty());
    let tiny = ExperimentScale::tiny();
    assert!(!tiny.n_values.is_empty());
    let fit = fit_power_law(&[(4.0, 16.0), (8.0, 64.0), (16.0, 256.0)]).unwrap();
    assert!((fit.exponent - 2.0).abs() < 1e-9);
}
