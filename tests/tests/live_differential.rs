//! Differential tests between the live runtime and the discrete-event
//! simulator: the set of rumors learned by every correct process in a live
//! run must satisfy exactly the same correctness checker that judges
//! simulated executions — same verdicts, and (for full gossip) the same
//! final rumor sets.
//!
//! These are the acceptance tests of the live-runtime tentpole: a TCP (and,
//! on Unix, a UDS) run at `n = 32` with staggered crashes completes with
//! every correct process holding the checker-verified rumor set, and
//! channel-transport lockstep runs are bit-identical per seed.

use agossip_core::{
    check_gossip, run_gossip, CheckReport, Ears, GossipCtx, GossipSpec, Rumor, Tears,
};
use agossip_runtime::{run_live, ChannelTransport, LiveConfig, Pacing, SocketTransport, Transport};
use agossip_sim::{FairObliviousAdversary, ProcessId, SimConfig};

fn initial_rumors(n: usize, f: usize, seed: u64) -> Vec<Rumor> {
    ProcessId::all(n)
        .map(|pid| GossipCtx::new(pid, n, f, seed).rumor)
        .collect()
}

fn verdict(report: &CheckReport) -> (bool, bool, bool) {
    (
        report.gathering_ok,
        report.validity_ok,
        report.quiescence_ok,
    )
}

/// The live runtime and the simulator, running the same protocol from the
/// same seed, must both produce executions the correctness checker accepts —
/// and for full gossip without crashes, the *same* final rumor sets: every
/// correct process ends holding every rumor, in both substrates.
#[test]
fn live_and_simulated_ears_agree_with_the_checker() {
    let n = 16;
    let f = 4;
    let seed = 77;

    let sim_config = SimConfig::new(n, f).with_d(2).with_delta(2).with_seed(seed);
    let mut adversary = FairObliviousAdversary::new(2, 2, seed);
    let simulated = run_gossip(&sim_config, GossipSpec::Full, &mut adversary, Ears::new).unwrap();

    let live_config = LiveConfig {
        pacing: Pacing::Lockstep {
            d: 2,
            max_ticks: 1 << 20,
        },
        ..LiveConfig::lockstep(n, f, seed)
    };
    let live = run_live(&live_config, &ChannelTransport, Ears::new).unwrap();
    let live_check = check_gossip(
        GossipSpec::Full,
        &live.final_rumors,
        &initial_rumors(n, f, seed),
        &live.correct,
        live.quiescent,
    );

    assert_eq!(verdict(&simulated.check), verdict(&live_check));
    assert!(live_check.all_ok(), "{live_check:?}");
    assert_eq!(live.decode_errors, 0);
    // Full gossip, no crashes: both substrates converge on identical rumor
    // sets at every process.
    assert_eq!(live.final_rumors, simulated.final_rumors);
}

/// Majority gossip differential: the checker that judges simulated `tears`
/// runs accepts the live runs too.
#[test]
fn live_and_simulated_tears_agree_with_the_checker() {
    let n = 24;
    let seed = 5;

    let sim_config = SimConfig::new(n, 0).with_d(2).with_delta(2).with_seed(seed);
    let mut adversary = FairObliviousAdversary::new(2, 2, seed);
    let simulated = run_gossip(
        &sim_config,
        GossipSpec::Majority,
        &mut adversary,
        Tears::new,
    )
    .unwrap();
    assert!(simulated.check.gathering_ok && simulated.check.validity_ok);

    let live = run_live(
        &LiveConfig::lockstep(n, 0, seed),
        &ChannelTransport,
        Tears::new,
    )
    .unwrap();
    let live_check = check_gossip(
        GossipSpec::Majority,
        &live.final_rumors,
        &initial_rumors(n, 0, seed),
        &live.correct,
        live.quiescent,
    );
    assert!(live_check.gathering_ok, "{live_check:?}");
    assert!(live_check.validity_ok);
    assert!(live.quiescent);
}

fn n32_crash_config(seed: u64) -> LiveConfig {
    LiveConfig::lockstep(32, 4, seed).with_crashes(vec![
        (ProcessId(31), 0),
        (ProcessId(30), 2),
        (ProcessId(29), 7),
        (ProcessId(28), 19),
    ])
}

fn assert_checker_verified<T: Transport>(transport: &T, config: &LiveConfig) {
    let report = run_live(config, transport, Ears::new).unwrap();
    assert!(
        report.quiescent,
        "run on {} hit the tick limit",
        report.transport
    );
    assert_eq!(report.decode_errors, 0);
    let check = check_gossip(
        GossipSpec::Full,
        &report.final_rumors,
        &initial_rumors(config.n, config.f, config.seed),
        &report.correct,
        report.quiescent,
    );
    assert!(check.all_ok(), "[{}] {check:?}", report.transport);
}

/// The acceptance criterion, channel half: an `n = 32` lockstep run with
/// staggered crashes is bit-identical across repeats of the same seed.
#[test]
fn channel_lockstep_n32_with_crashes_is_bit_identical() {
    let config = n32_crash_config(2008);
    let a = run_live(&config, &ChannelTransport, Ears::new).unwrap();
    let b = run_live(&config, &ChannelTransport, Ears::new).unwrap();
    assert_eq!(a.final_rumors, b.final_rumors);
    assert_eq!(a.messages_sent, b.messages_sent);
    assert_eq!(a.messages_delivered, b.messages_delivered);
    assert_eq!(a.bytes_sent, b.bytes_sent);
    assert_eq!(a.ticks, b.ticks);
    assert_eq!(a.steps, b.steps);
    assert!(a.quiescent);
    assert_checker_verified(&ChannelTransport, &config);
}

/// The acceptance criterion, TCP half: a live loopback-TCP run at `n = 32`
/// with crashes completes with every correct process holding the
/// checker-verified rumor set.
#[test]
fn tcp_n32_with_crashes_is_checker_verified() {
    assert_checker_verified(&SocketTransport::tcp(), &n32_crash_config(2009));
}

/// Same over Unix-domain sockets.
#[cfg(unix)]
#[test]
fn uds_n32_with_crashes_is_checker_verified() {
    assert_checker_verified(&SocketTransport::uds(), &n32_crash_config(2010));
}

/// Free-running pacing (real scheduling nondeterminism) still yields
/// checker-verified executions over TCP.
#[test]
fn free_running_tcp_is_checker_verified() {
    let config = LiveConfig::free_running(8, 2, 11);
    let report = run_live(&config, &SocketTransport::tcp(), Ears::new).unwrap();
    assert!(report.quiescent, "free-running TCP run timed out");
    let check = check_gossip(
        GossipSpec::Full,
        &report.final_rumors,
        &initial_rumors(8, 2, 11),
        &report.correct,
        report.quiescent,
    );
    assert!(check.all_ok(), "{check:?}");
}
