//! Differential tests between the live runtime and the discrete-event
//! simulator, expressed through the shared [`agossip_xtests::live_harness`]:
//! the set of rumors learned by every correct process in a live run must
//! satisfy exactly the same correctness checker that judges simulated
//! executions — same verdicts, and (for full gossip) the same final rumor
//! sets.
//!
//! Because every case goes through `live_vs_sim`, the whole matrix —
//! channel/TCP/UDS × lockstep/free-running — runs under both threading
//! disciplines (thread-per-process and multiplexing reactors) by iterating
//! [`live_harness::threadings`]: the reactor inherits every PR 5 acceptance
//! case for free.

use agossip_core::{Ears, GossipSpec, Tears};
use agossip_runtime::{run_live, ChannelTransport, LiveConfig, Pacing, Threading};
use agossip_sim::ProcessId;
use agossip_xtests::live_harness::{
    assert_bit_identical, live_vs_sim, threadings, DiffConfig, SimSide, TransportKind,
};

/// The live runtime and the simulator, running the same protocol from the
/// same seed, must both produce executions the correctness checker accepts —
/// and for full gossip without crashes, the *same* final rumor sets: every
/// correct process ends holding every rumor, in both substrates. Holds under
/// every threading discipline.
#[test]
fn live_and_simulated_ears_agree_with_the_checker() {
    for threading in threadings() {
        let mut live = LiveConfig {
            pacing: Pacing::Lockstep {
                d: 2,
                max_ticks: 1 << 20,
            },
            ..LiveConfig::lockstep(16, 4, 77)
        };
        live.threading = threading;
        let case = DiffConfig {
            live,
            transport: TransportKind::Channel,
            spec: GossipSpec::Full,
            sim: Some(SimSide { d: 2, delta: 2 }),
        };
        let verdict = live_vs_sim(&case, Ears::new).unwrap();
        verdict.assert_checker_verified();
        // Full gossip, no crashes: both substrates converge on identical
        // rumor sets at every process.
        verdict.assert_rumor_sets_match_sim();
    }
}

/// Majority gossip differential: the checker that judges simulated `tears`
/// runs accepts the live runs too, under every threading discipline.
#[test]
fn live_and_simulated_tears_agree_with_the_checker() {
    for threading in threadings() {
        let mut live = LiveConfig::lockstep(24, 0, 5);
        live.threading = threading;
        let case = DiffConfig {
            live,
            transport: TransportKind::Channel,
            spec: GossipSpec::Majority,
            sim: Some(SimSide { d: 2, delta: 2 }),
        };
        let verdict = live_vs_sim(&case, Tears::new).unwrap();
        verdict.assert_checker_verified();
    }
}

fn n32_crash_config(seed: u64) -> LiveConfig {
    LiveConfig::lockstep(32, 4, seed).with_crashes(vec![
        (ProcessId(31), 0),
        (ProcessId(30), 2),
        (ProcessId(29), 7),
        (ProcessId(28), 19),
    ])
}

fn assert_checker_verified(transport: TransportKind, config: &LiveConfig) {
    let case = DiffConfig::live_only(config.clone(), transport);
    live_vs_sim(&case, Ears::new)
        .unwrap()
        .assert_checker_verified();
}

/// The acceptance criterion, channel half: an `n = 32` lockstep run with
/// staggered crashes is bit-identical across repeats of the same seed —
/// and across threading disciplines, including different reactor counts.
#[test]
fn channel_lockstep_n32_with_crashes_is_bit_identical() {
    let config = n32_crash_config(2008);
    let a = run_live(&config, &ChannelTransport, Ears::new).unwrap();
    let b = run_live(&config, &ChannelTransport, Ears::new).unwrap();
    assert_bit_identical("repeat", &a, &b);
    assert!(a.quiescent);
    for reactors in [1usize, 4] {
        let on_reactors = config.clone().on_reactors(reactors);
        let c = run_live(&on_reactors, &ChannelTransport, Ears::new).unwrap();
        assert_bit_identical(&format!("reactors={reactors}"), &a, &c);
    }
    assert_checker_verified(TransportKind::Channel, &config);
}

/// The acceptance criterion, TCP half: a live loopback-TCP run at `n = 32`
/// with crashes completes with every correct process holding the
/// checker-verified rumor set — on node threads and on reactors.
#[test]
fn tcp_n32_with_crashes_is_checker_verified() {
    for threading in threadings() {
        let mut config = n32_crash_config(2009);
        config.threading = threading;
        assert_checker_verified(TransportKind::Tcp, &config);
    }
}

/// Same over Unix-domain sockets.
#[cfg(unix)]
#[test]
fn uds_n32_with_crashes_is_checker_verified() {
    for threading in threadings() {
        let mut config = n32_crash_config(2010);
        config.threading = threading;
        assert_checker_verified(TransportKind::Uds, &config);
    }
}

/// Free-running pacing (real scheduling nondeterminism) still yields
/// checker-verified executions over TCP, on node threads and on reactors.
#[test]
fn free_running_tcp_is_checker_verified() {
    for threading in threadings() {
        let mut config = LiveConfig::free_running(8, 2, 11);
        config.threading = threading;
        assert_checker_verified(TransportKind::Tcp, &config);
    }
}

/// CI's `live_smoke` job: the reactor differential at `n = 512` on two
/// reactor threads — 512 live processes multiplexed onto 2 event loops,
/// running scale-calibrated `tears` with the full 16-crash schedule, judged
/// by the same checker as a simulator run at the same timing bounds.
///
/// Ignored by default: the run is release-scale (~7 s debug is fine, but
/// the sim side at n = 512 adds more); the CI job runs it with
/// `--release -- --ignored`.
#[test]
#[ignore = "release-scale smoke; CI's live_smoke job runs it with --release -- --ignored"]
fn reactor_differential_n512_on_two_threads() {
    use agossip_analysis::experiments::live::{live_scale_config, live_scale_params};
    use agossip_core::Tears;

    let live = live_scale_config(512, 2, 2008);
    assert_eq!(live.threading, Threading::Reactor { reactors: 2 });
    let params = live_scale_params(512);
    let case = DiffConfig {
        live,
        transport: TransportKind::Channel,
        spec: GossipSpec::Majority,
        sim: Some(SimSide { d: 6, delta: 3 }),
    };
    let verdict = live_vs_sim(&case, move |ctx| Tears::with_params(ctx, params)).unwrap();
    verdict.assert_checker_verified();
}

/// Free-running reactor runs with staggered crashes stay checker-verified
/// over channels — the crash path exercises slot deregistration rather
/// than thread exit.
#[test]
fn free_running_reactor_crashes_deregister_cleanly() {
    let config = LiveConfig::free_running(16, 4, 13)
        .with_crashes(vec![
            (ProcessId(15), 0),
            (ProcessId(14), 2),
            (ProcessId(13), 5),
        ])
        .on_reactors(3);
    assert_eq!(config.threading, Threading::Reactor { reactors: 3 });
    assert_checker_verified(TransportKind::Channel, &config);
}
