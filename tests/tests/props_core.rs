//! Property-based tests (proptest) on the core data structures: rumor sets,
//! informed-lists, TEARS trigger counts, and the power-law fitter.

use proptest::prelude::*;

use agossip_analysis::fit_power_law;
use agossip_core::informed_list::InformedList;
use agossip_core::{GossipCtx, Rumor, RumorSet, Tears, TearsParams};
use agossip_sim::ProcessId;

fn rumor_strategy(n: usize) -> impl Strategy<Value = Rumor> {
    (0..n, any::<u64>()).prop_map(|(origin, payload)| Rumor::new(ProcessId(origin), payload))
}

fn rumor_set_strategy(n: usize) -> impl Strategy<Value = RumorSet> {
    prop::collection::vec(rumor_strategy(n), 0..20).prop_map(|rs| rs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Union is idempotent, commutative in its effect on membership, and
    /// monotone: the result is a superset of both operands.
    #[test]
    fn rumor_set_union_laws(a in rumor_set_strategy(16), b in rumor_set_strategy(16)) {
        let mut ab = a.clone();
        ab.union(&b);
        prop_assert!(ab.is_superset_of(&a));
        prop_assert!(ab.is_superset_of(&b));
        // Idempotence.
        let mut ab2 = ab.clone();
        prop_assert_eq!(ab2.union(&b), 0);
        prop_assert_eq!(&ab2, &ab);
        // Membership-commutativity: a ∪ b and b ∪ a hold the same origins.
        let mut ba = b.clone();
        ba.union(&a);
        let origins_ab: Vec<_> = ab.origins().collect();
        let origins_ba: Vec<_> = ba.origins().collect();
        prop_assert_eq!(origins_ab, origins_ba);
    }

    /// The number of distinct origins never exceeds the system size and
    /// insertion is stable (first payload per origin wins).
    #[test]
    fn rumor_set_size_bounds(rumors in prop::collection::vec(rumor_strategy(8), 0..64)) {
        let set: RumorSet = rumors.iter().copied().collect();
        prop_assert!(set.len() <= 8);
        for rumor in &rumors {
            prop_assert!(set.contains_origin(rumor.origin));
            // The stored payload is the first one inserted for that origin.
            let first = rumors.iter().find(|r| r.origin == rumor.origin).unwrap();
            prop_assert_eq!(set.get(rumor.origin).unwrap().payload, first.payload);
        }
    }

    /// covers_all is equivalent to uncovered_targets being empty, and both
    /// are monotone in the informed-list.
    #[test]
    fn informed_list_coverage_consistency(
        pairs in prop::collection::vec((0..8usize, 0..8usize), 0..64),
        rumors in rumor_set_strategy(8),
    ) {
        let n = 8;
        let mut il = InformedList::new();
        for (r, q) in pairs {
            il.insert(ProcessId(r), ProcessId(q));
        }
        let uncovered = il.uncovered_targets(&rumors, n);
        prop_assert_eq!(il.covers_all(&rumors, n), uncovered.is_empty());
        // Adding full coverage for every rumor closes the list.
        let mut full = il.clone();
        for q in ProcessId::all(n) {
            full.insert_all(&rumors, q);
        }
        prop_assert!(full.covers_all(&rumors, n));
        // Monotonicity: anything covered before is still covered.
        for q in ProcessId::all(n) {
            if !uncovered.contains(&q) {
                prop_assert!(!full.uncovered_targets(&rumors, n).contains(&q));
            }
        }
    }

    /// The informed-list union behaves like set union on pairs.
    #[test]
    fn informed_list_union_is_set_union(
        a in prop::collection::vec((0..6usize, 0..6usize), 0..32),
        b in prop::collection::vec((0..6usize, 0..6usize), 0..32),
    ) {
        let mut ia = InformedList::new();
        for (r, q) in &a {
            ia.insert(ProcessId(*r), ProcessId(*q));
        }
        let mut ib = InformedList::new();
        for (r, q) in &b {
            ib.insert(ProcessId(*r), ProcessId(*q));
        }
        let mut union = ia.clone();
        union.union(&ib);
        for (r, q) in a.iter().chain(b.iter()) {
            prop_assert!(union.contains(ProcessId(*r), ProcessId(*q)));
        }
        prop_assert!(union.len() <= ia.len() + ib.len());
    }

    /// TEARS trigger counts: every count in the window [µ−κ, µ+κ) triggers,
    /// and outside the window only exact multiples µ + iκ trigger.
    #[test]
    fn tears_trigger_window(seed in 0u64..32, offset in 0u64..2000) {
        let ctx = GossipCtx::new(ProcessId(0), 1024, 100, seed);
        let tears = Tears::new(ctx);
        let mu = tears.mu();
        let kappa = tears.kappa();
        let count = offset + 1;
        let in_window = count >= mu.saturating_sub(kappa) && count < mu + kappa;
        let is_multiple = count > mu && (count - mu).is_multiple_of(kappa);
        prop_assert_eq!(tears.is_trigger_count(count), in_window || is_multiple);
    }

    /// TEARS neighbourhood membership probability honours the cap a ≤ n−1.
    #[test]
    fn tears_membership_probability_is_valid(n in 2usize..4096) {
        let params = TearsParams::default();
        let p = params.membership_probability(n);
        prop_assert!(p > 0.0);
        prop_assert!(p <= 1.0);
        prop_assert!(params.a(n) <= (n - 1) as f64);
    }

    /// Fitting y = c·x^k recovers k within tolerance for arbitrary positive
    /// constants and exponents.
    #[test]
    fn power_law_fit_recovers_exponent(
        c in 0.1f64..100.0,
        k in -2.0f64..3.0,
    ) {
        let points: Vec<(f64, f64)> = [4.0, 8.0, 16.0, 32.0, 64.0]
            .iter()
            .map(|&x: &f64| (x, c * x.powf(k)))
            .collect();
        let fit = fit_power_law(&points).unwrap();
        prop_assert!((fit.exponent - k).abs() < 1e-6);
        prop_assert!((fit.constant - c).abs() / c < 1e-6);
        prop_assert!(fit.r_squared > 0.999);
    }
}
