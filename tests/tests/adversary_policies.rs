//! Integration tests: gossip protocols driven by the extended oblivious
//! adversary family, with `(d, δ, f)`-compliance auditing of every adversary
//! used.
//!
//! The paper's upper bounds hold with high probability against every
//! oblivious `(d, δ)`-adversary, so each protocol must stay correct under
//! worst-case delays, slow cross-partition links, skewed schedules and
//! round-robin schedules — and the adversary itself must be shown to honour
//! the bounds it claims (otherwise the measurement is meaningless).

use agossip_adversary::{
    crash_patterns, DelayPolicy, PolicyAdversary, RecordingAdversary, SchedulePolicy,
};
use agossip_core::{run_gossip, Ears, GossipReport, GossipSpec, Sears, Tears, Trivial};
use agossip_sim::{ProcessId, SimConfig};

const N: usize = 32;

fn config(f: usize, d: u64, delta: u64, seed: u64) -> SimConfig {
    SimConfig::new(N, f)
        .with_d(d)
        .with_delta(delta)
        .with_seed(seed)
}

/// Runs `ears` under the given policies with recording, asserts correctness,
/// and returns the report after asserting the adversary honoured its bounds.
fn run_ears_audited(
    cfg: &SimConfig,
    schedule: SchedulePolicy,
    delay: DelayPolicy,
    crashes: &[(agossip_sim::TimeStep, ProcessId)],
) -> GossipReport {
    let inner = PolicyAdversary::new(cfg.d, cfg.delta, cfg.seed, schedule, delay)
        .with_crashes(crashes.iter().copied());
    let mut adversary = RecordingAdversary::new(inner, cfg.d, cfg.delta, cfg.f);
    let report =
        run_gossip(cfg, GossipSpec::Full, &mut adversary, Ears::new).expect("simulation failed");
    let trace = adversary.into_trace();
    assert!(
        trace.is_compliant(),
        "adversary violated its own (d, δ, f) bounds: {:?}",
        trace.violations()
    );
    report
}

#[test]
fn ears_completes_under_worst_case_delays() {
    let cfg = config(8, 4, 2, 1);
    let report = run_ears_audited(
        &cfg,
        SchedulePolicy::FairRandom,
        DelayPolicy::AlwaysMax,
        &[],
    );
    assert!(report.check.all_ok(), "{:?}", report.check);
}

#[test]
fn ears_completes_with_a_skewed_schedule_and_crashes() {
    let cfg = config(8, 2, 4, 2);
    let slow: Vec<ProcessId> = ProcessId::all(N).take(N / 4).collect();
    let crashes: Vec<_> = crash_patterns::staggered(N, 8, 10, cfg.seed).crashes;
    let report = run_ears_audited(
        &cfg,
        SchedulePolicy::Skewed { slow },
        DelayPolicy::Uniform,
        &crashes,
    );
    assert!(report.check.all_ok(), "{:?}", report.check);
}

#[test]
fn ears_completes_across_a_slow_partition_link() {
    let cfg = config(0, 5, 1, 3);
    let report = run_ears_audited(
        &cfg,
        SchedulePolicy::EveryStep,
        DelayPolicy::CrossPartitionSlow { boundary: N / 2 },
        &[],
    );
    assert!(report.check.all_ok(), "{:?}", report.check);
}

#[test]
fn sears_completes_under_bimodal_delays() {
    let cfg = config(8, 3, 2, 4);
    let mut adversary = PolicyAdversary::new(
        cfg.d,
        cfg.delta,
        cfg.seed,
        SchedulePolicy::FairRandom,
        DelayPolicy::Bimodal { slow_fraction: 0.3 },
    );
    let report =
        run_gossip(&cfg, GossipSpec::Full, &mut adversary, Sears::new).expect("simulation failed");
    assert!(report.check.all_ok(), "{:?}", report.check);
}

#[test]
fn tears_majority_gossip_survives_round_robin_scheduling() {
    let cfg = config(8, 2, 3, 5);
    let mut adversary = PolicyAdversary::new(
        cfg.d,
        cfg.delta,
        cfg.seed,
        SchedulePolicy::RoundRobin { per_step: N / 4 },
        DelayPolicy::Uniform,
    );
    let report = run_gossip(&cfg, GossipSpec::Majority, &mut adversary, Tears::new)
        .expect("simulation failed");
    assert!(report.check.all_ok(), "{:?}", report.check);
}

#[test]
fn trivial_message_count_is_adversary_independent() {
    let mut counts = Vec::new();
    for (i, delay) in [
        DelayPolicy::Uniform,
        DelayPolicy::AlwaysMax,
        DelayPolicy::CrossPartitionSlow { boundary: N / 2 },
    ]
    .into_iter()
    .enumerate()
    {
        let cfg = config(0, 3, 2, 10 + i as u64);
        let mut adversary = PolicyAdversary::new(
            cfg.d,
            cfg.delta,
            cfg.seed,
            SchedulePolicy::FairRandom,
            delay,
        );
        let report = run_gossip(&cfg, GossipSpec::Full, &mut adversary, Trivial::new)
            .expect("simulation failed");
        assert!(report.check.all_ok());
        counts.push(report.messages());
    }
    assert!(
        counts.iter().all(|&c| c == (N * (N - 1)) as u64),
        "trivial always sends n(n-1) messages, got {counts:?}"
    );
}

#[test]
fn recorded_trace_reflects_planned_crashes() {
    let cfg = config(4, 2, 2, 6);
    let crashes = crash_patterns::immediate_suffix(N, 4).crashes;
    let inner = PolicyAdversary::new(
        cfg.d,
        cfg.delta,
        cfg.seed,
        SchedulePolicy::FairRandom,
        DelayPolicy::Uniform,
    )
    .with_crashes(crashes);
    let mut adversary = RecordingAdversary::new(inner, cfg.d, cfg.delta, cfg.f);
    let report =
        run_gossip(&cfg, GossipSpec::Full, &mut adversary, Ears::new).expect("simulation failed");
    assert!(report.check.all_ok());
    let trace = adversary.into_trace();
    assert_eq!(trace.crash_victims().len(), 4);
    assert!(trace.is_compliant(), "{:?}", trace.violations());
    assert!(!trace.delays.is_empty());
}
