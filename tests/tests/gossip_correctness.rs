//! Cross-crate integration tests: every gossip protocol satisfies its
//! specification across a grid of system sizes, failure budgets, timing
//! bounds and crash patterns.

use agossip_adversary::oblivious::{crash_patterns, ObliviousPlan};
use agossip_analysis::experiments::{run_one_gossip, GossipProtocolKind};
use agossip_core::{run_gossip, Ears, GossipSpec, Sears, SearsParams, Tears, Trivial};
use agossip_sim::{FairObliviousAdversary, SimConfig};

fn config(n: usize, f: usize, d: u64, delta: u64, seed: u64) -> SimConfig {
    SimConfig::new(n, f)
        .with_d(d)
        .with_delta(delta)
        .with_seed(seed)
}

/// Builds an oblivious adversary with a staggered crash pattern that uses the
/// full failure budget.
fn adversary_with_crashes(cfg: &SimConfig) -> agossip_sim::FairObliviousAdversary {
    ObliviousPlan::from_config(cfg)
        .with_crashes(crash_patterns::staggered(cfg.n, cfg.f, 7, cfg.seed))
        .build()
}

#[test]
fn ears_satisfies_gossip_across_timing_grid() {
    for &(d, delta) in &[(1u64, 1u64), (3, 1), (1, 3), (4, 4)] {
        for seed in 0..3u64 {
            let cfg = config(24, 6, d, delta, seed);
            let mut adv = adversary_with_crashes(&cfg);
            let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, Ears::new).unwrap();
            assert!(
                report.check.all_ok(),
                "ears failed at d={d} delta={delta} seed={seed}: {:?}",
                report.check
            );
            // The observed delay/scheduling gaps must respect the bounds: a
            // message becomes deliverable within d steps but is received at
            // its recipient's first scheduled step past that deadline, so the
            // observed send-to-receipt delay is bounded by d + δ − 1.
            assert!(report.metrics.max_delivery_delay < d + delta);
            assert!(report.metrics.max_schedule_gap <= delta);
        }
    }
}

#[test]
fn sears_satisfies_gossip_with_heavy_crashes() {
    for seed in 0..3u64 {
        let n = 32;
        let f = 12;
        let cfg = config(n, f, 2, 2, seed);
        let mut adv = adversary_with_crashes(&cfg);
        let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, |ctx| {
            Sears::with_params(ctx, SearsParams::with_epsilon(0.5))
        })
        .unwrap();
        assert!(report.check.all_ok(), "seed {seed}: {:?}", report.check);
        // The staggered plan spreads crash times out, so a protocol that
        // quiesces quickly may outrun the tail of the schedule; crashes must
        // occur but can never exceed the budget.
        assert!(report.metrics.crashes >= 1);
        assert!(report.metrics.crashes <= f);
    }
}

#[test]
fn trivial_satisfies_gossip_under_any_crash_pattern() {
    for seed in 0..3u64 {
        let cfg = config(20, 9, 3, 2, seed);
        let mut adv = adversary_with_crashes(&cfg);
        let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, Trivial::new).unwrap();
        assert!(report.check.all_ok(), "{:?}", report.check);
        // Every process sends each other process exactly one message, except
        // that a process crashed before its first step never sends at all, so
        // the total lies between (n−f)(n−1) and n(n−1).
        let n = cfg.n as u64;
        let f = cfg.f as u64;
        assert!(report.messages() <= n * (n - 1));
        assert!(report.messages() >= (n - f) * (n - 1));
    }
}

#[test]
fn tears_satisfies_majority_gossip_with_minority_crashes() {
    for seed in 0..3u64 {
        let n = 64;
        let f = 24; // < n/2 as the protocol requires
        let cfg = config(n, f, 2, 1, seed);
        let mut adv = adversary_with_crashes(&cfg);
        let report = run_gossip(&cfg, GossipSpec::Majority, &mut adv, Tears::new).unwrap();
        assert!(report.check.all_ok(), "seed {seed}: {:?}", report.check);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive sweep; run with --release")]
fn ears_message_complexity_beats_trivial_at_scale() {
    let n = 192;
    let cfg = config(n, n / 4, 1, 1, 11);
    let mut adv = FairObliviousAdversary::new(1, 1, 11);
    let ears = run_gossip(&cfg, GossipSpec::Full, &mut adv, Ears::new).unwrap();
    assert!(ears.check.all_ok());
    let trivial_messages = (n * (n - 1)) as u64;
    assert!(
        ears.messages() < trivial_messages,
        "ears sent {} messages, trivial would send {}",
        ears.messages(),
        trivial_messages
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive sweep; run with --release")]
fn tears_is_constant_time_and_bounded_at_scale() {
    // Theorem 12 promises O(d+δ) time and O(n^{7/4} log² n) messages, but the
    // message bound only bites once a = 4·√n·ln n drops below n − 1, i.e. far
    // beyond sizes this simulator can run (at n = 256 the capped full fan-out
    // floods until the run exhausts memory — tightening the constants is a
    // roadmap item). What is checkable here is the time bound, which is
    // independent of n, plus a message envelope calibrated to the current
    // implementation that catches runaway-flood regressions.
    let small = run_one_gossip(GossipProtocolKind::Tears, &config(64, 16, 1, 1, 5)).unwrap();
    let large = run_one_gossip(GossipProtocolKind::Tears, &config(128, 32, 1, 1, 5)).unwrap();
    assert!(small.check.all_ok());
    assert!(large.check.all_ok());

    // O(d+δ) time, independent of n: the normalized completion time must not
    // grow with the two-fold size increase.
    let t_small = small.normalized_time.unwrap();
    let t_large = large.normalized_time.unwrap();
    assert!(
        t_large <= 3.0 * t_small + 10.0,
        "tears time should not grow with n: {t_small} -> {t_large}"
    );

    // Flood-regression envelope: ~2× the observed 2.05M messages at n = 128.
    assert!(
        large.messages() < 4_000_000,
        "tears sent {} messages at n = 128, beyond the regression envelope",
        large.messages()
    );
}

#[test]
fn all_protocols_are_deterministic_given_seed() {
    for kind in [
        GossipProtocolKind::Ears,
        GossipProtocolKind::Sears { epsilon: 0.5 },
        GossipProtocolKind::Tears,
        GossipProtocolKind::Trivial,
    ] {
        let cfg = config(32, 8, 2, 2, 77);
        let a = run_one_gossip(kind, &cfg).unwrap();
        let b = run_one_gossip(kind, &cfg).unwrap();
        assert_eq!(a.messages(), b.messages(), "{}", kind.name());
        assert_eq!(a.time_steps(), b.time_steps(), "{}", kind.name());
    }
}

#[test]
fn sync_baseline_completes_fast_with_unit_bounds() {
    let n = 128;
    let report = run_one_gossip(GossipProtocolKind::SyncEpidemic, &config(n, 0, 1, 1, 2)).unwrap();
    assert!(report.check.all_ok());
    // O(log n) rounds.
    assert!(report.time_steps().unwrap() < 60);
    // O(n log n) messages.
    assert!(report.messages() < (n as u64) * 40);
}
