//! Property-based tests on the byte-level wire codec: round-trip identity
//! for arbitrary messages of all six kinds at arbitrary system sizes, the
//! WireSize/encoded-bytes proportionality bounds, and corrupt-frame fuzzing
//! (truncation and bit flips must yield typed errors, never panics).
//!
//! These run in debug mode as part of tier-1.

use std::sync::Arc;

use proptest::prelude::*;

use agossip_core::codec::{MAX_BYTES_PER_UNIT, MAX_UNITS_PER_BYTE};
use agossip_core::informed_list::InformedList;
use agossip_core::tears::TearsFlag;
use agossip_core::{
    CodecError, EarsMessage, Rumor, RumorSet, SearsMessage, SyncMessage, TearsMessage, Trivial,
    TrivialMessage, WireCodec, WireDecodeView, WireSize,
};
use agossip_sim::ProcessId;

/// System sizes from degenerate to several bitmap words.
fn n_strategy() -> impl Strategy<Value = usize> {
    1..300usize
}

fn rumor_set_strategy(n: usize) -> impl Strategy<Value = RumorSet> {
    prop::collection::vec((0..n, any::<u64>()), 0..40).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(origin, payload)| Rumor::new(ProcessId(origin), payload))
            .collect()
    })
}

fn informed_strategy(n: usize) -> impl Strategy<Value = InformedList> {
    prop::collection::vec((0..n, 0..n), 0..60).prop_map(|pairs| {
        let mut list = InformedList::new();
        for (origin, target) in pairs {
            list.insert(ProcessId(origin), ProcessId(target));
        }
        list
    })
}

/// Any of the six wire message kinds, over a universe of size `n`.
#[derive(Debug, Clone, PartialEq)]
enum AnyMessage {
    Trivial(TrivialMessage),
    Ears(EarsMessage),
    Sears(SearsMessage),
    TearsUp(TearsMessage),
    TearsDown(TearsMessage),
    Sync(SyncMessage),
}

impl AnyMessage {
    fn encode(&self) -> Vec<u8> {
        match self {
            AnyMessage::Trivial(m) => m.encode(),
            AnyMessage::Ears(m) => m.encode(),
            AnyMessage::Sears(m) => m.encode(),
            AnyMessage::TearsUp(m) | AnyMessage::TearsDown(m) => m.encode(),
            AnyMessage::Sync(m) => m.encode(),
        }
    }

    fn wire_units(&self) -> u64 {
        match self {
            AnyMessage::Trivial(m) => m.wire_units(),
            AnyMessage::Ears(m) => m.wire_units(),
            AnyMessage::Sears(m) => m.wire_units(),
            AnyMessage::TearsUp(m) | AnyMessage::TearsDown(m) => m.wire_units(),
            AnyMessage::Sync(m) => m.wire_units(),
        }
    }

    /// Decodes with the matching kind's decoder and re-wraps.
    fn decode_as_self(&self, bytes: &[u8]) -> Result<AnyMessage, CodecError> {
        Ok(match self {
            AnyMessage::Trivial(_) => AnyMessage::Trivial(TrivialMessage::decode(bytes)?),
            AnyMessage::Ears(_) => AnyMessage::Ears(EarsMessage::decode(bytes)?),
            AnyMessage::Sears(_) => AnyMessage::Sears(SearsMessage::decode(bytes)?),
            AnyMessage::TearsUp(_) => {
                let m = TearsMessage::decode(bytes)?;
                match m.flag {
                    TearsFlag::Up => AnyMessage::TearsUp(m),
                    TearsFlag::Down => AnyMessage::TearsDown(m),
                }
            }
            AnyMessage::TearsDown(_) => {
                let m = TearsMessage::decode(bytes)?;
                match m.flag {
                    TearsFlag::Up => AnyMessage::TearsUp(m),
                    TearsFlag::Down => AnyMessage::TearsDown(m),
                }
            }
            AnyMessage::Sync(_) => AnyMessage::Sync(SyncMessage::decode(bytes)?),
        })
    }

    /// Decodes with the matching kind's zero-copy view decoder,
    /// materializes the owned message, and re-wraps — the borrowed-path
    /// mirror of [`AnyMessage::decode_as_self`].
    fn view_decode_as_self(&self, bytes: &[u8]) -> Result<AnyMessage, CodecError> {
        fn via_view<M: WireDecodeView>(bytes: &[u8]) -> Result<M, CodecError> {
            Ok(M::view_to_owned(&M::decode_view(bytes)?))
        }
        Ok(match self {
            AnyMessage::Trivial(_) => AnyMessage::Trivial(via_view::<TrivialMessage>(bytes)?),
            AnyMessage::Ears(_) => AnyMessage::Ears(via_view::<EarsMessage>(bytes)?),
            AnyMessage::Sears(_) => AnyMessage::Sears(via_view::<SearsMessage>(bytes)?),
            AnyMessage::TearsUp(_) | AnyMessage::TearsDown(_) => {
                let m = via_view::<TearsMessage>(bytes)?;
                match m.flag {
                    TearsFlag::Up => AnyMessage::TearsUp(m),
                    TearsFlag::Down => AnyMessage::TearsDown(m),
                }
            }
            AnyMessage::Sync(_) => AnyMessage::Sync(via_view::<SyncMessage>(bytes)?),
        })
    }
}

/// Asserts the owned and view decoders agree on `bytes`: both succeed with
/// equal messages, or both fail with the same typed error.
fn assert_view_matches_owned(msg: &AnyMessage, bytes: &[u8]) {
    let owned = msg.decode_as_self(bytes);
    let viewed = msg.view_decode_as_self(bytes);
    match (owned, viewed) {
        (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "owned and view decodes disagree"),
        (Err(a), Err(b)) => prop_assert_eq!(a, b, "owned and view errors disagree"),
        (a, b) => prop_assert!(false, "decode outcomes split: owned {a:?} vs view {b:?}"),
    }
}

fn message_strategy() -> impl Strategy<Value = AnyMessage> {
    n_strategy().prop_flat_map(|n| {
        (
            0..6u8,
            rumor_set_strategy(n),
            informed_strategy(n),
            0..n,
            any::<u64>(),
        )
            .prop_map(move |(kind, rumors, informed, origin, payload)| {
                let rumors = Arc::new(rumors);
                let informed = Arc::new(informed);
                match kind {
                    0 => AnyMessage::Trivial(TrivialMessage {
                        rumor: Rumor::new(ProcessId(origin), payload),
                    }),
                    1 => AnyMessage::Ears(EarsMessage { rumors, informed }),
                    2 => AnyMessage::Sears(SearsMessage { rumors, informed }),
                    3 => AnyMessage::TearsUp(TearsMessage {
                        rumors,
                        flag: TearsFlag::Up,
                    }),
                    4 => AnyMessage::TearsDown(TearsMessage {
                        rumors,
                        flag: TearsFlag::Down,
                    }),
                    _ => AnyMessage::Sync(SyncMessage { rumors }),
                }
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `decode(encode(m)) == m` for arbitrary messages of all six kinds at
    /// arbitrary n.
    #[test]
    fn round_trip_is_identity(msg in message_strategy()) {
        let encoded = msg.encode();
        let decoded = msg.decode_as_self(&encoded).expect("round trip must decode");
        prop_assert_eq!(decoded, msg);
    }

    /// The abstract wire-unit count and the encoded byte count are mutually
    /// proportional, for every message: this is what lets the simulator's
    /// unit metrics stand in for real bit complexity.
    #[test]
    fn wire_units_are_proportional_to_encoded_bytes(msg in message_strategy()) {
        let bytes = msg.encode().len();
        let units = msg.wire_units();
        prop_assert!(
            bytes as u64 <= MAX_BYTES_PER_UNIT as u64 * units,
            "{bytes} bytes exceed {MAX_BYTES_PER_UNIT}·{units} units"
        );
        prop_assert!(
            units <= MAX_UNITS_PER_BYTE * bytes as u64,
            "{units} units exceed {MAX_UNITS_PER_BYTE}·{bytes} bytes"
        );
    }

    /// Every strict prefix of a valid frame fails to decode with a typed
    /// error — and never panics.
    #[test]
    fn truncated_frames_yield_typed_errors(msg in message_strategy(), cut in 0.0..1.0f64) {
        let encoded = msg.encode();
        let len = ((encoded.len() as f64) * cut) as usize; // < encoded.len()
        let result = msg.decode_as_self(&encoded[..len]);
        prop_assert!(result.is_err(), "a strict prefix decoded");
    }

    /// Arbitrary single-bit corruption either still decodes (the flipped bit
    /// landed in a payload) or fails with a typed error — and never panics.
    #[test]
    fn bit_flipped_frames_never_panic(
        msg in message_strategy(),
        pos in 0.0..1.0f64,
        bit in 0..8u32,
    ) {
        let mut encoded = msg.encode();
        let index = ((encoded.len() as f64) * pos) as usize % encoded.len();
        encoded[index] ^= 1 << bit;
        // The outcome (Ok with different content, or any CodecError) is
        // data-dependent; the property is the absence of panics and of
        // unbounded allocations.
        let _ = msg.decode_as_self(&encoded);
    }

    /// Arbitrary garbage bytes never panic any decoder.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = TrivialMessage::decode(&bytes);
        let _ = EarsMessage::decode(&bytes);
        let _ = SearsMessage::decode(&bytes);
        let _ = TearsMessage::decode(&bytes);
        let _ = SyncMessage::decode(&bytes);
    }

    /// Differential: on a valid round-trip frame the zero-copy view decoder
    /// and the owned decoder produce equal messages, for all six kinds at
    /// arbitrary n.
    #[test]
    fn view_decode_equals_owned_decode_on_round_trips(msg in message_strategy()) {
        assert_view_matches_owned(&msg, &msg.encode());
    }

    /// Differential over the corrupt-frame corpus: truncation and single-bit
    /// flips drive the view and owned decoders to the *same* outcome —
    /// equal messages when both accept, the same typed error when both
    /// reject, never a split, never a panic.
    #[test]
    fn view_decode_equals_owned_decode_on_corrupt_frames(
        msg in message_strategy(),
        pos in 0.0..1.0f64,
        bit in 0..8u32,
        cut in 0.0..1.0f64,
    ) {
        let mut encoded = msg.encode();
        let len = ((encoded.len() as f64) * cut) as usize; // < encoded.len()
        assert_view_matches_owned(&msg, &encoded[..len]);
        let index = ((encoded.len() as f64) * pos) as usize % encoded.len();
        encoded[index] ^= 1 << bit;
        assert_view_matches_owned(&msg, &encoded);
    }

    /// Differential over arbitrary garbage: every kind's view decoder
    /// agrees byte-for-byte with its owned decoder on what is rejected and
    /// with which error — and neither ever panics.
    #[test]
    fn view_decode_equals_owned_decode_on_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        fn agree<M: WireDecodeView + PartialEq + std::fmt::Debug>(bytes: &[u8]) {
            match (M::decode(bytes), M::decode_view(bytes).map(|v| M::view_to_owned(&v))) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(false, "decode outcomes split: owned {a:?} vs view {b:?}"),
            }
        }
        agree::<TrivialMessage>(&bytes);
        agree::<EarsMessage>(&bytes);
        agree::<SearsMessage>(&bytes);
        agree::<TearsMessage>(&bytes);
        agree::<SyncMessage>(&bytes);
    }

    /// Cross-kind confusion is caught: a frame of one kind fed to another
    /// kind's decoder is a `BadKind` error, not a misparse.
    #[test]
    fn wrong_kind_decoders_reject_valid_frames(msg in message_strategy()) {
        let encoded = msg.encode();
        if !matches!(msg, AnyMessage::Trivial(_)) {
            prop_assert!(matches!(
                TrivialMessage::decode(&encoded),
                Err(CodecError::BadKind(_))
            ));
        }
        if !matches!(msg, AnyMessage::Sync(_)) {
            prop_assert!(matches!(
                SyncMessage::decode(&encoded),
                Err(CodecError::BadKind(_))
            ));
        }
    }
}

/// A protocol engine's own messages survive the codec: drive a real
/// `Trivial` engine, encode everything it emits, decode, and compare.
#[test]
fn engine_emitted_messages_round_trip() {
    use agossip_core::{GossipCtx, GossipEngine};
    let ctx = GossipCtx::new(ProcessId(2), 8, 1, 99);
    let mut engine = Trivial::new(ctx);
    let mut out = Vec::new();
    engine.local_step(&mut out);
    assert_eq!(out.len(), 7);
    for (_, msg) in out {
        let decoded = TrivialMessage::decode(&msg.encode()).unwrap();
        assert_eq!(decoded, msg);
    }
}
