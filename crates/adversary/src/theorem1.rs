//! The adaptive lower-bound adversary of Theorem 1 (paper, Section 2).
//!
//! Theorem 1: for every gossip algorithm `A` there exist `d, δ ≥ 1` and an
//! adaptive adversary causing up to `f < n` failures such that, in
//! expectation, either the algorithm sends `Ω(n + f²)` messages or it runs
//! for `Ω(f·(d+δ))` time.
//!
//! The proof is constructive, and this module executes that construction
//! against real protocol implementations (Figure 1 of the paper):
//!
//! 1. **Phase 1 — quiesce the bulk.** Partition the processes into
//!    `S1` (size `n − f/2`) and `S2` (size `f/2`). Run only `S1`, with
//!    `d = δ = 1`, until every process in `S1` stops sending. If that takes
//!    longer than `f` steps the execution is already slow
//!    ([`LowerBoundCase::SlowStartup`]).
//! 2. **Probe.** For every `p ∈ S2`, simulate `p` receiving its pending
//!    messages from `S1` and then taking `f/2` local steps in isolation
//!    ([`crate::probe::probe_isolated`]). `p` is *promiscuous* if it would
//!    send at least `f/32` messages.
//! 3. **Case 1 — many promiscuous processes** (`|P| ≥ f/4`): schedule all of
//!    `S2` for `f/2` steps while withholding every message they send. The
//!    promiscuous processes spray `Ω(f²)` messages between them
//!    ([`LowerBoundCase::MessageHeavy`]). No process crashes.
//! 4. **Case 2 — mostly shy processes**: find two non-promiscuous processes
//!    `p, q` that would not contact each other; crash the rest of `S2`, run
//!    `p` and `q` for `f/2` steps with `d = 1`, and crash any `S1` process
//!    they try to enlist. Neither learns the other's rumor, so gossip cannot
//!    have completed before time `f/2·(d+δ)`
//!    ([`LowerBoundCase::IsolatedPair`]).
//!
//! The outcome records the realised message count and running time so the
//! experiment harness (and the `lower_bound` bench) can verify the dichotomy
//! numerically.

use agossip_core::{GossipCtx, GossipEngine, SimGossip};
use agossip_sim::{Process, ProcessId, SimConfig, SimResult, Simulation};

use crate::probe::{probe_isolated, IsolationProbe};

/// Tunable knobs of the lower-bound construction. The defaults follow the
/// constants used in the paper's proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LowerBoundParams {
    /// System size `n`.
    pub n: usize,
    /// Failure budget `f` the adversary may use (`f < n`). The construction
    /// internally caps it at `n/4` exactly as the proof does.
    pub f: usize,
    /// Master seed for the protocol's randomness.
    pub seed: u64,
    /// Divisor in the promiscuity threshold `f / promiscuity_divisor`
    /// (the paper uses 32).
    pub promiscuity_divisor: u64,
}

impl LowerBoundParams {
    /// Creates parameters with the paper's constants.
    pub fn new(n: usize, f: usize, seed: u64) -> Self {
        LowerBoundParams {
            n,
            f,
            seed,
            promiscuity_divisor: 32,
        }
    }

    /// The effective failure budget used by the construction: `min(f, n/4)`,
    /// and at least 4 so that `S2 = f/2 ≥ 2` can host a pair.
    pub fn effective_f(&self) -> usize {
        self.f.min(self.n / 4).max(4)
    }
}

/// Which branch of the dichotomy the adversary forced the execution into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LowerBoundCase {
    /// Phase 1 (running `S1` alone with `d = δ = 1`) did not become quiescent
    /// within `f` steps: the execution already takes `Ω(f(d+δ))` time.
    SlowStartup,
    /// Case 1 of the proof: at least `f/4` of the probed processes were
    /// promiscuous and were made to spray their messages into a network that
    /// delivers none of them.
    MessageHeavy,
    /// Case 2 of the proof: two non-promiscuous processes were isolated from
    /// each other for `f/2` steps; gossip cannot have completed, so the
    /// execution takes `Ω(f(d+δ))` time.
    IsolatedPair,
    /// Case 2 was entered but no mutually-avoiding pair existed among the
    /// non-promiscuous processes (possible only when they all contact almost
    /// everyone — which itself is message-heavy behaviour).
    NoIsolatablePair,
}

/// The outcome of running the Theorem 1 adversary against one protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerBoundOutcome {
    /// Which branch was taken.
    pub case: LowerBoundCase,
    /// System size.
    pub n: usize,
    /// Effective failure budget used by the construction.
    pub f: usize,
    /// Total point-to-point messages sent over the whole constructed
    /// execution.
    pub messages_sent: u64,
    /// Total global time steps of the constructed execution.
    pub elapsed_steps: u64,
    /// Number of processes classified as promiscuous.
    pub promiscuous: usize,
    /// Number of processes the adversary crashed.
    pub crashes_used: usize,
    /// The isolated pair, when Case 2 was taken.
    pub pair: Option<(ProcessId, ProcessId)>,
    /// True when Case 2 was taken and, at the end of the execution, the two
    /// isolated processes still did not know each other's rumors — the
    /// witness that gossip had not completed.
    pub pair_still_ignorant: bool,
    /// Duration of phase 1 in steps.
    pub phase1_steps: u64,
}

impl LowerBoundOutcome {
    /// The message-complexity side of the dichotomy, `n + f²`.
    pub fn message_bound(&self) -> u64 {
        (self.n as u64) + (self.f as u64) * (self.f as u64)
    }

    /// The time-complexity side of the dichotomy, `f·(d+δ)` with
    /// `d = δ = 1` as used by the construction.
    pub fn time_bound(&self) -> u64 {
        2 * self.f as u64
    }

    /// Verifies the dichotomy with explicit constants: either at least
    /// `c_msg · (n + f²)` messages were sent, or the execution took at least
    /// `c_time · f·(d+δ)` steps.
    pub fn dichotomy_holds(&self, c_msg: f64, c_time: f64) -> bool {
        let msg_side = self.messages_sent as f64 >= c_msg * self.message_bound() as f64;
        let time_side = self.elapsed_steps as f64 >= c_time * self.time_bound() as f64;
        msg_side || time_side
    }
}

/// Runs the Theorem 1 adversary against the protocol produced by `make`.
///
/// `G` must be `Clone` because the adaptive adversary simulates process
/// copies in isolation (the probes of step 2 above).
pub fn run_lower_bound<G, F>(params: LowerBoundParams, make: F) -> SimResult<LowerBoundOutcome>
where
    G: GossipEngine + Clone,
    F: Fn(GossipCtx) -> G,
{
    let n = params.n;
    let f = params.effective_f();
    let s2_size = (f / 2).max(2);
    let s1_size = n - s2_size;
    let s1: Vec<ProcessId> = (0..s1_size).map(ProcessId).collect();
    let s2: Vec<ProcessId> = (s1_size..n).map(ProcessId).collect();

    // The constructed execution uses d = δ = 1 for the parts that matter to
    // the time bound; the step limit is irrelevant because we drive manually.
    let config = SimConfig::new(n, f)
        .with_d(1)
        .with_delta(1)
        .with_seed(params.seed);
    let processes: Vec<SimGossip<G>> = ProcessId::all(n)
        .map(|pid| SimGossip::new(make(GossipCtx::new(pid, n, f, params.seed))))
        .collect();
    let mut sim = Simulation::new(config, processes)?;

    // ---- Phase 1: run S1 alone with d = δ = 1 until quiescent or `f` steps.
    let phase1_cap = f as u64;
    let mut phase1_steps = 0u64;
    loop {
        let all_quiet = s1.iter().all(|&pid| sim.process(pid).is_quiescent());
        if all_quiet {
            break;
        }
        if phase1_steps >= phase1_cap {
            return Ok(LowerBoundOutcome {
                case: LowerBoundCase::SlowStartup,
                n,
                f,
                messages_sent: sim.metrics().messages_sent,
                elapsed_steps: sim.now().as_u64(),
                promiscuous: 0,
                crashes_used: sim.metrics().crashes,
                pair: None,
                pair_still_ignorant: false,
                phase1_steps,
            });
        }
        sim.step_manual(&s1, &[], |_| 1)?;
        phase1_steps += 1;
    }

    // ---- Probe every process in S2 in isolation for f/2 local steps.
    let isolation_steps = (f / 2) as u64;
    let threshold = (f as u64 / params.promiscuity_divisor).max(1);
    let probes: Vec<IsolationProbe> = s2
        .iter()
        .map(|&pid| {
            let pending = sim.pending_messages_for(pid);
            probe_isolated(sim.process(pid).engine(), &pending, isolation_steps)
        })
        .collect();
    let promiscuous: Vec<ProcessId> = s2
        .iter()
        .zip(&probes)
        .filter(|(_, probe)| probe.is_promiscuous(threshold))
        .map(|(&pid, _)| pid)
        .collect();

    // ---- Case 1: at least f/4 promiscuous processes.
    if promiscuous.len() >= (f / 4).max(1) {
        for _ in 0..isolation_steps {
            // Schedule all of S2; messages they send now are never delivered
            // (d ≥ f/2 + 1 in the proof), but pending phase-1 messages from
            // S1 — which the promiscuity probe conditioned on — do arrive.
            sim.step_manual(&s2, &[], |_| u64::MAX)?;
        }
        return Ok(LowerBoundOutcome {
            case: LowerBoundCase::MessageHeavy,
            n,
            f,
            messages_sent: sim.metrics().messages_sent,
            elapsed_steps: sim.now().as_u64(),
            promiscuous: promiscuous.len(),
            crashes_used: sim.metrics().crashes,
            pair: None,
            pair_still_ignorant: false,
            phase1_steps,
        });
    }

    // ---- Case 2: find two non-promiscuous processes that avoid each other.
    let shy: Vec<(ProcessId, &IsolationProbe)> = s2
        .iter()
        .zip(&probes)
        .filter(|(_, probe)| !probe.is_promiscuous(threshold))
        .map(|(&pid, probe)| (pid, probe))
        .collect();

    let mut pair: Option<(ProcessId, ProcessId)> = None;
    'outer: for (i, (p, probe_p)) in shy.iter().enumerate() {
        for (q, probe_q) in shy.iter().skip(i + 1) {
            if probe_p.avoids(*q) && probe_q.avoids(*p) {
                pair = Some((*p, *q));
                break 'outer;
            }
        }
    }

    let Some((p, q)) = pair else {
        return Ok(LowerBoundOutcome {
            case: LowerBoundCase::NoIsolatablePair,
            n,
            f,
            messages_sent: sim.metrics().messages_sent,
            elapsed_steps: sim.now().as_u64(),
            promiscuous: promiscuous.len(),
            crashes_used: sim.metrics().crashes,
            pair: None,
            pair_still_ignorant: false,
            phase1_steps,
        });
    };

    // Crash every other process in S2, before any of them takes a step.
    let initial_crashes: Vec<ProcessId> = s2
        .iter()
        .copied()
        .filter(|&pid| pid != p && pid != q)
        .collect();
    // Crash budget for S1 helpers: f/4 as in the proof.
    let mut helper_budget = (f / 4).max(1);

    let mut crashes_next: Vec<ProcessId> = initial_crashes;
    for _ in 0..isolation_steps {
        // Crash any process contacted by p or q during the previous step
        // before it has a chance to act on the message, then schedule p, q
        // and (for δ-fairness) every other still-alive process — all of which
        // are quiescent members of S1.
        let schedule: Vec<ProcessId> = sim.alive();
        sim.step_manual(&schedule, &crashes_next, |_| 1)?;
        crashes_next = [p, q]
            .iter()
            .flat_map(|&sender| {
                sim.pending_messages_for_sender(sender)
                    .into_iter()
                    .filter(|&dest| s1.contains(&dest))
            })
            .filter(|&dest| sim.is_alive(dest))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .take(helper_budget)
            .collect();
        helper_budget = helper_budget.saturating_sub(crashes_next.len());
    }

    let p_knows_q = sim.process(p).engine().rumors().contains_origin(q);
    let q_knows_p = sim.process(q).engine().rumors().contains_origin(p);

    Ok(LowerBoundOutcome {
        case: LowerBoundCase::IsolatedPair,
        n,
        f,
        messages_sent: sim.metrics().messages_sent,
        elapsed_steps: sim.now().as_u64(),
        promiscuous: promiscuous.len(),
        crashes_used: sim.metrics().crashes,
        pair: Some((p, q)),
        pair_still_ignorant: !(p_knows_q || q_knows_p),
        phase1_steps,
    })
}

/// Extension trait used by the Case 2 loop: destinations in `S1` of messages
/// currently in flight that were sent by `sender`.
trait PendingBySender {
    fn pending_messages_for_sender(&self, sender: ProcessId) -> Vec<ProcessId>;
}

impl<P: Process> PendingBySender for Simulation<P> {
    fn pending_messages_for_sender(&self, sender: ProcessId) -> Vec<ProcessId> {
        // The network indexes by destination, so scan all destinations. n is
        // small in lower-bound experiments; clarity over speed here.
        let n = self.config().n;
        let mut dests = Vec::new();
        for dest in ProcessId::all(n) {
            if self
                .pending_messages_for(dest)
                .iter()
                .any(|env| env.from == sender)
            {
                dests.push(dest);
            }
        }
        dests
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agossip_core::{Ears, RumorSet, Sears, Trivial};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A deliberately "shy" gossip protocol used to exercise Case 2: it sends
    /// its rumor to a single random target only every `PERIOD` local steps,
    /// so over `f/2` isolated steps it is never promiscuous.
    #[derive(Debug, Clone)]
    struct LazyGossip {
        ctx: GossipCtx,
        rumors: RumorSet,
        rng: StdRng,
        steps: u64,
    }

    const PERIOD: u64 = 64;

    impl LazyGossip {
        fn new(ctx: GossipCtx) -> Self {
            LazyGossip {
                rumors: RumorSet::singleton(ctx.rumor),
                rng: StdRng::seed_from_u64(ctx.seed),
                steps: 0,
                ctx,
            }
        }
    }

    impl GossipEngine for LazyGossip {
        type Msg = RumorSet;

        fn deliver(&mut self, _from: ProcessId, msg: RumorSet) {
            self.rumors.union(&msg);
        }

        fn local_step(&mut self, out: &mut Vec<(ProcessId, RumorSet)>) {
            self.steps += 1;
            if self.steps % PERIOD == 1 && self.rumors.len() < self.ctx.n {
                let target = ProcessId(self.rng.gen_range(0..self.ctx.n));
                out.push((target, self.rumors.clone()));
            }
        }

        fn pid(&self) -> ProcessId {
            self.ctx.pid
        }

        fn rumors(&self) -> &RumorSet {
            &self.rumors
        }

        fn is_quiescent(&self) -> bool {
            // Lazy processes "stop" once they have seen every rumor; in
            // phase 1 they never will, so quiescence also covers the idle
            // part of their period. This is enough for phase 1 to terminate:
            // a process that is between sends reports quiescence only if it
            // has nothing new to say.
            self.rumors.len() >= self.ctx.n || !self.steps.is_multiple_of(PERIOD)
        }

        fn steps_taken(&self) -> u64 {
            self.steps
        }
    }

    #[test]
    fn effective_f_is_capped_at_quarter_n() {
        assert_eq!(LowerBoundParams::new(64, 60, 0).effective_f(), 16);
        assert_eq!(LowerBoundParams::new(64, 8, 0).effective_f(), 8);
        assert_eq!(LowerBoundParams::new(64, 1, 0).effective_f(), 4);
    }

    #[test]
    fn trivial_protocol_is_forced_into_message_heavy_case() {
        let params = LowerBoundParams::new(64, 16, 3);
        let outcome = run_lower_bound(params, Trivial::new).unwrap();
        assert_eq!(outcome.case, LowerBoundCase::MessageHeavy);
        // Trivial sends ~n² messages: comfortably Ω(n + f²).
        assert!(outcome.messages_sent as f64 >= 0.5 * outcome.message_bound() as f64);
        assert!(outcome.dichotomy_holds(0.5, 0.25));
        assert_eq!(outcome.crashes_used, 0, "case 1 crashes nobody");
    }

    #[test]
    fn sears_is_forced_into_message_heavy_case() {
        let params = LowerBoundParams::new(64, 16, 5);
        let outcome = run_lower_bound(params, Sears::new).unwrap();
        // sears processes are highly promiscuous (Θ(n^ε log n) per step), so
        // unless phase 1 is already slow the adversary extracts messages.
        assert!(
            outcome.case == LowerBoundCase::MessageHeavy
                || outcome.case == LowerBoundCase::SlowStartup,
            "unexpected case {:?}",
            outcome.case
        );
        assert!(outcome.dichotomy_holds(0.25, 0.25), "{outcome:?}");
    }

    #[test]
    fn ears_hits_the_dichotomy() {
        let params = LowerBoundParams::new(64, 16, 7);
        let outcome = run_lower_bound(params, Ears::new).unwrap();
        // EARS either needs longer than f steps to quiesce S1 (slow) or its
        // one-message-per-step behaviour makes S2 promiscuous (message
        // heavy). Either way the dichotomy holds.
        assert!(outcome.dichotomy_holds(0.25, 0.25), "{outcome:?}");
    }

    #[test]
    fn lazy_protocol_is_forced_into_isolated_pair_case() {
        // f must be large enough that the promiscuity threshold f/32 exceeds
        // the single message LazyGossip sends during f/2 isolated steps.
        let params = LowerBoundParams::new(256, 64, 11);
        let outcome = run_lower_bound(params, LazyGossip::new).unwrap();
        assert_eq!(outcome.case, LowerBoundCase::IsolatedPair, "{outcome:?}");
        let (p, q) = outcome.pair.unwrap();
        assert_ne!(p, q);
        assert!(
            outcome.pair_still_ignorant,
            "the isolated pair must not have exchanged rumors"
        );
        // The slow branch of the dichotomy.
        assert!(outcome.elapsed_steps >= outcome.f as u64 / 2);
        assert!(outcome.dichotomy_holds(0.25, 0.25), "{outcome:?}");
        // Crash budget respected: fewer than f crashes.
        assert!(outcome.crashes_used < outcome.f);
    }

    #[test]
    fn outcome_bounds_are_consistent() {
        let outcome = LowerBoundOutcome {
            case: LowerBoundCase::MessageHeavy,
            n: 100,
            f: 25,
            messages_sent: 1000,
            elapsed_steps: 10,
            promiscuous: 10,
            crashes_used: 0,
            pair: None,
            pair_still_ignorant: false,
            phase1_steps: 5,
        };
        assert_eq!(outcome.message_bound(), 100 + 625);
        assert_eq!(outcome.time_bound(), 50);
        assert!(outcome.dichotomy_holds(1.0, 1.0));
        assert!(!outcome.dichotomy_holds(2.0, 1.0));
    }
}
