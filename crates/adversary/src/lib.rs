//! # agossip-adversary
//!
//! Adversaries for the asynchronous gossip model of
//! *"On the Complexity of Asynchronous Gossip"* (PODC 2008).
//!
//! Two families are provided:
//!
//! * [`oblivious`] — `(d, δ)`-bounded oblivious adversaries: all scheduling,
//!   delay and crash decisions are fixed (up to a pre-drawn random seed)
//!   before the execution begins. These drive the Table 1 / Table 2
//!   experiments, which hold w.h.p. against exactly this adversary class.
//! * [`theorem1`] — an executable implementation of the *adaptive* adversary
//!   constructed in the proof of Theorem 1. It observes the protocol's
//!   behaviour (and even simulates processes in isolation) to force every
//!   gossip algorithm into the paper's dichotomy: either `Ω(n + f²)`
//!   messages are sent, or the execution takes `Ω(f·(d+δ))` time.
//!
//! Two supporting modules round the family out: [`policies`] composes
//! oblivious scheduling and delay policies (worst-case delays, partition
//! slow-downs, skewed and round-robin schedules) into ready-to-run
//! adversaries for the robustness experiments, and [`recording`] wraps any
//! adversary to record its decisions and audit them against the claimed
//! `(d, δ, f)` bounds.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms, unreachable_pub)]
#![warn(missing_docs)]

pub mod oblivious;
pub mod policies;
pub mod probe;
pub mod recording;
pub mod theorem1;

pub use oblivious::{crash_patterns, CrashPattern, ObliviousPlan};
pub use policies::{DelayPolicy, PolicyAdversary, SchedulePolicy};
pub use probe::{probe_isolated, IsolationProbe};
pub use recording::{AdversaryTrace, RecordingAdversary, TraceDelay, TraceStep, TraceViolation};
pub use theorem1::{run_lower_bound, LowerBoundCase, LowerBoundOutcome, LowerBoundParams};
