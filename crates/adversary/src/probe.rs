//! Isolation probes — the adversary's crystal ball.
//!
//! The proof of Theorem 1 has the adaptive adversary "simulate the result of
//! process `p` receiving any messages from `S1`, and executing `f/2` local
//! steps in isolation" in order to classify `p` as *promiscuous* (it would
//! send at least `f/32` messages) or not, and to compute the set `N(p)` of
//! processes `p` is unlikely to contact.
//!
//! The adaptive adversary in our model is allowed to do exactly this: it
//! clones the process's state machine (including its RNG state) and runs the
//! clone forward without letting any of the clone's messages escape. Because
//! the execution is deterministic given the seed, the probe *predicts the
//! actual continuation exactly* — which only makes the adversary stronger
//! than the probabilistic argument in the paper requires.

use std::collections::BTreeSet;

use agossip_core::GossipEngine;
use agossip_sim::{Envelope, ProcessId};

/// The result of running a process clone in isolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsolationProbe {
    /// The probed process.
    pub pid: ProcessId,
    /// Number of local steps simulated.
    pub steps: u64,
    /// Total point-to-point messages the clone sent.
    pub messages_sent: u64,
    /// The distinct processes the clone sent at least one message to.
    pub contacted: BTreeSet<ProcessId>,
}

impl IsolationProbe {
    /// The paper's promiscuity predicate: the process would send at least
    /// `threshold` messages during the isolated steps.
    pub fn is_promiscuous(&self, threshold: u64) -> bool {
        self.messages_sent >= threshold
    }

    /// `N(p)` of the paper, specialised to the deterministic probe: the
    /// processes in `candidates` that the clone did *not* contact.
    pub fn uncontacted<'a>(
        &'a self,
        candidates: impl IntoIterator<Item = ProcessId> + 'a,
    ) -> impl Iterator<Item = ProcessId> + 'a {
        candidates
            .into_iter()
            .filter(move |q| !self.contacted.contains(q))
    }

    /// True if the clone never sent a message to `q`.
    pub fn avoids(&self, q: ProcessId) -> bool {
        !self.contacted.contains(&q)
    }
}

/// Clones `engine`, delivers `pending` to the clone, then runs it for
/// `steps` local steps in isolation (its outgoing messages are observed but
/// never delivered to anyone, and it receives nothing further).
pub fn probe_isolated<G>(engine: &G, pending: &[Envelope<G::Msg>], steps: u64) -> IsolationProbe
where
    G: GossipEngine + Clone,
{
    let mut clone = engine.clone();
    for env in pending {
        clone.deliver(env.from, env.payload.clone());
    }
    let mut messages_sent = 0u64;
    let mut contacted = BTreeSet::new();
    let mut out = Vec::new();
    for _ in 0..steps {
        out.clear();
        clone.local_step(&mut out);
        messages_sent += out.len() as u64;
        for (to, _) in &out {
            contacted.insert(*to);
        }
    }
    IsolationProbe {
        pid: engine.pid(),
        steps,
        messages_sent,
        contacted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agossip_core::{Ears, GossipCtx, Sears, Trivial};
    use agossip_sim::TimeStep;

    fn ctx(pid: usize, n: usize, f: usize) -> GossipCtx {
        GossipCtx::new(ProcessId(pid), n, f, 2024)
    }

    #[test]
    fn trivial_probe_contacts_everyone_in_one_step() {
        let engine = Trivial::new(ctx(0, 10, 2));
        let probe = probe_isolated(&engine, &[], 5);
        assert_eq!(probe.messages_sent, 9);
        assert_eq!(probe.contacted.len(), 9);
        assert!(probe.is_promiscuous(5));
        assert!(!probe.is_promiscuous(10));
        assert!(probe.avoids(ProcessId(0)));
    }

    #[test]
    fn probe_does_not_mutate_the_original() {
        let engine = Ears::new(ctx(0, 16, 4));
        let before_steps = engine.steps_taken();
        let _ = probe_isolated(&engine, &[], 10);
        assert_eq!(engine.steps_taken(), before_steps);
        assert!(!engine.is_quiescent());
    }

    #[test]
    fn ears_probe_sends_at_most_one_message_per_step() {
        let engine = Ears::new(ctx(3, 32, 8));
        let probe = probe_isolated(&engine, &[], 12);
        assert!(probe.messages_sent <= 12);
        assert!(probe.messages_sent >= 1);
    }

    #[test]
    fn sears_probe_is_promiscuous() {
        let n = 64;
        let engine = Sears::new(ctx(1, n, 16));
        let steps = 8;
        let probe = probe_isolated(&engine, &[], steps);
        // sears sends Θ(n^ε log n) per step; over 8 steps that dwarfs f/32.
        // f/32 rounds down to zero at f = 16, leaving a threshold of one.
        assert!(probe.is_promiscuous(1));
        assert!(probe.messages_sent as usize >= engine.fanout());
    }

    #[test]
    fn pending_messages_are_delivered_to_the_clone_only() {
        let engine = Ears::new(ctx(0, 8, 2));
        let other = Ears::new(ctx(1, 8, 2));
        let pending = vec![Envelope {
            from: ProcessId(1),
            to: ProcessId(0),
            sent_at: TimeStep(0),
            payload: agossip_core::EarsMessage {
                rumors: std::sync::Arc::new(other.rumors().clone()),
                informed: std::sync::Arc::new(other.informed().clone()),
            },
        }];
        let probe = probe_isolated(&engine, &pending, 4);
        assert_eq!(probe.pid, ProcessId(0));
        // The original never saw the pending message.
        assert!(!engine.rumors().contains_origin(ProcessId(1)));
        // The probe ran some steps.
        assert_eq!(probe.steps, 4);
    }

    #[test]
    fn uncontacted_lists_complement_of_contacts() {
        let engine = Trivial::new(ctx(0, 6, 1));
        let probe = probe_isolated(&engine, &[], 1);
        let uncontacted: Vec<_> = probe.uncontacted(ProcessId::all(6)).collect();
        // Trivial contacts everyone except itself.
        assert_eq!(uncontacted, vec![ProcessId(0)]);
    }
}
