//! Composable oblivious scheduling and delay policies.
//!
//! The reference [`FairObliviousAdversary`](agossip_sim::FairObliviousAdversary)
//! schedules every live process with probability `1/δ` and draws every delay
//! uniformly from `[1, d]`. The paper's bounds, however, hold for *every*
//! oblivious `(d, δ)`-adversary, so the robustness experiments exercise the
//! protocols under a wider family: always-worst-case delays, bimodal delays,
//! delays that slow down one side of a bipartition, round-robin and skewed
//! schedules. All policies here remain oblivious — their decisions are
//! functions of `(time, process identities)` and pre-seeded randomness only —
//! and they always honour the `(d, δ)` bounds.

use rand::rngs::StdRng;
use rand::Rng;

use agossip_sim::message::EnvelopeMeta;
use agossip_sim::rng::{derive_seed, RngStream};
use agossip_sim::{Adversary, ProcessId, StepPlan, SystemView, TimeStep};
use rand::SeedableRng;

/// How the adversary assigns delivery delays, always within `[1, d]`.
#[derive(Debug, Clone, PartialEq)]
pub enum DelayPolicy {
    /// Independent uniform delay in `[1, d]` per message.
    Uniform,
    /// Every message takes exactly the maximum delay `d`.
    AlwaysMax,
    /// A fraction of messages (chosen independently at random) take the
    /// maximum delay `d`; the rest are delivered with delay 1.
    Bimodal {
        /// Probability that a message is "slow".
        slow_fraction: f64,
    },
    /// Messages crossing the boundary between processes `< boundary` and
    /// processes `≥ boundary` take the maximum delay `d`; messages within a
    /// side are delivered with delay 1. This models a slow link between two
    /// datacentres.
    CrossPartitionSlow {
        /// First process index of the second partition.
        boundary: usize,
    },
}

/// How the adversary chooses which processes take a local step.
///
/// Every policy is `δ`-fair: a live process whose gap since its previous step
/// has reached `δ − 1` is always scheduled, so the executions produced are
/// genuine `(d, δ)`-bounded executions.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulePolicy {
    /// Every live process takes a step at every time step (the fastest
    /// execution the model allows; equivalent to `δ = 1`).
    EveryStep,
    /// Each live process is scheduled independently with probability `1/δ`
    /// per step (the reference behaviour).
    FairRandom,
    /// A fixed-size window of process identifiers rotates through `[n]`; only
    /// processes in the window are scheduled voluntarily.
    RoundRobin {
        /// Number of processes scheduled voluntarily per step.
        per_step: usize,
    },
    /// Processes in `slow` are only ever scheduled when `δ`-fairness forces
    /// it; everyone else steps every time step. This starves a subset as hard
    /// as an oblivious adversary can.
    Skewed {
        /// The processes to starve.
        slow: Vec<ProcessId>,
    },
}

/// An oblivious `(d, δ)`-adversary assembled from a [`SchedulePolicy`], a
/// [`DelayPolicy`] and a pre-committed crash plan.
#[derive(Debug, Clone)]
pub struct PolicyAdversary {
    d: u64,
    delta: u64,
    schedule: SchedulePolicy,
    delay: DelayPolicy,
    crash_plan: Vec<(TimeStep, ProcessId)>,
    rng: StdRng,
    rr_cursor: usize,
}

impl PolicyAdversary {
    /// Creates an adversary honouring bounds `d` and `delta` with the given
    /// policies, deriving randomness from `seed`, with no crashes.
    pub fn new(
        d: u64,
        delta: u64,
        seed: u64,
        schedule: SchedulePolicy,
        delay: DelayPolicy,
    ) -> Self {
        PolicyAdversary {
            d: d.max(1),
            delta: delta.max(1),
            schedule,
            delay,
            crash_plan: Vec::new(),
            rng: StdRng::seed_from_u64(derive_seed(seed, RngStream::Adversary) ^ 0x9e3779b9),
            rr_cursor: 0,
        }
    }

    /// Installs a pre-committed crash plan (pairs of time and victim).
    pub fn with_crashes(
        mut self,
        crashes: impl IntoIterator<Item = (TimeStep, ProcessId)>,
    ) -> Self {
        self.crash_plan.extend(crashes);
        self.crash_plan.sort_by_key(|(t, _)| *t);
        self
    }

    /// The delivery bound this adversary honours.
    pub fn d(&self) -> u64 {
        self.d
    }

    /// The scheduling bound this adversary honours.
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// The schedule policy in effect.
    pub fn schedule_policy(&self) -> &SchedulePolicy {
        &self.schedule
    }

    /// The delay policy in effect.
    pub fn delay_policy(&self) -> &DelayPolicy {
        &self.delay
    }

    fn voluntary(&mut self, pid: ProcessId, view: &SystemView<'_>) -> bool {
        match &self.schedule {
            SchedulePolicy::EveryStep => true,
            SchedulePolicy::FairRandom => self.rng.gen_range(0..self.delta) == 0,
            SchedulePolicy::RoundRobin { per_step } => {
                let per_step = (*per_step).clamp(1, view.n);
                let start = self.rr_cursor % view.n;
                let idx = pid.index();
                let offset = (idx + view.n - start) % view.n;
                offset < per_step
            }
            SchedulePolicy::Skewed { slow } => !slow.contains(&pid),
        }
    }
}

impl Adversary for PolicyAdversary {
    fn plan_step(&mut self, view: &SystemView<'_>) -> StepPlan {
        let mut schedule = Vec::new();
        let alive: Vec<ProcessId> = view.alive().collect();
        for pid in alive {
            let gap = view.now.since(view.last_scheduled[pid.index()]);
            let forced = gap + 1 >= self.delta;
            if forced || self.voluntary(pid, view) {
                schedule.push(pid);
            }
        }
        if let SchedulePolicy::RoundRobin { per_step } = &self.schedule {
            let advance = (*per_step).clamp(1, view.n.max(1));
            self.rr_cursor = (self.rr_cursor + advance) % view.n.max(1);
        }
        let crash = self
            .crash_plan
            .iter()
            .filter(|(t, pid)| *t <= view.now && view.statuses[pid.index()].is_alive())
            .map(|(_, pid)| *pid)
            .collect();
        StepPlan { schedule, crash }
    }

    fn message_delay(&mut self, meta: &EnvelopeMeta, _view: &SystemView<'_>) -> u64 {
        match &self.delay {
            DelayPolicy::Uniform => self.rng.gen_range(1..=self.d),
            DelayPolicy::AlwaysMax => self.d,
            DelayPolicy::Bimodal { slow_fraction } => {
                if self.rng.gen_bool(slow_fraction.clamp(0.0, 1.0)) {
                    self.d
                } else {
                    1
                }
            }
            DelayPolicy::CrossPartitionSlow { boundary } => {
                let crosses = (meta.from.index() < *boundary) != (meta.to.index() < *boundary);
                if crosses {
                    self.d
                } else {
                    1
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agossip_sim::ProcessStatus;

    fn view_fixture<'a>(
        now: TimeStep,
        statuses: &'a [ProcessStatus],
        sent: &'a [u64],
        last: &'a [TimeStep],
        quiescent: &'a [bool],
    ) -> SystemView<'a> {
        SystemView {
            now,
            n: statuses.len(),
            f: 1,
            statuses,
            sent_by: sent,
            last_scheduled: last,
            quiescent,
            in_flight: 0,
            crashes: 0,
        }
    }

    fn meta(from: usize, to: usize) -> EnvelopeMeta {
        EnvelopeMeta {
            from: ProcessId(from),
            to: ProcessId(to),
            sent_at: TimeStep(0),
        }
    }

    #[test]
    fn every_step_schedules_all_alive() {
        let statuses = [ProcessStatus::Alive; 4];
        let sent = [0; 4];
        let last = [TimeStep::ZERO; 4];
        let q = [false; 4];
        let view = view_fixture(TimeStep(0), &statuses, &sent, &last, &q);
        let mut adv =
            PolicyAdversary::new(1, 3, 1, SchedulePolicy::EveryStep, DelayPolicy::Uniform);
        assert_eq!(adv.plan_step(&view).schedule.len(), 4);
    }

    #[test]
    fn skewed_starves_slow_processes_until_forced() {
        let statuses = [ProcessStatus::Alive; 3];
        let sent = [0; 3];
        let q = [false; 3];
        let slow = vec![ProcessId(2)];
        let mut adv = PolicyAdversary::new(
            1,
            4,
            1,
            SchedulePolicy::Skewed { slow },
            DelayPolicy::Uniform,
        );
        // Recently scheduled: the slow process is left out.
        let last = [TimeStep(0); 3];
        let view = view_fixture(TimeStep(1), &statuses, &sent, &last, &q);
        let plan = adv.plan_step(&view);
        assert!(plan.schedule.contains(&ProcessId(0)));
        assert!(!plan.schedule.contains(&ProcessId(2)));
        // Overdue: δ-fairness forces it back in.
        let last = [TimeStep(5), TimeStep(5), TimeStep(2)];
        let view = view_fixture(TimeStep(5), &statuses, &sent, &last, &q);
        let plan = adv.plan_step(&view);
        assert!(plan.schedule.contains(&ProcessId(2)));
    }

    #[test]
    fn round_robin_rotates_the_window() {
        let statuses = [ProcessStatus::Alive; 6];
        let sent = [0; 6];
        let q = [false; 6];
        let mut adv = PolicyAdversary::new(
            1,
            100, // huge delta so fairness never forces anyone early
            1,
            SchedulePolicy::RoundRobin { per_step: 2 },
            DelayPolicy::Uniform,
        );
        let last = [TimeStep(0); 6];
        let view = view_fixture(TimeStep(1), &statuses, &sent, &last, &q);
        let first = adv.plan_step(&view).schedule;
        let second = adv.plan_step(&view).schedule;
        assert_eq!(first, vec![ProcessId(0), ProcessId(1)]);
        assert_eq!(second, vec![ProcessId(2), ProcessId(3)]);
    }

    #[test]
    fn all_delay_policies_respect_the_bound() {
        let statuses = [ProcessStatus::Alive; 4];
        let sent = [0; 4];
        let last = [TimeStep::ZERO; 4];
        let q = [false; 4];
        let view = view_fixture(TimeStep(0), &statuses, &sent, &last, &q);
        let policies = [
            DelayPolicy::Uniform,
            DelayPolicy::AlwaysMax,
            DelayPolicy::Bimodal { slow_fraction: 0.5 },
            DelayPolicy::CrossPartitionSlow { boundary: 2 },
        ];
        for policy in policies {
            let mut adv = PolicyAdversary::new(7, 2, 3, SchedulePolicy::FairRandom, policy.clone());
            for trial in 0..100 {
                let m = meta(trial % 4, (trial + 1) % 4);
                let delay = adv.message_delay(&m, &view);
                assert!((1..=7).contains(&delay), "{policy:?} produced {delay}");
            }
        }
    }

    #[test]
    fn cross_partition_slows_only_crossing_messages() {
        let statuses = [ProcessStatus::Alive; 4];
        let sent = [0; 4];
        let last = [TimeStep::ZERO; 4];
        let q = [false; 4];
        let view = view_fixture(TimeStep(0), &statuses, &sent, &last, &q);
        let mut adv = PolicyAdversary::new(
            9,
            1,
            3,
            SchedulePolicy::EveryStep,
            DelayPolicy::CrossPartitionSlow { boundary: 2 },
        );
        assert_eq!(adv.message_delay(&meta(0, 1), &view), 1);
        assert_eq!(adv.message_delay(&meta(2, 3), &view), 1);
        assert_eq!(adv.message_delay(&meta(1, 2), &view), 9);
        assert_eq!(adv.message_delay(&meta(3, 0), &view), 9);
    }

    #[test]
    fn always_max_is_constant() {
        let statuses = [ProcessStatus::Alive; 2];
        let sent = [0; 2];
        let last = [TimeStep::ZERO; 2];
        let q = [false; 2];
        let view = view_fixture(TimeStep(0), &statuses, &sent, &last, &q);
        let mut adv =
            PolicyAdversary::new(6, 1, 3, SchedulePolicy::EveryStep, DelayPolicy::AlwaysMax);
        for _ in 0..10 {
            assert_eq!(adv.message_delay(&meta(0, 1), &view), 6);
        }
    }

    #[test]
    fn crash_plan_is_applied_when_due() {
        let statuses = [ProcessStatus::Alive; 3];
        let sent = [0; 3];
        let last = [TimeStep::ZERO; 3];
        let q = [false; 3];
        let mut adv =
            PolicyAdversary::new(1, 1, 3, SchedulePolicy::EveryStep, DelayPolicy::Uniform)
                .with_crashes([(TimeStep(2), ProcessId(1))]);
        let early = view_fixture(TimeStep(1), &statuses, &sent, &last, &q);
        assert!(adv.plan_step(&early).crash.is_empty());
        let due = view_fixture(TimeStep(2), &statuses, &sent, &last, &q);
        assert_eq!(adv.plan_step(&due).crash, vec![ProcessId(1)]);
    }

    #[test]
    fn accessors_report_configuration() {
        let adv = PolicyAdversary::new(4, 3, 9, SchedulePolicy::FairRandom, DelayPolicy::AlwaysMax);
        assert_eq!(adv.d(), 4);
        assert_eq!(adv.delta(), 3);
        assert_eq!(adv.schedule_policy(), &SchedulePolicy::FairRandom);
        assert_eq!(adv.delay_policy(), &DelayPolicy::AlwaysMax);
    }
}
