//! Recording wrapper and `(d, δ)`-compliance checking for adversaries.
//!
//! The paper's complexity statements are about `(d, δ)`-bounded executions:
//! every message is delivered within `d` time steps and every live process is
//! scheduled at least once in any window of `δ` steps. The experiments only
//! measure what the theorems bound if the adversary actually honours those
//! bounds, so [`RecordingAdversary`] wraps any [`Adversary`], records every
//! decision it makes, and [`AdversaryTrace::violations`] audits the record
//! against the claimed `(d, δ, f)`.

use agossip_sim::message::EnvelopeMeta;
use agossip_sim::{Adversary, ProcessId, StepPlan, SystemView, TimeStep};

/// One recorded scheduling decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// The time step the decision applies to.
    pub time: TimeStep,
    /// Processes the adversary scheduled.
    pub scheduled: Vec<ProcessId>,
    /// Processes the adversary crashed at this step.
    pub crashed: Vec<ProcessId>,
    /// Which processes were alive when the decision was made.
    pub alive: Vec<bool>,
}

/// One recorded delay decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceDelay {
    /// Sender of the delayed message.
    pub from: ProcessId,
    /// Recipient of the delayed message.
    pub to: ProcessId,
    /// Time the message was sent.
    pub sent_at: TimeStep,
    /// The delay the adversary assigned.
    pub delay: u64,
}

/// A violation of the claimed `(d, δ, f)` bounds found in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceViolation {
    /// A message was assigned a delay larger than `d` (or zero).
    DelayOutOfBounds {
        /// The offending delay decision.
        delay: TraceDelay,
        /// The claimed bound `d`.
        d: u64,
    },
    /// A live process went more than `δ` consecutive steps without being
    /// scheduled.
    ScheduleGapExceeded {
        /// The starved process.
        pid: ProcessId,
        /// When it was last scheduled before the gap.
        last_scheduled: TimeStep,
        /// The step at which the gap exceeded `δ`.
        observed_at: TimeStep,
        /// The claimed bound `δ`.
        delta: u64,
    },
    /// More than `f` distinct processes were crashed.
    CrashBudgetExceeded {
        /// Number of distinct crash victims in the trace.
        crashed: usize,
        /// The claimed budget `f`.
        f: usize,
    },
}

/// Everything an adversary decided during one execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdversaryTrace {
    /// The claimed delivery bound.
    pub d: u64,
    /// The claimed scheduling bound.
    pub delta: u64,
    /// The claimed crash budget.
    pub f: usize,
    /// Scheduling and crash decisions, in time order.
    pub steps: Vec<TraceStep>,
    /// Delay decisions, in the order they were made.
    pub delays: Vec<TraceDelay>,
}

impl AdversaryTrace {
    /// Creates an empty trace that will be audited against `(d, δ, f)`.
    pub fn new(d: u64, delta: u64, f: usize) -> Self {
        AdversaryTrace {
            d,
            delta,
            f,
            steps: Vec::new(),
            delays: Vec::new(),
        }
    }

    /// Number of recorded scheduling decisions.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty() && self.delays.is_empty()
    }

    /// The distinct processes crashed anywhere in the trace.
    pub fn crash_victims(&self) -> Vec<ProcessId> {
        let mut victims: Vec<ProcessId> =
            self.steps.iter().flat_map(|s| s.crashed.clone()).collect();
        victims.sort();
        victims.dedup();
        victims
    }

    /// Audits the trace against the claimed `(d, δ, f)`.
    ///
    /// Returns every violation found; an empty vector means the recorded
    /// execution is a genuine `(d, δ)`-bounded execution with at most `f`
    /// crashes.
    pub fn violations(&self) -> Vec<TraceViolation> {
        let mut violations = Vec::new();

        for delay in &self.delays {
            if delay.delay == 0 || delay.delay > self.d {
                violations.push(TraceViolation::DelayOutOfBounds {
                    delay: *delay,
                    d: self.d,
                });
            }
        }

        // δ-fairness: walk the steps in order and track, per process, when it
        // was last scheduled. A process only accrues starvation while it is
        // alive (crashed processes are exempt).
        let n = self.steps.iter().map(|s| s.alive.len()).max().unwrap_or(0);
        let mut last_scheduled = vec![TimeStep::ZERO; n];
        let mut reported = vec![false; n];
        for step in &self.steps {
            for pid in &step.scheduled {
                if pid.index() < n {
                    last_scheduled[pid.index()] = step.time;
                }
            }
            for i in 0..step.alive.len() {
                if !step.alive[i] || reported[i] {
                    continue;
                }
                let gap = step.time.since(last_scheduled[i]);
                if gap > self.delta {
                    violations.push(TraceViolation::ScheduleGapExceeded {
                        pid: ProcessId(i),
                        last_scheduled: last_scheduled[i],
                        observed_at: step.time,
                        delta: self.delta,
                    });
                    reported[i] = true;
                }
            }
        }

        let crashed = self.crash_victims().len();
        if crashed > self.f {
            violations.push(TraceViolation::CrashBudgetExceeded { crashed, f: self.f });
        }

        violations
    }

    /// True if the trace honours all three bounds.
    pub fn is_compliant(&self) -> bool {
        self.violations().is_empty()
    }
}

/// Wraps an adversary, recording every decision it makes.
///
/// The wrapper is transparent: it forwards every call to the inner adversary
/// unchanged, so measurements taken with and without recording are identical
/// for the same seed.
#[derive(Debug, Clone)]
pub struct RecordingAdversary<A> {
    inner: A,
    trace: AdversaryTrace,
}

impl<A: Adversary> RecordingAdversary<A> {
    /// Wraps `inner`, auditing against the claimed `(d, δ, f)`.
    pub fn new(inner: A, d: u64, delta: u64, f: usize) -> Self {
        RecordingAdversary {
            inner,
            trace: AdversaryTrace::new(d, delta, f),
        }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &AdversaryTrace {
        &self.trace
    }

    /// Consumes the wrapper and returns the trace.
    pub fn into_trace(self) -> AdversaryTrace {
        self.trace
    }

    /// Read access to the wrapped adversary.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: Adversary> Adversary for RecordingAdversary<A> {
    fn plan_step(&mut self, view: &SystemView<'_>) -> StepPlan {
        let plan = self.inner.plan_step(view);
        self.trace.steps.push(TraceStep {
            time: view.now,
            scheduled: plan.schedule.clone(),
            crashed: plan.crash.clone(),
            alive: view.statuses.iter().map(|s| s.is_alive()).collect(),
        });
        plan
    }

    fn message_delay(&mut self, meta: &EnvelopeMeta, view: &SystemView<'_>) -> u64 {
        let delay = self.inner.message_delay(meta, view);
        self.trace.delays.push(TraceDelay {
            from: meta.from,
            to: meta.to,
            sent_at: meta.sent_at,
            delay,
        });
        delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agossip_sim::{FairObliviousAdversary, ProcessStatus};

    fn step(time: u64, scheduled: &[usize], crashed: &[usize], alive: &[bool]) -> TraceStep {
        TraceStep {
            time: TimeStep(time),
            scheduled: scheduled.iter().map(|&i| ProcessId(i)).collect(),
            crashed: crashed.iter().map(|&i| ProcessId(i)).collect(),
            alive: alive.to_vec(),
        }
    }

    #[test]
    fn empty_trace_is_compliant() {
        let trace = AdversaryTrace::new(2, 2, 1);
        assert!(trace.is_empty());
        assert!(trace.is_compliant());
    }

    #[test]
    fn delay_above_d_is_a_violation() {
        let mut trace = AdversaryTrace::new(3, 1, 0);
        trace.delays.push(TraceDelay {
            from: ProcessId(0),
            to: ProcessId(1),
            sent_at: TimeStep(0),
            delay: 4,
        });
        let violations = trace.violations();
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            violations[0],
            TraceViolation::DelayOutOfBounds { d: 3, .. }
        ));
    }

    #[test]
    fn zero_delay_is_a_violation() {
        let mut trace = AdversaryTrace::new(3, 1, 0);
        trace.delays.push(TraceDelay {
            from: ProcessId(0),
            to: ProcessId(1),
            sent_at: TimeStep(0),
            delay: 0,
        });
        assert!(!trace.is_compliant());
    }

    #[test]
    fn starving_a_live_process_is_a_violation() {
        let mut trace = AdversaryTrace::new(1, 2, 0);
        // Process 1 is alive but never scheduled; by time 3 its gap is 3 > 2.
        trace.steps.push(step(0, &[0, 1], &[], &[true, true]));
        trace.steps.push(step(1, &[0], &[], &[true, true]));
        trace.steps.push(step(2, &[0], &[], &[true, true]));
        trace.steps.push(step(3, &[0], &[], &[true, true]));
        let violations = trace.violations();
        assert!(violations.iter().any(|v| matches!(
            v,
            TraceViolation::ScheduleGapExceeded {
                pid: ProcessId(1),
                ..
            }
        )));
    }

    #[test]
    fn crashed_processes_are_exempt_from_fairness() {
        let mut trace = AdversaryTrace::new(1, 2, 1);
        trace.steps.push(step(0, &[0, 1], &[], &[true, true]));
        trace.steps.push(step(1, &[0], &[1], &[true, true]));
        trace.steps.push(step(4, &[0], &[], &[true, false]));
        trace.steps.push(step(7, &[0], &[], &[true, false]));
        assert!(trace.is_compliant(), "{:?}", trace.violations());
    }

    #[test]
    fn crash_budget_is_enforced() {
        let mut trace = AdversaryTrace::new(1, 10, 1);
        trace
            .steps
            .push(step(0, &[0], &[1, 2], &[true, true, true]));
        let violations = trace.violations();
        assert!(violations
            .iter()
            .any(|v| matches!(v, TraceViolation::CrashBudgetExceeded { crashed: 2, f: 1 })));
        assert_eq!(trace.crash_victims(), vec![ProcessId(1), ProcessId(2)]);
    }

    #[test]
    fn recording_wrapper_is_transparent_and_records() {
        let statuses = [ProcessStatus::Alive; 3];
        let sent = [0u64; 3];
        let last = [TimeStep::ZERO; 3];
        let quiescent = [false; 3];
        let view = SystemView {
            now: TimeStep(0),
            n: 3,
            f: 1,
            statuses: &statuses,
            sent_by: &sent,
            last_scheduled: &last,
            quiescent: &quiescent,
            in_flight: 0,
            crashes: 0,
        };
        let mut plain = FairObliviousAdversary::new(2, 1, 42);
        let mut recorded = RecordingAdversary::new(FairObliviousAdversary::new(2, 1, 42), 2, 1, 1);
        let p1 = plain.plan_step(&view);
        let p2 = recorded.plan_step(&view);
        assert_eq!(p1, p2, "wrapper must not perturb decisions");
        assert_eq!(recorded.trace().len(), 1);

        let meta = EnvelopeMeta {
            from: ProcessId(0),
            to: ProcessId(1),
            sent_at: TimeStep(0),
        };
        let d1 = plain.message_delay(&meta, &view);
        let d2 = recorded.message_delay(&meta, &view);
        assert_eq!(d1, d2);
        let trace = recorded.into_trace();
        assert_eq!(trace.delays.len(), 1);
        assert!(trace.is_compliant());
    }
}
