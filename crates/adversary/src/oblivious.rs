//! Oblivious `(d, δ)`-adversary construction helpers.
//!
//! An oblivious adversary commits to its schedule, its crash pattern, and its
//! delay choices before the execution starts. The simulator's
//! [`FairObliviousAdversary`] already implements the schedule/delay part;
//! this module adds reusable *crash patterns* and a small builder so
//! experiments can say "uniform delays up to `d`, `δ`-fair scheduling, crash
//! half the processes during the first `w` steps" in one line.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use agossip_sim::rng::{derive_seed, RngStream};
use agossip_sim::{FairObliviousAdversary, ProcessId, SimConfig, TimeStep};

/// A pre-committed crash pattern: which processes crash, and when.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashPattern {
    /// The planned crashes as `(time, victim)` pairs.
    pub crashes: Vec<(TimeStep, ProcessId)>,
}

impl CrashPattern {
    /// No crashes.
    pub fn none() -> Self {
        CrashPattern {
            crashes: Vec::new(),
        }
    }

    /// Number of planned crashes.
    pub fn len(&self) -> usize {
        self.crashes.len()
    }

    /// True if no crash is planned.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
    }

    /// The victims, in crash-time order.
    pub fn victims(&self) -> Vec<ProcessId> {
        let mut sorted = self.crashes.clone();
        sorted.sort_by_key(|(t, _)| *t);
        sorted.into_iter().map(|(_, p)| p).collect()
    }
}

/// Generators for common crash patterns. All are deterministic functions of
/// their arguments (including the seed), hence oblivious.
pub mod crash_patterns {
    use super::*;

    /// Crashes `f` distinct processes, chosen uniformly at random, at times
    /// drawn uniformly from `[0, window)`.
    pub fn random(n: usize, f: usize, window: u64, seed: u64) -> CrashPattern {
        let f = f.min(n.saturating_sub(1));
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, RngStream::Adversary));
        let mut ids: Vec<ProcessId> = ProcessId::all(n).collect();
        ids.shuffle(&mut rng);
        let crashes = ids
            .into_iter()
            .take(f)
            .map(|pid| (TimeStep(rng.gen_range(0..window.max(1))), pid))
            .collect();
        CrashPattern { crashes }
    }

    /// Crashes the `f` highest-numbered processes at time zero — the worst
    /// case for protocols whose progress depends on a fixed core staying
    /// alive from the start.
    pub fn immediate_suffix(n: usize, f: usize) -> CrashPattern {
        let f = f.min(n.saturating_sub(1));
        let crashes = (n - f..n).map(|i| (TimeStep::ZERO, ProcessId(i))).collect();
        CrashPattern { crashes }
    }

    /// Crashes `f` random processes in evenly spaced "epochs": one crash
    /// every `spacing` steps. This is the pattern used in the EARS analysis
    /// (Section 3.2), where each epoch loses at most a constant fraction of
    /// the remaining processes.
    pub fn staggered(n: usize, f: usize, spacing: u64, seed: u64) -> CrashPattern {
        let f = f.min(n.saturating_sub(1));
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, RngStream::Adversary) ^ 0x51a6);
        let mut ids: Vec<ProcessId> = ProcessId::all(n).collect();
        ids.shuffle(&mut rng);
        let crashes = ids
            .into_iter()
            .take(f)
            .enumerate()
            .map(|(i, pid)| (TimeStep(i as u64 * spacing.max(1)), pid))
            .collect();
        CrashPattern { crashes }
    }
}

/// Builder bundling the three oblivious choices (delays, scheduling, crashes)
/// into a ready-to-run [`FairObliviousAdversary`].
#[derive(Debug, Clone)]
pub struct ObliviousPlan {
    d: u64,
    delta: u64,
    seed: u64,
    crash_pattern: CrashPattern,
}

impl ObliviousPlan {
    /// Starts a plan honouring the bounds in `config` and using its seed.
    pub fn from_config(config: &SimConfig) -> Self {
        ObliviousPlan {
            d: config.d,
            delta: config.delta,
            seed: config.seed,
            crash_pattern: CrashPattern::none(),
        }
    }

    /// Starts a plan with explicit bounds and seed.
    pub fn new(d: u64, delta: u64, seed: u64) -> Self {
        ObliviousPlan {
            d,
            delta,
            seed,
            crash_pattern: CrashPattern::none(),
        }
    }

    /// Installs a crash pattern.
    pub fn with_crashes(mut self, pattern: CrashPattern) -> Self {
        self.crash_pattern = pattern;
        self
    }

    /// The crash pattern currently installed.
    pub fn crash_pattern(&self) -> &CrashPattern {
        &self.crash_pattern
    }

    /// Builds the adversary.
    pub fn build(&self) -> FairObliviousAdversary {
        FairObliviousAdversary::new(self.d, self.delta, self.seed)
            .with_crashes(self.crash_pattern.crashes.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_pattern_has_f_distinct_victims_within_window() {
        let pattern = crash_patterns::random(32, 10, 20, 7);
        assert_eq!(pattern.len(), 10);
        let mut victims = pattern.victims();
        victims.sort();
        victims.dedup();
        assert_eq!(victims.len(), 10, "victims must be distinct");
        assert!(pattern.crashes.iter().all(|(t, _)| t.as_u64() < 20));
    }

    #[test]
    fn random_pattern_caps_f_below_n() {
        let pattern = crash_patterns::random(4, 10, 5, 1);
        assert_eq!(pattern.len(), 3);
    }

    #[test]
    fn random_pattern_is_deterministic_per_seed() {
        let a = crash_patterns::random(16, 5, 10, 3);
        let b = crash_patterns::random(16, 5, 10, 3);
        let c = crash_patterns::random(16, 5, 10, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn immediate_suffix_crashes_last_f_processes_at_time_zero() {
        let pattern = crash_patterns::immediate_suffix(8, 3);
        assert_eq!(pattern.len(), 3);
        assert!(pattern.crashes.iter().all(|(t, _)| *t == TimeStep::ZERO));
        let mut victims = pattern.victims();
        victims.sort();
        assert_eq!(victims, vec![ProcessId(5), ProcessId(6), ProcessId(7)]);
    }

    #[test]
    fn staggered_spaces_crashes_out() {
        let pattern = crash_patterns::staggered(16, 4, 10, 5);
        assert_eq!(pattern.len(), 4);
        let mut times: Vec<u64> = pattern.crashes.iter().map(|(t, _)| t.as_u64()).collect();
        times.sort_unstable();
        assert_eq!(times, vec![0, 10, 20, 30]);
    }

    #[test]
    fn plan_builds_adversary_with_bounds() {
        let plan = ObliviousPlan::new(4, 2, 9).with_crashes(crash_patterns::immediate_suffix(8, 2));
        assert_eq!(plan.crash_pattern().len(), 2);
        let adv = plan.build();
        assert_eq!(adv.d(), 4);
        assert_eq!(adv.delta(), 2);
    }

    #[test]
    fn plan_from_config_inherits_bounds() {
        let cfg = SimConfig::new(8, 2).with_d(5).with_delta(3).with_seed(11);
        let plan = ObliviousPlan::from_config(&cfg);
        let adv = plan.build();
        assert_eq!(adv.d(), 5);
        assert_eq!(adv.delta(), 3);
    }

    #[test]
    fn empty_pattern_reports_empty() {
        assert!(CrashPattern::none().is_empty());
        assert_eq!(CrashPattern::none().len(), 0);
    }
}
