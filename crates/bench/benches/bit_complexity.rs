//! Bit complexity (Section 7 open question) — wire units per protocol.
//!
//! Times one gossip execution per protocol and system size while the
//! accompanying sweep measures total wire units (rumor-entry equivalents), so
//! the message-count / bit-volume trade-off between the Table 1 protocols can
//! be compared.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agossip_analysis::experiments::bit_complexity::{
    bit_complexity_rows, bit_complexity_to_table, wire_unit_exponent,
};
use agossip_analysis::experiments::{run_one_gossip, GossipProtocolKind};
use agossip_analysis::sweep::TrialPool;
use agossip_bench::small_scale;

fn bench_bit_complexity(c: &mut Criterion) {
    let scale = small_scale();
    let mut group = c.benchmark_group("bit_complexity");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in GossipProtocolKind::table1_rows() {
        let n = *scale.n_values.last().expect("scale has sizes");
        let config = scale.config_for(n, 0);
        group.bench_with_input(BenchmarkId::new(kind.name(), n), &config, |b, config| {
            b.iter(|| run_one_gossip(kind, config).expect("gossip run failed"))
        });
    }
    group.finish();

    let rows =
        bit_complexity_rows(&TrialPool::serial(), &scale).expect("bit-complexity sweep failed");
    println!("\n{}", bit_complexity_to_table(&rows).render());
    for kind in GossipProtocolKind::table1_rows() {
        if let Some(fit) = wire_unit_exponent(&rows, kind.name()) {
            println!(
                "wire units for {:8} ≈ c·n^{:.2} (R² = {:.3})",
                kind.name(),
                fit.exponent,
                fit.r_squared
            );
        }
    }
}

criterion_group!(benches, bench_bit_complexity);
criterion_main!(benches);
