//! Scheduler hot loop — steps/sec of the simulation engine itself.
//!
//! Unlike the paper-artifact benches, this target measures the *engine*: how
//! fast `Simulation` executes global time steps under the event-indexed
//! network, independent of any particular protocol's asymptotics. Three
//! groups:
//!
//! * `oblivious` — the common experiment hot loop (reference adversary,
//!   chatter protocol, `d = 4`, `δ = 2`).
//! * `withheld` — queues that only ever grow (every message withheld), the
//!   historical worst case for the delivery scan.
//! * `idle_fast_forward` — a one-shot flood with a large delivery bound,
//!   with and without idle fast-forward, showing the win from jumping over
//!   quiescent windows.
//!
//! `scheduler_baseline` (a `--bin` in this crate) runs the same workloads
//! outside criterion and emits the `BENCH_scheduler.json` numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agossip_bench::hotloop::{run_oblivious, run_withheld};
use agossip_sim::{FairObliviousAdversary, ProcessId, SimConfig, Simulation, StopReason};

/// One-shot flood used by the idle fast-forward group: everyone sends once,
/// then the run is pure idle waiting interleaved with deliveries.
mod flood {
    use agossip_sim::{Envelope, Outbox, Process, ProcessId, TimeStep};

    #[derive(Debug, Clone)]
    pub struct OneShotFlood {
        pub id: ProcessId,
        pub n: usize,
        pub sent: bool,
    }

    impl Process for OneShotFlood {
        type Message = u64;

        fn on_step(
            &mut self,
            _now: TimeStep,
            inbox: &mut Vec<Envelope<Self::Message>>,
            out: &mut Outbox<Self::Message>,
        ) {
            inbox.clear();
            if !self.sent {
                self.sent = true;
                for q in ProcessId::all(self.n) {
                    if q != self.id {
                        out.send(q, 0);
                    }
                }
            }
        }

        fn is_quiescent(&self) -> bool {
            self.sent
        }
    }
}

fn idle_flood_run(n: usize, d: u64, fast_forward: bool) {
    let config = SimConfig::new(n, 0)
        .with_d(d)
        .with_delta(2)
        .with_seed(2008)
        .with_idle_fast_forward(fast_forward);
    let processes = ProcessId::all(n)
        .map(|id| flood::OneShotFlood { id, n, sent: false })
        .collect();
    let mut sim: Simulation<flood::OneShotFlood> = Simulation::new(config, processes).unwrap();
    let mut adversary = FairObliviousAdversary::new(d, 2, 2008);
    let outcome = sim.run_with(&mut adversary).expect("flood run failed");
    assert_eq!(outcome.reason, StopReason::Quiescent);
}

fn bench_scheduler_hot_loop(c: &mut Criterion) {
    let steps = 256u64;

    let mut group = c.benchmark_group("scheduler_hot_loop");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[64usize, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("oblivious", n), &n, |b, &n| {
            b.iter(|| run_oblivious(n, steps))
        });
        group.bench_with_input(BenchmarkId::new("withheld", n), &n, |b, &n| {
            b.iter(|| run_withheld(n, steps))
        });
    }
    for &ff in &[false, true] {
        let name = if ff { "idle_ff_on" } else { "idle_ff_off" };
        group.bench_with_input(BenchmarkId::new(name, 256), &ff, |b, &ff| {
            b.iter(|| idle_flood_run(256, 512, ff))
        });
    }
    group.finish();

    // Print the steps/sec table once, mirroring scheduler_baseline.
    for &n in &[64usize, 256, 1024] {
        println!(
            "scheduler_hot_loop n={n}: oblivious {:.0} steps/s, withheld {:.0} steps/s",
            run_oblivious(n, steps),
            run_withheld(n, steps),
        );
    }
}

criterion_group!(benches, bench_scheduler_hot_loop);
criterion_main!(benches);
