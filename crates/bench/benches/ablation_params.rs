//! Ablation benches — sweeping the hidden `Θ(·)` constants.
//!
//! Times `ears` executions across shut-down-phase lengths and `sears`
//! executions across fan-out factors (the two constants with the largest cost
//! impact), then prints the full ablation table (including the `tears`
//! `a`/`κ` sweeps) for EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agossip_analysis::experiments::ablation::{ablation_rows, ablation_to_table, AblationKnob};
use agossip_analysis::experiments::ExperimentScale;
use agossip_analysis::sweep::TrialPool;
use agossip_core::{run_gossip, Ears, EarsParams, GossipSpec, Sears, SearsParams};
use agossip_sim::FairObliviousAdversary;

fn ablation_scale() -> ExperimentScale {
    ExperimentScale {
        n_values: vec![96],
        trials: 2,
        failure_fraction: 0.25,
        d: 2,
        delta: 2,
        seed: 2008,
        idle_fast_forward: false,
    }
}

fn bench_ablation(c: &mut Criterion) {
    let scale = ablation_scale();
    let n = scale.n_values[0];

    let mut group = c.benchmark_group("ablation_ears_shutdown");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for factor in AblationKnob::EarsShutdownFactor.sweep() {
        let config = scale.config_for(n, 0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{factor}")),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut adversary =
                        FairObliviousAdversary::new(config.d, config.delta, config.seed);
                    let params = EarsParams {
                        shutdown_factor: factor,
                    };
                    run_gossip(config, GossipSpec::Full, &mut adversary, move |ctx| {
                        Ears::with_params(ctx, params)
                    })
                    .expect("ears run failed")
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_sears_fanout");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for factor in AblationKnob::SearsFanoutFactor.sweep() {
        let config = scale.config_for(n, 0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{factor}")),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut adversary =
                        FairObliviousAdversary::new(config.d, config.delta, config.seed);
                    let params = SearsParams {
                        fanout_factor: factor,
                        ..SearsParams::default()
                    };
                    run_gossip(config, GossipSpec::Full, &mut adversary, move |ctx| {
                        Sears::with_params(ctx, params)
                    })
                    .expect("sears run failed")
                })
            },
        );
    }
    group.finish();

    let rows = ablation_rows(&TrialPool::serial(), &scale).expect("ablation sweep failed");
    println!("\n{}", ablation_to_table(&rows).render());
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
