//! Theorem 7 — the `ε` trade-off of `sears`.
//!
//! Times `sears` executions at several values of `ε` and prints the measured
//! time/message trade-off table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agossip_analysis::experiments::sears_sweep::{
    default_epsilons, sears_sweep_rows, sears_sweep_to_table,
};
use agossip_analysis::experiments::{run_one_gossip, GossipProtocolKind};
use agossip_analysis::sweep::TrialPool;
use agossip_bench::bench_scale;

fn bench_sears_epsilon(c: &mut Criterion) {
    let scale = bench_scale();
    let n = *scale.n_values.iter().max().unwrap();
    let mut group = c.benchmark_group("sears_epsilon");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for epsilon in default_epsilons() {
        let config = scale.config_for(n, 0);
        group.bench_with_input(
            BenchmarkId::new("epsilon", format!("{epsilon:.2}")),
            &config,
            |b, config| {
                b.iter(|| {
                    run_one_gossip(GossipProtocolKind::Sears { epsilon }, config)
                        .expect("sears run failed")
                })
            },
        );
    }
    group.finish();

    let rows = sears_sweep_rows(&TrialPool::serial(), &scale, &default_epsilons())
        .expect("sears sweep failed");
    println!("\n{}", sears_sweep_to_table(&rows).render());
}

criterion_group!(benches, bench_sears_epsilon);
criterion_main!(benches);
