//! Robustness bench — the Table 1 protocols across the oblivious adversary
//! family (worst-case delays, slow cross-partition link, skewed and
//! round-robin schedules).
//!
//! Times `ears` under each adversary environment, then prints the full
//! protocol × environment grid for EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agossip_adversary::PolicyAdversary;
use agossip_analysis::experiments::robustness::{
    default_environments, robustness_rows, robustness_to_table,
};
use agossip_analysis::experiments::ExperimentScale;
use agossip_analysis::sweep::TrialPool;
use agossip_core::{run_gossip, Ears, GossipSpec};

fn robustness_scale() -> ExperimentScale {
    ExperimentScale {
        n_values: vec![96],
        trials: 2,
        failure_fraction: 0.25,
        d: 3,
        delta: 2,
        seed: 2008,
        idle_fast_forward: false,
    }
}

fn bench_robustness(c: &mut Criterion) {
    let scale = robustness_scale();
    let n = scale.n_values[0];
    let mut group = c.benchmark_group("adversary_robustness_ears");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for env in default_environments(n) {
        let config = scale.config_for(n, 0);
        group.bench_with_input(
            BenchmarkId::from_parameter(env.name),
            &config,
            |b, config| {
                b.iter(|| {
                    let mut adversary = PolicyAdversary::new(
                        config.d,
                        config.delta,
                        config.seed,
                        env.schedule.clone(),
                        env.delay.clone(),
                    );
                    run_gossip(config, GossipSpec::Full, &mut adversary, Ears::new)
                        .expect("ears run failed")
                })
            },
        );
    }
    group.finish();

    let rows = robustness_rows(&TrialPool::serial(), &scale).expect("robustness sweep failed");
    println!("\n{}", robustness_to_table(&rows).render());
}

criterion_group!(benches, bench_robustness);
criterion_main!(benches);
