//! Table 1 — gossip protocols under an oblivious adversary.
//!
//! For every protocol row of the paper's Table 1 this bench times one full
//! gossip execution per system size, and afterwards prints the measured table
//! (messages and normalized completion times) so the rows can be compared
//! with the paper's asymptotic claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agossip_analysis::experiments::{
    run_one_gossip, table1_rows, table1_to_table, GossipProtocolKind,
};
use agossip_analysis::sweep::TrialPool;
use agossip_bench::bench_scale;

fn bench_table1(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("table1_gossip");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in GossipProtocolKind::table1_rows() {
        for &n in &scale.n_values {
            // The quadratic baseline gets too slow above 128 processes.
            if matches!(kind, GossipProtocolKind::Trivial) && n > 128 {
                continue;
            }
            let config = scale.config_for(n, 0);
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &config, |b, config| {
                b.iter(|| run_one_gossip(kind, config).expect("gossip run failed"))
            });
        }
    }
    group.finish();

    // Regenerate the measured table once and print it.
    let rows = table1_rows(&TrialPool::serial(), &scale).expect("table 1 sweep failed");
    println!("\n{}", table1_to_table(&rows).render());
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
