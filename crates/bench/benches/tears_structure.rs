//! Lemmas 8–11 — structural properties of `tears`.
//!
//! Times `tears` executions and prints the structural table: neighbourhood
//! concentration (Lemma 8), widely-held rumors (Lemma 9), per-process
//! majority coverage (Theorem 12), and the message count against the
//! `n^{7/4} log²n` reference.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agossip_analysis::experiments::tears_lemmas::{run_tears_structure, tears_structure_to_table};
use agossip_analysis::experiments::{run_one_gossip, GossipProtocolKind};
use agossip_bench::bench_scale;

fn bench_tears_structure(c: &mut Criterion) {
    let scale = bench_scale();
    let mut group = c.benchmark_group("tears_structure");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &scale.n_values {
        let config = scale.config_for(n, 0);
        group.bench_with_input(BenchmarkId::new("tears", n), &config, |b, config| {
            b.iter(|| run_one_gossip(GossipProtocolKind::Tears, config).expect("tears run failed"))
        });
    }
    group.finish();

    let rows: Vec<_> = scale
        .n_values
        .iter()
        .map(|&n| run_tears_structure(n, scale.f_for(n), scale.seed).expect("tears structure run"))
        .collect();
    println!("\n{}", tears_structure_to_table(&rows).render());
}

criterion_group!(benches, bench_tears_structure);
criterion_main!(benches);
