//! Theorem 1 / Figure 1 — the adaptive-adversary lower bound.
//!
//! Times the constructed execution of the Theorem 1 adversary against each
//! full-gossip protocol and prints the dichotomy table (messages vs `n + f²`,
//! steps vs `f(d+δ)`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agossip_adversary::theorem1::{run_lower_bound, LowerBoundParams};
use agossip_analysis::experiments::lower_bound::{lower_bound_rows, lower_bound_to_table};
use agossip_analysis::sweep::TrialPool;
use agossip_core::{Ears, Sears, Trivial};

fn bench_lower_bound(c: &mut Criterion) {
    let sizes = [64usize, 128, 256];
    let mut group = c.benchmark_group("theorem1_lower_bound");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &sizes {
        let params = LowerBoundParams::new(n, n / 4, 2008);
        group.bench_with_input(BenchmarkId::new("trivial", n), &params, |b, &params| {
            b.iter(|| run_lower_bound(params, Trivial::new).expect("lower bound run"))
        });
        group.bench_with_input(BenchmarkId::new("ears", n), &params, |b, &params| {
            b.iter(|| run_lower_bound(params, Ears::new).expect("lower bound run"))
        });
        group.bench_with_input(BenchmarkId::new("sears", n), &params, |b, &params| {
            b.iter(|| run_lower_bound(params, Sears::new).expect("lower bound run"))
        });
    }
    group.finish();

    let rows = lower_bound_rows(&TrialPool::serial(), &sizes, 2008).expect("lower bound sweep");
    println!("\n{}", lower_bound_to_table(&rows).render());
}

criterion_group!(benches, bench_lower_bound);
criterion_main!(benches);
