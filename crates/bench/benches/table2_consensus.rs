//! Table 2 — consensus protocols built on gossip-based get-core.
//!
//! Times one consensus execution per protocol and system size, then prints
//! the measured Table 2 (latency, messages, rounds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agossip_analysis::experiments::table2::{table2_protocols, table2_rows, table2_to_table};
use agossip_analysis::sweep::TrialPool;
use agossip_bench::small_scale;
use agossip_consensus::run_consensus;
use agossip_sim::FairObliviousAdversary;

fn bench_table2(c: &mut Criterion) {
    let scale = small_scale();
    let mut group = c.benchmark_group("table2_consensus");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for protocol in table2_protocols() {
        for &n in &scale.n_values {
            let config = scale.config_for(n, 0);
            let inputs: Vec<u64> = (0..n).map(|i| (i % 2) as u64).collect();
            group.bench_with_input(
                BenchmarkId::new(protocol.name(), n),
                &config,
                |b, config| {
                    b.iter(|| {
                        let mut adversary =
                            FairObliviousAdversary::new(config.d, config.delta, config.seed);
                        run_consensus(config, protocol, &inputs, &mut adversary)
                            .expect("consensus run failed")
                    })
                },
            );
        }
    }
    group.finish();

    let rows = table2_rows(&TrialPool::serial(), &scale).expect("table 2 sweep failed");
    println!("\n{}", table2_to_table(&rows).render());
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
