//! Corollary 2 — the cost of asynchrony.
//!
//! Times the synchronous baseline against the asynchronous protocols at
//! `d = δ = 1` and prints the time and message ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use agossip_analysis::experiments::coa::{coa_rows, coa_to_table};
use agossip_analysis::experiments::{run_one_gossip, GossipProtocolKind};
use agossip_analysis::sweep::TrialPool;
use agossip_bench::small_scale;

fn bench_coa(c: &mut Criterion) {
    let scale = small_scale();
    let mut group = c.benchmark_group("cost_of_asynchrony");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for kind in [
        GossipProtocolKind::SyncEpidemic,
        GossipProtocolKind::Ears,
        GossipProtocolKind::Trivial,
    ] {
        for &n in &scale.n_values {
            let config = scale.config_for(n, 0).with_d(1).with_delta(1);
            group.bench_with_input(BenchmarkId::new(kind.name(), n), &config, |b, config| {
                b.iter(|| run_one_gossip(kind, config).expect("gossip run failed"))
            });
        }
    }
    group.finish();

    let rows = coa_rows(&TrialPool::serial(), &scale).expect("cost-of-asynchrony sweep failed");
    println!("\n{}", coa_to_table(&rows).render());
}

criterion_group!(benches, bench_coa);
criterion_main!(benches);
