//! RumorSet micro-benchmarks — the dense word-packed representation against
//! the historical `BTreeMap` baseline, at n ∈ {256, 1024, 4096}.
//!
//! Five groups, each measuring one hot operation of the gossip inner loop:
//!
//! * `union` — pure merge into an already-superset accumulator (the
//!   steady-state `deliver` path, no allocation on either side);
//! * `clone_union` — clone + merge, what one pre-rework broadcast
//!   destination cost;
//! * `insert` — build a set one rumor at a time;
//! * `contains` — origin membership probes across the whole universe;
//! * `iter` — a full origin-ordered walk (what the checkers and the
//!   consensus vote counting do).
//!
//! `rumor_baseline` (a `--bin` in this crate) runs the same workloads
//! outside criterion and emits the `BENCH_rumorset.json` numbers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use agossip_bench::rumorset::{btree_evens, btree_odds, dense_evens, dense_odds};
use agossip_core::{Rumor, RumorSet};
use agossip_sim::ProcessId;

const SIZES: [usize; 3] = [256, 1024, 4096];

fn bench_union(c: &mut Criterion) {
    // Pure merge into an already-superset accumulator (the steady-state
    // deliver path) — no allocation on either side.
    let mut group = c.benchmark_group("rumor_set_union");
    for n in SIZES {
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, &n| {
            let mut acc = dense_evens(n);
            let odds = dense_odds(n);
            acc.union(&odds);
            b.iter(|| {
                black_box(acc.union(&odds));
                black_box(acc.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("btreemap_baseline", n), &n, |b, &n| {
            let mut acc = btree_evens(n);
            let odds = btree_odds(n);
            acc.union(&odds);
            b.iter(|| {
                black_box(acc.union(&odds));
                black_box(acc.len())
            });
        });
    }
    group.finish();
}

fn bench_clone_union(c: &mut Criterion) {
    // Clone + merge: what one pre-rework broadcast destination cost.
    let mut group = c.benchmark_group("rumor_set_clone_union");
    for n in SIZES {
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, &n| {
            let evens = dense_evens(n);
            let odds = dense_odds(n);
            b.iter(|| {
                let mut acc = evens.clone();
                black_box(acc.union(&odds));
                black_box(acc.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("btreemap_baseline", n), &n, |b, &n| {
            let evens = btree_evens(n);
            let odds = btree_odds(n);
            b.iter(|| {
                let mut acc = evens.clone();
                black_box(acc.union(&odds));
                black_box(acc.len())
            });
        });
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("rumor_set_insert");
    for n in SIZES {
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = RumorSet::new();
                for i in 0..n {
                    s.insert(Rumor::new(ProcessId(i), i as u64));
                }
                black_box(s.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("btreemap_baseline", n), &n, |b, &n| {
            b.iter(|| {
                let mut s = agossip_bench::rumorset::BTreeRumorSet::default();
                for i in 0..n {
                    s.insert(Rumor::new(ProcessId(i), i as u64));
                }
                black_box(s.len())
            });
        });
    }
    group.finish();
}

fn bench_contains(c: &mut Criterion) {
    let mut group = c.benchmark_group("rumor_set_contains");
    for n in SIZES {
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, &n| {
            let s = dense_evens(n);
            b.iter(|| {
                let mut hits = 0usize;
                for i in 0..n {
                    hits += s.contains_origin(ProcessId(i)) as usize;
                }
                black_box(hits)
            });
        });
        group.bench_with_input(BenchmarkId::new("btreemap_baseline", n), &n, |b, &n| {
            let s = btree_evens(n);
            b.iter(|| {
                let mut hits = 0usize;
                for i in 0..n {
                    hits += s.contains_origin(ProcessId(i)) as usize;
                }
                black_box(hits)
            });
        });
    }
    group.finish();
}

fn bench_iter(c: &mut Criterion) {
    let mut group = c.benchmark_group("rumor_set_iter");
    for n in SIZES {
        group.bench_with_input(BenchmarkId::new("dense", n), &n, |b, &n| {
            let s = dense_evens(n);
            b.iter(|| black_box(s.iter().map(|r| r.payload).sum::<u64>()));
        });
        group.bench_with_input(BenchmarkId::new("btreemap_baseline", n), &n, |b, &n| {
            let s = btree_evens(n);
            b.iter(|| black_box(s.iter().map(|r| r.payload).sum::<u64>()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_union,
    bench_clone_union,
    bench_insert,
    bench_contains,
    bench_iter
);
criterion_main!(benches);
