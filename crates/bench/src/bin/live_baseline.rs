//! Throughput runner for the `live_scale` scenario: checker-verified
//! lockstep `tears` runs with every process live — real byte frames through
//! the wire codec over the in-process channel transport — multiplexed onto
//! a handful of reactor threads (`agossip_runtime::reactor`).
//!
//! Emits one JSON object per line, suitable for appending to
//! `BENCH_live.json` at the repository root (the trajectory the
//! `bench_check` CI gate compares against):
//!
//! * `messages_per_sec` — encoded frames through the transport per
//!   wall-clock second (send-side count; every frame is also decoded and
//!   delivered, so this measures the full encode → enqueue → reassemble →
//!   decode → deliver path);
//! * `bytes_per_sec` — encoded payload bytes through the transport per
//!   wall-clock second;
//! * `peak_rss_mib` — the process's peak RSS from `/proc/self/status`
//!   `VmHWM` after the trial.
//!
//! Sizes run in ascending order so each `VmHWM` reading is dominated by its
//! own trial. Every trial carries the full `live_scale` crash schedule (16
//! staggered crashes at the default sizes) and is asserted checker-verified
//! (majority gathering, validity, quiescence, zero decode errors) — the
//! binary aborts otherwise.
//!
//! Usage: `cargo run --release -p agossip-bench --bin live_baseline --
//! [--n A,B,C] [--reactors R] [--seed S] [label]`

use agossip_analysis::experiments::live::run_live_scale_trial;

/// Peak resident set size of this process so far, in MiB, from `VmHWM`
/// (`None` off Linux).
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024.0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n_values: Vec<usize> = vec![512, 1024, 4096];
    let mut reactors = 8usize;
    let mut seed = 2008u64;
    let mut label = "current".to_string();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--n" => {
                n_values = value_for("--n")
                    .split(',')
                    .map(|v| v.trim().parse().expect("--n: sizes must be integers"))
                    .collect();
            }
            "--reactors" => {
                reactors = value_for("--reactors")
                    .parse()
                    .expect("--reactors: must be an integer");
            }
            "--seed" => {
                seed = value_for("--seed")
                    .parse()
                    .expect("--seed: must be an integer");
            }
            other if !other.starts_with("--") => label = other.to_string(),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: live_baseline [--n A,B,C] [--reactors R] [--seed S] [label]");
                std::process::exit(2);
            }
        }
    }

    // Ascending n: each VmHWM reading is dominated by its own trial.
    n_values.sort_unstable();
    for &n in &n_values {
        let row = run_live_scale_trial(n, reactors, seed).expect("live_scale trial must run");
        assert!(
            row.ok,
            "live_scale trial at n = {n} failed its correctness check"
        );
        let rss = peak_rss_mib().unwrap_or(-1.0);
        println!(
            "{{\"label\": \"{label}\", \"n\": {n}, \"f\": {f}, \"reactors\": {reactors}, \
             \"transport\": \"channel\", \"wall_secs\": {secs:.2}, \"ticks\": {ticks}, \
             \"messages\": {messages}, \"messages_per_sec\": {mps:.0}, \
             \"bytes\": {bytes}, \"bytes_per_sec\": {bps:.0}, \
             \"peak_rss_mib\": {rss:.0}, \"checker_ok\": true}}",
            f = row.f,
            secs = row.wall_secs,
            ticks = row.ticks,
            messages = row.messages,
            mps = row.messages_per_sec,
            bytes = row.bytes,
            bps = row.bytes_per_sec,
        );
    }
}
