//! Throughput and memory runner for the `scale` scenario: checker-verified
//! `tears` trials at `n ∈ {4 096, 16 384, 65 536}` with the scaled
//! constants of [`agossip_analysis::experiments::scale`].
//!
//! Emits one JSON object per line, suitable for appending to
//! `BENCH_scale.json` at the repository root (the trajectory the
//! `bench_check` CI gate compares against):
//!
//! * `steps_per_sec` — simulated global time steps per wall-clock second
//!   (the scenario completes in `O(d+δ)` steps, so this is dominated by the
//!   per-step delivery and union work — exactly what the adaptive-set and
//!   sharded-network layers are pinned on);
//! * `messages_per_sec` — delivered point-to-point messages per second;
//! * `peak_rss_mib` — the process's peak RSS from `/proc/self/status`
//!   `VmHWM` after the trial.
//!
//! Sizes run in ascending order so each `VmHWM` reading is dominated by its
//! own trial. Every trial is asserted checker-verified (majority gathering,
//! validity, quiescence) — the binary aborts otherwise.
//!
//! Usage: `cargo run --release -p agossip-bench --bin scale_baseline --
//! [--n A,B,C] [--a TARGET] [--d D] [--delta D] [label]`
//!
//! `--a`, `--d` and `--delta` are calibration knobs: they override the
//! per-size neighbourhood target (normally [`scale_tears_params`]) and the
//! delivery/step bounds of the grid, for exploring the coverage/memory
//! trade-off before a new calibration is committed. The committed baseline
//! is always recorded with none of them set.

use std::time::Instant;

use agossip_analysis::experiments::scale::{
    scale_default_scale, scale_tears_params, tears_params_for_a,
};
use agossip_analysis::{ScenarioSpec, TrialProtocol};

/// Peak resident set size of this process so far, in MiB, from `VmHWM`
/// (`None` off Linux).
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024.0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = scale_default_scale();
    let mut label = "current".to_string();
    let mut a_override: Option<f64> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--n" => {
                scale.n_values = value_for("--n")
                    .split(',')
                    .map(|v| v.trim().parse().expect("--n: sizes must be integers"))
                    .collect();
            }
            "--a" => {
                a_override = Some(value_for("--a").parse().expect("--a: must be a number"));
            }
            "--d" => {
                scale.d = value_for("--d").parse().expect("--d: must be an integer");
            }
            "--delta" => {
                scale.delta = value_for("--delta")
                    .parse()
                    .expect("--delta: must be an integer");
            }
            other if !other.starts_with("--") => label = other.to_string(),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: scale_baseline [--n A,B,C] [--a TARGET] [--d D] [--delta D] [label]"
                );
                std::process::exit(2);
            }
        }
    }

    // Ascending n: each VmHWM reading is dominated by its own trial.
    scale.n_values.sort_unstable();
    for &n in &scale.n_values {
        let params = match a_override {
            Some(a) => tears_params_for_a(n, a),
            None => scale_tears_params(n),
        };
        let spec = ScenarioSpec::from_scale(TrialProtocol::TearsWith(params), &scale, n);
        let start = Instant::now();
        let report = spec.run_trial(0).expect("scale tears trial must run");
        let secs = start.elapsed().as_secs_f64();
        assert!(
            report.ok,
            "scale tears trial at n = {n} failed its correctness check"
        );
        let steps = report.time_steps.expect("a verified trial is quiescent");
        let rss = peak_rss_mib().unwrap_or(-1.0);
        println!(
            "{{\"label\": \"{label}\", \"n\": {n}, \"a\": {a:.0}, \"d\": {d}, \
             \"wall_secs\": {secs:.2}, \"steps\": {steps}, \
             \"steps_per_sec\": {steps_per_sec:.3}, \
             \"messages\": {messages}, \"messages_per_sec\": {mps:.0}, \
             \"peak_rss_mib\": {rss:.0}, \"checker_ok\": true}}",
            a = params.a(n),
            d = scale.d,
            steps_per_sec = steps as f64 / secs,
            messages = report.messages,
            mps = report.messages as f64 / secs,
        );
    }
}
