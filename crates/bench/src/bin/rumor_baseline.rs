//! Old-vs-new throughput and memory runner for the dense `RumorSet` rework.
//!
//! Emits one JSON object per line, suitable for appending to
//! `BENCH_rumorset.json` at the repository root (the perf trajectory later
//! PRs compare against):
//!
//! * **micro** — ops/sec of `union` (pure merge into an
//!   already-superset accumulator, no allocation on either side),
//!   `clone_union` (clone + merge, what one pre-rework broadcast
//!   destination cost), `insert`, `contains` and `iter` at
//!   n ∈ {256, 1024, 4096}, dense word-packed representation vs the
//!   historical `BTreeMap` baseline (kept as an oracle in
//!   [`agossip_bench::rumorset`]);
//! * **macro** — the canonical Table 1 `tears` trial at `n = 128` (and, with
//!   `--large`, at `n = 256`): wall-clock seconds, messages, and the
//!   process's peak RSS from `/proc/self/status` `VmHWM` after the trial.
//!
//! The macro rows are run in ascending `n` order so each `VmHWM` reading is
//! dominated by its own trial. The pre-rework baseline figures for the same
//! trials (measured before the representation change) are recorded alongside
//! for the reduction factors.
//!
//! Usage: `cargo run --release -p agossip-bench --bin rumor_baseline
//! [--large] [label]`

use std::time::Instant;

use agossip_analysis::experiments::{ExperimentScale, GossipProtocolKind};
use agossip_analysis::{ScenarioSpec, TrialProtocol};
use agossip_bench::rumorset::{btree_evens, btree_odds, dense_evens, dense_odds, BTreeRumorSet};
use agossip_core::{Rumor, RumorSet};
use agossip_sim::ProcessId;

/// Times `op` over `iters` runs and returns ops/sec.
fn ops_per_sec<F: FnMut()>(iters: u64, mut op: F) -> f64 {
    // One warm-up run.
    op();
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

/// Peak resident set size of this process so far, in MiB, from `VmHWM`
/// (`None` off Linux).
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024.0)
}

fn micro(label: &str) {
    for &n in &[256usize, 1024, 4096] {
        let iters = (4_000_000 / n).max(64) as u64;

        let dense_a = dense_evens(n);
        let dense_b = dense_odds(n);
        let btree_a = btree_evens(n);
        let btree_b = btree_odds(n);

        // Pure merge, no allocation on either side: union into an
        // accumulator that is already a superset — the steady-state deliver
        // path where most incoming rumors are known.
        let mut dense_acc = dense_a.clone();
        dense_acc.union(&dense_b);
        let dense_union = ops_per_sec(iters, || {
            std::hint::black_box(dense_acc.union(&dense_b));
        });
        let mut btree_acc = btree_a.clone();
        btree_acc.union(&btree_b);
        let btree_union = ops_per_sec(iters, || {
            std::hint::black_box(btree_acc.union(&btree_b));
        });

        // Clone + merge: what one pre-rework broadcast destination cost
        // (the old code deep-cloned the sender's map per destination, and
        // the receiver merged it in).
        let dense_clone_union = ops_per_sec(iters, || {
            let mut acc = dense_a.clone();
            std::hint::black_box(acc.union(&dense_b));
        });
        let btree_clone_union = ops_per_sec(iters, || {
            let mut acc = btree_a.clone();
            std::hint::black_box(acc.union(&btree_b));
        });

        let dense_insert = ops_per_sec(iters, || {
            let mut s = RumorSet::new();
            for i in 0..n {
                s.insert(Rumor::new(ProcessId(i), i as u64));
            }
            std::hint::black_box(s.len());
        });
        let btree_insert = ops_per_sec(iters, || {
            let mut s = BTreeRumorSet::default();
            for i in 0..n {
                s.insert(Rumor::new(ProcessId(i), i as u64));
            }
            std::hint::black_box(s.len());
        });

        let dense_contains = ops_per_sec(iters, || {
            let mut hits = 0usize;
            for i in 0..n {
                hits += dense_a.contains_origin(ProcessId(i)) as usize;
            }
            std::hint::black_box(hits);
        });
        let btree_contains = ops_per_sec(iters, || {
            let mut hits = 0usize;
            for i in 0..n {
                hits += btree_a.contains_origin(ProcessId(i)) as usize;
            }
            std::hint::black_box(hits);
        });

        let dense_iter = ops_per_sec(iters, || {
            std::hint::black_box(dense_a.iter().map(|r| r.payload).sum::<u64>());
        });
        let btree_iter = ops_per_sec(iters, || {
            std::hint::black_box(btree_a.iter().map(|r| r.payload).sum::<u64>());
        });

        println!(
            "{{\"label\": \"{label}\", \"kind\": \"micro\", \"n\": {n}, \
             \"union_dense_per_sec\": {dense_union:.0}, \"union_btree_per_sec\": {btree_union:.0}, \
             \"union_speedup\": {:.1}, \
             \"clone_union_dense_per_sec\": {dense_clone_union:.0}, \"clone_union_btree_per_sec\": {btree_clone_union:.0}, \
             \"clone_union_speedup\": {:.1}, \
             \"insert_dense_per_sec\": {dense_insert:.0}, \"insert_btree_per_sec\": {btree_insert:.0}, \
             \"contains_dense_per_sec\": {dense_contains:.0}, \"contains_btree_per_sec\": {btree_contains:.0}, \
             \"iter_dense_per_sec\": {dense_iter:.0}, \"iter_btree_per_sec\": {btree_iter:.0}}}",
            dense_union / btree_union,
            dense_clone_union / btree_clone_union,
        );
    }
}

/// One canonical Table 1 `tears` trial (trial 0 of the reference scale) at
/// size `n`; prints wall-clock, messages and peak RSS.
fn tears_trial(label: &str, n: usize, baseline_note: &str) {
    let scale = ExperimentScale::default();
    let spec =
        ScenarioSpec::from_scale(TrialProtocol::Gossip(GossipProtocolKind::Tears), &scale, n);
    let start = Instant::now();
    let report = spec.run_trial(0).expect("tears trial must run");
    let secs = start.elapsed().as_secs_f64();
    assert!(report.ok, "tears trial failed its correctness check");
    let rss = peak_rss_mib().unwrap_or(-1.0);
    println!(
        "{{\"label\": \"{label}\", \"kind\": \"tears_trial\", \"n\": {n}, \
         \"wall_secs\": {secs:.1}, \"messages\": {}, \"wire_units\": {}, \
         \"peak_rss_mib\": {rss:.0}, \"pre_rework_baseline\": \"{baseline_note}\"}}",
        report.messages, report.wire_units,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let large = args.iter().any(|a| a == "--large");
    let label = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "current".into());

    micro(&label);
    tears_trial(&label, 128, "~20 GB RSS, minutes-scale (PR 3 measurement)");
    if large {
        tears_trial(
            &label,
            256,
            ">35 min, ~60 GB RSS (PR 3 measurement, excluded from default grid)",
        );
    }
}
