//! Trials-per-second runner for the parallel sweep engine.
//!
//! Runs the canonical Table 1 grid through
//! [`agossip_analysis::sweep::TrialPool`] twice — once on 1 worker, once on
//! `--threads` workers (default: all cores, floored at 4 so the scaling
//! claim is always exercised) — verifies that the two row sets are
//! bit-identical (the engine's determinism contract), and prints one JSON
//! object suitable for appending to `BENCH_sweep.json` at the repository
//! root.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p agossip-bench --bin sweep_baseline -- \
//!     [--threads N] [--trials N] [--toy] [--label NAME]
//! ```
//!
//! `--toy` shrinks the grid to a seconds-scale smoke test (this is what the
//! CI `sweep_smoke` job runs on 2 threads).

use std::num::NonZeroUsize;
use std::time::Instant;

use agossip_analysis::experiments::table1::table1_rows;
use agossip_analysis::experiments::{ExperimentScale, GossipProtocolKind};
use agossip_analysis::sweep::TrialPool;

struct Args {
    threads: usize,
    trials: Option<usize>,
    toy: bool,
    label: String,
}

const USAGE: &str = "usage: sweep_baseline [--threads N] [--trials N] [--toy] [--label NAME]";

fn bail(message: &str) -> ! {
    eprintln!("{message}\n{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        threads: 0,
        trials: None,
        toy: false,
        label: "current".into(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| {
            args.next()
                .unwrap_or_else(|| bail(&format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--threads" => {
                parsed.threads = value_for("--threads")
                    .parse()
                    .unwrap_or_else(|e| bail(&format!("--threads: {e}")));
            }
            "--trials" => {
                parsed.trials = Some(
                    value_for("--trials")
                        .parse()
                        .unwrap_or_else(|e| bail(&format!("--trials: {e}"))),
                );
            }
            "--toy" => parsed.toy = true,
            "--label" => parsed.label = value_for("--label"),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => bail(&format!("unknown argument: {other}")),
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    let mut scale = ExperimentScale {
        n_values: if args.toy {
            vec![16, 24]
        } else {
            vec![32, 64, 128]
        },
        trials: if args.toy { 4 } else { 8 },
        failure_fraction: 0.25,
        d: 2,
        delta: 2,
        seed: 2008,
        idle_fast_forward: false,
    };
    if let Some(trials) = args.trials {
        scale.trials = trials.max(1);
    }
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    // Floor at 4 so the 1-vs-many comparison always exercises a genuinely
    // sharded pool; on a box with fewer cores the extra workers interleave
    // on the available ones (results are identical either way — only the
    // speedup depends on the hardware).
    let workers = if args.threads > 0 {
        args.threads
    } else {
        cores.max(4)
    };

    let total_trials =
        GossipProtocolKind::table1_rows().len() * scale.n_values.len() * scale.trials;
    eprintln!(
        "table1 grid: n = {:?}, {} trials/point, {total_trials} trials total; \
         measuring 1 worker vs {workers} workers ({cores} core(s) available)",
        scale.n_values, scale.trials
    );

    let start = Instant::now();
    let serial_rows = table1_rows(&TrialPool::new(1), &scale).expect("serial sweep failed");
    let serial_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let sharded_rows = table1_rows(&TrialPool::new(workers), &scale).expect("sharded sweep failed");
    let sharded_secs = start.elapsed().as_secs_f64();

    let bit_identical =
        serial_rows == sharded_rows && format!("{serial_rows:?}") == format!("{sharded_rows:?}");
    assert!(
        bit_identical,
        "worker count changed the sweep output — determinism contract violated"
    );

    let n_values: Vec<String> = scale.n_values.iter().map(|n| n.to_string()).collect();
    println!(
        "{{\"label\": \"{label}\", \"scenario\": \"table1\", \"n_values\": [{n_values}], \
         \"trials_per_point\": {trials}, \"total_trials\": {total_trials}, \
         \"available_cores\": {cores}, \
         \"workers_1_secs\": {serial_secs:.2}, \"workers_1_trials_per_sec\": {serial_tps:.2}, \
         \"workers_n\": {workers}, \"workers_n_secs\": {sharded_secs:.2}, \
         \"workers_n_trials_per_sec\": {sharded_tps:.2}, \
         \"speedup\": {speedup:.2}, \"bit_identical\": {bit_identical}}}",
        label = args.label.replace('\\', "\\\\").replace('"', "\\\""),
        n_values = n_values.join(", "),
        trials = scale.trials,
        serial_tps = total_trials as f64 / serial_secs,
        sharded_tps = total_trials as f64 / sharded_secs,
        speedup = serial_secs / sharded_secs,
    );
}
