//! Sampling-friendly profiling harness for the live reactor hot path.
//!
//! Runs the canonical `live_scale` scenario — checker-verified lockstep
//! `tears` with crashes, real byte frames over the channel transport,
//! multiplexed onto reactor threads — in a single-scenario loop until a
//! target number of frames has gone through the transport. One fixed
//! workload, repeated back to back, is what a sampling profiler wants: the
//! encode → enqueue → reassemble → decode-view → batched-union path
//! dominates the profile instead of setup noise, and `--frames N` slices
//! the total work so a capture can be as short (CI smoke) or as long
//! (flamegraph session) as needed.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p agossip-bench --bin profile_live -- \
//!     [--n N] [--reactors R] [--seed S] [--frames F]
//! ```
//!
//! Flamegraph recipe (Linux, needs `perf` and the flamegraph scripts or
//! `cargo flamegraph` on the host — neither is a build dependency):
//!
//! ```text
//! cargo build --release -p agossip-bench --bin profile_live
//! perf record -F 997 --call-graph dwarf -- \
//!     target/release/profile_live --n 1024 --frames 2000000
//! perf report          # or: perf script | stackcollapse-perf | flamegraph
//! ```
//!
//! Every iteration is the full crash-schedule trial and is asserted
//! checker-verified; the binary exits non-zero on any correctness failure,
//! so CI can run it as a smoke gate (`--frames 10000`).

use agossip_analysis::experiments::live::run_live_scale_trial;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n = 1024usize;
    let mut reactors = 8usize;
    let mut seed = 2008u64;
    let mut frames = 1_000_000u64;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--n" => n = value_for("--n").parse().expect("--n: must be an integer"),
            "--reactors" => {
                reactors = value_for("--reactors")
                    .parse()
                    .expect("--reactors: must be an integer");
            }
            "--seed" => {
                seed = value_for("--seed")
                    .parse()
                    .expect("--seed: must be an integer");
            }
            "--frames" => {
                frames = value_for("--frames")
                    .parse()
                    .expect("--frames: must be an integer");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: profile_live [--n N] [--reactors R] [--seed S] [--frames F]");
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "profile_live: n = {n}, reactors = {reactors}, seed = {seed}, \
         target = {frames} frames; attach a sampler now (e.g. `perf record -p {pid}`)",
        pid = std::process::id()
    );

    let mut total_frames = 0u64;
    let mut total_bytes = 0u64;
    let mut total_secs = 0.0f64;
    let mut iterations = 0u64;
    while total_frames < frames {
        // A fresh seed per iteration keeps runs deterministic for a given
        // invocation while still varying the delivery interleavings the
        // profiler sees across the capture.
        let row = run_live_scale_trial(n, reactors, seed + iterations)
            .expect("live_scale trial must run");
        assert!(
            row.ok,
            "live_scale trial at n = {n}, seed = {} failed its correctness check",
            seed + iterations
        );
        total_frames += row.messages;
        total_bytes += row.bytes;
        total_secs += row.wall_secs;
        iterations += 1;
        eprintln!(
            "  iteration {iterations}: {m} frames in {s:.2}s ({total_frames}/{frames} total)",
            m = row.messages,
            s = row.wall_secs,
        );
    }

    println!(
        "{{\"bench\": \"profile_live\", \"n\": {n}, \"reactors\": {reactors}, \
         \"seed\": {seed}, \"iterations\": {iterations}, \"frames\": {total_frames}, \
         \"bytes\": {total_bytes}, \"wall_secs\": {total_secs:.2}, \
         \"messages_per_sec\": {mps:.0}, \"bytes_per_sec\": {bps:.0}, \"checker_ok\": true}}",
        mps = total_frames as f64 / total_secs,
        bps = total_bytes as f64 / total_secs,
    );
}
