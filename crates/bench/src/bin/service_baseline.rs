//! Throughput runner for the service mode: a pipelined multi-epoch
//! replicated rumor log over the live runtime — scaled `tears` inside every
//! epoch, real byte frames through the wire codec on reactor threads,
//! majority-checked per epoch (`agossip_runtime::service`).
//!
//! Each size runs under both admission disciplines:
//!
//! * **closed loop** — 32 epochs in flight, a fresh one admitted only when
//!   one finalizes (the completion-driven mode; pins peak pipelining);
//! * **open loop** — a fresh epoch every 2 lockstep ticks, window-capped
//!   (the arrival-rate mode; pins behaviour under sustained ingest).
//!
//! Emits one JSON object per line, suitable for appending to
//! `BENCH_service.json` at the repository root (the trajectory the
//! `bench_check` CI gate compares against):
//!
//! * `epochs_per_sec` — epochs finalized (settled, harvested, checked,
//!   freed) per wall-clock second;
//! * `messages_per_sec` — encoded frames through the transport per
//!   wall-clock second, across all concurrently open epochs;
//! * `p50_settle` / `p99_settle` — per-epoch settle latency percentiles in
//!   lockstep ticks, measured margin-free (admission to last observed
//!   activity);
//! * `peak_rss_mib` — the process's peak RSS from `/proc/self/status`
//!   `VmHWM` after the trial (live state must stay bounded by the window,
//!   not grow with the epoch count).
//!
//! Every run is asserted checker-verified per epoch — the binary aborts
//! otherwise.
//!
//! Usage: `cargo run --release -p agossip-bench --bin service_baseline --
//! [--n A,B,C] [--reactors R] [--seed S] [--epochs E] [label]`

use agossip_analysis::experiments::service::run_live_service_trial;
use agossip_core::LoopMode;

/// Peak resident set size of this process so far, in MiB, from `VmHWM`
/// (`None` off Linux).
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024.0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut n_values: Vec<usize> = vec![256, 1024];
    let mut reactors = 8usize;
    let mut seed = 2008u64;
    let mut epochs = 48u64;
    let mut label = "current".to_string();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value_for = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--n" => {
                n_values = value_for("--n")
                    .split(',')
                    .map(|v| v.trim().parse().expect("--n: sizes must be integers"))
                    .collect();
            }
            "--reactors" => {
                reactors = value_for("--reactors")
                    .parse()
                    .expect("--reactors: must be an integer");
            }
            "--seed" => {
                seed = value_for("--seed")
                    .parse()
                    .expect("--seed: must be an integer");
            }
            "--epochs" => {
                epochs = value_for("--epochs")
                    .parse()
                    .expect("--epochs: must be an integer");
            }
            other if !other.starts_with("--") => label = other.to_string(),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: service_baseline [--n A,B,C] [--reactors R] [--seed S] \
                     [--epochs E] [label]"
                );
                std::process::exit(2);
            }
        }
    }

    let modes = [
        LoopMode::Closed { in_flight: 32 },
        LoopMode::Open { period: 2 },
    ];

    // Ascending n: each VmHWM reading is dominated by its own trial.
    n_values.sort_unstable();
    for &n in &n_values {
        for mode in modes {
            let row = run_live_service_trial(n, reactors, seed, epochs, mode)
                .expect("service trial must run");
            assert!(
                row.ok,
                "service trial at n = {n} ({}) failed its per-epoch check",
                row.mode
            );
            let rss = peak_rss_mib().unwrap_or(-1.0);
            println!(
                "{{\"label\": \"{label}\", \"n\": {n}, \"reactors\": {reactors}, \
                 \"mode\": \"{mode}\", \"epochs\": {epochs}, \"ticks\": {ticks}, \
                 \"wall_secs\": {secs:.2}, \"epochs_per_sec\": {eps:.2}, \
                 \"messages\": {messages}, \"messages_per_sec\": {mps:.0}, \
                 \"p50_settle\": {p50}, \"p99_settle\": {p99}, \"max_open\": {max_open}, \
                 \"peak_rss_mib\": {rss:.0}, \"checker_ok\": true}}",
                mode = row.mode,
                epochs = row.epochs,
                ticks = row.ticks,
                secs = row.wall_secs,
                eps = row.epochs_per_sec,
                messages = row.messages,
                mps = row.messages_per_sec,
                p50 = row.p50,
                p99 = row.p99,
                max_open = row.max_open,
            );
        }
    }
}
