//! The CI bench-regression gate.
//!
//! Re-runs the scheduler, rumor-set, sweep and scale baselines at reduced
//! (but release-mode) scale and compares every pinned metric against the
//! committed `BENCH_*.json` trajectories at the repository root. The
//! tolerance is deliberately generous — the gate fails only when a pinned
//! row is more than `--factor` (default 2.5×) slower than its committed
//! value — so hardware jitter passes and only real regressions (an
//! accidental `O(n)` scan in the delivery path, a lost copy-on-write) trip
//! it.
//!
//! Fresh measurements are also written to `--out-dir` (default
//! `bench-artifacts/`) in the same shape as the baseline runners emit, so
//! the CI job can upload them as workflow artifacts and a slow drift stays
//! inspectable across runs.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p agossip-bench --bin bench_check -- \
//!     [--factor F] [--baseline-dir DIR] [--out-dir DIR]
//! ```
//!
//! Exit status: 0 = every pinned metric within tolerance, 1 = regression,
//! 2 = missing/unparseable baselines or bad arguments.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use agossip_analysis::experiments::live::run_live_scale_trial;
use agossip_analysis::experiments::scale::{scale_default_scale, scale_tears_params};
use agossip_analysis::experiments::service::run_live_service_trial;
use agossip_analysis::experiments::table1::table1_rows;
use agossip_analysis::experiments::ExperimentScale;
use agossip_analysis::sweep::TrialPool;
use agossip_analysis::{ScenarioSpec, TrialProtocol};
use agossip_bench::hotloop::{run_oblivious, run_withheld};
use agossip_bench::json::Json;
use agossip_bench::rumorset::{dense_evens, dense_odds};
use agossip_core::{LoopMode, Rumor, RumorSet};
use agossip_sim::ProcessId;

struct Args {
    factor: f64,
    baseline_dir: PathBuf,
    out_dir: PathBuf,
}

const USAGE: &str = "usage: bench_check [--factor F] [--baseline-dir DIR] [--out-dir DIR]";

fn bail(message: &str) -> ! {
    eprintln!("{message}\n{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut parsed = Args {
        factor: 2.5,
        // The committed baselines live at the repository root.
        baseline_dir: PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")),
        out_dir: PathBuf::from("bench-artifacts"),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| {
            args.next()
                .unwrap_or_else(|| bail(&format!("{flag} requires a value")))
        };
        match arg.as_str() {
            "--factor" => {
                parsed.factor = value_for("--factor")
                    .parse()
                    .unwrap_or_else(|e| bail(&format!("--factor: {e}")));
                if parsed.factor < 1.0 || parsed.factor.is_nan() {
                    bail("--factor must be ≥ 1");
                }
            }
            "--baseline-dir" => parsed.baseline_dir = value_for("--baseline-dir").into(),
            "--out-dir" => parsed.out_dir = value_for("--out-dir").into(),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => bail(&format!("unknown argument: {other}")),
        }
    }
    parsed
}

/// One pinned comparison: a committed throughput figure vs its fresh re-run.
struct Check {
    bench: &'static str,
    metric: String,
    committed: f64,
    fresh: f64,
}

impl Check {
    /// `fresh / committed`: below `1 / factor` is a regression.
    fn ratio(&self) -> f64 {
        self.fresh / self.committed
    }

    fn ok(&self, factor: f64) -> bool {
        self.ratio() >= 1.0 / factor
    }
}

fn load(dir: &std::path::Path, name: &str) -> Json {
    let path = dir.join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| bail(&format!("reading {}: {e}", path.display())));
    Json::parse(&text).unwrap_or_else(|e| bail(&format!("parsing {name}: {e}")))
}

/// The last run row matching `keep` — the latest committed measurement of
/// that configuration, which is what the gate compares against.
fn last_row(doc: &Json, keep: impl Fn(&Json) -> bool) -> Option<&Json> {
    doc.get("runs")?.as_array()?.iter().rfind(|r| keep(r))
}

fn committed_number(doc: &Json, keep: impl Fn(&Json) -> bool, metric: &str) -> Option<f64> {
    last_row(doc, keep)?.number(metric)
}

/// Times `op` over `iters` runs, best of three passes, and returns ops/sec.
///
/// A gate must not trip on scheduler jitter: one pass on a busy single-core
/// box can read an order of magnitude slow. The best pass is the closest
/// observable to the hardware's actual throughput.
fn ops_per_sec<F: FnMut()>(iters: u64, mut op: F) -> f64 {
    op(); // warm-up
    let mut best = 0.0f64;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            op();
        }
        best = best.max(iters as f64 / start.elapsed().as_secs_f64());
    }
    best
}

// ---------------------------------------------------------------------------
// Scheduler baseline
// ---------------------------------------------------------------------------

fn check_scheduler(doc: &Json, checks: &mut Vec<Check>, fresh_lines: &mut String) {
    // Must match the committed rows' step count: the withheld workload's
    // per-step cost grows with the step index (queues only grow), so a
    // shorter run would measure a cheaper prefix and loosen the gate.
    let steps = 512u64;
    for n in [64usize, 256, 1024] {
        // Best of three passes, like the micro measurements: the gate
        // compares against numbers measured on an idle box.
        let fresh_oblivious = (0..3).map(|_| run_oblivious(n, steps)).fold(0.0, f64::max);
        let fresh_withheld = (0..3).map(|_| run_withheld(n, steps)).fold(0.0, f64::max);
        writeln!(
            fresh_lines,
            "{{\"label\": \"bench_check\", \"n\": {n}, \"steps\": {steps}, \
             \"oblivious_steps_per_sec\": {fresh_oblivious:.1}, \
             \"withheld_steps_per_sec\": {fresh_withheld:.1}}}"
        )
        .expect("write to string");
        for (metric, fresh) in [
            ("oblivious_steps_per_sec", fresh_oblivious),
            ("withheld_steps_per_sec", fresh_withheld),
        ] {
            let row = |r: &Json| {
                r.number("n") == Some(n as f64)
                    && r.number("steps") == Some(steps as f64)
                    && r.number(metric).is_some()
            };
            match committed_number(doc, row, metric) {
                Some(committed) => checks.push(Check {
                    bench: "scheduler",
                    metric: format!("{metric} @ n={n}"),
                    committed,
                    fresh,
                }),
                None => bail(&format!(
                    "BENCH_scheduler.json has no {metric} row at n={n}"
                )),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// RumorSet baseline (dense-representation micro rows)
// ---------------------------------------------------------------------------

fn check_rumorset(doc: &Json, checks: &mut Vec<Check>, fresh_lines: &mut String) {
    for n in [256usize, 1024] {
        let iters = (1_000_000 / n).max(64) as u64;
        let dense_a = dense_evens(n);
        let dense_b = dense_odds(n);
        let mut acc = dense_a.clone();
        acc.union(&dense_b);
        let union = ops_per_sec(iters, || {
            std::hint::black_box(acc.union(&dense_b));
        });
        let clone_union = ops_per_sec(iters, || {
            let mut fresh_acc = dense_a.clone();
            std::hint::black_box(fresh_acc.union(&dense_b));
        });
        let insert = ops_per_sec(iters, || {
            let mut s = RumorSet::new();
            for i in 0..n {
                s.insert(Rumor::new(ProcessId(i), i as u64));
            }
            std::hint::black_box(s.len());
        });
        let contains = ops_per_sec(iters, || {
            let mut hits = 0usize;
            for i in 0..n {
                hits += dense_a.contains_origin(ProcessId(i)) as usize;
            }
            std::hint::black_box(hits);
        });
        let iter = ops_per_sec(iters, || {
            std::hint::black_box(dense_a.iter().map(|r| r.payload).sum::<u64>());
        });
        writeln!(
            fresh_lines,
            "{{\"label\": \"bench_check\", \"kind\": \"micro\", \"n\": {n}, \
             \"union_dense_per_sec\": {union:.0}, \
             \"clone_union_dense_per_sec\": {clone_union:.0}, \
             \"insert_dense_per_sec\": {insert:.0}, \
             \"contains_dense_per_sec\": {contains:.0}, \
             \"iter_dense_per_sec\": {iter:.0}}}"
        )
        .expect("write to string");
        for (metric, fresh) in [
            ("union_dense_per_sec", union),
            ("clone_union_dense_per_sec", clone_union),
            ("insert_dense_per_sec", insert),
            ("contains_dense_per_sec", contains),
            ("iter_dense_per_sec", iter),
        ] {
            let row = |r: &Json| {
                r.get("kind").and_then(Json::as_str) == Some("micro")
                    && r.number("n") == Some(n as f64)
            };
            match committed_number(doc, row, metric) {
                Some(committed) => checks.push(Check {
                    bench: "rumorset",
                    metric: format!("{metric} @ n={n}"),
                    committed,
                    fresh,
                }),
                None => bail(&format!(
                    "BENCH_rumorset.json has no micro {metric} at n={n}"
                )),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sweep baseline (toy grid, serial worker)
// ---------------------------------------------------------------------------

fn check_sweep(doc: &Json, checks: &mut Vec<Check>, fresh_lines: &mut String) {
    // The toy grid of `sweep_baseline --toy`: n ∈ {16, 24}, 4 trials/point.
    let scale = ExperimentScale {
        n_values: vec![16, 24],
        trials: 4,
        failure_fraction: 0.25,
        d: 2,
        delta: 2,
        seed: 2008,
        idle_fast_forward: false,
    };
    let total_trials = 4 * scale.n_values.len() * scale.trials; // 4 table1 protocols
    let start = Instant::now();
    let rows = table1_rows(&TrialPool::new(1), &scale)
        .unwrap_or_else(|e| bail(&format!("toy sweep failed: {e}")));
    let secs = start.elapsed().as_secs_f64();
    assert!(!rows.is_empty());
    let fresh = total_trials as f64 / secs;
    writeln!(
        fresh_lines,
        "{{\"label\": \"bench_check\", \"n_values\": [16, 24], \"trials_per_point\": 4, \
         \"total_trials\": {total_trials}, \"workers_1_secs\": {secs:.2}, \
         \"workers_1_trials_per_sec\": {fresh:.2}}}"
    )
    .expect("write to string");
    let toy_row = |r: &Json| {
        r.get("n_values")
            .and_then(Json::as_array)
            .is_some_and(|ns| {
                ns.iter().filter_map(Json::as_f64).collect::<Vec<_>>() == [16.0, 24.0]
            })
            && r.number("trials_per_point") == Some(4.0)
    };
    match committed_number(doc, toy_row, "workers_1_trials_per_sec") {
        Some(committed) => checks.push(Check {
            bench: "sweep",
            metric: "workers_1_trials_per_sec (toy grid)".into(),
            committed,
            fresh,
        }),
        None => bail("BENCH_sweep.json has no toy-grid row (n_values = [16, 24], 4 trials)"),
    }
}

// ---------------------------------------------------------------------------
// Scale baseline (checker-verified tears at n = 4 096 with scaled constants)
// ---------------------------------------------------------------------------

fn check_scale(doc: &Json, checks: &mut Vec<Check>, fresh_lines: &mut String) {
    // Only the smallest point of the scale grid is re-run here: the gate
    // must stay minutes-cheap, and a regression in the adaptive-set or
    // sharded-scheduler hot paths shows up at n = 4 096 just as it would at
    // 65 536 (the committed larger rows are regenerated via the
    // `scale_baseline` binary when the trajectory is refreshed).
    let n = 4096usize;
    let mut scale = scale_default_scale();
    scale.n_values = vec![n];
    let spec = ScenarioSpec::from_scale(TrialProtocol::TearsWith(scale_tears_params(n)), &scale, n);
    let start = Instant::now();
    let report = spec
        .run_trial(0)
        .unwrap_or_else(|e| bail(&format!("scale tears trial failed to run: {e}")));
    let secs = start.elapsed().as_secs_f64();
    if !report.ok {
        bail(&format!(
            "the scale tears trial at n = {n} failed its correctness check"
        ));
    }
    let steps = report.time_steps.expect("a verified trial is quiescent");
    let fresh = steps as f64 / secs;
    writeln!(
        fresh_lines,
        "{{\"label\": \"bench_check\", \"n\": {n}, \"steps\": {steps}, \
         \"wall_secs\": {secs:.2}, \"steps_per_sec\": {fresh:.3}, \"checker_ok\": true}}"
    )
    .expect("write to string");
    let row = |r: &Json| r.number("n") == Some(n as f64);
    match committed_number(doc, row, "steps_per_sec") {
        Some(committed) => checks.push(Check {
            bench: "scale",
            metric: format!("steps_per_sec @ n={n} (scaled tears)"),
            committed,
            fresh,
        }),
        None => bail(&format!("BENCH_scale.json has no row at n={n}")),
    }
}

// ---------------------------------------------------------------------------
// Live baseline (reactor runtime: checker-verified lockstep tears at n = 512)
// ---------------------------------------------------------------------------

fn check_live(doc: &Json, checks: &mut Vec<Check>, fresh_lines: &mut String) {
    // Only the two smallest committed points are re-run: the per-frame
    // reactor path — encode, enqueue, flush, reassemble, decode-view,
    // batched deliver — regresses at n = 512 and 1024 exactly as it would
    // at 4096, and the gate must stay minutes-cheap. The n = 1024 point
    // additionally pins bytes_per_sec: its second-level tears bodies are
    // large enough that a lost zero-copy (a per-destination body clone, a
    // re-decode) shows up in byte throughput before it moves the frame
    // rate. The n = 4096 committed row is regenerated via the
    // `live_baseline` binary when the trajectory is refreshed.
    let reactors = 8usize;
    for (n, pin_bytes) in [(512usize, false), (1024, true)] {
        // Best of three runs, like the other wall-clock gates: the fresh
        // number is compared against one measured on an idle box.
        let mut best: Option<agossip_analysis::experiments::live::LiveScaleRow> = None;
        for _ in 0..3 {
            let row = run_live_scale_trial(n, reactors, 2008)
                .unwrap_or_else(|e| bail(&format!("live_scale trial failed to run: {e}")));
            if !row.ok {
                bail(&format!(
                    "the live_scale trial at n = {n} failed its correctness check"
                ));
            }
            if best
                .as_ref()
                .is_none_or(|b| row.messages_per_sec > b.messages_per_sec)
            {
                best = Some(row);
            }
        }
        let row = best.expect("three runs produce a best row");
        writeln!(
            fresh_lines,
            "{{\"label\": \"bench_check\", \"n\": {n}, \"reactors\": {reactors}, \
             \"wall_secs\": {secs:.2}, \"ticks\": {ticks}, \"messages\": {messages}, \
             \"messages_per_sec\": {mps:.0}, \"bytes_per_sec\": {bps:.0}, \"checker_ok\": true}}",
            secs = row.wall_secs,
            ticks = row.ticks,
            messages = row.messages,
            mps = row.messages_per_sec,
            bps = row.bytes_per_sec,
        )
        .expect("write to string");
        let keep = |r: &Json| {
            r.number("n") == Some(n as f64) && r.number("reactors") == Some(reactors as f64)
        };
        let mut pins = vec![("messages_per_sec", row.messages_per_sec)];
        if pin_bytes {
            pins.push(("bytes_per_sec", row.bytes_per_sec));
        }
        for (metric, fresh) in pins {
            match committed_number(doc, keep, metric) {
                Some(committed) => checks.push(Check {
                    bench: "live",
                    metric: format!("{metric} @ n={n} (reactor tears)"),
                    committed,
                    fresh,
                }),
                None => bail(&format!(
                    "BENCH_live.json has no {metric} row at n={n}, reactors={reactors}"
                )),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Service baseline (multi-epoch replicated log: closed loop at n = 256)
// ---------------------------------------------------------------------------

fn check_service(doc: &Json, checks: &mut Vec<Check>, fresh_lines: &mut String) {
    // Only the small closed-loop point is re-run: the whole service path —
    // admission frontier, epoch-tagged frames, per-epoch quiescence
    // detection, harvest, checker, GC — regresses at n = 256 exactly as it
    // would at 1024, and the gate must stay minutes-cheap. The larger
    // committed rows (including the 32-epochs-in-flight acceptance point at
    // n = 1024) are regenerated via the `service_baseline` binary when the
    // trajectory is refreshed.
    let (n, reactors, seed, epochs) = (256usize, 8usize, 2008u64, 16u64);
    let mode = LoopMode::Closed { in_flight: 32 };
    // Best of three runs, like the other wall-clock gates.
    let mut best: Option<agossip_analysis::experiments::service::LiveServiceRow> = None;
    for _ in 0..3 {
        let row = run_live_service_trial(n, reactors, seed, epochs, mode)
            .unwrap_or_else(|e| bail(&format!("service trial failed to run: {e}")));
        if !row.ok {
            bail(&format!(
                "the service trial at n = {n} failed its per-epoch check"
            ));
        }
        if best
            .as_ref()
            .is_none_or(|b| row.epochs_per_sec > b.epochs_per_sec)
        {
            best = Some(row);
        }
    }
    let row = best.expect("three runs produce a best row");
    writeln!(
        fresh_lines,
        "{{\"label\": \"bench_check\", \"n\": {n}, \"reactors\": {reactors}, \
         \"mode\": \"{mode}\", \"epochs\": {epochs}, \"ticks\": {ticks}, \
         \"wall_secs\": {secs:.2}, \"epochs_per_sec\": {eps:.2}, \
         \"messages_per_sec\": {mps:.0}, \"p50_settle\": {p50}, \"p99_settle\": {p99}, \
         \"max_open\": {max_open}, \"checker_ok\": true}}",
        mode = row.mode,
        ticks = row.ticks,
        secs = row.wall_secs,
        eps = row.epochs_per_sec,
        mps = row.messages_per_sec,
        p50 = row.p50,
        p99 = row.p99,
        max_open = row.max_open,
    )
    .expect("write to string");
    let keep = |r: &Json| {
        r.number("n") == Some(n as f64)
            && r.number("reactors") == Some(reactors as f64)
            && r.get("mode").and_then(Json::as_str) == Some("closed")
            && r.number("epochs") == Some(epochs as f64)
    };
    match committed_number(doc, keep, "epochs_per_sec") {
        Some(committed) => checks.push(Check {
            bench: "service",
            metric: format!("epochs_per_sec @ n={n} (closed loop)"),
            committed,
            fresh: row.epochs_per_sec,
        }),
        None => bail(&format!(
            "BENCH_service.json has no closed-loop epochs_per_sec row at n={n}, \
             reactors={reactors}, epochs={epochs}"
        )),
    }
}

/// Renders the per-row delta table as GitHub-flavoured markdown and appends
/// it to the file named by `$GITHUB_STEP_SUMMARY`, so a regression is
/// readable from the workflow summary page without downloading artifacts.
/// A no-op (and never an error) outside GitHub Actions.
fn append_step_summary(checks: &[Check], factor: f64, failed: usize) {
    let Some(path) = std::env::var_os("GITHUB_STEP_SUMMARY") else {
        return;
    };
    let mut md = String::from("## Bench-regression gate\n\n");
    md.push_str("| bench | metric | committed | fresh | ratio | verdict |\n");
    md.push_str("|---|---|---:|---:|---:|---|\n");
    for check in checks {
        let _ = writeln!(
            md,
            "| {} | {} | {:.1} | {:.1} | {:.2}x | {} |",
            check.bench,
            check.metric,
            check.committed,
            check.fresh,
            check.ratio(),
            if check.ok(factor) {
                "ok"
            } else {
                "**REGRESSION**"
            }
        );
    }
    let _ = writeln!(
        md,
        "\n{} of {} pinned metrics within the {factor}x tolerance.",
        checks.len() - failed,
        checks.len()
    );
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, md.as_bytes()))
    {
        eprintln!("could not append to GITHUB_STEP_SUMMARY: {e}");
    }
}

fn main() {
    let args = parse_args();
    let scheduler = load(&args.baseline_dir, "BENCH_scheduler.json");
    let rumorset = load(&args.baseline_dir, "BENCH_rumorset.json");
    let sweep = load(&args.baseline_dir, "BENCH_sweep.json");
    let scale = load(&args.baseline_dir, "BENCH_scale.json");
    let live = load(&args.baseline_dir, "BENCH_live.json");
    let service = load(&args.baseline_dir, "BENCH_service.json");

    let mut checks = Vec::new();
    let mut fresh_scheduler = String::new();
    let mut fresh_rumorset = String::new();
    let mut fresh_sweep = String::new();
    let mut fresh_scale = String::new();
    let mut fresh_live = String::new();
    let mut fresh_service = String::new();
    eprintln!("re-running the scheduler hot-loop baseline…");
    check_scheduler(&scheduler, &mut checks, &mut fresh_scheduler);
    eprintln!("re-running the rumor-set micro baseline…");
    check_rumorset(&rumorset, &mut checks, &mut fresh_rumorset);
    eprintln!("re-running the sweep toy baseline…");
    check_sweep(&sweep, &mut checks, &mut fresh_sweep);
    eprintln!("re-running the scale n=4096 baseline…");
    check_scale(&scale, &mut checks, &mut fresh_scale);
    eprintln!("re-running the live reactor n=512 baseline…");
    check_live(&live, &mut checks, &mut fresh_live);
    eprintln!("re-running the service closed-loop n=256 baseline…");
    check_service(&service, &mut checks, &mut fresh_service);

    // Persist the fresh measurements for the CI artifact upload.
    std::fs::create_dir_all(&args.out_dir)
        .unwrap_or_else(|e| bail(&format!("creating {}: {e}", args.out_dir.display())));
    let mut report = String::from("{\n  \"bench\": \"bench_check\",\n  \"rows\": [\n");
    for (file, lines) in [
        ("BENCH_scheduler.fresh.jsonl", &fresh_scheduler),
        ("BENCH_rumorset.fresh.jsonl", &fresh_rumorset),
        ("BENCH_sweep.fresh.jsonl", &fresh_sweep),
        ("BENCH_scale.fresh.jsonl", &fresh_scale),
        ("BENCH_live.fresh.jsonl", &fresh_live),
        ("BENCH_service.fresh.jsonl", &fresh_service),
    ] {
        std::fs::write(args.out_dir.join(file), lines)
            .unwrap_or_else(|e| bail(&format!("writing {file}: {e}")));
    }

    println!(
        "\n{:<11} {:<42} {:>14} {:>14} {:>7}  verdict",
        "bench", "metric", "committed", "fresh", "ratio"
    );
    let mut failed = 0usize;
    for (i, check) in checks.iter().enumerate() {
        let ok = check.ok(args.factor);
        failed += !ok as usize;
        println!(
            "{:<11} {:<42} {:>14.1} {:>14.1} {:>6.2}x  {}",
            check.bench,
            check.metric,
            check.committed,
            check.fresh,
            check.ratio(),
            if ok { "ok" } else { "REGRESSION" }
        );
        writeln!(
            report,
            "    {{\"bench\": \"{}\", \"metric\": \"{}\", \"committed\": {:.1}, \
             \"fresh\": {:.1}, \"ratio\": {:.3}, \"ok\": {}}}{}",
            check.bench,
            check.metric,
            check.committed,
            check.fresh,
            check.ratio(),
            ok,
            if i + 1 == checks.len() { "" } else { "," }
        )
        .expect("write to string");
    }
    let _ = writeln!(
        report,
        "  ],\n  \"tolerance_factor\": {},\n  \"failed\": {failed}\n}}",
        args.factor
    );
    std::fs::write(args.out_dir.join("BENCH_check_report.json"), report)
        .unwrap_or_else(|e| bail(&format!("writing report: {e}")));
    append_step_summary(&checks, args.factor, failed);

    if failed > 0 {
        eprintln!(
            "\n{failed} pinned metric(s) regressed beyond {}x; see {} for the fresh rows",
            args.factor,
            args.out_dir.display()
        );
        std::process::exit(1);
    }
    println!(
        "\nall {} pinned metrics within the {}x tolerance",
        checks.len(),
        args.factor
    );
}
