//! Steps-per-second runner for the simulator hot loop.
//!
//! Measures how fast [`agossip_sim::Simulation`] executes global time steps
//! under the two `agossip_bench::hotloop` workloads and prints one JSON
//! object per line, suitable for appending to `BENCH_scheduler.json` at the
//! repository root (the perf trajectory later PRs compare against):
//!
//! * `oblivious` — a never-quiescent chatter protocol driven by the reference
//!   oblivious adversary (`d = 4`, `δ = 2`): the common experiment hot loop.
//! * `withheld` — manual stepping with every message withheld forever, so the
//!   per-destination queues grow without bound: the worst case for the
//!   delivery scan (this is what the Theorem 1 Case 1 loop does).
//!
//! Usage: `cargo run --release -p agossip-bench --bin scheduler_baseline [label]`

use agossip_bench::hotloop::{run_oblivious, run_withheld};

fn main() {
    let label = std::env::args().nth(1).unwrap_or_else(|| "current".into());
    let steps = 512u64;
    for &n in &[64usize, 256, 1024] {
        let oblivious = run_oblivious(n, steps);
        let withheld = run_withheld(n, steps);
        println!(
            "{{\"label\": \"{label}\", \"n\": {n}, \"steps\": {steps}, \
             \"oblivious_steps_per_sec\": {oblivious:.1}, \
             \"withheld_steps_per_sec\": {withheld:.1}}}"
        );
    }
}
