//! A minimal JSON reader for the committed `BENCH_*.json` baselines.
//!
//! The workspace vendors offline dependency stand-ins and deliberately has
//! no serde; the bench-regression gate (`bench_check`) only needs to *read*
//! the handful of flat objects the baseline runners emit, so this is a
//! small recursive-descent parser over the full JSON grammar with just the
//! accessors the gate uses. Numbers are kept as `f64` (every figure in the
//! baselines is a measurement).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (kept as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object (key order is irrelevant to the gate).
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON document (surrounding whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: `self[key]` as a number.
    pub fn number(&self, key: &str) -> Option<f64> {
        self.get(key)?.as_f64()
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos = end;
                            // Baseline files carry no surrogate pairs; map
                            // lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("valid UTF-8 slice of a &str"),
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_baseline_shape() {
        let doc = r#"{
            "bench": "demo",
            "runs": [
                {"label": "a", "n": 64, "steps_per_sec": 123.5},
                {"label": "b", "n": 256, "steps_per_sec": 9.75e1, "ok": true}
            ],
            "nested": {"null_field": null, "neg": -3}
        }"#;
        let json = Json::parse(doc).unwrap();
        assert_eq!(json.get("bench").unwrap().as_str(), Some("demo"));
        let runs = json.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].number("steps_per_sec"), Some(123.5));
        assert_eq!(runs[1].number("steps_per_sec"), Some(97.5));
        assert_eq!(runs[1].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            json.get("nested").unwrap().get("null_field"),
            Some(&Json::Null)
        );
        assert_eq!(json.get("nested").unwrap().number("neg"), Some(-3.0));
    }

    #[test]
    fn parses_strings_with_escapes_and_unicode() {
        let json = Json::parse(r#""a\"b\\c\nδ A""#).unwrap();
        assert_eq!(json.as_str(), Some("a\"b\\c\nδ A"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn parses_the_committed_baselines() {
        // The real committed files must stay parseable by this reader: the
        // gate depends on it.
        for name in [
            "BENCH_scheduler.json",
            "BENCH_rumorset.json",
            "BENCH_sweep.json",
            "BENCH_scale.json",
        ] {
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../..").to_string() + "/" + name;
            let text =
                std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
            let json = Json::parse(&text).unwrap_or_else(|e| panic!("parsing {name}: {e}"));
            assert!(json.get("runs").is_some(), "{name} has no runs array");
        }
    }
}
