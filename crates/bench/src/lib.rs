//! # agossip-bench
//!
//! Criterion benchmarks and shared helpers for regenerating the paper's
//! evaluation artifacts. Each bench target corresponds to one table or
//! figure:
//!
//! | Bench target | Paper artifact |
//! |---|---|
//! | `table1_gossip` | Table 1 — gossip protocols (time / messages vs `n`) |
//! | `table2_consensus` | Table 2 — consensus protocols |
//! | `lower_bound` | Theorem 1 / Figure 1 — adaptive adversary dichotomy |
//! | `cost_of_asynchrony` | Corollary 2 — async vs sync ratios |
//! | `sears_epsilon` | Theorem 7 — `ε` time/message trade-off |
//! | `tears_structure` | Lemmas 8–11 — `tears` structural properties |
//!
//! Besides wall-clock timings, every bench prints the measured table (message
//! counts and normalized completion times) so that the paper's rows can be
//! compared directly; `EXPERIMENTS.md` records one such run.
//!
//! Two plain binaries record the engine perf trajectories at the repository
//! root: `scheduler_baseline` (steps/sec of the simulator hot loop →
//! `BENCH_scheduler.json`) and `sweep_baseline` (trials/sec of the parallel
//! sweep engine on the Table 1 grid, 1 worker vs N workers, with a
//! bit-identity assertion → `BENCH_sweep.json`).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms, unreachable_pub)]
#![warn(missing_docs)]

pub mod json;

use agossip_analysis::experiments::ExperimentScale;

/// The scale used by the bench targets: large enough that asymptotic shape is
/// visible, small enough that `cargo bench` completes in minutes.
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale {
        n_values: vec![32, 64, 128],
        trials: 2,
        failure_fraction: 0.25,
        d: 2,
        delta: 2,
        seed: 2008,
        idle_fast_forward: false,
    }
}

/// A smaller scale for the quadratic-cost baselines so the benches stay fast.
pub fn small_scale() -> ExperimentScale {
    ExperimentScale {
        n_values: vec![32, 64, 128],
        trials: 2,
        failure_fraction: 0.25,
        d: 2,
        delta: 2,
        seed: 2008,
        idle_fast_forward: false,
    }
}

pub mod rumorset {
    //! Workloads shared by the `rumor_set` criterion bench and the
    //! `rumor_baseline` runner (which emits the `BENCH_rumorset.json` perf
    //! trajectory at the repository root): the dense word-packed
    //! [`RumorSet`] against the historical `BTreeMap` representation, kept
    //! here as a baseline oracle.

    use std::collections::BTreeMap;

    use agossip_core::{Rumor, RumorSet};
    use agossip_sim::ProcessId;

    /// The seed (pre-dense) `RumorSet`: a `BTreeMap` from origin to payload.
    #[derive(Debug, Clone, Default)]
    pub struct BTreeRumorSet {
        by_origin: BTreeMap<ProcessId, u64>,
    }

    impl BTreeRumorSet {
        /// Inserts a rumor, first payload per origin wins.
        pub fn insert(&mut self, rumor: Rumor) -> bool {
            match self.by_origin.entry(rumor.origin) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(rumor.payload);
                    true
                }
                std::collections::btree_map::Entry::Occupied(_) => false,
            }
        }

        /// Merges `other` into `self`, returning the number of new origins.
        pub fn union(&mut self, other: &BTreeRumorSet) -> usize {
            let mut added = 0;
            for (&origin, &payload) in &other.by_origin {
                if self.insert(Rumor { origin, payload }) {
                    added += 1;
                }
            }
            added
        }

        /// True if a rumor from `origin` is present.
        pub fn contains_origin(&self, origin: ProcessId) -> bool {
            self.by_origin.contains_key(&origin)
        }

        /// Returns the rumor originating at `origin`, if present.
        pub fn get(&self, origin: ProcessId) -> Option<Rumor> {
            self.by_origin
                .get(&origin)
                .map(|&payload| Rumor { origin, payload })
        }

        /// True if `self` contains every rumor of `other`.
        pub fn is_superset_of(&self, other: &BTreeRumorSet) -> bool {
            other
                .by_origin
                .keys()
                .all(|origin| self.by_origin.contains_key(origin))
        }

        /// Number of rumors held.
        pub fn len(&self) -> usize {
            self.by_origin.len()
        }

        /// True if empty.
        pub fn is_empty(&self) -> bool {
            self.by_origin.is_empty()
        }

        /// Iterates rumors in origin order.
        pub fn iter(&self) -> impl Iterator<Item = Rumor> + '_ {
            self.by_origin
                .iter()
                .map(|(&origin, &payload)| Rumor { origin, payload })
        }
    }

    /// Every even origin of `0..n` (half-full set), forced to the dense
    /// representation: these helpers pin the dense word-packed paths the
    /// committed micro rows were measured on, independent of where the
    /// adaptive sparse→dense crossover happens to sit.
    pub fn dense_evens(n: usize) -> RumorSet {
        let mut s: RumorSet = (0..n)
            .step_by(2)
            .map(|i| Rumor::new(ProcessId(i), i as u64))
            .collect();
        s.force_dense();
        s
    }

    /// Every odd origin of `0..n` (the disjoint other half), forced dense.
    pub fn dense_odds(n: usize) -> RumorSet {
        let mut s: RumorSet = (0..n)
            .skip(1)
            .step_by(2)
            .map(|i| Rumor::new(ProcessId(i), i as u64))
            .collect();
        s.force_dense();
        s
    }

    /// Every even origin of `0..n`, baseline representation.
    pub fn btree_evens(n: usize) -> BTreeRumorSet {
        let mut s = BTreeRumorSet::default();
        for i in (0..n).step_by(2) {
            s.insert(Rumor::new(ProcessId(i), i as u64));
        }
        s
    }

    /// Every odd origin of `0..n`, baseline representation.
    pub fn btree_odds(n: usize) -> BTreeRumorSet {
        let mut s = BTreeRumorSet::default();
        for i in (0..n).skip(1).step_by(2) {
            s.insert(Rumor::new(ProcessId(i), i as u64));
        }
        s
    }
}

pub mod hotloop {
    //! The scheduler hot-loop workloads shared by the `scheduler_hot_loop`
    //! criterion bench and the `scheduler_baseline` runner (which emits the
    //! `BENCH_scheduler.json` perf trajectory at the repository root).

    use std::time::Instant;

    use agossip_sim::{
        Envelope, FairObliviousAdversary, Outbox, Process, ProcessId, SimConfig, Simulation,
        TimeStep,
    };

    /// A never-quiescent protocol: every local step forwards one message to a
    /// rotating neighbour. Deterministic and allocation-light so the
    /// measurement is dominated by the engine, not the workload.
    #[derive(Debug, Clone)]
    pub struct Chatter {
        id: ProcessId,
        n: usize,
        round: u64,
        received: u64,
    }

    impl Process for Chatter {
        type Message = u64;

        fn on_step(
            &mut self,
            _now: TimeStep,
            inbox: &mut Vec<Envelope<Self::Message>>,
            out: &mut Outbox<Self::Message>,
        ) {
            self.received += inbox.len() as u64;
            inbox.clear();
            self.round += 1;
            let target = ProcessId((self.id.index() + self.round as usize) % self.n);
            out.send(target, self.round);
        }

        fn is_quiescent(&self) -> bool {
            false
        }
    }

    /// A chatter simulation with no crash budget and an effectively unbounded
    /// step limit.
    pub fn chatter_sim(n: usize, d: u64, delta: u64) -> Simulation<Chatter> {
        let config = SimConfig::new(n, 0)
            .with_d(d)
            .with_delta(delta)
            .with_seed(2008)
            .with_max_steps(u64::MAX);
        let processes = ProcessId::all(n)
            .map(|id| Chatter {
                id,
                n,
                round: 0,
                received: 0,
            })
            .collect();
        Simulation::new(config, processes).unwrap()
    }

    /// Oblivious hot loop: `steps` global steps under the reference adversary
    /// (`d = 4`, `δ = 2`). Returns steps per second.
    pub fn run_oblivious(n: usize, steps: u64) -> f64 {
        let mut sim = chatter_sim(n, 4, 2);
        let mut adversary = FairObliviousAdversary::new(4, 2, 2008);
        let start = Instant::now();
        for _ in 0..steps {
            sim.step_with(&mut adversary).unwrap();
        }
        steps as f64 / start.elapsed().as_secs_f64()
    }

    /// Withheld hot loop: `steps` manual global steps, every process
    /// scheduled, every message withheld — the per-destination queues only
    /// ever grow, which is the worst case for the delivery scan (and exactly
    /// what the Theorem 1 Case 1 loop does). Returns steps per second.
    pub fn run_withheld(n: usize, steps: u64) -> f64 {
        let mut sim = chatter_sim(n, 4, 1);
        let schedule: Vec<ProcessId> = ProcessId::all(n).collect();
        let start = Instant::now();
        for _ in 0..steps {
            sim.step_manual(&schedule, &[], |_| u64::MAX).unwrap();
        }
        steps as f64 / start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_valid() {
        let s = bench_scale();
        assert!(!s.n_values.is_empty());
        assert!(s.trials >= 1);
        assert!(s.f_for(64) < 32);
        assert!(small_scale().n_values.len() <= s.n_values.len());
    }

    #[test]
    fn hot_loop_workloads_run() {
        assert!(hotloop::run_oblivious(8, 16) > 0.0);
        assert!(hotloop::run_withheld(8, 16) > 0.0);
    }
}
