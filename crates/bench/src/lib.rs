//! # agossip-bench
//!
//! Criterion benchmarks and shared helpers for regenerating the paper's
//! evaluation artifacts. Each bench target corresponds to one table or
//! figure:
//!
//! | Bench target | Paper artifact |
//! |---|---|
//! | `table1_gossip` | Table 1 — gossip protocols (time / messages vs `n`) |
//! | `table2_consensus` | Table 2 — consensus protocols |
//! | `lower_bound` | Theorem 1 / Figure 1 — adaptive adversary dichotomy |
//! | `cost_of_asynchrony` | Corollary 2 — async vs sync ratios |
//! | `sears_epsilon` | Theorem 7 — `ε` time/message trade-off |
//! | `tears_structure` | Lemmas 8–11 — `tears` structural properties |
//!
//! Besides wall-clock timings, every bench prints the measured table (message
//! counts and normalized completion times) so that the paper's rows can be
//! compared directly; `EXPERIMENTS.md` records one such run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use agossip_analysis::experiments::ExperimentScale;

/// The scale used by the bench targets: large enough that asymptotic shape is
/// visible, small enough that `cargo bench` completes in minutes.
pub fn bench_scale() -> ExperimentScale {
    ExperimentScale {
        n_values: vec![32, 64, 128],
        trials: 2,
        failure_fraction: 0.25,
        d: 2,
        delta: 2,
        seed: 2008,
    }
}

/// A smaller scale for the quadratic-cost baselines so the benches stay fast.
pub fn small_scale() -> ExperimentScale {
    ExperimentScale {
        n_values: vec![32, 64, 128],
        trials: 2,
        failure_fraction: 0.25,
        d: 2,
        delta: 2,
        seed: 2008,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_valid() {
        let s = bench_scale();
        assert!(!s.n_values.is_empty());
        assert!(s.trials >= 1);
        assert!(s.f_for(64) < 32);
        assert!(small_scale().n_values.len() <= s.n_values.len());
    }
}
