//! End-to-end consensus execution driver.
//!
//! Instantiates one of the four Table 2 protocols (`CR`, `CR-ears`,
//! `CR-sears`, `CR-tears`), runs it on the simulator under an adversary, and
//! returns the metrics together with the agreement/validity/termination
//! verdict.

use agossip_core::{Ears, GossipCtx, Sears, SearsParams, Tears, Trivial};
use agossip_sim::{
    Adversary, Metrics, ProcessId, SimConfig, SimError, SimResult, Simulation, StopReason,
};

use crate::checker::{check_consensus, ConsensusCheck};
use crate::process::{ConsensusCtx, ConsensusProcess};
use crate::value::ConsensusValue;

/// The consensus protocols of Table 2, identified by the gossip protocol used
/// to implement `get-core`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConsensusProtocol {
    /// The Canetti–Rabin baseline: voting exchanges are all-to-all
    /// (`O(n²)` messages, `O(d+δ)` time).
    CanettiRabin,
    /// `CR-ears`: exchanges use epidemic gossip.
    CrEars,
    /// `CR-sears`: exchanges use spamming epidemic gossip with exponent `ε`.
    CrSears {
        /// The `ε < 1` fan-out exponent.
        epsilon: f64,
    },
    /// `CR-tears`: exchanges use two-hop majority gossip.
    CrTears,
}

impl ConsensusProtocol {
    /// A short, table-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            ConsensusProtocol::CanettiRabin => "CR",
            ConsensusProtocol::CrEars => "CR-ears",
            ConsensusProtocol::CrSears { .. } => "CR-sears",
            ConsensusProtocol::CrTears => "CR-tears",
        }
    }
}

/// The result of one consensus execution.
#[derive(Debug, Clone)]
pub struct ConsensusReport {
    /// Which protocol ran.
    pub protocol_name: &'static str,
    /// Execution metrics.
    pub metrics: Metrics,
    /// Per-process decisions.
    pub decisions: Vec<Option<ConsensusValue>>,
    /// Correctness verdict.
    pub check: ConsensusCheck,
    /// Why the run loop stopped.
    pub stop_reason: StopReason,
    /// Largest number of voting rounds started by any process.
    pub max_rounds: u32,
    /// Completion time in multiples of `d + δ` (None if the execution never
    /// became quiescent).
    pub normalized_time: Option<f64>,
}

impl ConsensusReport {
    /// Total point-to-point messages sent.
    pub fn messages(&self) -> u64 {
        self.metrics.messages_sent
    }

    /// Completion time in raw time steps.
    pub fn time_steps(&self) -> Option<u64> {
        self.metrics.quiescence_time.map(|t| t.as_u64())
    }
}

/// Runs one consensus execution of `protocol` with the given binary inputs.
///
/// `initial_values.len()` must equal `config.n` and every value must be
/// binary. Consensus requires a minority of failures, so `config.f < n/2`
/// is enforced here.
pub fn run_consensus<A: Adversary>(
    config: &SimConfig,
    protocol: ConsensusProtocol,
    initial_values: &[ConsensusValue],
    adversary: &mut A,
) -> SimResult<ConsensusReport> {
    config.validate()?;
    if initial_values.len() != config.n {
        return Err(SimError::ProcessCountMismatch {
            expected: config.n,
            actual: initial_values.len(),
        });
    }
    if config.f >= config.n.div_ceil(2) {
        return Err(SimError::InvalidConfig {
            reason: format!(
                "consensus requires a minority of failures (f = {}, n = {})",
                config.f, config.n
            ),
        });
    }

    match protocol {
        ConsensusProtocol::CanettiRabin => run_with_factory(
            config,
            protocol.name(),
            initial_values,
            adversary,
            Trivial::new,
        ),
        ConsensusProtocol::CrEars => run_with_factory(
            config,
            protocol.name(),
            initial_values,
            adversary,
            Ears::new,
        ),
        ConsensusProtocol::CrSears { epsilon } => run_with_factory(
            config,
            protocol.name(),
            initial_values,
            adversary,
            move |ctx: GossipCtx| Sears::with_params(ctx, SearsParams::with_epsilon(epsilon)),
        ),
        ConsensusProtocol::CrTears => run_with_factory(
            config,
            protocol.name(),
            initial_values,
            adversary,
            Tears::new,
        ),
    }
}

fn run_with_factory<G, F, A>(
    config: &SimConfig,
    protocol_name: &'static str,
    initial_values: &[ConsensusValue],
    adversary: &mut A,
    factory: F,
) -> SimResult<ConsensusReport>
where
    G: agossip_core::GossipEngine,
    F: Fn(GossipCtx) -> G + Clone,
    A: Adversary,
{
    let processes: Vec<ConsensusProcess<G, F>> = ProcessId::all(config.n)
        .map(|pid| {
            let seed = agossip_sim::rng::derive_seed(
                config.seed,
                agossip_sim::rng::RngStream::Process(pid),
            );
            let ctx = ConsensusCtx::new(pid, config.n, config.f, initial_values[pid.index()], seed);
            ConsensusProcess::new(ctx, factory.clone())
        })
        .collect();

    let mut sim = Simulation::new(config.clone(), processes)?;
    let outcome = match sim.run_with(adversary) {
        Ok(outcome) => outcome,
        Err(SimError::StepLimitExceeded { .. }) => {
            return Ok(build_report(
                protocol_name,
                &sim,
                initial_values,
                StopReason::StepLimit,
                config,
            ))
        }
        Err(e) => return Err(e),
    };

    Ok(build_report(
        protocol_name,
        &sim,
        initial_values,
        outcome.reason,
        config,
    ))
}

fn build_report<G, F>(
    protocol_name: &'static str,
    sim: &Simulation<ConsensusProcess<G, F>>,
    initial_values: &[ConsensusValue],
    stop_reason: StopReason,
    config: &SimConfig,
) -> ConsensusReport
where
    G: agossip_core::GossipEngine,
    F: Fn(GossipCtx) -> G,
{
    let decisions: Vec<Option<ConsensusValue>> =
        sim.processes().iter().map(|p| p.decision()).collect();
    let correct: Vec<bool> = sim.statuses().iter().map(|s| s.is_alive()).collect();
    let check = check_consensus(&decisions, initial_values, &correct);
    let max_rounds = sim
        .processes()
        .iter()
        .map(|p| p.rounds_started())
        .max()
        .unwrap_or(0);
    let metrics = sim.metrics().clone();
    let normalized_time = metrics.normalized_time(config.d, config.delta);
    ConsensusReport {
        protocol_name,
        metrics,
        decisions,
        check,
        stop_reason,
        max_rounds,
        normalized_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agossip_sim::FairObliviousAdversary;

    fn split_inputs(n: usize) -> Vec<ConsensusValue> {
        (0..n).map(|i| (i % 2) as u64).collect()
    }

    fn run(
        protocol: ConsensusProtocol,
        n: usize,
        f: usize,
        inputs: &[ConsensusValue],
        seed: u64,
    ) -> ConsensusReport {
        let cfg = SimConfig::new(n, f).with_d(1).with_delta(1).with_seed(seed);
        let mut adv = FairObliviousAdversary::new(1, 1, seed);
        run_consensus(&cfg, protocol, inputs, &mut adv).unwrap()
    }

    #[test]
    fn canetti_rabin_baseline_reaches_agreement_on_unanimous_inputs() {
        let n = 8;
        let report = run(ConsensusProtocol::CanettiRabin, n, 0, &vec![1; n], 1);
        assert!(report.check.all_ok(), "{:?}", report.check);
        assert_eq!(report.check.decided_value, Some(1));
        assert_eq!(report.max_rounds, 1, "unanimous inputs decide in round 0");
    }

    #[test]
    fn canetti_rabin_baseline_reaches_agreement_on_split_inputs() {
        let n = 9;
        let report = run(ConsensusProtocol::CanettiRabin, n, 0, &split_inputs(n), 2);
        assert!(report.check.all_ok(), "{:?}", report.check);
    }

    #[test]
    fn cr_ears_reaches_agreement() {
        let n = 12;
        let report = run(ConsensusProtocol::CrEars, n, 0, &split_inputs(n), 3);
        assert!(report.check.all_ok(), "{:?}", report.check);
        assert_eq!(report.protocol_name, "CR-ears");
    }

    #[test]
    fn cr_sears_reaches_agreement() {
        let n = 12;
        let report = run(
            ConsensusProtocol::CrSears { epsilon: 0.5 },
            n,
            0,
            &split_inputs(n),
            4,
        );
        assert!(report.check.all_ok(), "{:?}", report.check);
    }

    #[test]
    fn cr_tears_reaches_agreement() {
        let n = 16;
        let report = run(ConsensusProtocol::CrTears, n, 0, &split_inputs(n), 5);
        assert!(report.check.all_ok(), "{:?}", report.check);
    }

    #[test]
    fn tolerates_minority_crashes() {
        let n = 12;
        let f = 3;
        let cfg = SimConfig::new(n, f).with_seed(6);
        let crashes = (0..f).map(|i| (agossip_sim::TimeStep(2 + i as u64), ProcessId(i)));
        let mut adv = FairObliviousAdversary::new(1, 1, 6).with_crashes(crashes);
        let report = run_consensus(
            &cfg,
            ConsensusProtocol::CanettiRabin,
            &split_inputs(n),
            &mut adv,
        )
        .unwrap();
        assert!(report.check.agreement_ok, "{:?}", report.check);
        assert!(report.check.validity_ok);
        assert!(report.check.termination_ok);
    }

    #[test]
    fn idle_fast_forward_preserves_agreement() {
        let n = 12;
        let cfg = SimConfig::new(n, 0)
            .with_d(3)
            .with_delta(2)
            .with_seed(8)
            .with_idle_fast_forward(true);
        let mut adv = FairObliviousAdversary::new(3, 2, 8);
        let report =
            run_consensus(&cfg, ConsensusProtocol::CrEars, &split_inputs(n), &mut adv).unwrap();
        assert!(report.check.all_ok(), "{:?}", report.check);
    }

    #[test]
    fn rejects_majority_failure_budget() {
        let cfg = SimConfig::new(8, 4);
        let mut adv = FairObliviousAdversary::new(1, 1, 0);
        let err = run_consensus(
            &cfg,
            ConsensusProtocol::CanettiRabin,
            &split_inputs(8),
            &mut adv,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::InvalidConfig { .. }));
    }

    #[test]
    fn rejects_wrong_input_count() {
        let cfg = SimConfig::new(8, 2);
        let mut adv = FairObliviousAdversary::new(1, 1, 0);
        let err = run_consensus(
            &cfg,
            ConsensusProtocol::CanettiRabin,
            &split_inputs(5),
            &mut adv,
        )
        .unwrap_err();
        assert!(matches!(err, SimError::ProcessCountMismatch { .. }));
    }

    #[test]
    fn validity_holds_for_unanimous_zero() {
        let n = 10;
        let report = run(ConsensusProtocol::CrEars, n, 0, &vec![0; n], 7);
        assert!(report.check.all_ok(), "{:?}", report.check);
        assert_eq!(report.check.decided_value, Some(0));
    }

    #[test]
    fn protocol_names_match_table_2() {
        assert_eq!(ConsensusProtocol::CanettiRabin.name(), "CR");
        assert_eq!(ConsensusProtocol::CrEars.name(), "CR-ears");
        assert_eq!(
            ConsensusProtocol::CrSears { epsilon: 0.5 }.name(),
            "CR-sears"
        );
        assert_eq!(ConsensusProtocol::CrTears.name(), "CR-tears");
    }
}
