//! Consensus values and vote payload encodings.
//!
//! Randomized consensus is studied for binary inputs; a [`ConsensusValue`] is
//! `0` or `1`. Votes travel through the gossip layer as the 64-bit payload of
//! a [`agossip_core::Rumor`], so this module defines how estimates,
//! preferences (which may be "no preference"), and coin contributions are
//! packed into that payload.

/// A binary consensus input/decision value.
pub type ConsensusValue = u64;

/// Payload encoding of "no preference" in the preference exchange.
pub const NULL_PREFERENCE: u64 = u64::MAX;

/// Validates that `v` is a legal binary consensus value.
pub fn is_valid_value(v: ConsensusValue) -> bool {
    v == 0 || v == 1
}

/// Encodes an optional preference as a rumor payload.
pub fn encode_prefer(prefer: Option<ConsensusValue>) -> u64 {
    match prefer {
        Some(v) => v,
        None => NULL_PREFERENCE,
    }
}

/// Decodes a rumor payload from the preference exchange.
pub fn decode_prefer(payload: u64) -> Option<ConsensusValue> {
    if payload == NULL_PREFERENCE {
        None
    } else {
        Some(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_values_are_binary() {
        assert!(is_valid_value(0));
        assert!(is_valid_value(1));
        assert!(!is_valid_value(2));
        assert!(!is_valid_value(NULL_PREFERENCE));
    }

    #[test]
    fn prefer_round_trips() {
        assert_eq!(decode_prefer(encode_prefer(Some(0))), Some(0));
        assert_eq!(decode_prefer(encode_prefer(Some(1))), Some(1));
        assert_eq!(decode_prefer(encode_prefer(None)), None);
    }

    #[test]
    fn null_preference_is_not_a_value() {
        assert_eq!(encode_prefer(None), NULL_PREFERENCE);
        assert!(!is_valid_value(encode_prefer(None)));
    }
}
