//! Correctness checkers for consensus executions.
//!
//! Consensus requires (paper, Section 6): **Agreement** — every value output
//! is the same; **Validity** — every value output is some process's initial
//! value; **Termination** — every (correct) process eventually outputs a
//! value.

use agossip_sim::ProcessId;

use crate::value::ConsensusValue;

/// The verdict of checking a consensus execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsensusCheck {
    /// Whether every decided value is identical.
    pub agreement_ok: bool,
    /// Whether every decided value is some process's initial value.
    pub validity_ok: bool,
    /// Whether every correct process decided.
    pub termination_ok: bool,
    /// The decided value, if any process decided.
    pub decided_value: Option<ConsensusValue>,
    /// Correct processes that did not decide.
    pub undecided: Vec<ProcessId>,
    /// Distinct values decided (more than one means agreement is violated).
    pub distinct_decisions: Vec<ConsensusValue>,
}

impl ConsensusCheck {
    /// True if all three requirements held.
    pub fn all_ok(&self) -> bool {
        self.agreement_ok && self.validity_ok && self.termination_ok
    }
}

/// Checks an execution.
///
/// * `decisions[i]` — the value process `i` decided, if it decided;
/// * `initial_values[i]` — process `i`'s input;
/// * `correct[i]` — whether process `i` never crashed.
pub fn check_consensus(
    decisions: &[Option<ConsensusValue>],
    initial_values: &[ConsensusValue],
    correct: &[bool],
) -> ConsensusCheck {
    let n = decisions.len();
    assert_eq!(initial_values.len(), n);
    assert_eq!(correct.len(), n);

    let mut distinct: Vec<ConsensusValue> = decisions.iter().flatten().copied().collect();
    distinct.sort_unstable();
    distinct.dedup();

    let agreement_ok = distinct.len() <= 1;
    let validity_ok = distinct.iter().all(|v| initial_values.contains(v));
    let undecided: Vec<ProcessId> = (0..n)
        .filter(|&i| correct[i] && decisions[i].is_none())
        .map(ProcessId)
        .collect();
    let termination_ok = undecided.is_empty();

    ConsensusCheck {
        agreement_ok,
        validity_ok,
        termination_ok,
        decided_value: distinct.first().copied(),
        undecided,
        distinct_decisions: distinct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_decisions_pass() {
        let check = check_consensus(
            &[Some(1), Some(1), Some(1)],
            &[1, 0, 1],
            &[true, true, true],
        );
        assert!(check.all_ok());
        assert_eq!(check.decided_value, Some(1));
    }

    #[test]
    fn disagreement_is_detected() {
        let check = check_consensus(
            &[Some(1), Some(0), Some(1)],
            &[1, 0, 1],
            &[true, true, true],
        );
        assert!(!check.agreement_ok);
        assert_eq!(check.distinct_decisions, vec![0, 1]);
        assert!(!check.all_ok());
    }

    #[test]
    fn invalid_decision_is_detected() {
        let check = check_consensus(&[Some(1), Some(1)], &[0, 0], &[true, true]);
        assert!(!check.validity_ok, "1 was nobody's input");
    }

    #[test]
    fn missing_decisions_fail_termination_only_for_correct_processes() {
        let check = check_consensus(&[Some(0), None, None], &[0, 0, 1], &[true, true, false]);
        assert!(!check.termination_ok);
        assert_eq!(check.undecided, vec![ProcessId(1)]);
        // The crashed process (2) is not required to decide.
        assert!(check.agreement_ok);
        assert!(check.validity_ok);
    }

    #[test]
    fn no_decisions_at_all() {
        let check = check_consensus(&[None, None], &[0, 1], &[true, true]);
        assert!(!check.termination_ok);
        assert!(check.agreement_ok, "vacuously true");
        assert!(check.validity_ok, "vacuously true");
        assert_eq!(check.decided_value, None);
    }
}
