//! The consensus state machine: Canetti–Rabin voting rounds over gossip-based
//! `get-core`.
//!
//! Each round consists of up to three voting exchanges (paper, Section 6):
//!
//! 1. **Estimate exchange** — every process gossips its current estimate.
//!    Once a process has collected a majority of estimate votes, it prefers
//!    the value (if any) that received a majority of those votes.
//! 2. **Preference exchange** — every process gossips its preference (or
//!    "no preference"). Once a majority of preference votes are collected:
//!    if a majority of them name the same value the process **decides** it;
//!    if at least one names a value the process adopts it as its estimate and
//!    moves to the next round; otherwise it falls through to the coin.
//! 3. **Coin exchange** — every process gossips a locally random value and
//!    adopts, as its new estimate, the parity of the value contributed by the
//!    lowest-identified process it heard from (a weak common coin that agrees
//!    with constant probability against an oblivious adversary).
//!
//! Every exchange is one gossip instance of the underlying protocol `G`
//! (trivial all-to-all for the Canetti–Rabin baseline, `ears`/`sears`/`tears`
//! for the message-efficient variants); an instance is complete for a process
//! once it holds `⌊n/2⌋ + 1` rumors of that instance — exactly the paper's
//! "terminates when a process receives ⌊n/2⌋+1 rumors".
//!
//! A process that decides switches to a final *decision dissemination*
//! gossip instance whose rumor is the decision; every message also
//! piggybacks the sender's decision and current state, which implements the
//! paper's history-based catch-up: a process receiving a message from a later
//! instance adopts the sender's state and fast-forwards.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use agossip_core::{GossipCtx, GossipEngine, Rumor, RumorSet};
use agossip_sim::{Envelope, Outbox, Process, ProcessId, TimeStep};

use crate::message::{ConsensusMessage, InstanceKey, VotePhase};
use crate::value::{encode_prefer, is_valid_value, ConsensusValue};

/// Construction context for one consensus participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsensusCtx {
    /// This process's identifier.
    pub pid: ProcessId,
    /// System size.
    pub n: usize,
    /// Failure budget (`f < n/2` for consensus).
    pub f: usize,
    /// The process's initial (binary) value.
    pub initial_value: ConsensusValue,
    /// Seed for this process's randomness (coin contributions and the
    /// underlying gossip instances).
    pub seed: u64,
}

impl ConsensusCtx {
    /// Creates a context; panics if the initial value is not binary.
    pub fn new(
        pid: ProcessId,
        n: usize,
        f: usize,
        initial_value: ConsensusValue,
        seed: u64,
    ) -> Self {
        assert!(
            is_valid_value(initial_value),
            "consensus inputs must be binary (got {initial_value})"
        );
        ConsensusCtx {
            pid,
            n,
            f,
            initial_value,
            seed,
        }
    }

    /// `⌊n/2⌋ + 1`.
    pub fn majority(&self) -> usize {
        self.n / 2 + 1
    }
}

/// One consensus participant, generic over the gossip engine used for every
/// voting exchange.
#[derive(Debug, Clone)]
pub struct ConsensusProcess<G: GossipEngine, F> {
    ctx: ConsensusCtx,
    factory: F,
    key: InstanceKey,
    engine: G,
    estimate: ConsensusValue,
    prefer: Option<ConsensusValue>,
    decided: Option<ConsensusValue>,
    rounds_started: u32,
    rng: StdRng,
    steps: u64,
    /// Reusable buffer for the per-step sends, so steady-state stepping does
    /// not allocate.
    send_buf: Vec<(ProcessId, ConsensusMessage<G::Msg>)>,
}

impl<G, F> ConsensusProcess<G, F>
where
    G: GossipEngine,
    F: Fn(GossipCtx) -> G,
{
    /// Creates a participant that uses `factory` to build one gossip instance
    /// per voting exchange.
    pub fn new(ctx: ConsensusCtx, factory: F) -> Self {
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0xC0_15E5);
        let key = InstanceKey::initial();
        let estimate = ctx.initial_value;
        let engine = Self::build_engine(&ctx, &factory, key, estimate, None, &mut rng);
        ConsensusProcess {
            ctx,
            factory,
            key,
            engine,
            estimate,
            prefer: None,
            decided: None,
            rounds_started: 1,
            rng,
            steps: 0,
            send_buf: Vec::new(),
        }
    }

    /// The decision, once reached.
    pub fn decision(&self) -> Option<ConsensusValue> {
        self.decided
    }

    /// The current estimate.
    pub fn estimate(&self) -> ConsensusValue {
        self.estimate
    }

    /// The current preference.
    pub fn preference(&self) -> Option<ConsensusValue> {
        self.prefer
    }

    /// The instance this process is currently participating in.
    pub fn current_instance(&self) -> InstanceKey {
        self.key
    }

    /// Number of voting rounds this process has started.
    pub fn rounds_started(&self) -> u32 {
        self.rounds_started
    }

    /// The vote payload this process contributes to `key`, given its state.
    fn vote_payload(
        key: InstanceKey,
        estimate: ConsensusValue,
        prefer: Option<ConsensusValue>,
        decided: Option<ConsensusValue>,
        rng: &mut StdRng,
    ) -> u64 {
        match key {
            InstanceKey::Voting { phase, .. } => match phase {
                VotePhase::Estimate => estimate,
                VotePhase::Prefer => encode_prefer(prefer),
                VotePhase::Coin => rng.gen::<u64>(),
            },
            InstanceKey::Decision => decided.unwrap_or(estimate),
        }
    }

    fn build_engine(
        ctx: &ConsensusCtx,
        factory: &F,
        key: InstanceKey,
        estimate: ConsensusValue,
        prefer: Option<ConsensusValue>,
        rng: &mut StdRng,
    ) -> G {
        let payload = Self::vote_payload(key, estimate, prefer, None, rng);
        Self::build_engine_with_payload(ctx, factory, key, payload)
    }

    fn build_engine_with_payload(
        ctx: &ConsensusCtx,
        factory: &F,
        key: InstanceKey,
        payload: u64,
    ) -> G {
        // Each instance gets its own seed stream so that, e.g., the random
        // targets of two different exchanges are independent.
        let instance_seed = ctx
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(key.order_index().wrapping_add(1)));
        let gctx = GossipCtx::new(ctx.pid, ctx.n, ctx.f, instance_seed).with_payload(payload);
        factory(gctx)
    }

    fn switch_to(&mut self, key: InstanceKey) {
        self.key = key;
        if let Some(round) = key.round() {
            self.rounds_started = self.rounds_started.max(round + 1);
        }
        let payload =
            Self::vote_payload(key, self.estimate, self.prefer, self.decided, &mut self.rng);
        self.engine = Self::build_engine_with_payload(&self.ctx, &self.factory, key, payload);
    }

    fn decide(&mut self, value: ConsensusValue) {
        if self.decided.is_some() {
            return;
        }
        self.decided = Some(value);
        self.estimate = value;
        self.switch_to(InstanceKey::Decision);
    }

    /// Counts, among the collected votes, how many origins voted `value`.
    fn count_votes(votes: &RumorSet, value: u64) -> usize {
        votes.iter().filter(|r| r.payload == value).count()
    }

    /// Applies the round logic if the current instance has gathered a
    /// majority of votes.
    fn try_complete_instance(&mut self) {
        if self.decided.is_some() {
            return;
        }
        let InstanceKey::Voting { phase, .. } = self.key else {
            return;
        };
        let votes = self.engine.rumors();
        if votes.len() < self.ctx.majority() {
            return;
        }

        match phase {
            VotePhase::Estimate => {
                // Prefer the value supported by a majority of *all* processes
                // (not merely of the votes seen), if any.
                let zeros = Self::count_votes(votes, 0);
                let ones = Self::count_votes(votes, 1);
                self.prefer = if ones >= self.ctx.majority() {
                    Some(1)
                } else if zeros >= self.ctx.majority() {
                    Some(0)
                } else {
                    None
                };
                self.switch_to(self.key.next());
            }
            VotePhase::Prefer => {
                let prefer_zero = Self::count_votes(votes, encode_prefer(Some(0)));
                let prefer_one = Self::count_votes(votes, encode_prefer(Some(1)));
                if prefer_one >= self.ctx.majority() {
                    self.decide(1);
                } else if prefer_zero >= self.ctx.majority() {
                    self.decide(0);
                } else if prefer_one > 0 {
                    // Quorum intersection guarantees prefer_zero and
                    // prefer_one cannot both be positive system-wide; adopt
                    // the named value and move to the next round.
                    self.estimate = 1;
                    self.prefer = None;
                    self.switch_to(self.key.next_round());
                } else if prefer_zero > 0 {
                    self.estimate = 0;
                    self.prefer = None;
                    self.switch_to(self.key.next_round());
                } else {
                    // Nobody preferred anything: fall through to the coin.
                    self.prefer = None;
                    self.switch_to(self.key.next());
                }
            }
            VotePhase::Coin => {
                // Weak common coin: parity of the value contributed by the
                // lowest-identified origin heard from.
                let coin = votes
                    .iter()
                    .next()
                    .map(|r| r.payload & 1)
                    .unwrap_or(self.estimate);
                self.estimate = coin;
                self.prefer = None;
                self.switch_to(self.key.next());
            }
        }
    }

    fn learn_decision(&mut self, value: ConsensusValue) {
        self.decide(value);
    }

    fn handle_message(&mut self, from: ProcessId, msg: ConsensusMessage<G::Msg>) {
        if let Some(v) = msg.decided {
            self.learn_decision(v);
        }
        if self.decided.is_some() {
            // Only the decision-dissemination instance is still live.
            if msg.key == InstanceKey::Decision {
                self.engine.deliver(from, msg.inner);
            }
            return;
        }
        match msg.key.cmp(&self.key) {
            std::cmp::Ordering::Equal => self.engine.deliver(from, msg.inner),
            std::cmp::Ordering::Greater => {
                // Catch-up: adopt the sender's state and fast-forward to its
                // instance (the paper's history mechanism).
                if msg.key == InstanceKey::Decision {
                    // Decision messages always carry `decided`; handled above.
                    return;
                }
                self.estimate = msg.sender_estimate;
                self.prefer = msg.sender_prefer;
                self.switch_to(msg.key);
                self.engine.deliver(from, msg.inner);
            }
            std::cmp::Ordering::Less => {
                // A message from an already-completed exchange: stale, drop.
            }
        }
    }

    fn take_local_step(&mut self, out: &mut Vec<(ProcessId, ConsensusMessage<G::Msg>)>) {
        self.steps += 1;
        self.try_complete_instance();
        let mut inner_out = Vec::new();
        self.engine.local_step(&mut inner_out);
        for (to, inner) in inner_out {
            out.push((
                to,
                ConsensusMessage {
                    key: self.key,
                    inner,
                    decided: self.decided,
                    sender_estimate: self.estimate,
                    sender_prefer: self.prefer,
                },
            ));
        }
    }

    /// Number of local steps taken.
    pub fn steps_taken(&self) -> u64 {
        self.steps
    }
}

impl<G, F> Process for ConsensusProcess<G, F>
where
    G: GossipEngine,
    F: Fn(GossipCtx) -> G,
{
    type Message = ConsensusMessage<G::Msg>;

    fn on_step(
        &mut self,
        _now: TimeStep,
        inbox: &mut Vec<Envelope<Self::Message>>,
        out: &mut Outbox<Self::Message>,
    ) {
        for env in inbox.drain(..) {
            self.handle_message(env.from, env.payload);
        }
        self.send_buf.clear();
        let mut sends = std::mem::take(&mut self.send_buf);
        self.take_local_step(&mut sends);
        for (to, msg) in sends.drain(..) {
            out.send(to, msg);
        }
        self.send_buf = sends;
    }

    fn is_quiescent(&self) -> bool {
        self.decided.is_some() && self.engine.is_quiescent()
    }
}

/// Convenience constructor for the rumor a participant contributes to a
/// decision instance (used in tests).
pub fn decision_rumor(pid: ProcessId, value: ConsensusValue) -> Rumor {
    Rumor::new(pid, value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::decode_prefer;
    use agossip_core::Trivial;

    type TrivialConsensus = ConsensusProcess<Trivial, fn(GossipCtx) -> Trivial>;

    fn make(pid: usize, n: usize, value: u64) -> TrivialConsensus {
        let ctx = ConsensusCtx::new(ProcessId(pid), n, n / 2 - 1, value, 42 + pid as u64);
        ConsensusProcess::new(ctx, Trivial::new as fn(GossipCtx) -> Trivial)
    }

    fn step(
        p: &mut TrivialConsensus,
    ) -> Vec<(ProcessId, ConsensusMessage<agossip_core::TrivialMessage>)> {
        let mut out = Vec::new();
        p.take_local_step(&mut out);
        out
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn rejects_non_binary_inputs() {
        ConsensusCtx::new(ProcessId(0), 4, 1, 7, 0);
    }

    #[test]
    fn starts_in_round_zero_estimate_exchange() {
        let p = make(0, 4, 1);
        assert_eq!(p.current_instance(), InstanceKey::initial());
        assert_eq!(p.estimate(), 1);
        assert_eq!(p.decision(), None);
        assert_eq!(p.rounds_started(), 1);
    }

    #[test]
    fn outgoing_messages_carry_instance_and_state() {
        let mut p = make(0, 4, 1);
        let out = step(&mut p);
        assert!(!out.is_empty());
        for (_, msg) in &out {
            assert_eq!(msg.key, InstanceKey::initial());
            assert_eq!(msg.sender_estimate, 1);
            assert_eq!(msg.decided, None);
        }
    }

    #[test]
    fn unanimous_votes_lead_to_decision_in_one_round() {
        // Four processes, all starting with value 1. Drive process 0 by hand,
        // feeding it the votes of the others for each exchange.
        let n = 4;
        let mut p = make(0, n, 1);
        // Estimate exchange: deliver votes (estimate = 1) from 1, 2, 3.
        for q in 1..n {
            p.handle_message(
                ProcessId(q),
                ConsensusMessage {
                    key: InstanceKey::initial(),
                    inner: agossip_core::TrivialMessage {
                        rumor: Rumor::new(ProcessId(q), 1),
                    },
                    decided: None,
                    sender_estimate: 1,
                    sender_prefer: None,
                },
            );
        }
        step(&mut p);
        // Majority of estimate votes seen -> moved to the Prefer exchange
        // preferring 1.
        assert_eq!(
            p.current_instance(),
            InstanceKey::Voting {
                round: 0,
                phase: VotePhase::Prefer
            }
        );
        assert_eq!(p.preference(), Some(1));
        // Preference exchange: deliver prefer-1 votes from the others.
        for q in 1..n {
            p.handle_message(
                ProcessId(q),
                ConsensusMessage {
                    key: InstanceKey::Voting {
                        round: 0,
                        phase: VotePhase::Prefer,
                    },
                    inner: agossip_core::TrivialMessage {
                        rumor: Rumor::new(ProcessId(q), encode_prefer(Some(1))),
                    },
                    decided: None,
                    sender_estimate: 1,
                    sender_prefer: Some(1),
                },
            );
        }
        step(&mut p);
        assert_eq!(p.decision(), Some(1));
        assert_eq!(p.current_instance(), InstanceKey::Decision);
    }

    #[test]
    fn piggybacked_decision_is_adopted_immediately() {
        let mut p = make(0, 4, 0);
        p.handle_message(
            ProcessId(3),
            ConsensusMessage {
                key: InstanceKey::Decision,
                inner: agossip_core::TrivialMessage {
                    rumor: Rumor::new(ProcessId(3), 1),
                },
                decided: Some(1),
                sender_estimate: 1,
                sender_prefer: Some(1),
            },
        );
        assert_eq!(p.decision(), Some(1));
        assert_eq!(p.current_instance(), InstanceKey::Decision);
    }

    #[test]
    fn future_instance_message_fast_forwards_state() {
        let mut p = make(0, 4, 0);
        let future = InstanceKey::Voting {
            round: 2,
            phase: VotePhase::Estimate,
        };
        p.handle_message(
            ProcessId(2),
            ConsensusMessage {
                key: future,
                inner: agossip_core::TrivialMessage {
                    rumor: Rumor::new(ProcessId(2), 1),
                },
                decided: None,
                sender_estimate: 1,
                sender_prefer: None,
            },
        );
        assert_eq!(p.current_instance(), future);
        assert_eq!(p.estimate(), 1, "adopted the sender's estimate");
        assert_eq!(p.rounds_started(), 3);
    }

    #[test]
    fn stale_messages_are_ignored() {
        let mut p = make(0, 4, 0);
        // Move p forward first.
        let future = InstanceKey::Voting {
            round: 1,
            phase: VotePhase::Estimate,
        };
        p.handle_message(
            ProcessId(2),
            ConsensusMessage {
                key: future,
                inner: agossip_core::TrivialMessage {
                    rumor: Rumor::new(ProcessId(2), 0),
                },
                decided: None,
                sender_estimate: 0,
                sender_prefer: None,
            },
        );
        let votes_before = p.engine.rumors().len();
        // A stale round-0 message must not be delivered to the new engine.
        p.handle_message(
            ProcessId(3),
            ConsensusMessage {
                key: InstanceKey::initial(),
                inner: agossip_core::TrivialMessage {
                    rumor: Rumor::new(ProcessId(3), 1),
                },
                decided: None,
                sender_estimate: 1,
                sender_prefer: None,
            },
        );
        assert_eq!(p.engine.rumors().len(), votes_before);
    }

    #[test]
    fn no_preferences_fall_through_to_coin() {
        let n = 4;
        let mut p = make(0, n, 0);
        // Estimate exchange with a split vote: 0 from itself and process 1,
        // 1 from processes 2 and 3 — no value reaches the majority of 3.
        for (q, v) in [(1usize, 0u64), (2, 1), (3, 1)] {
            p.handle_message(
                ProcessId(q),
                ConsensusMessage {
                    key: InstanceKey::initial(),
                    inner: agossip_core::TrivialMessage {
                        rumor: Rumor::new(ProcessId(q), v),
                    },
                    decided: None,
                    sender_estimate: v,
                    sender_prefer: None,
                },
            );
        }
        step(&mut p);
        assert_eq!(p.preference(), None);
        // Preference exchange where everyone reports "no preference".
        for q in 1..n {
            p.handle_message(
                ProcessId(q),
                ConsensusMessage {
                    key: InstanceKey::Voting {
                        round: 0,
                        phase: VotePhase::Prefer,
                    },
                    inner: agossip_core::TrivialMessage {
                        rumor: Rumor::new(ProcessId(q), encode_prefer(None)),
                    },
                    decided: None,
                    sender_estimate: 0,
                    sender_prefer: None,
                },
            );
        }
        step(&mut p);
        assert_eq!(
            p.current_instance(),
            InstanceKey::Voting {
                round: 0,
                phase: VotePhase::Coin
            }
        );
        assert_eq!(p.decision(), None);
    }

    #[test]
    fn single_named_preference_is_adopted_without_deciding() {
        let n = 5; // majority = 3
        let mut p = make(0, n, 0);
        // Jump straight to the prefer exchange by fast-forward.
        let prefer_key = InstanceKey::Voting {
            round: 0,
            phase: VotePhase::Prefer,
        };
        p.handle_message(
            ProcessId(1),
            ConsensusMessage {
                key: prefer_key,
                inner: agossip_core::TrivialMessage {
                    rumor: Rumor::new(ProcessId(1), encode_prefer(Some(1))),
                },
                decided: None,
                sender_estimate: 1,
                sender_prefer: Some(1),
            },
        );
        // Two more prefer votes, both "no preference": only one vote names 1,
        // which is below the majority of 3, so p adopts 1 but does not decide.
        for q in 2..4 {
            p.handle_message(
                ProcessId(q),
                ConsensusMessage {
                    key: prefer_key,
                    inner: agossip_core::TrivialMessage {
                        rumor: Rumor::new(ProcessId(q), encode_prefer(None)),
                    },
                    decided: None,
                    sender_estimate: 0,
                    sender_prefer: None,
                },
            );
        }
        step(&mut p);
        assert_eq!(p.decision(), None);
        assert_eq!(p.estimate(), 1);
        assert_eq!(
            p.current_instance(),
            InstanceKey::Voting {
                round: 1,
                phase: VotePhase::Estimate
            }
        );
    }

    #[test]
    fn quiescent_only_after_decision_and_dissemination() {
        let mut p = make(0, 2, 1);
        assert!(!Process::is_quiescent(&p));
        p.learn_decision(1);
        // Decision engine (trivial gossip) has not broadcast yet.
        assert!(!Process::is_quiescent(&p));
        let mut out = Vec::new();
        p.take_local_step(&mut out);
        assert!(Process::is_quiescent(&p));
        assert!(out.iter().all(|(_, m)| m.decided == Some(1)));
    }

    #[test]
    fn decode_prefer_used_by_votes() {
        assert_eq!(decode_prefer(encode_prefer(Some(1))), Some(1));
    }
}
