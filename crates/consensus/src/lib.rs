//! # agossip-consensus
//!
//! Randomized asynchronous consensus built from message-efficient gossip,
//! following Section 6 of *"On the Complexity of Asynchronous Gossip"*
//! (PODC 2008).
//!
//! The paper plugs its gossip protocols into the Canetti–Rabin framework
//! (presented as in Attiya–Welch, Section 14.3): each round consists of
//! voting exchanges implemented by `get-core`, and `get-core` is in turn
//! implemented by instances of asynchronous (majority) gossip, each of which
//! terminates at a process once it has received `⌊n/2⌋ + 1` rumors. The
//! resulting protocols inherit the gossip protocol's time and message
//! complexity (Table 2):
//!
//! | Consensus | get-core gossip | Time | Messages |
//! |---|---|---|---|
//! | `CR` (baseline) | trivial all-to-all | `O(d+δ)` | `O(n²)` |
//! | `CR-ears` | [`agossip_core::Ears`] | `O(log²n (d+δ))` | `O(n log³n (d+δ))` |
//! | `CR-sears` | [`agossip_core::Sears`] | `O(1/ε (d+δ))` | `O(n^{1+ε} log n (d+δ))` |
//! | `CR-tears` | [`agossip_core::Tears`] | `O(d+δ)` | `O(n^{7/4} log²n)` |
//!
//! `CR-tears` is the headline result: the first asynchronous randomized
//! consensus protocol with constant time (w.r.t. `n`) and strictly
//! subquadratic message complexity.
//!
//! ## Simplifications (documented in `DESIGN.md`)
//!
//! * Consensus is binary (inputs in `{0, 1}`), the standard setting for
//!   randomized consensus.
//! * The shared coin of Canetti–Rabin is replaced by a gossip-based weak
//!   common coin: every process gossips a locally random value and adopts the
//!   value contributed by the lowest-identified process it heard from.
//!   Against an *oblivious* adversary this coin agrees with constant
//!   probability, which is all the framework needs for constant expected
//!   round count.
//! * The catch-up mechanism ("each gossip message includes a history of all
//!   prior completed calls") is realised by piggybacking the sender's current
//!   round, phase, estimate, preference and decision on every message;
//!   processes that receive a message from a later instance fast-forward by
//!   adopting the sender's state.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms, unreachable_pub)]
#![warn(missing_docs)]

pub mod checker;
pub mod driver;
pub mod message;
pub mod process;
pub mod value;

pub use checker::{check_consensus, ConsensusCheck};
pub use driver::{run_consensus, ConsensusProtocol, ConsensusReport};
pub use message::{ConsensusMessage, InstanceKey, VotePhase};
pub use process::{ConsensusCtx, ConsensusProcess};
pub use value::{decode_prefer, encode_prefer, ConsensusValue, NULL_PREFERENCE};
