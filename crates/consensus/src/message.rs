//! Consensus wire messages: instance identification and piggybacked state.

use std::cmp::Ordering;

use crate::value::ConsensusValue;

/// The voting exchanges within one round of the Canetti–Rabin framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum VotePhase {
    /// First exchange: vote on the current estimate.
    Estimate,
    /// Second exchange: vote on the preference derived from the estimates.
    Prefer,
    /// Third exchange: contribute to the weak common coin.
    Coin,
}

impl VotePhase {
    /// All phases, in execution order.
    pub const ALL: [VotePhase; 3] = [VotePhase::Estimate, VotePhase::Prefer, VotePhase::Coin];

    /// Index used for ordering and seed derivation.
    pub fn index(self) -> u32 {
        match self {
            VotePhase::Estimate => 0,
            VotePhase::Prefer => 1,
            VotePhase::Coin => 2,
        }
    }
}

/// Identifies the gossip instance a message belongs to.
///
/// Voting instances are ordered by `(round, phase)`; the decision
/// dissemination instance follows every voting instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstanceKey {
    /// A voting exchange of a specific round.
    Voting {
        /// The round number, starting at 0.
        round: u32,
        /// The exchange within the round.
        phase: VotePhase,
    },
    /// The final decision-dissemination gossip.
    Decision,
}

impl InstanceKey {
    /// The very first instance of the protocol.
    pub fn initial() -> Self {
        InstanceKey::Voting {
            round: 0,
            phase: VotePhase::Estimate,
        }
    }

    /// Total order used to decide whether a message is from the past, the
    /// present, or the future relative to a process's current instance.
    pub fn order_index(&self) -> u64 {
        match self {
            InstanceKey::Voting { round, phase } => (*round as u64) * 3 + phase.index() as u64,
            InstanceKey::Decision => u64::MAX,
        }
    }

    /// The instance that follows this one in a straight-line execution
    /// (without skips). `Decision` is terminal.
    pub fn next(&self) -> InstanceKey {
        match self {
            InstanceKey::Voting { round, phase } => match phase {
                VotePhase::Estimate => InstanceKey::Voting {
                    round: *round,
                    phase: VotePhase::Prefer,
                },
                VotePhase::Prefer => InstanceKey::Voting {
                    round: *round,
                    phase: VotePhase::Coin,
                },
                VotePhase::Coin => InstanceKey::Voting {
                    round: round + 1,
                    phase: VotePhase::Estimate,
                },
            },
            InstanceKey::Decision => InstanceKey::Decision,
        }
    }

    /// The first exchange of the next round (used when the coin exchange is
    /// skipped because a preference was adopted).
    pub fn next_round(&self) -> InstanceKey {
        match self {
            InstanceKey::Voting { round, .. } => InstanceKey::Voting {
                round: round + 1,
                phase: VotePhase::Estimate,
            },
            InstanceKey::Decision => InstanceKey::Decision,
        }
    }

    /// The round number, if this is a voting instance.
    pub fn round(&self) -> Option<u32> {
        match self {
            InstanceKey::Voting { round, .. } => Some(*round),
            InstanceKey::Decision => None,
        }
    }
}

impl PartialOrd for InstanceKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for InstanceKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.order_index().cmp(&other.order_index())
    }
}

/// A consensus message: a gossip-protocol message tagged with its instance
/// and the sender's piggybacked consensus state (the paper's catch-up
/// history, in compact form).
#[derive(Debug, Clone, PartialEq)]
pub struct ConsensusMessage<M> {
    /// Which gossip instance the inner message belongs to.
    pub key: InstanceKey,
    /// The gossip protocol's own message.
    pub inner: M,
    /// The sender's decision, if it has decided.
    pub decided: Option<ConsensusValue>,
    /// The sender's current estimate.
    pub sender_estimate: ConsensusValue,
    /// The sender's current preference (for fast-forwarding receivers).
    pub sender_prefer: Option<ConsensusValue>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_order_is_round_then_phase_then_decision() {
        let r0e = InstanceKey::initial();
        let r0p = r0e.next();
        let r0c = r0p.next();
        let r1e = r0c.next();
        assert!(r0e < r0p);
        assert!(r0p < r0c);
        assert!(r0c < r1e);
        assert!(r1e < InstanceKey::Decision);
        assert_eq!(InstanceKey::Decision.next(), InstanceKey::Decision);
    }

    #[test]
    fn next_round_skips_remaining_phases() {
        let r0p = InstanceKey::Voting {
            round: 0,
            phase: VotePhase::Prefer,
        };
        assert_eq!(
            r0p.next_round(),
            InstanceKey::Voting {
                round: 1,
                phase: VotePhase::Estimate
            }
        );
        assert_eq!(InstanceKey::Decision.next_round(), InstanceKey::Decision);
    }

    #[test]
    fn round_accessor() {
        assert_eq!(InstanceKey::initial().round(), Some(0));
        assert_eq!(InstanceKey::Decision.round(), None);
    }

    #[test]
    fn phases_are_ordered_and_indexed() {
        assert_eq!(VotePhase::Estimate.index(), 0);
        assert_eq!(VotePhase::Prefer.index(), 1);
        assert_eq!(VotePhase::Coin.index(), 2);
        assert!(VotePhase::Estimate < VotePhase::Prefer);
        assert_eq!(VotePhase::ALL.len(), 3);
    }
}
