//! `agossip-lint` — the CLI entry point CI and developers run.
//!
//! ```text
//! cargo run -p agossip-lint                      # lint the workspace
//! cargo run -p agossip-lint -- --json report.json
//! cargo run -p agossip-lint -- --root /path/to/workspace --quiet
//! ```
//!
//! Exit status: `0` when every finding is waived, `1` when unwaived
//! findings exist, `2` on usage or I/O errors. Diagnostics go to stdout as
//! `file:line: [rule] what`; `--json` additionally writes the full
//! machine-readable report (findings *and* waivers).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms, unreachable_pub)]

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    json: Option<PathBuf>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    // Default root: the workspace containing this crate when run via
    // `cargo run -p agossip-lint`, else the current directory.
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .filter(|p| p.join("Cargo.toml").is_file())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."));

    let mut args = Args {
        root: default_root,
        json: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root =
                    PathBuf::from(it.next().ok_or_else(|| "--root needs a path".to_string())?);
            }
            "--json" => {
                args.json = Some(PathBuf::from(
                    it.next().ok_or_else(|| "--json needs a path".to_string())?,
                ));
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                return Err(
                    "usage: agossip-lint [--root <workspace>] [--json <report.json>] [--quiet]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let report = match agossip_lint::run_lint(&args.root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("agossip-lint: failed to walk {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &args.json {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Err(e) = std::fs::create_dir_all(parent) {
                eprintln!("agossip-lint: cannot create {}: {e}", parent.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("agossip-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    let unwaived = report.unwaived_count();
    if !args.quiet {
        print!("{}", report.render_diagnostics());
        let waived = report.findings.len() - unwaived;
        let stale = report.waivers.iter().filter(|w| !w.used).count();
        println!(
            "agossip-lint: {} files, {} unwaived finding(s), {} waived, {} waiver(s) ({} unused)",
            report.files_scanned,
            unwaived,
            waived,
            report.waivers.len(),
            stale,
        );
    }

    if unwaived == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
