//! The path-scoped policy table: which rule applies to which files.
//!
//! Scopes are workspace-relative path patterns with `/` separators. A
//! pattern either names an exact file (`crates/core/src/codec.rs`) or, when
//! it ends with `/`, a directory prefix (`crates/sim/src/`). The empty
//! pattern matches everything — the corpus tests use it to aim one rule at a
//! lone snippet.
//!
//! [`default_policy`] is the table the workspace is actually gated on; the
//! rule-by-rule rationale lives in the README's "Correctness tooling"
//! section and on each [`RuleId`] variant.

use crate::rules::RuleId;

/// One row of the policy table: a rule and the scopes it applies to.
#[derive(Debug, Clone)]
pub struct PolicyEntry {
    /// The rule.
    pub rule: RuleId,
    /// Path patterns the rule applies to (see the module docs).
    pub include: Vec<String>,
    /// Path patterns carved back out of `include`.
    pub exclude: Vec<String>,
}

/// A full policy: the rows plus the set of files the linter walks.
#[derive(Debug, Clone)]
pub struct Policy {
    /// The policy rows.
    pub entries: Vec<PolicyEntry>,
}

impl Policy {
    /// The rules that apply to `rel_path` under this policy.
    pub fn rules_for(&self, rel_path: &str) -> Vec<RuleId> {
        self.entries
            .iter()
            .filter(|e| {
                e.include.iter().any(|p| matches(p, rel_path))
                    && !e.exclude.iter().any(|p| matches(p, rel_path))
            })
            .map(|e| e.rule)
            .collect()
    }

    /// A policy applying exactly one rule to every path (corpus tests).
    pub fn single_rule(rule: RuleId) -> Policy {
        Policy {
            entries: vec![PolicyEntry {
                rule,
                include: vec![String::new()],
                exclude: Vec::new(),
            }],
        }
    }
}

/// True if `pattern` covers `rel_path` (exact file, directory prefix ending
/// in `/`, or the match-everything empty pattern).
fn matches(pattern: &str, rel_path: &str) -> bool {
    if pattern.is_empty() {
        return true;
    }
    if let Some(dir) = pattern.strip_suffix('/') {
        rel_path
            .strip_prefix(dir)
            .is_some_and(|r| r.starts_with('/'))
    } else {
        rel_path == pattern
    }
}

fn entry(rule: RuleId, include: &[&str], exclude: &[&str]) -> PolicyEntry {
    PolicyEntry {
        rule,
        include: include.iter().map(|s| s.to_string()).collect(),
        exclude: exclude.iter().map(|s| s.to_string()).collect(),
    }
}

/// The deterministic crates: their execution must be a pure function of the
/// configuration and seed (lockstep runs, sweep results for any worker
/// count).
const DETERMINISTIC_CRATES: [&str; 5] = [
    "crates/core/src/",
    "crates/sim/src/",
    "crates/consensus/src/",
    "crates/adversary/src/",
    "crates/analysis/src/",
];

/// The policy the workspace is gated on (tier-1 test + CI `lint` job).
pub fn default_policy() -> Policy {
    let entries = vec![
        // (1) Randomized-iteration collections break bit-identical replay.
        entry(
            RuleId::NoNondeterministicCollections,
            &DETERMINISTIC_CRATES,
            &[],
        ),
        // (2) Wall-clock reads are banned everywhere except the bench crate
        // and the free-running runtime paths (which are wall-clock *by
        // design* and carry inline waivers, so every site is visible in the
        // report).
        entry(
            RuleId::NoWallClock,
            &[
                "crates/core/src/",
                "crates/sim/src/",
                "crates/consensus/src/",
                "crates/adversary/src/",
                "crates/analysis/src/",
                "crates/runtime/src/",
            ],
            &[],
        ),
        // (3) Decode and frame handling must never panic: corrupt bytes are
        // message loss, surfaced as typed errors. The driver is included
        // because it joins node threads and surfaces their errors — a panic
        // there takes down the whole run; the reactor multiplexes *every*
        // process of its shard, so a panic there takes out all of them at
        // once. The epoch/service paths peel and route epoch-tagged frames
        // (and absorb stale ones) on that same per-frame surface, so they
        // are held to the same rule.
        entry(
            RuleId::NeverPanicDecode,
            &[
                "crates/core/src/codec.rs",
                "crates/core/src/codec_view.rs",
                "crates/core/src/epoch.rs",
                "crates/core/src/service.rs",
                "crates/runtime/src/transport.rs",
                "crates/runtime/src/event_loop.rs",
                "crates/runtime/src/driver.rs",
                "crates/runtime/src/reactor.rs",
                "crates/runtime/src/clock.rs",
                "crates/runtime/src/service.rs",
            ],
            &[],
        ),
        // (4) Narrowing in codec/wire code goes through try_from.
        entry(
            RuleId::NoUncheckedNarrowing,
            &[
                "crates/core/src/codec.rs",
                "crates/core/src/codec_view.rs",
                "crates/core/src/wire.rs",
                "crates/runtime/src/transport.rs",
            ],
            &[],
        ),
        // (5) No unsafe anywhere in the workspace crates (vendor stubs are
        // not walked and are exempt from the *lint* — but every one of them
        // carries `#![forbid(unsafe_code)]`, the stronger, compiler-enforced
        // form; each stub's lib.rs documents this). One carve-out, mirroring
        // the existing compiler-level `#![allow(unsafe_code)]` in the file
        // itself: the counting-global-allocator test must implement the
        // unsafe `GlobalAlloc` trait; every block there has a SAFETY comment
        // (enforced by `clippy::undocumented_unsafe_blocks = deny`).
        entry(
            RuleId::NoUnsafe,
            &["crates/", "tests/"],
            &["tests/tests/alloc_behaviour.rs"],
        ),
    ];

    Policy { entries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_matching_semantics() {
        assert!(matches("", "anything/at/all.rs"));
        assert!(matches("crates/sim/src/", "crates/sim/src/network.rs"));
        assert!(matches("crates/sim/src/", "crates/sim/src/deep/er.rs"));
        assert!(!matches("crates/sim/src/", "crates/sim/tests/x.rs"));
        assert!(!matches("crates/sim/src", "crates/sim/src/network.rs"));
        assert!(matches(
            "crates/core/src/codec.rs",
            "crates/core/src/codec.rs"
        ));
        assert!(!matches(
            "crates/core/src/codec.rs",
            "crates/core/src/codec.rs.bak"
        ));
    }

    #[test]
    fn default_policy_scopes_sanity() {
        let policy = default_policy();
        let codec = policy.rules_for("crates/core/src/codec.rs");
        assert!(codec.contains(&RuleId::NeverPanicDecode));
        assert!(codec.contains(&RuleId::NoUncheckedNarrowing));
        assert!(codec.contains(&RuleId::NoNondeterministicCollections));

        let view = policy.rules_for("crates/core/src/codec_view.rs");
        assert!(view.contains(&RuleId::NeverPanicDecode));
        assert!(view.contains(&RuleId::NoUncheckedNarrowing));

        let reactor = policy.rules_for("crates/runtime/src/reactor.rs");
        assert!(reactor.contains(&RuleId::NeverPanicDecode));
        assert!(reactor.contains(&RuleId::NoWallClock));

        for service_path in [
            "crates/core/src/epoch.rs",
            "crates/core/src/service.rs",
            "crates/runtime/src/service.rs",
        ] {
            let rules = policy.rules_for(service_path);
            assert!(
                rules.contains(&RuleId::NeverPanicDecode),
                "{service_path} routes epoch-tagged frames and must not panic on decode"
            );
            assert!(rules.contains(&RuleId::NoWallClock));
        }

        let bench = policy.rules_for("crates/bench/src/lib.rs");
        assert!(
            !bench.contains(&RuleId::NoWallClock),
            "bench may read the clock"
        );
        assert!(bench.contains(&RuleId::NoUnsafe));

        let sim_test = policy.rules_for("crates/sim/tests/network_differential.rs");
        assert!(!sim_test.contains(&RuleId::NoNondeterministicCollections));
        assert!(sim_test.contains(&RuleId::NoUnsafe));
    }
}
