//! A small Rust lexer, exactly strong enough for token-stream lint rules.
//!
//! The rules in [`crate::rules`] must never fire on a banned name that
//! appears inside a string literal, a character literal or a comment — so
//! the lexer's whole job is to classify those regions correctly:
//!
//! * line comments (`//`, `///`, `//!`) are kept as [`Tok::LineComment`]
//!   tokens because waivers (`// lint:allow(rule): reason`) live in them;
//! * block comments nest (`/* /* */ */`) and are skipped entirely;
//! * string literals cover plain, byte, C and raw forms (`"…"`, `b"…"`,
//!   `c"…"`, `r#"…"#` with any number of `#`s) with escape handling;
//! * `'a'` (char) is distinguished from `'a` (lifetime) by lookahead;
//! * numeric literals keep enough shape to tell integers (`0`, `0x1f`,
//!   `1_000u64`) from floats, because the never-panic rule flags
//!   indexing-by-integer-literal.
//!
//! Everything else becomes an identifier/keyword token or single-character
//! punctuation; multi-character operators (`::`, `->`) arrive as adjacent
//! punctuation tokens, which is all the sequence matchers need. The lexer is
//! total: any byte sequence lexes without panicking (malformed input just
//! produces unhelpful punctuation tokens, never a crash — pinned by the
//! property tests).

/// One classified token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`unwrap`, `unsafe`, `as`, `HashMap`, …).
    Ident(String),
    /// An integer literal (`0`, `0x7f`, `1_000u64`).
    IntLit,
    /// Any other literal: strings, chars, byte strings, floats.
    Lit,
    /// A single punctuation character.
    Punct(char),
    /// A line comment, text after the `//` (waivers are parsed from these).
    LineComment(String),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line number of the token's first character.
    pub line: u32,
    /// The classified token.
    pub kind: Tok,
}

/// Lexes `src` into a token stream. Total: never panics on any input.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one character, tracking line numbers.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, line: u32, kind: Tok) {
        self.out.push(Token { line, kind });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(line),
                '\'' => self.quote(line),
                _ if c.is_ascii_digit() => self.number(line),
                _ if c == '_' || c.is_alphabetic() => self.ident_or_prefixed_literal(line),
                _ => {
                    self.bump();
                    self.push(line, Tok::Punct(c));
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self, line: u32) {
        self.bump(); // '/'
        self.bump(); // '/'
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(line, Tok::LineComment(text));
    }

    /// Skips a block comment, honouring nesting.
    fn block_comment(&mut self) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return, // unterminated: nothing left to mislex
            }
        }
    }

    /// A `"…"` literal with `\` escapes (the opening quote not yet consumed).
    fn string_literal(&mut self, line: u32) {
        self.bump(); // '"'
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump(); // the escaped character, e.g. `\"` or `\\`
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(line, Tok::Lit);
    }

    /// A raw string `r##"…"##` whose prefix (`r`/`br`/`cr`) is already
    /// consumed; `hashes` is the number of `#`s before the opening quote.
    fn raw_string_literal(&mut self, line: u32, hashes: usize) {
        for _ in 0..hashes {
            self.bump(); // '#'
        }
        self.bump(); // '"'
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push(line, Tok::Lit);
    }

    /// A `'` — either a char literal (`'a'`, `'\n'`, `' '`) or a lifetime
    /// (`'a`, `'static`, `'_`). Lookahead disambiguates: a lifetime is `'`
    /// followed by an identifier char *not* closed by another quote.
    fn quote(&mut self, line: u32) {
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(c) if c == '_' || c.is_alphabetic() => self.peek(2) != Some('\''),
            _ => false,
        };
        self.bump(); // '\''
        if is_lifetime {
            while let Some(c) = self.peek(0) {
                if c == '_' || c.is_alphanumeric() {
                    self.bump();
                } else {
                    break;
                }
            }
            // Lifetimes carry no information the rules need; emit nothing.
            return;
        }
        // Char (or byte-char) literal: scan to the closing quote, skipping
        // escapes (`'\''`, `'\\'`, `'\u{1F600}'`).
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push(line, Tok::Lit);
    }

    /// A numeric literal. Integers (including `0x…`/`0b…`/`0o…` and suffixed
    /// forms) become [`Tok::IntLit`]; anything with a fractional part or
    /// exponent becomes [`Tok::Lit`].
    fn number(&mut self, line: u32) {
        let mut is_float = false;
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                if c == 'e' || c == 'E' {
                    // Exponent only counts as float shape in decimal
                    // literals; in `0x1E` the `E` is a hex digit. A decimal
                    // exponent is always followed by a digit or sign.
                    let hexish = self.out_ends_with_hex_prefix();
                    if !hexish
                        && matches!(self.peek(1), Some(d) if d.is_ascii_digit() || d == '+' || d == '-')
                    {
                        is_float = true;
                    }
                }
                self.bump();
            } else if c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                is_float = true;
                self.bump();
            } else {
                break;
            }
        }
        self.push(line, if is_float { Tok::Lit } else { Tok::IntLit });
    }

    /// True while lexing a number that started `0x`/`0X` (so `E` is a digit,
    /// not an exponent). Cheap approximation: look back at the raw chars.
    fn out_ends_with_hex_prefix(&self) -> bool {
        // The number started at most `pos` characters ago on this line;
        // scan back to its first character.
        let mut i = self.pos;
        while i > 0 {
            let c = self.chars[i - 1];
            if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                i -= 1;
            } else {
                break;
            }
        }
        self.chars.get(i) == Some(&'0') && matches!(self.chars.get(i + 1), Some('x') | Some('X'))
    }

    /// An identifier — unless it is a literal prefix (`r"`, `b"`, `c"`,
    /// `br#"`, `b'`), in which case the whole literal is consumed.
    fn ident_or_prefixed_literal(&mut self, line: u32) {
        let start = self.pos;
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.pos += 1; // idents contain no newlines; bump() not needed
            } else {
                break;
            }
        }
        let ident: String = self.chars[start..self.pos].iter().collect();
        let is_string_prefix = matches!(ident.as_str(), "r" | "b" | "c" | "br" | "cr");
        match self.peek(0) {
            Some('"') if is_string_prefix => {
                if ident.contains('r') {
                    self.raw_string_literal(line, 0);
                } else {
                    self.string_literal(line);
                }
            }
            Some('#') if is_string_prefix && ident.contains('r') => {
                // Count the hashes and require an opening quote after them —
                // otherwise this was `r #…` punctuation, not a raw string.
                let mut hashes = 0;
                while self.peek(hashes) == Some('#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some('"') {
                    self.raw_string_literal(line, hashes);
                } else {
                    self.push(line, Tok::Ident(ident));
                }
            }
            Some('\'') if ident == "b" => {
                self.quote(line); // byte-char literal b'x'
            }
            _ => self.push(line, Tok::Ident(ident)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            let a = "unwrap() HashMap"; // unsafe in a comment
            /* unsafe /* nested unsafe */ still comment */
            let b = r#"panic!("HashMap")"#;
            let c = b"unsafe";
            let d = 'u';
        "##;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|i| i == "unwrap" || i == "HashMap" || i == "unsafe" || i == "panic"));
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c", "let", "d"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // `'a` must not swallow `>` as string content.
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x.trim() }");
        assert!(ids.contains(&"trim".to_string()));
        assert!(ids.contains(&"str".to_string()));
        // A real char literal next to a lifetime still lexes.
        let toks = lex("let c: char = 'x'; let r: &'static str = \"y\";");
        assert_eq!(
            toks.iter().filter(|t| t.kind == Tok::Lit).count(),
            2,
            "one char literal and one string literal"
        );
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let ids = idents(r#"let s = "he said \"unwrap()\" loudly"; s.len()"#);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"len".to_string()));
        let ids = idents(r"let c = '\''; let d = '\\'; x.unwrap()");
        assert!(ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let kinds: Vec<_> = lex("1 0x1F 1_000u64 1.5 2e10 0x1E 3.0f64")
            .into_iter()
            .map(|t| t.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                Tok::IntLit, // 1
                Tok::IntLit, // 0x1F
                Tok::IntLit, // 1_000u64
                Tok::Lit,    // 1.5
                Tok::Lit,    // 2e10
                Tok::IntLit, // 0x1E — E is a hex digit, not an exponent
                Tok::Lit,    // 3.0f64
            ]
        );
    }

    #[test]
    fn line_numbers_are_tracked_across_literals() {
        let src = "a\n\"two\nlines\"\nb";
        let toks = lex(src);
        assert_eq!(
            toks[0],
            Token {
                line: 1,
                kind: Tok::Ident("a".into())
            }
        );
        assert_eq!(
            toks[1],
            Token {
                line: 2,
                kind: Tok::Lit
            }
        );
        assert_eq!(
            toks[2],
            Token {
                line: 4,
                kind: Tok::Ident("b".into())
            }
        );
    }

    #[test]
    fn waiver_comments_survive_as_tokens() {
        let toks = lex("x.foo(); // lint:allow(no-unsafe): demo reason");
        assert!(toks.iter().any(
            |t| matches!(&t.kind, Tok::LineComment(c) if c.contains("lint:allow(no-unsafe)"))
        ));
    }

    #[test]
    fn arbitrary_garbage_lexes_without_panicking() {
        for src in ["\"", "'", "r#\"", "/*", "b'", "0x", "'\\", "r###", "\\"] {
            let _ = lex(src);
        }
    }
}
