//! Findings, waivers and the machine-readable JSON report.
//!
//! The workspace has no serde (offline vendor policy), so the report is
//! emitted by a small hand-rolled writer. The schema is flat on purpose —
//! CI consumers and humans read the same artifact:
//!
//! ```json
//! {
//!   "version": 1,
//!   "files_scanned": 93,
//!   "unwaived_count": 0,
//!   "findings": [
//!     {"rule": "…", "file": "…", "line": 7, "what": "…",
//!      "waived": true, "waive_reason": "…"}
//!   ],
//!   "waivers": [
//!     {"rule": "…", "file": "…", "line": 7, "reason": "…", "used": true}
//!   ]
//! }
//! ```
//!
//! Every waiver is listed whether or not it matched a finding, so the full
//! audit surface — what is suppressed where, and any stale suppressions —
//! is one artifact.

use std::fmt::Write as _;

use crate::rules::RuleId;

/// One diagnostic: a rule violation at a location, possibly waived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What matched.
    pub what: String,
    /// The waiver reason, when an inline waiver covers this finding.
    pub waive_reason: Option<String>,
}

impl Finding {
    /// True if no waiver covers this finding (what the gate counts).
    pub fn is_unwaived(&self) -> bool {
        self.waive_reason.is_none()
    }
}

/// One `// lint:allow(rule): reason` comment found in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// The rule being waived.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line of the waiver comment.
    pub line: u32,
    /// The justification after the colon.
    pub reason: String,
    /// Whether any finding actually matched this waiver.
    pub used: bool,
}

/// Everything one lint run produced.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
    /// All findings, waived ones included, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// All waivers seen, used or not, sorted by (file, line).
    pub waivers: Vec<Waiver>,
}

impl Report {
    /// Findings not covered by a waiver — the gate fails if any exist.
    pub fn unwaived(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.is_unwaived())
    }

    /// Count of unwaived findings.
    pub fn unwaived_count(&self) -> usize {
        self.unwaived().count()
    }

    /// Human-readable `file:line: [rule] what` diagnostics (unwaived only).
    pub fn render_diagnostics(&self) -> String {
        let mut out = String::new();
        for f in self.unwaived() {
            let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.what);
        }
        out
    }

    /// The machine-readable JSON report.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": 1,");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"unwaived_count\": {},", self.unwaived_count());
        out.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"what\": {}, \"waived\": {}, \"waive_reason\": {}}}",
                json_str(f.rule.id()),
                json_str(&f.file),
                f.line,
                json_str(&f.what),
                !f.is_unwaived(),
                f.waive_reason.as_deref().map_or("null".to_string(), json_str),
            );
        }
        out.push_str("\n  ],\n  \"waivers\": [");
        for (i, w) in self.waivers.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}, \"used\": {}}}",
                json_str(w.rule.id()),
                json_str(&w.file),
                w.line,
                json_str(&w.reason),
                w.used,
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_is_well_formed() {
        let report = Report {
            files_scanned: 2,
            findings: vec![Finding {
                rule: RuleId::NoUnsafe,
                file: "a.rs".into(),
                line: 3,
                what: "`unsafe` with \"quotes\"".into(),
                waive_reason: None,
            }],
            waivers: vec![Waiver {
                rule: RuleId::NoWallClock,
                file: "b.rs".into(),
                line: 9,
                reason: "free-running path".into(),
                used: true,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"unwaived_count\": 1"));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"used\": true"));
        // Empty report stays valid.
        let empty = Report::default().to_json();
        assert!(empty.contains("\"findings\": []") || empty.contains("\"findings\": [\n  ]"));
    }
}
