//! # agossip-lint
//!
//! A self-contained static-analysis pass that turns the workspace's two
//! load-bearing conventions into machine-checked invariants:
//!
//! * **bit-identical deterministic execution** — no randomized-iteration
//!   collections in the deterministic crates, no wall-clock reads outside
//!   the free-running runtime paths and the bench crate;
//! * **never-panic wire decode** — no `unwrap`/`expect`/panicking macros or
//!   literal indexing in decode/frame-handling code, and no truncating `as`
//!   casts in codec/wire code;
//!
//! plus a workspace-wide `unsafe` ban. The pass is a hand-rolled lexer
//! ([`lexer`]) feeding token-stream rules ([`rules`]) scoped by a path
//! policy table ([`policy`]); findings and waivers land in a JSON report
//! ([`report`]).
//!
//! ## Waivers
//!
//! An intentional violation is waived inline:
//!
//! ```text
//! let byte = (value & 0x7f) as u8; // lint:allow(no-unchecked-narrowing): masked to 7 bits
//! ```
//!
//! A waiver covers findings of the named rule on its own line, or — when the
//! comment stands alone — on the next line. Every waiver (used or not) is
//! listed in the report, so the audit surface is always visible. A waiver
//! with an unknown rule id or an empty reason is itself a finding
//! (`invalid-waiver`) and cannot be waived.
//!
//! ## Entry points
//!
//! * [`run_lint`] — walk a workspace root and lint it under
//!   [`policy::default_policy`] (what the tier-1 test and the CI `lint` job
//!   run);
//! * [`lint_source`] — lint one in-memory snippet under an explicit policy
//!   (what the corpus tests use).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms, unreachable_pub)]
#![warn(missing_docs)]

pub mod lexer;
pub mod policy;
pub mod report;
pub mod rules;

use std::path::{Path, PathBuf};

use lexer::{lex, Tok};
use policy::Policy;
use report::{Finding, Report, Waiver};
use rules::{check, strip_cfg_test, RuleId, Violation};

/// Directories under the workspace root that the linter walks.
const WALK_ROOTS: [&str; 2] = ["crates", "tests"];

/// Paths (relative, `/`-separated) excluded from the walk: the corpus holds
/// deliberate violations.
const WALK_EXCLUDE: [&str; 1] = ["crates/lint/tests/corpus/"];

/// Lints one file's source text under `policy`, as if it lived at
/// `rel_path`. Returns the findings plus every waiver present in the file.
pub fn lint_source(rel_path: &str, source: &str, policy: &Policy) -> (Vec<Finding>, Vec<Waiver>) {
    let tokens = lex(source);

    // Waivers are collected from the full stream (a waiver inside a test
    // module still documents intent), findings only from non-test code.
    let (mut waivers, mut findings) = parse_waivers(rel_path, &tokens);

    let stripped = strip_cfg_test(&tokens);
    let mut violations: Vec<Violation> = Vec::new();
    for rule in policy.rules_for(rel_path) {
        violations.extend(check(rule, &stripped));
    }

    for v in violations {
        // A waiver matches if it names the rule and sits on the finding's
        // line (trailing comment) or the line directly above.
        let reason = waivers
            .iter_mut()
            .find(|w| w.rule == v.rule && (w.line == v.line || w.line + 1 == v.line))
            .map(|w| {
                w.used = true;
                w.reason.clone()
            });
        findings.push(Finding {
            rule: v.rule,
            file: rel_path.to_string(),
            line: v.line,
            what: v.what,
            waive_reason: reason,
        });
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    (findings, waivers)
}

/// Extracts `lint:allow(rule): reason` waivers from the line comments, and
/// `invalid-waiver` findings for malformed ones.
fn parse_waivers(rel_path: &str, tokens: &[lexer::Token]) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for t in tokens {
        let Tok::LineComment(text) = &t.kind else {
            continue;
        };
        // A waiver comment *starts* with the marker (after whitespace);
        // prose that merely mentions `lint:allow(…)` — docs, this very
        // function — is not a waiver.
        let trimmed = text.trim_start();
        if !trimmed.starts_with("lint:allow") {
            continue;
        }
        let at = text.len() - trimmed.len();
        let invalid = |what: &str| Finding {
            rule: RuleId::InvalidWaiver,
            file: rel_path.to_string(),
            line: t.line,
            what: what.to_string(),
            waive_reason: None,
        };
        // Shape: lint:allow(<rule>[, <rule>…]): <reason>
        let rest = &text[at + "lint:allow".len()..];
        let Some(open) = rest.find('(') else {
            findings.push(invalid("waiver is missing `(<rule>)`"));
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(invalid("waiver is missing the closing `)`"));
            continue;
        };
        if open != 0 || close < open {
            findings.push(invalid(
                "malformed waiver; expected `lint:allow(<rule>): <reason>`",
            ));
            continue;
        }
        let reason = match rest[close + 1..].strip_prefix(':') {
            Some(r) if !r.trim().is_empty() => r.trim().to_string(),
            _ => {
                findings.push(invalid(
                    "waiver has no reason; write `lint:allow(<rule>): <why>`",
                ));
                continue;
            }
        };
        for name in rest[open + 1..close].split(',') {
            let name = name.trim();
            match RuleId::parse(name) {
                Some(rule) => waivers.push(Waiver {
                    rule,
                    file: rel_path.to_string(),
                    line: t.line,
                    reason: reason.clone(),
                    used: false,
                }),
                None => findings.push(Finding {
                    rule: RuleId::InvalidWaiver,
                    file: rel_path.to_string(),
                    line: t.line,
                    what: format!("waiver names unknown rule `{name}`"),
                    waive_reason: None,
                }),
            }
        }
    }
    (waivers, findings)
}

/// Walks `root` and lints every `.rs` file under `crates/` and `tests/`
/// (the corpus directory excluded — it holds deliberate violations) with the
/// workspace [`policy::default_policy`]. File order (and therefore report
/// order) is deterministic: paths are walked sorted.
pub fn run_lint(root: &Path) -> std::io::Result<Report> {
    run_lint_with(root, &policy::default_policy())
}

/// [`run_lint`] under an explicit policy.
pub fn run_lint_with(root: &Path, policy: &Policy) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for dir in WALK_ROOTS {
        let dir = root.join(dir);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut report = Report::default();
    for path in files {
        let rel = rel_path(root, &path);
        if WALK_EXCLUDE.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        let source = std::fs::read_to_string(&path)?;
        let (findings, waivers) = lint_source(&rel, &source, policy);
        report.files_scanned += 1;
        report.findings.extend(findings);
        report.waivers.extend(waivers);
    }
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            // `target/` never nests under crates/ or tests/ sources, but be
            // safe against local build dirs.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated (policy patterns assume `/`).
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(rule: RuleId, src: &str) -> Vec<Finding> {
        lint_source("snippet.rs", src, &Policy::single_rule(rule)).0
    }

    #[test]
    fn waiver_on_same_line_covers_the_finding() {
        let src = "let x = v[0]; // lint:allow(never-panic-decode): header checked above\n";
        let findings = lint_one(RuleId::NeverPanicDecode, src);
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].is_unwaived());
        assert_eq!(
            findings[0].waive_reason.as_deref(),
            Some("header checked above")
        );
    }

    #[test]
    fn waiver_on_line_above_covers_the_finding() {
        let src = "// lint:allow(no-unsafe): demo\nunsafe { }\n";
        let findings = lint_one(RuleId::NoUnsafe, src);
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].is_unwaived());
    }

    #[test]
    fn waiver_for_the_wrong_rule_does_not_cover() {
        let src = "let x = v[0]; // lint:allow(no-unsafe): wrong rule\n";
        let findings = lint_one(RuleId::NeverPanicDecode, src);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].is_unwaived());
    }

    #[test]
    fn unused_and_malformed_waivers_are_reported() {
        let src = "\
// lint:allow(no-unsafe): nothing unsafe here actually
// lint:allow(not-a-rule): bogus
// lint:allow(no-unsafe):
let x = 1;
";
        let (findings, waivers) =
            lint_source("snippet.rs", src, &Policy::single_rule(RuleId::NoUnsafe));
        assert_eq!(waivers.len(), 1);
        assert!(!waivers[0].used, "no finding matched it");
        let invalid: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == RuleId::InvalidWaiver)
            .collect();
        assert_eq!(
            invalid.len(),
            2,
            "unknown rule + missing reason: {findings:?}"
        );
        assert!(invalid.iter().all(|f| f.is_unwaived()));
    }

    #[test]
    fn comma_separated_waiver_covers_both_rules() {
        let src =
            "let y = x as u8; // lint:allow(no-unchecked-narrowing, never-panic-decode): masked\n";
        let findings = lint_one(RuleId::NoUncheckedNarrowing, src);
        assert_eq!(findings.len(), 1);
        assert!(!findings[0].is_unwaived());
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let src = "\
fn shipped() -> u32 { 1 }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { let v = vec![1]; assert_eq!(v[0], super::shipped().checked_sub(0).unwrap()); }
}
";
        let findings = lint_one(RuleId::NeverPanicDecode, src);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn cfg_unix_is_not_exempt() {
        let src = "#[cfg(unix)]\nfn f(v: &[u8]) -> u8 { v[0] }\n";
        let findings = lint_one(RuleId::NeverPanicDecode, src);
        assert_eq!(findings.len(), 1);
    }
}
