//! The lint rules: token-stream matchers with stable identifiers.
//!
//! Every rule has a stable id (what waivers name and what the JSON report
//! keys on) and a matcher over the lexed token stream of one file. Matchers
//! see only tokens outside `#[cfg(test)]` items — test code is compiled out
//! of every shipped path, so the guarantees the rules enforce (deterministic
//! execution, never-panic decode) do not extend to it; see
//! [`strip_cfg_test`].
//!
//! Which files each rule applies to is the policy table's business
//! ([`crate::policy`]); rules themselves are path-agnostic.

use std::fmt;

use crate::lexer::{Tok, Token};

/// Stable rule identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `std::collections::{HashMap, HashSet}` in a deterministic crate:
    /// their iteration order is randomized per process, so any execution
    /// path through them breaks bit-identical replay.
    NoNondeterministicCollections,
    /// `Instant::now` / `SystemTime` outside the free-running runtime paths
    /// and the bench crate: wall-clock reads make lockstep runs
    /// unreproducible.
    NoWallClock,
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`
    /// or indexing by an integer literal in decode/frame-handling code:
    /// corrupt bytes must surface as typed errors, never as panics.
    NeverPanicDecode,
    /// A truncating `as` cast in codec/wire code: narrowing must go through
    /// `try_from` so overflow is an error, not silent wraparound.
    NoUncheckedNarrowing,
    /// `unsafe` anywhere in the workspace crates.
    NoUnsafe,
    /// A malformed waiver comment (unknown rule id or missing reason). Not
    /// waivable: a broken waiver must be fixed, not waived away.
    InvalidWaiver,
}

impl RuleId {
    /// Every enforceable rule, in report order ([`RuleId::InvalidWaiver`] is
    /// a diagnostic, not a policy rule).
    pub const ALL: [RuleId; 5] = [
        RuleId::NoNondeterministicCollections,
        RuleId::NoWallClock,
        RuleId::NeverPanicDecode,
        RuleId::NoUncheckedNarrowing,
        RuleId::NoUnsafe,
    ];

    /// The stable string id used in waivers, diagnostics and the JSON report.
    pub fn id(self) -> &'static str {
        match self {
            RuleId::NoNondeterministicCollections => "no-nondeterministic-collections",
            RuleId::NoWallClock => "no-wall-clock",
            RuleId::NeverPanicDecode => "never-panic-decode",
            RuleId::NoUncheckedNarrowing => "no-unchecked-narrowing",
            RuleId::NoUnsafe => "no-unsafe",
            RuleId::InvalidWaiver => "invalid-waiver",
        }
    }

    /// Parses a stable string id (as written in a waiver).
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.id() == s)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that fired.
    pub rule: RuleId,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Human-readable description of what matched.
    pub what: String,
}

/// Removes every token belonging to a `#[cfg(test)]` item (attribute
/// included). The matcher recognizes the exact attribute `#[cfg(test)]` and
/// then skips the annotated item: any further attributes, then either a
/// brace-delimited body (`mod tests { … }`, `fn …() { … }`) or a
/// semicolon-terminated item (`use …;`). Conditional attributes that are not
/// exactly `cfg(test)` — `#[cfg(unix)]`, `#[cfg_attr(…)]` — are left alone.
pub fn strip_cfg_test(tokens: &[Token]) -> Vec<Token> {
    let mut out = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if let Some(after_attr) = match_cfg_test_attr(tokens, i) {
            i = skip_item(tokens, after_attr);
        } else {
            out.push(tokens[i].clone());
            i += 1;
        }
    }
    out
}

/// If `tokens[i..]` starts with exactly `# [ cfg ( test ) ]`, returns the
/// index just past the closing `]`.
fn match_cfg_test_attr(tokens: &[Token], i: usize) -> Option<usize> {
    let expected: [&dyn Fn(&Tok) -> bool; 7] = [
        &|t| matches!(t, Tok::Punct('#')),
        &|t| matches!(t, Tok::Punct('[')),
        &|t| matches!(t, Tok::Ident(s) if s == "cfg"),
        &|t| matches!(t, Tok::Punct('(')),
        &|t| matches!(t, Tok::Ident(s) if s == "test"),
        &|t| matches!(t, Tok::Punct(')')),
        &|t| matches!(t, Tok::Punct(']')),
    ];
    for (off, check) in expected.iter().enumerate() {
        if !check(&tokens.get(i + off)?.kind) {
            return None;
        }
    }
    Some(i + expected.len())
}

/// Skips one item starting at `i`: leading attributes, then everything up to
/// and including either a matched `{ … }` block or a top-level `;`.
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Further attributes on the same item (`#[test] #[ignore] fn …`).
    while matches!(tokens.get(i).map(|t| &t.kind), Some(Tok::Punct('#')))
        && matches!(tokens.get(i + 1).map(|t| &t.kind), Some(Tok::Punct('[')))
    {
        let mut depth = 0usize;
        while let Some(t) = tokens.get(i) {
            match t.kind {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // The item proper.
    let mut brace_depth = 0usize;
    while let Some(t) = tokens.get(i) {
        match t.kind {
            Tok::Punct('{') => brace_depth += 1,
            Tok::Punct('}') => {
                brace_depth = brace_depth.saturating_sub(1);
                if brace_depth == 0 {
                    return i + 1;
                }
            }
            Tok::Punct(';') if brace_depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Runs one rule's matcher over a (already `cfg(test)`-stripped) stream.
pub fn check(rule: RuleId, tokens: &[Token]) -> Vec<Violation> {
    match rule {
        RuleId::NoNondeterministicCollections => nondeterministic_collections(tokens),
        RuleId::NoWallClock => wall_clock(tokens),
        RuleId::NeverPanicDecode => never_panic(tokens),
        RuleId::NoUncheckedNarrowing => narrowing(tokens),
        RuleId::NoUnsafe => no_unsafe(tokens),
        RuleId::InvalidWaiver => Vec::new(), // produced by the waiver parser
    }
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.kind), Some(Tok::Punct(p)) if *p == c)
}

fn violation(rule: RuleId, tokens: &[Token], i: usize, what: impl Into<String>) -> Violation {
    Violation {
        rule,
        line: tokens[i].line,
        what: what.into(),
    }
}

fn nondeterministic_collections(tokens: &[Token]) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if let Some(name @ ("HashMap" | "HashSet")) = ident_at(tokens, i) {
            out.push(violation(
                RuleId::NoNondeterministicCollections,
                tokens,
                i,
                format!("`{name}` iterates in randomized order; use BTreeMap/BTreeSet or an index-keyed Vec"),
            ));
        }
    }
    out
}

fn wall_clock(tokens: &[Token]) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        match ident_at(tokens, i) {
            Some("SystemTime") => out.push(violation(
                RuleId::NoWallClock,
                tokens,
                i,
                "`SystemTime` reads the wall clock",
            )),
            Some("Instant")
                if punct_at(tokens, i + 1, ':')
                    && punct_at(tokens, i + 2, ':')
                    && ident_at(tokens, i + 3) == Some("now") =>
            {
                out.push(violation(
                    RuleId::NoWallClock,
                    tokens,
                    i,
                    "`Instant::now` reads the wall clock",
                ));
            }
            _ => {}
        }
    }
    out
}

fn never_panic(tokens: &[Token]) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        // `.unwrap(` / `.expect(` — method calls only, so `unwrap_or`,
        // `expect_err` and free functions named `unwrap` don't match.
        if punct_at(tokens, i, '.') {
            if let Some(name @ ("unwrap" | "expect")) = ident_at(tokens, i + 1) {
                if punct_at(tokens, i + 2, '(') {
                    out.push(violation(
                        RuleId::NeverPanicDecode,
                        tokens,
                        i + 1,
                        format!("`.{name}()` can panic; return a typed error"),
                    ));
                }
            }
        }
        // Panicking macros.
        if let Some(name @ ("panic" | "unreachable" | "todo" | "unimplemented")) =
            ident_at(tokens, i)
        {
            if punct_at(tokens, i + 1, '!') {
                out.push(violation(
                    RuleId::NeverPanicDecode,
                    tokens,
                    i,
                    format!("`{name}!` in a never-panic path"),
                ));
            }
        }
        // Indexing by an integer literal: `expr[0]`. The previous token of a
        // real index expression is an identifier, `)` or `]`; an array
        // literal (`[0, 1]`, `[0u8; 8]`) or attribute is preceded by
        // something else, and `[0u8; 8]` also fails the closing-bracket test.
        if punct_at(tokens, i, '[')
            && matches!(tokens.get(i + 1).map(|t| &t.kind), Some(Tok::IntLit))
            && punct_at(tokens, i + 2, ']')
            && i > 0
            && matches!(
                tokens.get(i - 1).map(|t| &t.kind),
                Some(Tok::Ident(_)) | Some(Tok::Punct(')')) | Some(Tok::Punct(']'))
            )
        {
            out.push(violation(
                RuleId::NeverPanicDecode,
                tokens,
                i,
                "indexing by integer literal can panic; use `.get(…)`",
            ));
        }
    }
    out
}

/// Integer types an `as` cast can truncate into (a 64-bit value fits every
/// wider target; `usize`/`isize` are platform-width, so a cast *into* them
/// is narrowing on 32-bit targets and flagged too).
const NARROW_TARGETS: [&str; 8] = ["u8", "u16", "u32", "usize", "i8", "i16", "i32", "isize"];

fn narrowing(tokens: &[Token]) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if ident_at(tokens, i) == Some("as") {
            if let Some(target) = ident_at(tokens, i + 1) {
                if NARROW_TARGETS.contains(&target) {
                    out.push(violation(
                        RuleId::NoUncheckedNarrowing,
                        tokens,
                        i,
                        format!("`as {target}` can truncate; use `{target}::try_from`"),
                    ));
                }
            }
        }
    }
    out
}

fn no_unsafe(tokens: &[Token]) -> Vec<Violation> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if ident_at(tokens, i) == Some("unsafe") {
            out.push(violation(
                RuleId::NoUnsafe,
                tokens,
                i,
                "`unsafe` is banned in workspace crates",
            ));
        }
    }
    out
}
