//! The rule corpus: every rule must flag every `bad/` snippet and pass
//! every `good/` one.
//!
//! Snippets live in `tests/corpus/<rule-id>/{bad,good}/*.rs`. They are
//! lexed by the linter but never compiled, and the workspace walk excludes
//! the corpus directory (the `bad/` files are deliberate violations).

use std::path::PathBuf;

use agossip_lint::lint_source;
use agossip_lint::policy::Policy;
use agossip_lint::rules::RuleId;

fn corpus_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// `(file name, source)` of every snippet under `<rule>/<kind>/`.
fn snippets(rule: RuleId, kind: &str) -> Vec<(String, String)> {
    let dir = corpus_root().join(rule.id()).join(kind);
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display())) {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            let name = path
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            let source = std::fs::read_to_string(&path).expect("corpus file readable");
            out.push((name, source));
        }
    }
    out.sort();
    out
}

#[test]
fn every_bad_snippet_is_flagged() {
    for rule in RuleId::ALL {
        let bad = snippets(rule, "bad");
        assert!(!bad.is_empty(), "rule {rule} has no bad/ corpus snippets");
        for (name, source) in bad {
            let (findings, _) = lint_source(&name, &source, &Policy::single_rule(rule));
            let hits: Vec<_> = findings.iter().filter(|f| f.rule == rule).collect();
            assert!(
                !hits.is_empty(),
                "rule {rule} missed corpus snippet {rule}/bad/{name}"
            );
            assert!(
                hits.iter().all(|f| f.is_unwaived()),
                "corpus snippet {rule}/bad/{name} must not carry waivers"
            );
        }
    }
}

#[test]
fn every_good_snippet_is_clean() {
    for rule in RuleId::ALL {
        let good = snippets(rule, "good");
        assert!(!good.is_empty(), "rule {rule} has no good/ corpus snippets");
        for (name, source) in good {
            let (findings, _) = lint_source(&name, &source, &Policy::single_rule(rule));
            assert!(
                findings.is_empty(),
                "rule {rule} false-positived on {rule}/good/{name}: {findings:?}"
            );
        }
    }
}
