//! The tier-1 gate: the real workspace must lint clean.
//!
//! Zero unwaived findings under the default policy, and no stale waivers
//! (a waiver that no longer matches a finding must be deleted, keeping the
//! audit surface honest). CI runs the same check as the `lint` job, which
//! additionally uploads the JSON report artifact.

use std::path::PathBuf;

use agossip_lint::run_lint;

fn workspace_root() -> PathBuf {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .expect("lint crate lives at <root>/crates/lint");
    assert!(
        root.join("Cargo.toml").is_file(),
        "not a workspace root: {}",
        root.display()
    );
    root
}

#[test]
fn workspace_has_zero_unwaived_findings() {
    let report = run_lint(&workspace_root()).expect("workspace walk");
    assert!(
        report.files_scanned > 50,
        "suspiciously small walk ({} files) — wrong root?",
        report.files_scanned
    );
    let diagnostics = report.render_diagnostics();
    assert_eq!(
        report.unwaived_count(),
        0,
        "unwaived lint findings:\n{diagnostics}"
    );
}

#[test]
fn workspace_has_no_stale_waivers() {
    let report = run_lint(&workspace_root()).expect("workspace walk");
    let stale: Vec<String> = report
        .waivers
        .iter()
        .filter(|w| !w.used)
        .map(|w| format!("{}:{}: unused waiver for {}", w.file, w.line, w.rule))
        .collect();
    assert!(stale.is_empty(), "{}", stale.join("\n"));
}
