//! Property tests on the lint lexer: totality on arbitrary input, and the
//! guarantee that banned identifiers hidden inside string/char/byte
//! literals or comments never surface as identifier tokens (the reason the
//! rules can run on the token stream instead of raw text).

use proptest::prelude::*;

use agossip_lint::lexer::{lex, Tok};

/// The identifiers the rules key on.
const BANNED: [&str; 7] = [
    "HashMap",
    "HashSet",
    "unsafe",
    "unwrap",
    "expect",
    "Instant",
    "SystemTime",
];

proptest! {
    /// The lexer is total: arbitrary (often invalid-UTF-8, lossily decoded)
    /// input never panics it, and token positions are sane — 1-based lines
    /// within the input, non-decreasing in scan order.
    #[test]
    fn lexer_is_total_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..400),
    ) {
        let src = String::from_utf8_lossy(&bytes);
        let tokens = lex(&src);
        let lines = src.chars().filter(|&c| c == '\n').count() as u32 + 1;
        let mut prev = 1u32;
        for t in &tokens {
            prop_assert!(t.line >= 1);
            prop_assert!(t.line <= lines);
            prop_assert!(t.line >= prev);
            prev = t.line;
        }
    }

    /// A banned word embedded in any literal or comment form never produces
    /// an identifier token, so no rule can fire on it.
    #[test]
    fn banned_words_hidden_in_literals_never_tokenize(
        word_ix in 0..7usize,
        container in 0..6usize,
        noise in 0..1000u32,
    ) {
        let word = BANNED[word_ix];
        let src = match container {
            0 => format!("let s = \"{word} {noise}\";\n"),
            1 => format!("let s = r#\"{word} \"quoted\" {noise}\"#;\n"),
            2 => format!("// {word} {noise}\nlet x = {noise};\n"),
            3 => format!("/* {word} /* nested {noise} */ {word} */ fn f() {{}}\n"),
            4 => format!("/// {word} {noise}\nfn g() {{}}\n"),
            _ => format!("let s = b\"{word}\"; let e = \"esc\\\"{word}\";\n"),
        };
        for t in lex(&src) {
            if let Tok::Ident(name) = &t.kind {
                prop_assert!(name != word);
            }
        }
    }
}
