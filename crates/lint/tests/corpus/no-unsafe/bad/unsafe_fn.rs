/// # Safety
/// Caller promises nothing; this whole file is a lint corpus specimen.
unsafe fn launder(x: u64) -> u64 {
    x
}
