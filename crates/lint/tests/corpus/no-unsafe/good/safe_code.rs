fn add(a: u32, b: u32) -> Option<u32> {
    a.checked_add(b)
}
