// The word unsafe in a comment is not an unsafe block.
fn describe() -> &'static str {
    "unsafe inside a string literal is data, not code"
}
