fn first(v: &[u8]) -> Result<u8, ()> {
    v.first().copied().ok_or(())
}

fn word(v: &[u8]) -> Result<u64, ()> {
    let chunk = v.first_chunk::<8>().ok_or(())?;
    Ok(u64::from_le_bytes(*chunk))
}

// Array *literals* are not indexing, and `=`-preceded brackets never are.
fn header() -> [u8; 4] {
    let scratch = [0u8; 4];
    scratch
}

// `unwrap_or` / `unwrap_or_default` / `expect_err` are total, not panicking.
fn lenient(v: &[u8]) -> u8 {
    v.first().copied().unwrap_or(0)
}

fn check(r: Result<u8, String>) -> String {
    r.map(|_| String::new()).unwrap_or_default();
    r.expect_err("only called on errors in this example")
}
