fn shipped(v: &[u8]) -> Option<u8> {
    v.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = vec![7u8];
        assert_eq!(super::shipped(&v).unwrap(), v[0]);
    }
}
