fn kind(byte: u8) -> &'static str {
    match byte {
        0 => "trivial",
        1 => "ears",
        2 => unreachable!("filtered earlier"),
        3 => todo!(),
        _ => panic!("unknown kind {byte}"),
    }
}
