fn version(frame: &[u8]) -> u8 {
    frame[0]
}
