fn word(v: &[u8]) -> u64 {
    u64::from_le_bytes(v[..8].try_into().expect("8-byte slice"))
}
