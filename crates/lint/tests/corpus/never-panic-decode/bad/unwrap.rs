fn first(v: &[u8]) -> u8 {
    *v.first().unwrap()
}
