fn shipped(x: u32) -> u32 {
    x + 1
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let mut m = HashMap::new();
        m.insert(1, super::shipped(1));
        assert_eq!(m[&1], 2);
    }
}
