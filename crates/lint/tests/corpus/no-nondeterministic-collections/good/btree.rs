use std::collections::{BTreeMap, BTreeSet};

fn tally(xs: &[u32]) -> BTreeMap<u32, u32> {
    let mut counts = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts
}

fn dedup(xs: &[u32]) -> BTreeSet<u32> {
    xs.iter().copied().collect()
}
