// A HashMap mentioned in a comment is not a use of one.

/// Neither is a HashSet named in a doc comment.
fn describe() -> &'static str {
    "iteration order of a HashMap is nondeterministic"
}

fn raw() -> &'static str {
    r#"HashSet inside a raw string is data too"#
}
