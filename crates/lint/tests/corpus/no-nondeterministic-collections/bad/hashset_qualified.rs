fn dedup(xs: &[u32]) -> usize {
    let seen: std::collections::HashSet<u32> = xs.iter().copied().collect();
    seen.len()
}
