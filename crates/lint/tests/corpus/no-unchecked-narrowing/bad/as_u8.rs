fn low_byte(x: u64) -> u8 {
    x as u8
}
