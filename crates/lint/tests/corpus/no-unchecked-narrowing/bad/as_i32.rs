fn signed(x: i64) -> i32 {
    x as i32
}
