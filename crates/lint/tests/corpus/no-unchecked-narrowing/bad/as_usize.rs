fn index(len: u64) -> usize {
    len as usize
}
