// Widening casts never truncate.
fn widen(x: u8) -> u64 {
    x as u64
}

fn widen_signed(x: i32) -> i64 {
    x as i64
}

// Narrowing via `try_from` is the checked form the rule demands.
fn narrow(x: u64) -> Result<u8, std::num::TryFromIntError> {
    u8::try_from(x)
}

// `as` in prose: a comment narrowing such as `x as u8` is not a cast.
fn describe() -> &'static str {
    "cast as usize in a string is data"
}
