fn epoch_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
