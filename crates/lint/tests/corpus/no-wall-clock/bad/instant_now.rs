use std::time::Instant;

fn stamp() -> Instant {
    Instant::now()
}
