// Instant::now() in a comment is not a clock read.
fn describe() -> &'static str {
    "SystemTime::now() in a string is data"
}
