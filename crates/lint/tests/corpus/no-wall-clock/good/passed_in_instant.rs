use std::time::{Duration, Instant};

// Holding or comparing an `Instant` someone else read is fine; only the
// `Instant::now()` read itself is banned.
fn expired(deadline: Instant, now: Instant) -> bool {
    now >= deadline
}

fn budget() -> Duration {
    Duration::from_millis(5)
}
