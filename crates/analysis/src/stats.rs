//! Summary statistics over repeated trials.

/// Summary of a sample of measurements (e.g. message counts over several
/// seeds of the same experiment point).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than 2 samples).
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
}

impl Summary {
    /// Computes a summary of `samples`. Returns a zeroed summary for an empty
    /// slice.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
            };
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in samples"));
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        Summary {
            count,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median,
        }
    }

    /// Summarises integer samples.
    pub fn of_u64(samples: &[u64]) -> Summary {
        let as_f64: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        Summary::of(&as_f64)
    }

    /// Relative standard deviation (coefficient of variation); 0 when the
    /// mean is 0.
    pub fn relative_stddev(&self) -> f64 {
        if self.mean.abs() < f64::EPSILON {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_samples() {
        let s = Summary::of(&[5.0, 5.0, 5.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 5.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.relative_stddev(), 0.0);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // Sample stddev of 1,2,3,4 is sqrt(5/3).
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn odd_length_median_is_middle_element() {
        let s = Summary::of(&[9.0, 1.0, 5.0]);
        assert_eq!(s.median, 5.0);
    }

    #[test]
    fn empty_sample_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn u64_samples_are_converted() {
        let s = Summary::of_u64(&[2, 4, 6]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn single_sample_has_zero_stddev() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.median, 7.0);
    }
}
