//! Service mode — throughput and settle latency of the multi-epoch log.
//!
//! Every other experiment measures one gossip instance from injection to
//! quiescence. This one measures the *service* built on top: a pipelined
//! sequence of epochs pushed through the replicated rumor log of
//! [`agossip_core::service`], under both admission disciplines —
//!
//! * **open loop** (`LoopMode::Open`): a fresh epoch every fixed period,
//!   whether or not earlier epochs have settled (arrival-rate driven);
//! * **closed loop** (`LoopMode::Closed`): a fixed number of epochs in
//!   flight, a new one admitted only when one finalizes (completion
//!   driven).
//!
//! Reported per `(protocol, mode, n)` point: epochs-per-step throughput,
//! total messages, and the p50/p99 settle latency (steps from admission to
//! detected quiescence), all from a single deterministic run — the whole
//! service run is a pure function of the seed, so trials add nothing.

use agossip_core::{
    percentile, run_service_sim, Ears, GossipSpec, LoopMode, SimServiceConfig, Tears, Trivial,
};
use agossip_runtime::{run_service, ChannelTransport, LiveConfig, Pacing, ServiceConfig};
use agossip_sim::{SimError, SimResult};

use crate::experiments::common::ExperimentScale;
use crate::experiments::live::live_scale_params;
use crate::report::{fmt_f64, Table};
use crate::sweep::TrialPool;

/// Epochs pushed through the log per measured point.
const SERVICE_EPOCHS: u64 = 12;

/// Slot-ring size (maximum concurrently open epochs) per measured point.
const SERVICE_WINDOW: usize = 8;

/// Closed-loop in-flight target.
const SERVICE_IN_FLIGHT: usize = 4;

/// One `(protocol, mode, n)` measurement of the service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRow {
    /// Gossip protocol run inside each epoch.
    pub protocol: &'static str,
    /// System size.
    pub n: usize,
    /// Failure budget.
    pub f: usize,
    /// Admission discipline (`"open"` or `"closed"`).
    pub mode: &'static str,
    /// Epochs finalized.
    pub epochs: u64,
    /// Total simulator steps for the whole run.
    pub steps: u64,
    /// Total point-to-point messages across all epochs.
    pub messages: u64,
    /// Median settle latency (steps from admission to detected settling).
    pub p50: u64,
    /// 99th-percentile settle latency.
    pub p99: u64,
    /// Peak number of concurrently open epochs.
    pub max_open: usize,
    /// True when every epoch passed its gossip check.
    pub ok: bool,
}

impl ServiceRow {
    /// Epochs finalized per thousand simulator steps.
    pub fn epochs_per_kstep(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        self.epochs as f64 * 1000.0 / self.steps as f64
    }
}

/// The protocols the service sweep runs inside each epoch. `trivial` is the
/// latency floor (one `O(d)` burst per epoch); `ears` is the
/// message-efficient contender whose epochs overlap for longer.
fn service_protocols() -> [&'static str; 2] {
    ["trivial", "ears"]
}

/// The admission disciplines compared, derived from the scale's delay
/// bound: the open loop admits one epoch every `3·d` steps.
fn service_modes(scale: &ExperimentScale) -> [LoopMode; 2] {
    [
        LoopMode::Closed {
            in_flight: SERVICE_IN_FLIGHT,
        },
        LoopMode::Open {
            period: 3 * scale.d.max(1),
        },
    ]
}

/// The service config for one `(n, mode)` point of `scale`.
fn service_config(scale: &ExperimentScale, n: usize, mode: LoopMode) -> SimServiceConfig {
    SimServiceConfig {
        window: SERVICE_WINDOW,
        mode,
        spec: GossipSpec::Full,
        ..SimServiceConfig::closed(
            n,
            scale.f_for(n),
            scale.d.max(1),
            scale.seed_for(n, 0),
            SERVICE_EPOCHS,
        )
    }
}

/// Runs one `(protocol, n, mode)` point.
fn service_point(
    protocol: &'static str,
    scale: &ExperimentScale,
    n: usize,
    mode: LoopMode,
) -> SimResult<ServiceRow> {
    let cfg = service_config(scale, n, mode);
    let report = match protocol {
        "ears" => run_service_sim(&cfg, Ears::new)?,
        _ => run_service_sim(&cfg, Trivial::new)?,
    };
    let latencies = report.settle_latencies();
    Ok(ServiceRow {
        protocol,
        n,
        f: cfg.f,
        mode: mode.name(),
        epochs: report.epochs.len() as u64,
        steps: report.steps,
        messages: report.messages_sent,
        p50: percentile(&latencies, 50.0),
        p99: percentile(&latencies, 99.0),
        max_open: report.max_open,
        ok: report.all_ok(),
    })
}

/// Runs the service sweep on `pool`: every `(protocol, mode, n)` point is an
/// independent deterministic run, so the flattened grid shards freely across
/// workers and the rows are bit-identical for any worker count.
pub fn service_rows(pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Vec<ServiceRow>> {
    let mut grid: Vec<(&'static str, usize, LoopMode)> = Vec::new();
    for protocol in service_protocols() {
        for mode in service_modes(scale) {
            for &n in &scale.n_values {
                grid.push((protocol, n, mode));
            }
        }
    }
    let results: Vec<SimResult<ServiceRow>> = pool.run(grid.len(), |i| {
        let (protocol, n, mode) = grid[i];
        service_point(protocol, scale, n, mode)
    });
    results.into_iter().collect()
}

/// Renders the service rows as a table.
pub fn service_to_table(rows: &[ServiceRow]) -> Table {
    let mut table = Table::new(
        "Service mode — pipelined epochs through the replicated rumor log",
        &[
            "protocol",
            "mode",
            "n",
            "f",
            "epochs",
            "steps",
            "epochs/kstep",
            "messages",
            "p50 settle",
            "p99 settle",
            "max open",
            "ok",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.protocol.to_string(),
            row.mode.to_string(),
            row.n.to_string(),
            row.f.to_string(),
            row.epochs.to_string(),
            row.steps.to_string(),
            fmt_f64(row.epochs_per_kstep()),
            row.messages.to_string(),
            row.p50.to_string(),
            row.p99.to_string(),
            row.max_open.to_string(),
            row.ok.to_string(),
        ]);
    }
    table
}

/// One live (runtime-backed) service measurement: scaled `tears` epochs
/// pushed through the replicated log on reactor threads, majority-checked
/// per epoch. This is what the `service_baseline` binary emits and the
/// `bench_check` CI gate re-measures.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveServiceRow {
    /// System size.
    pub n: usize,
    /// Reactor threads the `n` processes were multiplexed onto.
    pub reactors: usize,
    /// Admission discipline (`"open"` or `"closed"`).
    pub mode: &'static str,
    /// Epochs finalized.
    pub epochs: u64,
    /// Lockstep ticks the whole run took.
    pub ticks: u64,
    /// Point-to-point messages (encoded frames) across all epochs.
    pub messages: u64,
    /// Wall-clock seconds of the run (the runtime's own clock).
    pub wall_secs: f64,
    /// Epochs finalized per wall-clock second.
    pub epochs_per_sec: f64,
    /// Frames through the transport per wall-clock second.
    pub messages_per_sec: f64,
    /// Median settle latency in lockstep ticks.
    pub p50: u64,
    /// 99th-percentile settle latency in lockstep ticks.
    pub p99: u64,
    /// Peak number of concurrently outstanding epochs.
    pub max_open: u64,
    /// Whether every epoch finalized and passed the majority checker, with
    /// no decode errors.
    pub ok: bool,
}

/// The slot-ring capacity of a live service trial: four slots of headroom
/// over the deepest closed-loop pipeline measured (`in_flight = 32`), so
/// the harvest of a settled epoch never blocks admission.
pub const LIVE_SERVICE_WINDOW: usize = 36;

/// The live service configuration of one trial: scaled `tears` (the same
/// calibration as `live_scale`, `a = 2 + 1.5·log₂n`, `d = 6`) under
/// lockstep pacing on `reactors` reactor threads, no crashes — the settle
/// latencies then measure the pipeline, not recovery.
pub fn live_service_config(
    n: usize,
    reactors: usize,
    seed: u64,
    epochs: u64,
    mode: LoopMode,
) -> ServiceConfig {
    let mut live = LiveConfig::lockstep(n, 0, seed).on_reactors(reactors);
    live.pacing = Pacing::Lockstep {
        d: 6,
        max_ticks: 1 << 20,
    };
    ServiceConfig::new(live, epochs)
        .with_window(LIVE_SERVICE_WINDOW)
        .with_mode(mode)
        .with_spec(GossipSpec::Majority)
}

/// Runs one live service trial and reduces it to a [`LiveServiceRow`].
pub fn run_live_service_trial(
    n: usize,
    reactors: usize,
    seed: u64,
    epochs: u64,
    mode: LoopMode,
) -> SimResult<LiveServiceRow> {
    let config = live_service_config(n, reactors, seed, epochs, mode);
    let params = live_scale_params(n);
    let report = run_service(&config, &ChannelTransport, move |ctx| {
        Tears::with_params(ctx, params)
    })
    .map_err(|e| SimError::InvalidConfig {
        reason: format!("live service run failed: {e}"),
    })?;
    let ok = report.all_ok() && report.decode_errors == 0;
    let latencies = report.settle_latencies();
    let wall_secs = report.elapsed.as_secs_f64();
    let per_sec = |count: u64| {
        if wall_secs > 0.0 {
            count as f64 / wall_secs
        } else {
            0.0
        }
    };
    Ok(LiveServiceRow {
        n,
        reactors,
        mode: mode.name(),
        epochs: report.epochs.len() as u64,
        ticks: report.ticks,
        messages: report.messages_sent,
        wall_secs,
        epochs_per_sec: per_sec(report.epochs.len() as u64),
        messages_per_sec: per_sec(report.messages_sent),
        p50: percentile(&latencies, 50.0),
        p99: percentile(&latencies, 99.0),
        max_open: report.max_open,
        ok,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_service_trial_finalizes_and_checks_every_epoch() {
        let row = run_live_service_trial(48, 2, 0x5EC7_2008, 6, LoopMode::Closed { in_flight: 3 })
            .unwrap();
        assert!(row.ok, "{row:?}");
        assert_eq!(row.epochs, 6);
        assert!(row.max_open >= 2, "closed loop must pipeline: {row:?}");
        assert!(row.p50 <= row.p99);
    }

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            n_values: vec![12, 16],
            trials: 1,
            ..ExperimentScale::tiny()
        }
    }

    #[test]
    fn service_rows_cover_both_modes_and_protocols() {
        let scale = tiny();
        let rows = service_rows(&TrialPool::serial(), &scale).unwrap();
        assert_eq!(rows.len(), 2 * 2 * scale.n_values.len());
        for row in &rows {
            assert!(row.ok, "epoch check failed: {row:?}");
            assert_eq!(row.epochs, SERVICE_EPOCHS);
            assert!(row.p50 <= row.p99);
            assert!(row.p99 > 0);
        }
        assert!(rows.iter().any(|r| r.mode == "open"));
        assert!(rows.iter().any(|r| r.mode == "closed"));
    }

    #[test]
    fn closed_loop_pipelines_epochs() {
        let scale = tiny();
        let rows = service_rows(&TrialPool::serial(), &scale).unwrap();
        for row in rows.iter().filter(|r| r.mode == "closed") {
            assert!(row.max_open >= 2, "closed loop must pipeline: {row:?}");
        }
    }

    #[test]
    fn rows_are_identical_for_any_worker_count() {
        let scale = tiny();
        let serial = service_rows(&TrialPool::serial(), &scale).unwrap();
        let sharded = service_rows(&TrialPool::new(3), &scale).unwrap();
        assert_eq!(serial, sharded);
    }

    #[test]
    fn table_renders_all_rows() {
        let scale = tiny();
        let rows = service_rows(&TrialPool::serial(), &scale).unwrap();
        let table = service_to_table(&rows);
        assert_eq!(table.len(), rows.len());
        assert!(table.render().contains("epochs/kstep"));
    }
}
