//! Table 1 — asynchronous gossip protocols under an oblivious adversary.
//!
//! For every protocol row of the paper's Table 1 (Trivial, `ears`, `sears`,
//! `tears`) and every system size in the sweep, this driver measures the
//! completion time (in steps and in multiples of `d+δ`) and the total number
//! of point-to-point messages, and fits the growth exponent of the message
//! curve so it can be compared with the stated bound.

use crate::experiments::common::{
    point_from_aggregate, ExperimentScale, GossipProtocolKind, MeasuredPoint,
};
use crate::fit::{fit_power_law, PowerLawFit};
use crate::report::{fmt_f64, Table};
use crate::sweep::{run_grid, ScenarioSpec, TrialPool, TrialProtocol};
use agossip_sim::SimResult;

/// One row of the reproduced Table 1: a `(protocol, n)` measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// The underlying aggregated measurement.
    pub point: MeasuredPoint,
    /// The paper's asymptotic message bound for this protocol, as text.
    pub paper_messages: &'static str,
    /// The paper's asymptotic time bound for this protocol, as text.
    pub paper_time: &'static str,
}

/// The paper's stated bounds, used to annotate the output.
pub fn paper_bounds(kind: GossipProtocolKind) -> (&'static str, &'static str) {
    match kind {
        GossipProtocolKind::Trivial => ("O(d+δ)", "Θ(n²)"),
        GossipProtocolKind::Ears => ("O(n/(n−f)·log²n·(d+δ))", "O(n·log³n·(d+δ))"),
        GossipProtocolKind::Sears { .. } => {
            ("O(n/(ε(n−f))·(d+δ))", "O(n^{2+ε}/(ε(n−f))·logn·(d+δ))")
        }
        GossipProtocolKind::Tears => ("O(d+δ)", "O(n^{7/4}·log²n)"),
        GossipProtocolKind::SyncEpidemic => ("O(log n) rounds", "O(n·log n)"),
    }
}

/// Runs the Table 1 sweep on `pool`: the whole `(protocol, n)` grid is
/// flattened into one batch of trials so every worker stays busy.
pub fn table1_rows(pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Vec<Table1Row>> {
    let grid: Vec<(GossipProtocolKind, usize)> = GossipProtocolKind::table1_rows()
        .into_iter()
        .flat_map(|kind| scale.n_values.iter().map(move |&n| (kind, n)))
        .collect();
    run_grid(
        pool,
        &grid,
        |&(kind, n)| ScenarioSpec::from_scale(TrialProtocol::Gossip(kind), scale, n),
        |&(kind, n), spec, aggregate| {
            let (paper_time, paper_messages) = paper_bounds(kind);
            Table1Row {
                point: point_from_aggregate(kind.name(), n, spec.f, aggregate),
                paper_messages,
                paper_time,
            }
        },
    )
}

/// Fits the message-complexity growth exponent of one protocol's rows.
pub fn message_exponent(rows: &[Table1Row], protocol: &str) -> Option<PowerLawFit> {
    let points: Vec<(f64, f64)> = rows
        .iter()
        .filter(|r| r.point.protocol == protocol)
        .map(|r| (r.point.n as f64, r.point.messages.mean))
        .collect();
    fit_power_law(&points)
}

/// Fits the time growth exponent (in `d+δ` units) of one protocol's rows.
pub fn time_exponent(rows: &[Table1Row], protocol: &str) -> Option<PowerLawFit> {
    let points: Vec<(f64, f64)> = rows
        .iter()
        .filter(|r| r.point.protocol == protocol)
        .map(|r| (r.point.n as f64, r.point.normalized_time.mean.max(0.001)))
        .collect();
    fit_power_law(&points)
}

/// Renders the rows in the layout of the paper's Table 1.
pub fn table1_to_table(rows: &[Table1Row]) -> Table {
    let mut table = Table::new(
        "Table 1 — gossip under an oblivious adversary (measured)",
        &[
            "protocol",
            "n",
            "f",
            "time[steps]",
            "time/(d+δ)",
            "messages",
            "ok",
            "paper time",
            "paper messages",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.point.protocol.to_string(),
            row.point.n.to_string(),
            row.point.f.to_string(),
            fmt_f64(row.point.time_steps.mean),
            fmt_f64(row.point.normalized_time.mean),
            fmt_f64(row.point.messages.mean),
            format!("{:.0}%", row.point.success_rate * 100.0),
            row.paper_time.to_string(),
            row.paper_messages.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_rows_for_every_protocol_and_size() {
        let scale = ExperimentScale::tiny();
        let rows = table1_rows(&TrialPool::serial(), &scale).unwrap();
        assert_eq!(rows.len(), 4 * scale.n_values.len());
        assert!(
            rows.iter().all(|r| r.point.success_rate == 1.0),
            "all protocols must be correct"
        );
        let table = table1_to_table(&rows);
        assert_eq!(table.len(), rows.len());
        let rendered = table.render();
        assert!(rendered.contains("ears"));
        assert!(rendered.contains("tears"));
    }

    #[test]
    fn parallel_and_serial_sweeps_are_bit_identical() {
        let scale = ExperimentScale::tiny();
        let serial = table1_rows(&TrialPool::serial(), &scale).unwrap();
        let sharded = table1_rows(&TrialPool::new(4), &scale).unwrap();
        assert_eq!(serial, sharded);
    }

    #[test]
    fn trivial_messages_grow_quadratically() {
        let scale = ExperimentScale::tiny();
        let rows = table1_rows(&TrialPool::serial(), &scale).unwrap();
        let fit = message_exponent(&rows, "trivial").unwrap();
        assert!(
            (fit.exponent - 2.0).abs() < 0.05,
            "trivial should be ~n², got exponent {}",
            fit.exponent
        );
    }

    #[test]
    fn ears_messages_grow_subquadratically() {
        let scale = ExperimentScale::tiny();
        let rows = table1_rows(&TrialPool::serial(), &scale).unwrap();
        let ears = message_exponent(&rows, "ears").unwrap();
        let trivial = message_exponent(&rows, "trivial").unwrap();
        assert!(
            ears.exponent < trivial.exponent,
            "ears ({}) must grow slower than trivial ({})",
            ears.exponent,
            trivial.exponent
        );
    }

    #[test]
    fn paper_bounds_are_annotated() {
        let (t, m) = paper_bounds(GossipProtocolKind::Tears);
        assert!(t.contains("d+δ"));
        assert!(m.contains("7/4"));
    }
}
