//! Experiment drivers, one per evaluation artifact of the paper.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — gossip protocols: time and message complexity vs `n` |
//! | [`table2`] | Table 2 — consensus protocols built on the gossip protocols |
//! | [`coa`] | Corollary 2 — the cost of asynchrony (async vs sync ratios) |
//! | [`lower_bound`] | Theorem 1 / Figure 1 — the adaptive-adversary dichotomy |
//! | [`sears_sweep`] | Theorem 7 — the `ε` time/message trade-off of `sears` |
//! | [`tears_lemmas`] | Lemmas 8–11 / Theorem 12 — structural properties of `tears` |
//! | [`bit_complexity`] | Section 7 open question — wire-unit (bit) complexity per protocol |
//! | [`ablation`] | DESIGN.md ablations — sweeping the hidden `Θ(·)` constants |
//! | [`robustness`] | Theorems 6/7/12 — correctness across the oblivious adversary family |

pub mod ablation;
pub mod bit_complexity;
pub mod coa;
pub mod common;
pub mod lower_bound;
pub mod robustness;
pub mod sears_sweep;
pub mod table1;
pub mod table2;
pub mod tears_lemmas;

pub use ablation::{run_ablation, run_knob_ablation, AblationKnob, AblationRow};
pub use bit_complexity::{run_bit_complexity, BitComplexityRow};
pub use coa::{run_coa, CoaRow};
pub use common::{run_one_gossip, ExperimentScale, GossipProtocolKind, MeasuredPoint};
pub use lower_bound::{run_lower_bound_experiment, LowerBoundRow};
pub use robustness::{default_environments, run_robustness, AdversaryEnvironment, RobustnessRow};
pub use sears_sweep::{run_sears_sweep, SearsSweepRow};
pub use table1::{run_table1, table1_to_table, Table1Row};
pub use table2::{run_table2, table2_to_table, Table2Row};
pub use tears_lemmas::{run_tears_structure, TearsStructureRow};
