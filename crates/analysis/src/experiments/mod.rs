//! Experiment drivers, one per evaluation artifact of the paper.
//!
//! Every driver runs its independent trials through the sweep engine in
//! [`crate::sweep`]: each experiment module exposes one `X_rows(pool,
//! scale)` entry point that shards the whole trial grid across a
//! [`crate::sweep::TrialPool`]'s workers, producing bit-identical rows for
//! any worker count (serial = `TrialPool::serial()`). Every driver is also
//! registered as an [`experiment::Experiment`] trait object in
//! [`crate::sweep::registry`], so every artifact can be produced from one
//! place (the `scenarios` example, the `sweep_baseline` binary). The old
//! `run_X` / `run_X_with` twin names live on for one release as
//! `#[deprecated]` shims in [`deprecated`].
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`table1`] | Table 1 — gossip protocols: time and message complexity vs `n` |
//! | [`table2`] | Table 2 — consensus protocols built on the gossip protocols |
//! | [`coa`] | Corollary 2 — the cost of asynchrony (async vs sync ratios) |
//! | [`lower_bound`] | Theorem 1 / Figure 1 — the adaptive-adversary dichotomy |
//! | [`sears_sweep`] | Theorem 7 — the `ε` time/message trade-off of `sears` |
//! | [`tears_lemmas`] | Lemmas 8–11 / Theorem 12 — structural properties of `tears` |
//! | [`bit_complexity`] | Section 7 open question — wire-unit (bit) complexity per protocol |
//! | [`ablation`] | DESIGN.md ablations — sweeping the hidden `Θ(·)` constants |
//! | [`robustness`] | Theorems 6/7/12 — correctness across the oblivious adversary family |
//! | [`live`] | the live runtime: protocols over the byte codec on OS threads |
//! | [`scale`] | checker-verified `tears` at `n` up to 65 536 (scaled constants) |
//! | [`service`] | service mode: pipelined epochs through the replicated rumor log |

pub mod ablation;
pub mod bit_complexity;
pub mod coa;
pub mod common;
pub mod deprecated;
pub mod experiment;
pub mod live;
pub mod lower_bound;
pub mod robustness;
pub mod scale;
pub mod sears_sweep;
pub mod service;
pub mod table1;
pub mod table2;
pub mod tears_lemmas;

pub use ablation::{ablation_rows, knob_ablation_rows, AblationKnob, AblationRow};
pub use bit_complexity::{bit_complexity_rows, BitComplexityRow};
pub use coa::{coa_rows, CoaRow};
pub use common::{
    measure_point, measure_point_with, run_one_gossip, ExperimentScale, GossipProtocolKind,
    MeasuredPoint,
};
pub use experiment::Experiment;
pub use live::{live_rows, live_scale_rows, LiveRow, LiveScaleRow};
pub use lower_bound::{lower_bound_rows, LowerBoundRow};
pub use robustness::{default_environments, robustness_rows, AdversaryEnvironment, RobustnessRow};
pub use scale::{scale_rows, scale_tears_params, tears_params_for_a, ScaleRow};
pub use sears_sweep::{sears_sweep_rows, SearsSweepRow};
pub use service::{service_rows, service_to_table, ServiceRow};
pub use table1::{table1_rows, table1_to_table, Table1Row};
pub use table2::{table2_rows, table2_to_table, Table2Row};
pub use tears_lemmas::{
    run_tears_structure, run_tears_structure_at, tears_structure_rows, TearsStructureRow,
};

#[allow(deprecated)]
pub use deprecated::{
    run_ablation, run_ablation_with, run_bit_complexity, run_bit_complexity_with, run_coa,
    run_coa_with, run_knob_ablation, run_knob_ablation_with, run_live_scale, run_live_sweep,
    run_live_sweep_with, run_lower_bound_experiment, run_lower_bound_experiment_with,
    run_robustness, run_robustness_with, run_scale, run_scale_with, run_sears_sweep,
    run_sears_sweep_with, run_table1, run_table1_with, run_table2, run_table2_with,
    run_tears_structure_sweep,
};
