//! Shared plumbing for the experiment drivers.

use agossip_core::{GossipReport, GossipSpec};
use agossip_sim::rng::{splitmix64, trial_seed};
use agossip_sim::{SimConfig, SimResult};

use crate::stats::Summary;
use crate::sweep::{AdversarySpec, ScenarioSpec, TrialPool, TrialProtocol};

/// Which gossip protocol an experiment point runs.
///
/// ```
/// use agossip_analysis::experiments::GossipProtocolKind;
/// use agossip_core::GossipSpec;
///
/// // `tears` solves majority gossip; every other protocol solves full
/// // gossip — that is the spec each one is checked against.
/// assert_eq!(GossipProtocolKind::Tears.spec(), GossipSpec::Majority);
/// assert_eq!(
///     GossipProtocolKind::Sears { epsilon: 0.5 }.spec(),
///     GossipSpec::Full,
/// );
///
/// // The four rows of the paper's Table 1.
/// let rows = GossipProtocolKind::table1_rows();
/// let names: Vec<&str> = rows.iter().map(|k| k.name()).collect();
/// assert_eq!(names, ["trivial", "ears", "sears", "tears"]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GossipProtocolKind {
    /// All-to-all single-shot baseline (the "Trivial" row of Table 1).
    Trivial,
    /// Epidemic asynchronous rumor spreading (Section 3).
    Ears,
    /// Spamming epidemic rumor spreading with exponent `ε` (Section 4).
    Sears {
        /// The fan-out exponent `ε < 1`.
        epsilon: f64,
    },
    /// Two-hop majority gossip (Section 5).
    Tears,
    /// Synchronous push-epidemic baseline (`d = δ = 1` known a priori).
    SyncEpidemic,
}

impl GossipProtocolKind {
    /// A short, table-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            GossipProtocolKind::Trivial => "trivial",
            GossipProtocolKind::Ears => "ears",
            GossipProtocolKind::Sears { .. } => "sears",
            GossipProtocolKind::Tears => "tears",
            GossipProtocolKind::SyncEpidemic => "sync",
        }
    }

    /// The gossip variant this protocol is checked against: `tears` solves
    /// majority gossip, everything else solves full gossip.
    pub fn spec(&self) -> GossipSpec {
        match self {
            GossipProtocolKind::Tears => GossipSpec::Majority,
            _ => GossipSpec::Full,
        }
    }

    /// The protocols that appear as rows of Table 1 (the lower-bound row is
    /// produced by the [`crate::experiments::lower_bound`] driver instead).
    pub fn table1_rows() -> Vec<GossipProtocolKind> {
        vec![
            GossipProtocolKind::Trivial,
            GossipProtocolKind::Ears,
            GossipProtocolKind::Sears { epsilon: 0.5 },
            GossipProtocolKind::Tears,
        ]
    }
}

/// Scale parameters shared by the experiments: which system sizes to sweep,
/// how many independent trials per point, and the timing bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentScale {
    /// System sizes to sweep.
    pub n_values: Vec<usize>,
    /// Independent trials (seeds) per point.
    pub trials: usize,
    /// Fraction of processes that may fail (`f = ⌊fraction · n⌋`, capped to
    /// keep `f < n/2` so every protocol in the comparison is applicable).
    pub failure_fraction: f64,
    /// Delivery bound `d`.
    pub d: u64,
    /// Scheduling bound `δ`.
    pub delta: u64,
    /// Base seed. Trial `t` at size `n` uses the splitmix-derived seed
    /// `trial_seed(base_seed_for(n), t)` (see [`Self::seed_for`]), so a
    /// trial's execution is a pure function of `(seed, n, t)` — independent
    /// of trial order and of how the sweep engine shards trials over
    /// threads.
    pub seed: u64,
    /// Whether trials run with the simulator's idle fast-forward (see
    /// [`SimConfig::idle_fast_forward`]). Off by default so measured
    /// executions stay tick-for-tick comparable with historical runs; flip it
    /// for large sweeps whose protocols are idle-quiescent.
    pub idle_fast_forward: bool,
}

impl Default for ExperimentScale {
    fn default() -> Self {
        ExperimentScale {
            n_values: vec![32, 64, 128, 256],
            trials: 3,
            failure_fraction: 0.25,
            d: 2,
            delta: 2,
            seed: 2008,
            idle_fast_forward: false,
        }
    }
}

impl ExperimentScale {
    /// A reduced scale suitable for unit tests.
    pub fn tiny() -> Self {
        ExperimentScale {
            n_values: vec![16, 32],
            trials: 1,
            failure_fraction: 0.25,
            d: 1,
            delta: 1,
            seed: 7,
            idle_fast_forward: false,
        }
    }

    /// The failure budget for a system of size `n`.
    pub fn f_for(&self, n: usize) -> usize {
        let f = (self.failure_fraction * n as f64).floor() as usize;
        f.min(n.div_ceil(2).saturating_sub(1))
    }

    /// The base seed shared by all trials at size `n` (each trial then
    /// derives its own seed via [`agossip_sim::rng::trial_seed`]).
    pub fn base_seed_for(&self, n: usize) -> u64 {
        splitmix64(self.seed ^ (n as u64).rotate_left(24))
    }

    /// The seed for trial `trial` at size `n`.
    pub fn seed_for(&self, n: usize, trial: usize) -> u64 {
        trial_seed(self.base_seed_for(n), trial as u64)
    }

    /// The simulation configuration for one trial.
    pub fn config_for(&self, n: usize, trial: usize) -> SimConfig {
        SimConfig::new(n, self.f_for(n))
            .with_d(self.d)
            .with_delta(self.delta)
            .with_seed(self.seed_for(n, trial))
            .with_idle_fast_forward(self.idle_fast_forward)
    }
}

/// Aggregated measurements of one `(protocol, n)` experiment point.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredPoint {
    /// Protocol name.
    pub protocol: &'static str,
    /// System size.
    pub n: usize,
    /// Failure budget used.
    pub f: usize,
    /// Completion time in steps, over the trials.
    pub time_steps: Summary,
    /// Completion time in multiples of `d + δ`.
    pub normalized_time: Summary,
    /// Total point-to-point messages.
    pub messages: Summary,
    /// Fraction of trials in which the protocol's correctness check passed.
    pub success_rate: f64,
}

/// Runs one gossip trial of `kind` under the reference oblivious adversary
/// and returns the driver report.
///
/// The synchronous baseline always runs under unit bounds (`d = δ = 1` known
/// a priori is its defining assumption), and out-of-range protocol
/// parameters (e.g. a `sears` ε outside `(0, 1)`) are rejected up front.
pub fn run_one_gossip(kind: GossipProtocolKind, config: &SimConfig) -> SimResult<GossipReport> {
    let protocol = TrialProtocol::Gossip(kind);
    protocol.validate()?;
    crate::sweep::run_gossip_protocol(&protocol, &AdversarySpec::FairOblivious, config)
}

/// Builds a [`MeasuredPoint`] from one spec's aggregated trials.
pub(crate) fn point_from_aggregate(
    protocol: &'static str,
    n: usize,
    f: usize,
    aggregate: &crate::sweep::TrialAggregate,
) -> MeasuredPoint {
    MeasuredPoint {
        protocol,
        n,
        f,
        time_steps: aggregate.time_steps.clone(),
        normalized_time: aggregate.normalized_time.clone(),
        messages: aggregate.messages.clone(),
        success_rate: aggregate.success_rate,
    }
}

/// Runs `trials` trials of `kind` at size `n` on `pool` and aggregates them.
pub fn measure_point_with(
    pool: &TrialPool,
    kind: GossipProtocolKind,
    scale: &ExperimentScale,
    n: usize,
) -> SimResult<MeasuredPoint> {
    let spec = ScenarioSpec::from_scale(TrialProtocol::Gossip(kind), scale, n);
    let aggregate = spec.run(pool)?;
    Ok(point_from_aggregate(kind.name(), n, spec.f, &aggregate))
}

/// Serial convenience wrapper around [`measure_point_with`].
pub fn measure_point(
    kind: GossipProtocolKind,
    scale: &ExperimentScale,
    n: usize,
) -> SimResult<MeasuredPoint> {
    measure_point_with(&TrialPool::serial(), kind, scale, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_budget_respects_minority_cap() {
        let scale = ExperimentScale {
            failure_fraction: 0.9,
            ..ExperimentScale::tiny()
        };
        let f = scale.f_for(16);
        assert!(f < 8, "must stay below n/2, got {f}");
        let scale = ExperimentScale::default();
        assert_eq!(scale.f_for(64), 16);
    }

    #[test]
    fn seeds_differ_across_trials_and_sizes() {
        let scale = ExperimentScale::default();
        assert_ne!(scale.seed_for(64, 0), scale.seed_for(64, 1));
        assert_ne!(scale.seed_for(64, 0), scale.seed_for(128, 0));
    }

    #[test]
    fn protocol_names_and_specs() {
        assert_eq!(GossipProtocolKind::Trivial.name(), "trivial");
        assert_eq!(GossipProtocolKind::Tears.spec(), GossipSpec::Majority);
        assert_eq!(GossipProtocolKind::Ears.spec(), GossipSpec::Full);
        assert_eq!(GossipProtocolKind::table1_rows().len(), 4);
    }

    #[test]
    fn measure_point_aggregates_trials() {
        let scale = ExperimentScale::tiny();
        let point = measure_point(GossipProtocolKind::Trivial, &scale, 16).unwrap();
        assert_eq!(point.protocol, "trivial");
        assert_eq!(point.n, 16);
        assert_eq!(point.success_rate, 1.0);
        // Trivial gossip: exactly n(n-1) messages.
        assert_eq!(point.messages.mean, (16 * 15) as f64);
    }

    #[test]
    fn sync_baseline_forces_unit_bounds() {
        let scale = ExperimentScale {
            d: 4,
            delta: 3,
            ..ExperimentScale::tiny()
        };
        let config = scale.config_for(16, 0);
        let report = run_one_gossip(GossipProtocolKind::SyncEpidemic, &config).unwrap();
        assert!(report.check.all_ok());
        assert!(report.metrics.max_delivery_delay <= 1);
    }
}
