//! The live scenario: the gossip protocols running as a real system.
//!
//! Every other driver in this module measures the protocols inside the
//! discrete-event simulator. This one runs them through
//! [`agossip_runtime::run_live`]: `n` concurrent OS threads per trial,
//! every message byte-encoded through [`agossip_core::codec`] and carried
//! by a real transport, crash injection killing live processes mid-run.
//!
//! Trials use the deterministic lockstep pacing over the in-process channel
//! transport — outcomes are bit-identical per seed, so the scenario slots
//! into the sweep engine's determinism contract like any simulator-backed
//! scenario (worker count never changes a row). The loopback TCP / UDS
//! transports exercise the same event loop and are covered by the runtime's
//! own tests and the `live_gossip` example; they are kept out of the sweep
//! default because binding hundreds of listeners per grid is kernel-state
//! heavy, not because anything about the measurement differs.

use agossip_core::{check_gossip, Ears, GossipCtx, GossipEngine, Rumor, Tears, Trivial, WireCodec};
use agossip_runtime::{run_live, ChannelTransport, LiveConfig, LiveReport, Pacing};
use agossip_sim::{ProcessId, SimError, SimResult};

use crate::experiments::common::{ExperimentScale, GossipProtocolKind};
use crate::report::{fmt_f64, Table};
use crate::stats::Summary;
use crate::sweep::TrialPool;

/// One `(protocol, n)` row of the live sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveRow {
    /// Protocol name.
    pub protocol: &'static str,
    /// System size.
    pub n: usize,
    /// Failure budget (also the number of injected crashes).
    pub f: usize,
    /// Trials aggregated.
    pub trials: usize,
    /// Fraction of trials whose post-run correctness check passed.
    pub success_rate: f64,
    /// Lockstep ticks to completion.
    pub ticks: Summary,
    /// Point-to-point messages (encoded frames) sent.
    pub messages: Summary,
    /// Encoded payload bytes sent.
    pub bytes: Summary,
}

/// The protocols the live sweep runs. `sears`/`sync` are deliberately not
/// default rows: they add nothing transport-wise over `ears`, and live
/// trials are much more expensive than simulated ones.
pub fn live_protocols() -> Vec<GossipProtocolKind> {
    vec![
        GossipProtocolKind::Trivial,
        GossipProtocolKind::Ears,
        GossipProtocolKind::Tears,
    ]
}

/// The deterministic crash schedule of a live trial: the `f` highest
/// process ids crash, staggered one local step apart (victim `n−1−i` after
/// `i` steps) — mirroring the staggered-crash schedules of the simulator's
/// policy adversaries.
pub fn live_crashes(n: usize, f: usize) -> Vec<(ProcessId, u64)> {
    (0..f).map(|i| (ProcessId(n - 1 - i), i as u64)).collect()
}

/// The live-run configuration of one trial.
pub fn live_config(scale: &ExperimentScale, n: usize, trial: usize) -> LiveConfig {
    let f = scale.f_for(n);
    LiveConfig {
        n,
        f,
        seed: scale.seed_for(n, trial),
        crashes: live_crashes(n, f),
        // `d` is passed through unclamped: a zero delay bound is a
        // misconfiguration, and `LiveConfig::validate` reports it as a typed
        // error — the same stance the simulator takes (PR 2 removed its
        // silent `.max(1)` delay clamp for exactly this reason).
        pacing: Pacing::Lockstep {
            d: scale.d,
            max_ticks: 1 << 20,
        },
    }
}

fn initial_rumors(n: usize, f: usize, seed: u64) -> Vec<Rumor> {
    ProcessId::all(n)
        .map(|pid| GossipCtx::new(pid, n, f, seed).rumor)
        .collect()
}

/// Runs one live trial of `kind` and returns the report plus its checker
/// verdict.
pub fn run_live_trial(
    kind: GossipProtocolKind,
    config: &LiveConfig,
) -> SimResult<(LiveReport, bool)> {
    fn go<G>(
        config: &LiveConfig,
        make: impl Fn(GossipCtx) -> G,
        spec: agossip_core::GossipSpec,
    ) -> SimResult<(LiveReport, bool)>
    where
        G: GossipEngine + Send,
        G::Msg: WireCodec + PartialEq,
    {
        let report =
            run_live(config, &ChannelTransport, make).map_err(|e| SimError::InvalidConfig {
                reason: format!("live run failed: {e}"),
            })?;
        let check = check_gossip(
            spec,
            &report.final_rumors,
            &initial_rumors(config.n, config.f, config.seed),
            &report.correct,
            report.quiescent,
        );
        let ok = check.all_ok() && report.decode_errors == 0;
        Ok((report, ok))
    }
    match kind {
        GossipProtocolKind::Trivial => go(config, Trivial::new, kind.spec()),
        GossipProtocolKind::Ears => go(config, Ears::new, kind.spec()),
        GossipProtocolKind::Tears => go(config, Tears::new, kind.spec()),
        other => Err(SimError::InvalidConfig {
            reason: format!("protocol {} is not part of the live sweep", other.name()),
        }),
    }
}

/// Runs the live sweep on `pool`: the whole `(protocol, n, trial)` grid is
/// flattened so every worker stays busy. Each trial spawns `n` OS threads
/// of its own, so wide pools multiply thread counts — the scenario's
/// default scale keeps the grid small.
pub fn run_live_sweep_with(pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Vec<LiveRow>> {
    let grid: Vec<(GossipProtocolKind, usize)> = live_protocols()
        .into_iter()
        .flat_map(|kind| scale.n_values.iter().map(move |&n| (kind, n)))
        .collect();
    let trials = scale.trials.max(1);
    let jobs = grid.len() * trials;
    let results: Vec<SimResult<(LiveReport, bool)>> = pool.run(jobs, |job| {
        let (kind, n) = grid[job / trials];
        let trial = job % trials;
        run_live_trial(kind, &live_config(scale, n, trial))
    });

    let mut rows = Vec::with_capacity(grid.len());
    let mut results = results.into_iter();
    for (kind, n) in grid {
        let mut ticks = Vec::with_capacity(trials);
        let mut messages = Vec::with_capacity(trials);
        let mut bytes = Vec::with_capacity(trials);
        let mut successes = 0usize;
        for _ in 0..trials {
            let (report, ok) = results.next().expect("one result per job")?;
            ticks.push(report.ticks as f64);
            messages.push(report.messages_sent as f64);
            bytes.push(report.bytes_sent as f64);
            successes += ok as usize;
        }
        rows.push(LiveRow {
            protocol: kind.name(),
            n,
            f: scale.f_for(n),
            trials,
            success_rate: successes as f64 / trials as f64,
            ticks: Summary::of(&ticks),
            messages: Summary::of(&messages),
            bytes: Summary::of(&bytes),
        });
    }
    Ok(rows)
}

/// Serial convenience wrapper around [`run_live_sweep_with`].
pub fn run_live_sweep(scale: &ExperimentScale) -> SimResult<Vec<LiveRow>> {
    run_live_sweep_with(&TrialPool::serial(), scale)
}

/// Renders the live rows.
pub fn live_to_table(rows: &[LiveRow]) -> Table {
    let mut table = Table::new(
        "Live runtime — lockstep gossip over the byte codec (measured)",
        &[
            "protocol",
            "n",
            "f",
            "ticks",
            "messages",
            "bytes",
            "bytes/msg",
            "ok",
        ],
    );
    for row in rows {
        let bytes_per_msg = if row.messages.mean > 0.0 {
            row.bytes.mean / row.messages.mean
        } else {
            0.0
        };
        table.push_row(vec![
            row.protocol.to_string(),
            row.n.to_string(),
            row.f.to_string(),
            fmt_f64(row.ticks.mean),
            fmt_f64(row.messages.mean),
            fmt_f64(row.bytes.mean),
            fmt_f64(bytes_per_msg),
            format!("{:.0}%", row.success_rate * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            n_values: vec![8],
            trials: 2,
            failure_fraction: 0.2,
            d: 2,
            delta: 1,
            seed: 42,
            idle_fast_forward: false,
        }
    }

    #[test]
    fn live_sweep_rows_are_worker_count_independent() {
        let scale = tiny();
        let serial = run_live_sweep_with(&TrialPool::serial(), &scale).unwrap();
        let sharded = run_live_sweep_with(&TrialPool::new(2), &scale).unwrap();
        assert_eq!(serial, sharded);
        assert_eq!(serial.len(), live_protocols().len());
        for row in &serial {
            assert_eq!(row.success_rate, 1.0, "{row:?}");
            assert!(row.bytes.mean > 0.0);
            assert!(row.ticks.mean > 0.0);
        }
    }

    #[test]
    fn crash_schedule_respects_the_budget() {
        let crashes = live_crashes(16, 3);
        assert_eq!(
            crashes,
            vec![(ProcessId(15), 0), (ProcessId(14), 1), (ProcessId(13), 2),]
        );
        assert!(live_crashes(16, 0).is_empty());
    }

    #[test]
    fn non_live_protocols_are_rejected() {
        let config = live_config(&tiny(), 8, 0);
        assert!(run_live_trial(GossipProtocolKind::SyncEpidemic, &config).is_err());
    }
}
