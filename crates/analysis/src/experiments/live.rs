//! The live scenario: the gossip protocols running as a real system.
//!
//! Every other driver in this module measures the protocols inside the
//! discrete-event simulator. This one runs them through
//! [`agossip_runtime::run_live`]: `n` concurrent OS threads per trial,
//! every message byte-encoded through [`agossip_core::codec`] and carried
//! by a real transport, crash injection killing live processes mid-run.
//!
//! Trials use the deterministic lockstep pacing over the in-process channel
//! transport — outcomes are bit-identical per seed, so the scenario slots
//! into the sweep engine's determinism contract like any simulator-backed
//! scenario (worker count never changes a row). The loopback TCP / UDS
//! transports exercise the same event loop and are covered by the runtime's
//! own tests and the `live_gossip` example; they are kept out of the sweep
//! default because binding hundreds of listeners per grid is kernel-state
//! heavy, not because anything about the measurement differs.

use agossip_core::{
    check_gossip, Ears, GossipCtx, GossipEngine, GossipSpec, Rumor, Tears, TearsParams, Trivial,
    WireCodec, WireDecodeView,
};
use agossip_runtime::{run_live, ChannelTransport, LiveConfig, LiveReport, Pacing, Threading};
use agossip_sim::{ProcessId, SimError, SimResult};

use crate::experiments::common::{ExperimentScale, GossipProtocolKind};
use crate::experiments::scale::{scale_a_target, tears_params_for_a};
use crate::report::{fmt_f64, Table};
use crate::stats::Summary;
use crate::sweep::TrialPool;

/// One `(protocol, n)` row of the live sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LiveRow {
    /// Protocol name.
    pub protocol: &'static str,
    /// System size.
    pub n: usize,
    /// Failure budget (also the number of injected crashes).
    pub f: usize,
    /// Trials aggregated.
    pub trials: usize,
    /// Fraction of trials whose post-run correctness check passed.
    pub success_rate: f64,
    /// Lockstep ticks to completion.
    pub ticks: Summary,
    /// Point-to-point messages (encoded frames) sent.
    pub messages: Summary,
    /// Encoded payload bytes sent.
    pub bytes: Summary,
}

/// The protocols the live sweep runs. `sears`/`sync` are deliberately not
/// default rows: they add nothing transport-wise over `ears`, and live
/// trials are much more expensive than simulated ones.
pub fn live_protocols() -> Vec<GossipProtocolKind> {
    vec![
        GossipProtocolKind::Trivial,
        GossipProtocolKind::Ears,
        GossipProtocolKind::Tears,
    ]
}

/// The deterministic crash schedule of a live trial: the `f` highest
/// process ids crash, staggered one local step apart (victim `n−1−i` after
/// `i` steps) — mirroring the staggered-crash schedules of the simulator's
/// policy adversaries.
pub fn live_crashes(n: usize, f: usize) -> Vec<(ProcessId, u64)> {
    (0..f).map(|i| (ProcessId(n - 1 - i), i as u64)).collect()
}

/// The live-run configuration of one trial.
pub fn live_config(scale: &ExperimentScale, n: usize, trial: usize) -> LiveConfig {
    let f = scale.f_for(n);
    LiveConfig {
        n,
        f,
        seed: scale.seed_for(n, trial),
        crashes: live_crashes(n, f),
        // `d` is passed through unclamped: a zero delay bound is a
        // misconfiguration, and `LiveConfig::validate` reports it as a typed
        // error — the same stance the simulator takes (PR 2 removed its
        // silent `.max(1)` delay clamp for exactly this reason).
        pacing: Pacing::Lockstep {
            d: scale.d,
            max_ticks: 1 << 20,
        },
        threading: Threading::PerProcess,
    }
}

fn initial_rumors(n: usize, f: usize, seed: u64) -> Vec<Rumor> {
    ProcessId::all(n)
        .map(|pid| GossipCtx::new(pid, n, f, seed).rumor)
        .collect()
}

/// Runs one live trial of `kind` and returns the report plus its checker
/// verdict.
pub fn run_live_trial(
    kind: GossipProtocolKind,
    config: &LiveConfig,
) -> SimResult<(LiveReport, bool)> {
    fn go<G>(
        config: &LiveConfig,
        make: impl Fn(GossipCtx) -> G,
        spec: agossip_core::GossipSpec,
    ) -> SimResult<(LiveReport, bool)>
    where
        G: GossipEngine + Send,
        G::Msg: WireCodec + WireDecodeView + PartialEq,
    {
        let report =
            run_live(config, &ChannelTransport, make).map_err(|e| SimError::InvalidConfig {
                reason: format!("live run failed: {e}"),
            })?;
        let check = check_gossip(
            spec,
            &report.final_rumors,
            &initial_rumors(config.n, config.f, config.seed),
            &report.correct,
            report.quiescent,
        );
        let ok = check.all_ok() && report.decode_errors == 0;
        Ok((report, ok))
    }
    match kind {
        GossipProtocolKind::Trivial => go(config, Trivial::new, kind.spec()),
        GossipProtocolKind::Ears => go(config, Ears::new, kind.spec()),
        GossipProtocolKind::Tears => go(config, Tears::new, kind.spec()),
        other => Err(SimError::InvalidConfig {
            reason: format!("protocol {} is not part of the live sweep", other.name()),
        }),
    }
}

/// Runs the live sweep on `pool`: the whole `(protocol, n, trial)` grid is
/// flattened so every worker stays busy. Each trial spawns `n` OS threads
/// of its own, so wide pools multiply thread counts — the scenario's
/// default scale keeps the grid small.
pub fn live_rows(pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Vec<LiveRow>> {
    let grid: Vec<(GossipProtocolKind, usize)> = live_protocols()
        .into_iter()
        .flat_map(|kind| scale.n_values.iter().map(move |&n| (kind, n)))
        .collect();
    let trials = scale.trials.max(1);
    let jobs = grid.len() * trials;
    let results: Vec<SimResult<(LiveReport, bool)>> = pool.run(jobs, |job| {
        let (kind, n) = grid[job / trials];
        let trial = job % trials;
        run_live_trial(kind, &live_config(scale, n, trial))
    });

    let mut rows = Vec::with_capacity(grid.len());
    let mut results = results.into_iter();
    for (kind, n) in grid {
        let mut ticks = Vec::with_capacity(trials);
        let mut messages = Vec::with_capacity(trials);
        let mut bytes = Vec::with_capacity(trials);
        let mut successes = 0usize;
        for _ in 0..trials {
            let (report, ok) = results.next().expect("one result per job")?;
            ticks.push(report.ticks as f64);
            messages.push(report.messages_sent as f64);
            bytes.push(report.bytes_sent as f64);
            successes += ok as usize;
        }
        rows.push(LiveRow {
            protocol: kind.name(),
            n,
            f: scale.f_for(n),
            trials,
            success_rate: successes as f64 / trials as f64,
            ticks: Summary::of(&ticks),
            messages: Summary::of(&messages),
            bytes: Summary::of(&bytes),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// live_scale — thousands of live processes on a handful of reactor threads
// ---------------------------------------------------------------------------

/// One row of the `live_scale` scenario: a checker-verified lockstep `tears`
/// run at system size `n`, all processes multiplexed onto `reactors` event
/// loops ([`Threading::Reactor`]).
#[derive(Debug, Clone, PartialEq)]
pub struct LiveScaleRow {
    /// System size.
    pub n: usize,
    /// Crash budget (all `f` crashes are injected, staggered across the
    /// first local steps).
    pub f: usize,
    /// Reactor threads the `n` processes were multiplexed onto.
    pub reactors: usize,
    /// Lockstep ticks to quiescence.
    pub ticks: u64,
    /// Point-to-point messages (encoded frames) sent.
    pub messages: u64,
    /// Encoded payload bytes sent.
    pub bytes: u64,
    /// Wall-clock seconds of the run (the runtime's own clock).
    pub wall_secs: f64,
    /// Frames through the transport per wall-clock second.
    pub messages_per_sec: f64,
    /// Encoded payload bytes through the transport per wall-clock second.
    pub bytes_per_sec: f64,
    /// Whether the majority-gossip checker accepted the run (and no frame
    /// failed to decode).
    pub ok: bool,
}

/// The `tears` parameters of a `live_scale` trial: the same logarithmic
/// neighbourhood target the simulator's `scale` scenario is calibrated to
/// (`a = 2 + 1.5·log₂n`), applied at *every* size. The sim-side crossover
/// keeps paper-faithful `Θ(√n·log n)` constants below `n = 2048`, but a live
/// run pays per-byte codec cost on every message, so the quadratic default
/// grid is unaffordable well below the crossover.
pub fn live_scale_params(n: usize) -> TearsParams {
    tears_params_for_a(n, scale_a_target(n))
}

/// The crash budget of a `live_scale` trial: 16 crashes once `n` is large
/// enough to spare them (`f < n/2` is a `tears` requirement; `n/8` keeps
/// small smoke sizes valid).
pub fn live_scale_f(n: usize) -> usize {
    16.min(n / 8)
}

/// The live-run configuration of a `live_scale` trial: lockstep pacing over
/// `reactors` reactor threads, with the [`live_scale_f`] highest pids
/// crash-injected, staggered across the first four local steps (a scaled
/// `tears` run quiesces within a handful of ticks, so a wider stagger would
/// leave late crashes unfired).
///
/// The delay bound is `d = 6`, matching the simulator's scale grid: the
/// logarithmic [`live_scale_params`] neighbourhood only reaches majority
/// coverage when first-level deliveries spread over several ticks, so the
/// second-level triggers fire in waves that compound each other's gathered
/// rumors (see `experiments/scale.rs`). With the default `d = 2` the
/// `n = 512` point fails gathering on some seeds.
pub fn live_scale_config(n: usize, reactors: usize, seed: u64) -> LiveConfig {
    let f = live_scale_f(n);
    let crashes = (0..f)
        .map(|i| (ProcessId(n - 1 - i), (i % 4) as u64))
        .collect();
    let mut config = LiveConfig::lockstep(n, f, seed)
        .with_crashes(crashes)
        .on_reactors(reactors);
    config.pacing = Pacing::Lockstep {
        d: 6,
        max_ticks: 1 << 20,
    };
    config
}

/// Runs one `live_scale` trial: scaled `tears` at size `n` over the channel
/// transport on `reactors` reactor threads, verified by the majority-gossip
/// checker.
pub fn run_live_scale_trial(n: usize, reactors: usize, seed: u64) -> SimResult<LiveScaleRow> {
    let config = live_scale_config(n, reactors, seed);
    let params = live_scale_params(n);
    let report = run_live(&config, &ChannelTransport, move |ctx| {
        Tears::with_params(ctx, params)
    })
    .map_err(|e| SimError::InvalidConfig {
        reason: format!("live_scale run failed: {e}"),
    })?;
    let check = check_gossip(
        GossipSpec::Majority,
        &report.final_rumors,
        &initial_rumors(config.n, config.f, config.seed),
        &report.correct,
        report.quiescent,
    );
    let ok = check.all_ok() && report.decode_errors == 0;
    let wall_secs = report.elapsed.as_secs_f64();
    let per_sec = |count: u64| {
        if wall_secs > 0.0 {
            count as f64 / wall_secs
        } else {
            0.0
        }
    };
    Ok(LiveScaleRow {
        n,
        f: config.f,
        reactors,
        ticks: report.ticks,
        messages: report.messages_sent,
        bytes: report.bytes_sent,
        wall_secs,
        messages_per_sec: per_sec(report.messages_sent),
        bytes_per_sec: per_sec(report.bytes_sent),
        ok,
    })
}

/// Runs the `live_scale` scenario: one trial per size, serial — each trial
/// is already internally concurrent (its reactor threads saturate the box),
/// so sharding trials across a worker pool would only fight them for cores.
pub fn live_scale_rows(
    n_values: &[usize],
    reactors: usize,
    seed: u64,
) -> SimResult<Vec<LiveScaleRow>> {
    n_values
        .iter()
        .map(|&n| run_live_scale_trial(n, reactors, seed))
        .collect()
}

/// Renders the `live_scale` rows.
pub fn live_scale_to_table(rows: &[LiveScaleRow]) -> Table {
    let mut table = Table::new(
        "Live scale — lockstep tears on reactor threads (measured)",
        &[
            "n", "f", "reactors", "ticks", "messages", "bytes", "msgs/s", "bytes/s", "ok",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.n.to_string(),
            row.f.to_string(),
            row.reactors.to_string(),
            row.ticks.to_string(),
            row.messages.to_string(),
            row.bytes.to_string(),
            fmt_f64(row.messages_per_sec),
            fmt_f64(row.bytes_per_sec),
            if row.ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table
}

/// Renders the live rows.
pub fn live_to_table(rows: &[LiveRow]) -> Table {
    let mut table = Table::new(
        "Live runtime — lockstep gossip over the byte codec (measured)",
        &[
            "protocol",
            "n",
            "f",
            "ticks",
            "messages",
            "bytes",
            "bytes/msg",
            "ok",
        ],
    );
    for row in rows {
        let bytes_per_msg = if row.messages.mean > 0.0 {
            row.bytes.mean / row.messages.mean
        } else {
            0.0
        };
        table.push_row(vec![
            row.protocol.to_string(),
            row.n.to_string(),
            row.f.to_string(),
            fmt_f64(row.ticks.mean),
            fmt_f64(row.messages.mean),
            fmt_f64(row.bytes.mean),
            fmt_f64(bytes_per_msg),
            format!("{:.0}%", row.success_rate * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            n_values: vec![8],
            trials: 2,
            failure_fraction: 0.2,
            d: 2,
            delta: 1,
            seed: 42,
            idle_fast_forward: false,
        }
    }

    #[test]
    fn live_sweep_rows_are_worker_count_independent() {
        let scale = tiny();
        let serial = live_rows(&TrialPool::serial(), &scale).unwrap();
        let sharded = live_rows(&TrialPool::new(2), &scale).unwrap();
        assert_eq!(serial, sharded);
        assert_eq!(serial.len(), live_protocols().len());
        for row in &serial {
            assert_eq!(row.success_rate, 1.0, "{row:?}");
            assert!(row.bytes.mean > 0.0);
            assert!(row.ticks.mean > 0.0);
        }
    }

    #[test]
    fn crash_schedule_respects_the_budget() {
        let crashes = live_crashes(16, 3);
        assert_eq!(
            crashes,
            vec![(ProcessId(15), 0), (ProcessId(14), 1), (ProcessId(13), 2),]
        );
        assert!(live_crashes(16, 0).is_empty());
    }

    #[test]
    fn non_live_protocols_are_rejected() {
        let config = live_config(&tiny(), 8, 0);
        assert!(run_live_trial(GossipProtocolKind::SyncEpidemic, &config).is_err());
    }

    #[test]
    fn live_scale_trial_is_checker_verified_and_deterministic() {
        let a = run_live_scale_trial(128, 4, 7).unwrap();
        assert!(a.ok, "{a:?}");
        assert_eq!(a.f, 16);
        assert_eq!(a.reactors, 4);
        assert!(a.messages > 0 && a.bytes > a.messages);
        // Wall-clock rates vary run to run; the execution itself must not.
        let b = run_live_scale_trial(128, 4, 7).unwrap();
        assert_eq!(
            (a.ticks, a.messages, a.bytes),
            (b.ticks, b.messages, b.bytes)
        );
    }

    #[test]
    fn live_scale_crash_budget_respects_small_sizes() {
        assert_eq!(live_scale_f(4096), 16);
        assert_eq!(live_scale_f(512), 16);
        assert_eq!(live_scale_f(64), 8);
        let config = live_scale_config(64, 2, 3);
        assert_eq!(config.crashes.len(), 8);
        assert!(config.crashes.iter().all(|&(_, step)| step < 4));
    }
}
