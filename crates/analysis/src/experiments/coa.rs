//! Corollary 2 — the cost of asynchrony.
//!
//! The corollary compares the best asynchronous algorithm against the best
//! synchronous algorithm (one that knows `d = δ = 1` a priori) and shows that
//! either the time ratio is `Ω(f)` or the message ratio is `Ω(1 + f²/n)`.
//!
//! Empirically we measure, for each system size, the synchronous baseline's
//! time and message cost with `d = δ = 1`, and each asynchronous protocol's
//! cost in the same setting, and report the two ratios. Together with the
//! lower-bound experiment (which shows what an *adaptive* adversary can force)
//! this reproduces the "cost of asynchrony" discussion of Section 2.

use agossip_sim::SimResult;

use crate::experiments::common::{
    point_from_aggregate, ExperimentScale, GossipProtocolKind, MeasuredPoint,
};
use crate::report::{fmt_f64, Table};
use crate::sweep::{run_grid, ScenarioSpec, TrialPool, TrialProtocol};

/// One `(protocol, n)` comparison against the synchronous baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct CoaRow {
    /// The asynchronous protocol being compared.
    pub protocol: &'static str,
    /// System size.
    pub n: usize,
    /// Failure budget.
    pub f: usize,
    /// Mean completion time of the asynchronous protocol (steps).
    pub async_time: f64,
    /// Mean message count of the asynchronous protocol.
    pub async_messages: f64,
    /// Mean completion time of the synchronous baseline (steps).
    pub sync_time: f64,
    /// Mean message count of the synchronous baseline.
    pub sync_messages: f64,
    /// `async_time / sync_time`.
    pub time_ratio: f64,
    /// `async_messages / sync_messages`.
    pub message_ratio: f64,
}

/// The asynchronous protocols compared against the synchronous baseline.
fn async_kinds() -> [GossipProtocolKind; 3] {
    [
        GossipProtocolKind::Trivial,
        GossipProtocolKind::Ears,
        GossipProtocolKind::Sears { epsilon: 0.5 },
    ]
}

/// Runs the cost-of-asynchrony comparison for the asynchronous Table 1
/// protocols against the synchronous baseline, on `pool`.
pub fn coa_rows(pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Vec<CoaRow>> {
    // The corollary's comparison is at d = δ = 1 for both sides.
    let unit_scale = ExperimentScale {
        d: 1,
        delta: 1,
        ..scale.clone()
    };
    // One flattened batch: the sync baseline plus the three async protocols,
    // per system size, in a fixed (size-major) order.
    let mut grid: Vec<(GossipProtocolKind, usize)> = Vec::new();
    for &n in &unit_scale.n_values {
        grid.push((GossipProtocolKind::SyncEpidemic, n));
        for kind in async_kinds() {
            grid.push((kind, n));
        }
    }
    let points: Vec<MeasuredPoint> = run_grid(
        pool,
        &grid,
        |&(kind, n)| ScenarioSpec::from_scale(TrialProtocol::Gossip(kind), &unit_scale, n),
        |&(kind, n), spec, aggregate| point_from_aggregate(kind.name(), n, spec.f, aggregate),
    )?;

    let mut rows = Vec::new();
    let stride = 1 + async_kinds().len();
    for (size_idx, &n) in unit_scale.n_values.iter().enumerate() {
        let base = size_idx * stride;
        let sync = &points[base];
        for async_point in &points[base + 1..base + stride] {
            let sync_time = sync.time_steps.mean.max(1.0);
            let sync_messages = sync.messages.mean.max(1.0);
            rows.push(CoaRow {
                protocol: async_point.protocol,
                n,
                f: unit_scale.f_for(n),
                async_time: async_point.time_steps.mean,
                async_messages: async_point.messages.mean,
                sync_time,
                sync_messages,
                time_ratio: async_point.time_steps.mean / sync_time,
                message_ratio: async_point.messages.mean / sync_messages,
            });
        }
    }
    Ok(rows)
}

/// Renders the comparison as a table.
pub fn coa_to_table(rows: &[CoaRow]) -> Table {
    let mut table = Table::new(
        "Corollary 2 — cost of asynchrony (async protocol vs synchronous baseline, d = δ = 1)",
        &[
            "protocol",
            "n",
            "f",
            "async time",
            "sync time",
            "time ratio",
            "async msgs",
            "sync msgs",
            "msg ratio",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.protocol.to_string(),
            row.n.to_string(),
            row.f.to_string(),
            fmt_f64(row.async_time),
            fmt_f64(row.sync_time),
            fmt_f64(row.time_ratio),
            fmt_f64(row.async_messages),
            fmt_f64(row.sync_messages),
            fmt_f64(row.message_ratio),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coa_rows_cover_three_protocols_per_size() {
        let scale = ExperimentScale::tiny();
        let rows = coa_rows(&TrialPool::serial(), &scale).unwrap();
        assert_eq!(rows.len(), 3 * scale.n_values.len());
        for row in &rows {
            assert!(row.time_ratio > 0.0);
            assert!(row.message_ratio > 0.0);
        }
    }

    #[test]
    fn trivial_pays_in_messages_not_time() {
        let scale = ExperimentScale::tiny();
        let rows = coa_rows(&TrialPool::serial(), &scale).unwrap();
        let mut trivial: Vec<&CoaRow> = rows.iter().filter(|r| r.protocol == "trivial").collect();
        trivial.sort_by_key(|r| r.n);
        assert!(trivial.len() >= 2);
        // The corollary is asymptotic: trivial's message premium over the
        // synchronous baseline is ~n/log n, so it must *grow* with n and be
        // above 1 at the largest size of the sweep, while trivial never pays
        // a time premium (it completes in O(d+δ)).
        let smallest = trivial.first().unwrap();
        let largest = trivial.last().unwrap();
        assert!(
            largest.message_ratio > smallest.message_ratio,
            "message premium must grow with n: {smallest:?} vs {largest:?}"
        );
        assert!(
            largest.message_ratio > 1.0,
            "trivial must pay a message premium at the largest size: {largest:?}"
        );
        for row in &trivial {
            assert!(
                row.time_ratio <= 1.0 + 1e-9,
                "trivial is never slower than the synchronous baseline: {row:?}"
            );
        }
    }

    #[test]
    fn table_renders_all_rows() {
        let scale = ExperimentScale::tiny();
        let rows = coa_rows(&TrialPool::serial(), &scale).unwrap();
        let table = coa_to_table(&rows);
        assert_eq!(table.len(), rows.len());
        assert!(table.render().contains("ratio"));
    }
}
