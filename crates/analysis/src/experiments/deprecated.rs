//! Deprecated experiment entry points, kept for one release.
//!
//! The old API exposed every experiment as a `run_X(scale)` / `run_X_with(
//! pool, scale)` twin. Both forms now delegate to a single `X_rows(pool,
//! scale)` function per experiment (serial = `TrialPool::serial()`), and the
//! preferred way to run an experiment by name is the
//! [`crate::sweep::Experiment`] trait via [`crate::sweep::registry`]. These
//! shims preserve the old names and signatures so downstream code keeps
//! compiling for one more release; they will be removed afterwards.

use agossip_sim::SimResult;

use crate::experiments::ablation::{ablation_rows, knob_ablation_rows, AblationKnob, AblationRow};
use crate::experiments::bit_complexity::{bit_complexity_rows, BitComplexityRow};
use crate::experiments::coa::{coa_rows, CoaRow};
use crate::experiments::common::ExperimentScale;
use crate::experiments::live::{live_rows, live_scale_rows, LiveRow, LiveScaleRow};
use crate::experiments::lower_bound::{lower_bound_rows, LowerBoundRow};
use crate::experiments::robustness::{robustness_rows, RobustnessRow};
use crate::experiments::scale::{scale_rows, ScaleRow};
use crate::experiments::sears_sweep::{sears_sweep_rows, SearsSweepRow};
use crate::experiments::table1::{table1_rows, Table1Row};
use crate::experiments::table2::{table2_rows, Table2Row};
use crate::experiments::tears_lemmas::{tears_structure_rows, TearsStructureRow};
use crate::sweep::TrialPool;

/// Deprecated alias for [`table1_rows`] with a serial pool.
#[deprecated(note = "use `table1_rows(&TrialPool::serial(), scale)`")]
pub fn run_table1(scale: &ExperimentScale) -> SimResult<Vec<Table1Row>> {
    table1_rows(&TrialPool::serial(), scale)
}

/// Deprecated alias for [`table1_rows`].
#[deprecated(note = "use `table1_rows(pool, scale)`")]
pub fn run_table1_with(pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Vec<Table1Row>> {
    table1_rows(pool, scale)
}

/// Deprecated alias for [`table2_rows`] with a serial pool.
#[deprecated(note = "use `table2_rows(&TrialPool::serial(), scale)`")]
pub fn run_table2(scale: &ExperimentScale) -> SimResult<Vec<Table2Row>> {
    table2_rows(&TrialPool::serial(), scale)
}

/// Deprecated alias for [`table2_rows`].
#[deprecated(note = "use `table2_rows(pool, scale)`")]
pub fn run_table2_with(pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Vec<Table2Row>> {
    table2_rows(pool, scale)
}

/// Deprecated alias for [`coa_rows`] with a serial pool.
#[deprecated(note = "use `coa_rows(&TrialPool::serial(), scale)`")]
pub fn run_coa(scale: &ExperimentScale) -> SimResult<Vec<CoaRow>> {
    coa_rows(&TrialPool::serial(), scale)
}

/// Deprecated alias for [`coa_rows`].
#[deprecated(note = "use `coa_rows(pool, scale)`")]
pub fn run_coa_with(pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Vec<CoaRow>> {
    coa_rows(pool, scale)
}

/// Deprecated alias for [`ablation_rows`] with a serial pool.
#[deprecated(note = "use `ablation_rows(&TrialPool::serial(), scale)`")]
pub fn run_ablation(scale: &ExperimentScale) -> SimResult<Vec<AblationRow>> {
    ablation_rows(&TrialPool::serial(), scale)
}

/// Deprecated alias for [`ablation_rows`].
#[deprecated(note = "use `ablation_rows(pool, scale)`")]
pub fn run_ablation_with(pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Vec<AblationRow>> {
    ablation_rows(pool, scale)
}

/// Deprecated alias for [`knob_ablation_rows`] with a serial pool.
#[deprecated(note = "use `knob_ablation_rows(&TrialPool::serial(), knob, scale)`")]
pub fn run_knob_ablation(
    knob: AblationKnob,
    scale: &ExperimentScale,
) -> SimResult<Vec<AblationRow>> {
    knob_ablation_rows(&TrialPool::serial(), knob, scale)
}

/// Deprecated alias for [`knob_ablation_rows`].
#[deprecated(note = "use `knob_ablation_rows(pool, knob, scale)`")]
pub fn run_knob_ablation_with(
    pool: &TrialPool,
    knob: AblationKnob,
    scale: &ExperimentScale,
) -> SimResult<Vec<AblationRow>> {
    knob_ablation_rows(pool, knob, scale)
}

/// Deprecated alias for [`bit_complexity_rows`] with a serial pool.
#[deprecated(note = "use `bit_complexity_rows(&TrialPool::serial(), scale)`")]
pub fn run_bit_complexity(scale: &ExperimentScale) -> SimResult<Vec<BitComplexityRow>> {
    bit_complexity_rows(&TrialPool::serial(), scale)
}

/// Deprecated alias for [`bit_complexity_rows`].
#[deprecated(note = "use `bit_complexity_rows(pool, scale)`")]
pub fn run_bit_complexity_with(
    pool: &TrialPool,
    scale: &ExperimentScale,
) -> SimResult<Vec<BitComplexityRow>> {
    bit_complexity_rows(pool, scale)
}

/// Deprecated alias for [`sears_sweep_rows`] with a serial pool.
#[deprecated(note = "use `sears_sweep_rows(&TrialPool::serial(), scale, epsilons)`")]
pub fn run_sears_sweep(scale: &ExperimentScale, epsilons: &[f64]) -> SimResult<Vec<SearsSweepRow>> {
    sears_sweep_rows(&TrialPool::serial(), scale, epsilons)
}

/// Deprecated alias for [`sears_sweep_rows`].
#[deprecated(note = "use `sears_sweep_rows(pool, scale, epsilons)`")]
pub fn run_sears_sweep_with(
    pool: &TrialPool,
    scale: &ExperimentScale,
    epsilons: &[f64],
) -> SimResult<Vec<SearsSweepRow>> {
    sears_sweep_rows(pool, scale, epsilons)
}

/// Deprecated alias for [`robustness_rows`] with a serial pool.
#[deprecated(note = "use `robustness_rows(&TrialPool::serial(), scale)`")]
pub fn run_robustness(scale: &ExperimentScale) -> SimResult<Vec<RobustnessRow>> {
    robustness_rows(&TrialPool::serial(), scale)
}

/// Deprecated alias for [`robustness_rows`].
#[deprecated(note = "use `robustness_rows(pool, scale)`")]
pub fn run_robustness_with(
    pool: &TrialPool,
    scale: &ExperimentScale,
) -> SimResult<Vec<RobustnessRow>> {
    robustness_rows(pool, scale)
}

/// Deprecated alias for [`live_rows`] with a serial pool.
#[deprecated(note = "use `live_rows(&TrialPool::serial(), scale)`")]
pub fn run_live_sweep(scale: &ExperimentScale) -> SimResult<Vec<LiveRow>> {
    live_rows(&TrialPool::serial(), scale)
}

/// Deprecated alias for [`live_rows`].
#[deprecated(note = "use `live_rows(pool, scale)`")]
pub fn run_live_sweep_with(pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Vec<LiveRow>> {
    live_rows(pool, scale)
}

/// Deprecated alias for [`live_scale_rows`].
#[deprecated(note = "use `live_scale_rows(n_values, reactors, seed)`")]
pub fn run_live_scale(
    n_values: &[usize],
    reactors: usize,
    seed: u64,
) -> SimResult<Vec<LiveScaleRow>> {
    live_scale_rows(n_values, reactors, seed)
}

/// Deprecated alias for [`scale_rows`] with a serial pool.
#[deprecated(note = "use `scale_rows(&TrialPool::serial(), scale)`")]
pub fn run_scale(scale: &ExperimentScale) -> SimResult<Vec<ScaleRow>> {
    scale_rows(&TrialPool::serial(), scale)
}

/// Deprecated alias for [`scale_rows`].
#[deprecated(note = "use `scale_rows(pool, scale)`")]
pub fn run_scale_with(pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Vec<ScaleRow>> {
    scale_rows(pool, scale)
}

/// Deprecated alias for [`lower_bound_rows`] with a serial pool.
#[deprecated(note = "use `lower_bound_rows(&TrialPool::serial(), n_values, seed)`")]
pub fn run_lower_bound_experiment(n_values: &[usize], seed: u64) -> SimResult<Vec<LowerBoundRow>> {
    lower_bound_rows(&TrialPool::serial(), n_values, seed)
}

/// Deprecated alias for [`lower_bound_rows`].
#[deprecated(note = "use `lower_bound_rows(pool, n_values, seed)`")]
pub fn run_lower_bound_experiment_with(
    pool: &TrialPool,
    n_values: &[usize],
    seed: u64,
) -> SimResult<Vec<LowerBoundRow>> {
    lower_bound_rows(pool, n_values, seed)
}

/// Deprecated alias for [`tears_structure_rows`].
#[deprecated(note = "use `tears_structure_rows(pool, scale)`")]
pub fn run_tears_structure_sweep(
    pool: &TrialPool,
    scale: &ExperimentScale,
) -> SimResult<Vec<TearsStructureRow>> {
    tears_structure_rows(pool, scale)
}
