//! Theorem 1 / Figure 1 — the adaptive-adversary lower bound.
//!
//! Runs the executable lower-bound adversary of
//! [`agossip_adversary::theorem1`] against each full-gossip protocol and
//! records which branch of the dichotomy it forced the execution into,
//! verifying that either `Ω(n + f²)` messages were sent or `Ω(f(d+δ))` time
//! elapsed.

use agossip_adversary::theorem1::{run_lower_bound, LowerBoundCase, LowerBoundParams};
use agossip_core::{Ears, Sears, Trivial};
use agossip_sim::SimResult;

use crate::report::{fmt_f64, Table};
use crate::sweep::TrialPool;

/// Constants used when checking the dichotomy numerically. They are far below
/// the hidden constants of the proof, so a genuine violation would be obvious.
pub const DICHOTOMY_C_MSG: f64 = 0.25;
/// See [`DICHOTOMY_C_MSG`].
pub const DICHOTOMY_C_TIME: f64 = 0.25;

/// One `(protocol, n)` lower-bound experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerBoundRow {
    /// Protocol under attack.
    pub protocol: &'static str,
    /// System size.
    pub n: usize,
    /// Effective failure budget used by the construction.
    pub f: usize,
    /// Which branch of the dichotomy the adversary forced.
    pub case: LowerBoundCase,
    /// Messages sent over the constructed execution.
    pub messages: u64,
    /// Steps of the constructed execution.
    pub steps: u64,
    /// The message bound `n + f²`.
    pub message_bound: u64,
    /// The time bound `f·(d+δ)`.
    pub time_bound: u64,
    /// Whether the dichotomy held with the check constants.
    pub dichotomy_holds: bool,
}

/// Runs the lower-bound experiment for the three full-gossip protocols at
/// the given sizes, sharding the `(n, protocol)` grid across `pool`'s
/// workers. `f` is taken as `n/4`, the value used in the proof.
///
/// Each cell of the grid is one fully deterministic adaptive-adversary
/// construction (the Theorem 1 adversary derives all of its choices from
/// `seed`), so the grid parallelizes exactly like the oblivious trial
/// sweeps: identical output for any worker count.
pub fn lower_bound_rows(
    pool: &TrialPool,
    n_values: &[usize],
    seed: u64,
) -> SimResult<Vec<LowerBoundRow>> {
    // Name and runner live in one tuple so they cannot fall out of sync.
    type Runner = fn(LowerBoundParams) -> SimResult<agossip_adversary::LowerBoundOutcome>;
    const PROTOCOLS: [(&str, Runner); 3] = [
        ("trivial", |params| run_lower_bound(params, Trivial::new)),
        ("ears", |params| run_lower_bound(params, Ears::new)),
        ("sears", |params| run_lower_bound(params, Sears::new)),
    ];
    let grid: Vec<(usize, usize)> = n_values
        .iter()
        .flat_map(|&n| (0..PROTOCOLS.len()).map(move |p| (n, p)))
        .collect();
    pool.run(grid.len(), |i| {
        let (n, protocol_idx) = grid[i];
        let params = LowerBoundParams::new(n, n / 4, seed);
        let (protocol, runner) = PROTOCOLS[protocol_idx];
        let outcome = runner(params)?;
        Ok(LowerBoundRow {
            protocol,
            n,
            f: outcome.f,
            case: outcome.case,
            messages: outcome.messages_sent,
            steps: outcome.elapsed_steps,
            message_bound: outcome.message_bound(),
            time_bound: outcome.time_bound(),
            dichotomy_holds: outcome.dichotomy_holds(DICHOTOMY_C_MSG, DICHOTOMY_C_TIME),
        })
    })
    .into_iter()
    .collect()
}

/// Renders the rows as a table.
pub fn lower_bound_to_table(rows: &[LowerBoundRow]) -> Table {
    let mut table = Table::new(
        "Theorem 1 — adaptive adversary dichotomy: Ω(n+f²) messages or Ω(f(d+δ)) time",
        &[
            "protocol",
            "n",
            "f",
            "case",
            "messages",
            "n+f²",
            "steps",
            "f(d+δ)",
            "dichotomy",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.protocol.to_string(),
            row.n.to_string(),
            row.f.to_string(),
            format!("{:?}", row.case),
            fmt_f64(row.messages as f64),
            fmt_f64(row.message_bound as f64),
            fmt_f64(row.steps as f64),
            fmt_f64(row.time_bound as f64),
            if row.dichotomy_holds {
                "holds"
            } else {
                "VIOLATED"
            }
            .to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "expensive sweep; run with --release")]
    fn dichotomy_holds_for_all_protocols_at_small_sizes() {
        let rows = lower_bound_rows(&TrialPool::serial(), &[32, 64], 13).unwrap();
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(row.dichotomy_holds, "dichotomy violated: {row:?}");
        }
    }

    #[test]
    fn trivial_is_message_heavy() {
        let rows = lower_bound_rows(&TrialPool::serial(), &[64], 3).unwrap();
        let trivial = rows.iter().find(|r| r.protocol == "trivial").unwrap();
        assert_eq!(trivial.case, LowerBoundCase::MessageHeavy);
        assert!(trivial.messages >= trivial.message_bound / 4);
    }

    #[test]
    fn table_marks_every_row() {
        let rows = lower_bound_rows(&TrialPool::serial(), &[32], 5).unwrap();
        let rendered = lower_bound_to_table(&rows).render();
        assert!(rendered.contains("holds"));
        assert!(!rendered.contains("VIOLATED"));
    }
}
