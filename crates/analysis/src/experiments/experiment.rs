//! The [`Experiment`] trait — one uniform, nameable entry point per
//! evaluation artifact.
//!
//! # Migration
//!
//! Before this trait every experiment exposed a `run_X(scale)` /
//! `run_X_with` twin, and the registry was a struct of function
//! pointers. Both forms now collapse into one `X_rows(pool,
//! scale)` function per experiment module (pass
//! [`TrialPool::serial()`] where you used the serial twin) and one
//! [`Experiment`] implementation per artifact, returned as trait objects
//! by [`crate::sweep::registry`]:
//!
//! ```
//! use agossip_analysis::sweep::{find_scenario, TrialPool};
//! use agossip_analysis::experiments::ExperimentScale;
//!
//! let table1 = find_scenario("table1").expect("registered");
//! let scale = ExperimentScale { n_values: vec![12], trials: 1, ..ExperimentScale::tiny() };
//! let table = table1.run(&TrialPool::serial(), &scale).expect("runs");
//! assert!(!table.is_empty());
//! ```
//!
//! The old twin names survive for one release as `#[deprecated]` shims in
//! [`crate::experiments::deprecated`].

use agossip_sim::SimResult;

use crate::experiments::common::ExperimentScale;
use crate::experiments::{
    ablation, bit_complexity, coa, live, lower_bound, robustness, scale, sears_sweep, service,
    table1, table2, tears_lemmas,
};
use crate::report::Table;
use crate::sweep::TrialPool;

/// A named, runnable evaluation artifact: what the scenario registry
/// stores and what `--scenario` dispatch resolves to.
///
/// Implementations are unit structs (one per experiment module); consumers
/// get them as `Box<dyn Experiment>` from [`crate::sweep::registry`] or
/// [`crate::sweep::find_scenario`] and never name the structs directly.
pub trait Experiment {
    /// Registry name (what `--scenario` matches).
    fn name(&self) -> &'static str;

    /// One-line description.
    fn summary(&self) -> &'static str;

    /// Which paper table/figure/theorem the experiment reproduces.
    fn artifact(&self) -> &'static str;

    /// The example or binary that runs it standalone.
    fn example(&self) -> &'static str;

    /// Whether [`ExperimentScale::trials`] affects this experiment.
    /// `false` for experiments that are fully deterministic per point —
    /// runners should tell the user a `--trials` override is a no-op there
    /// instead of silently ignoring it.
    fn trials_apply(&self) -> bool {
        true
    }

    /// The curated scale this experiment is meant to run at by default —
    /// the same sizes/trials/bounds its standalone example uses, so the
    /// registry path and the example produce the same rows. (One global
    /// default would be wrong: the grids differ in size, failure fraction
    /// and `(d, δ)`, and a tears grid at `n = 256` has a multi-GB working
    /// set per trial.)
    fn default_scale(&self) -> ExperimentScale;

    /// Runs the experiment at `scale`, sharding its independent trials
    /// across `pool`'s workers, and renders its table. Rows are
    /// bit-identical for any worker count.
    fn run(&self, pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Table>;

    /// Runs the experiment at its curated default scale on `pool`.
    fn run_default(&self, pool: &TrialPool) -> SimResult<Table> {
        self.run(pool, &self.default_scale())
    }
}

/// Table 1 — gossip protocols: time and message complexity vs `n`.
pub struct Table1;

impl Experiment for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }
    fn summary(&self) -> &'static str {
        "gossip protocols: time and message complexity vs n"
    }
    fn artifact(&self) -> &'static str {
        "Table 1"
    }
    fn example(&self) -> &'static str {
        "cargo run --release --example table1"
    }
    // The full paper grid, n = 256 included: since the dense RumorSet +
    // Arc snapshot rework a tears n = 256 trial measures 5.5 s / 1.3 GiB
    // peak RSS (it was >35 min / ~60 GB with per-destination BTreeMap
    // clones; see BENCH_rumorset.json).
    fn default_scale(&self) -> ExperimentScale {
        ExperimentScale {
            n_values: vec![32, 64, 128, 256],
            trials: 3,
            ..ExperimentScale::default()
        }
    }
    fn run(&self, pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Table> {
        table1::table1_rows(pool, scale).map(|rows| table1::table1_to_table(&rows))
    }
}

/// Table 2 — consensus protocols built on the gossip protocols.
pub struct Table2;

impl Experiment for Table2 {
    fn name(&self) -> &'static str {
        "table2"
    }
    fn summary(&self) -> &'static str {
        "consensus protocols built on the gossip protocols"
    }
    fn artifact(&self) -> &'static str {
        "Table 2"
    }
    fn example(&self) -> &'static str {
        "cargo run --release --example consensus_demo"
    }
    fn default_scale(&self) -> ExperimentScale {
        ExperimentScale {
            n_values: vec![16, 32, 64, 128],
            trials: 2,
            failure_fraction: 0.2,
            ..ExperimentScale::default()
        }
    }
    fn run(&self, pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Table> {
        table2::table2_rows(pool, scale).map(|rows| table2::table2_to_table(&rows))
    }
}

/// Theorem 1 / Figure 1 — the adaptive-adversary dichotomy.
pub struct LowerBound;

impl Experiment for LowerBound {
    fn name(&self) -> &'static str {
        "lower_bound"
    }
    fn summary(&self) -> &'static str {
        "adaptive adversary forces Ω(n+f²) messages or Ω(f(d+δ)) time"
    }
    fn artifact(&self) -> &'static str {
        "Theorem 1 / Figure 1"
    }
    fn example(&self) -> &'static str {
        "cargo run --release --example lower_bound_demo"
    }
    // The adversary construction is fully deterministic per (n, protocol).
    fn trials_apply(&self) -> bool {
        false
    }
    fn default_scale(&self) -> ExperimentScale {
        ExperimentScale {
            n_values: vec![64, 128, 256, 512],
            trials: 1,
            ..ExperimentScale::default()
        }
    }
    fn run(&self, pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Table> {
        lower_bound::lower_bound_rows(pool, &scale.n_values, scale.seed)
            .map(|rows| lower_bound::lower_bound_to_table(&rows))
    }
}

/// Corollary 2 — the cost of asynchrony.
pub struct Coa;

impl Experiment for Coa {
    fn name(&self) -> &'static str {
        "coa"
    }
    fn summary(&self) -> &'static str {
        "cost of asynchrony: async protocols vs the synchronous baseline"
    }
    fn artifact(&self) -> &'static str {
        "Corollary 2"
    }
    fn example(&self) -> &'static str {
        "cargo run --release --example scenarios -- --scenario coa"
    }
    fn default_scale(&self) -> ExperimentScale {
        ExperimentScale {
            n_values: vec![32, 64, 128],
            trials: 3,
            d: 1,
            delta: 1,
            ..ExperimentScale::default()
        }
    }
    fn run(&self, pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Table> {
        coa::coa_rows(pool, scale).map(|rows| coa::coa_to_table(&rows))
    }
}

/// Theorem 7 — the `ε` time/message trade-off of `sears`.
pub struct SearsSweep;

impl Experiment for SearsSweep {
    fn name(&self) -> &'static str {
        "sears_sweep"
    }
    fn summary(&self) -> &'static str {
        "the ε time/message trade-off of sears at fixed n"
    }
    fn artifact(&self) -> &'static str {
        "Theorem 7"
    }
    fn example(&self) -> &'static str {
        "cargo run --release --example sears_tradeoff"
    }
    fn default_scale(&self) -> ExperimentScale {
        ExperimentScale {
            n_values: vec![256],
            trials: 3,
            ..ExperimentScale::default()
        }
    }
    fn run(&self, pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Table> {
        sears_sweep::sears_sweep_rows(pool, scale, &sears_sweep::default_epsilons())
            .map(|rows| sears_sweep::sears_sweep_to_table(&rows))
    }
}

/// Lemmas 8–11 / Theorem 12 — structural properties of `tears`.
pub struct TearsLemmas;

impl Experiment for TearsLemmas {
    fn name(&self) -> &'static str {
        "tears_lemmas"
    }
    fn summary(&self) -> &'static str {
        "structural properties of tears: fan-out concentration, majority coverage"
    }
    fn artifact(&self) -> &'static str {
        "Lemmas 8–11 / Theorem 12"
    }
    fn example(&self) -> &'static str {
        "cargo bench -p agossip-bench --bench tears_structure"
    }
    fn default_scale(&self) -> ExperimentScale {
        ExperimentScale {
            n_values: vec![64, 128],
            trials: 1,
            d: 1,
            delta: 1,
            ..ExperimentScale::default()
        }
    }
    fn run(&self, pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Table> {
        tears_lemmas::tears_structure_rows(pool, scale)
            .map(|rows| tears_lemmas::tears_structure_to_table(&rows))
    }
}

/// Section 7 open question — wire-unit (bit) complexity per protocol.
pub struct BitComplexity;

impl Experiment for BitComplexity {
    fn name(&self) -> &'static str {
        "bit_complexity"
    }
    fn summary(&self) -> &'static str {
        "wire-unit (bit) complexity per protocol — the Section 7 open question"
    }
    fn artifact(&self) -> &'static str {
        "Section 7"
    }
    fn example(&self) -> &'static str {
        "cargo run --release --example bit_complexity"
    }
    // Same full grid as table1: the n = 256 tears row is affordable again
    // since the dense-set rework (see BENCH_rumorset.json).
    fn default_scale(&self) -> ExperimentScale {
        ExperimentScale {
            n_values: vec![32, 64, 128, 256],
            trials: 3,
            ..ExperimentScale::default()
        }
    }
    fn run(&self, pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Table> {
        bit_complexity::bit_complexity_rows(pool, scale)
            .map(|rows| bit_complexity::bit_complexity_to_table(&rows))
    }
}

/// DESIGN.md ablations — sweeping the hidden `Θ(·)` constants.
pub struct Ablation;

impl Experiment for Ablation {
    fn name(&self) -> &'static str {
        "ablation"
    }
    fn summary(&self) -> &'static str {
        "sweeping the hidden Θ(·) constants of every protocol"
    }
    fn artifact(&self) -> &'static str {
        "DESIGN.md ablations"
    }
    fn example(&self) -> &'static str {
        "cargo run --release --example ablation"
    }
    fn default_scale(&self) -> ExperimentScale {
        ExperimentScale {
            n_values: vec![128],
            trials: 3,
            ..ExperimentScale::default()
        }
    }
    fn run(&self, pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Table> {
        ablation::ablation_rows(pool, scale).map(|rows| ablation::ablation_to_table(&rows))
    }
}

/// Theorems 6/7/12 — correctness across the oblivious adversary family.
pub struct Robustness;

impl Experiment for Robustness {
    fn name(&self) -> &'static str {
        "robustness"
    }
    fn summary(&self) -> &'static str {
        "correctness across the oblivious adversary family"
    }
    fn artifact(&self) -> &'static str {
        "Theorems 6/7/12"
    }
    fn example(&self) -> &'static str {
        "cargo run --release --example adversary_robustness"
    }
    fn default_scale(&self) -> ExperimentScale {
        ExperimentScale {
            n_values: vec![96],
            trials: 2,
            d: 3,
            ..ExperimentScale::default()
        }
    }
    fn run(&self, pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Table> {
        robustness::robustness_rows(pool, scale).map(|rows| robustness::robustness_to_table(&rows))
    }
}

/// The live runtime: protocols over the byte codec on OS threads.
pub struct Live;

impl Experiment for Live {
    fn name(&self) -> &'static str {
        "live"
    }
    fn summary(&self) -> &'static str {
        "the live runtime: OS threads exchanging byte frames over the wire codec"
    }
    fn artifact(&self) -> &'static str {
        "Section 7 (bit complexity), deployable-system north star"
    }
    fn example(&self) -> &'static str {
        "cargo run --release --example live_gossip"
    }
    // Each live trial spawns n OS threads of its own, so the grid stays
    // deliberately small; the rows are still bit-identical for any worker
    // count (lockstep pacing, channel transport).
    fn default_scale(&self) -> ExperimentScale {
        ExperimentScale {
            n_values: vec![16, 32],
            trials: 2,
            failure_fraction: 0.2,
            ..ExperimentScale::default()
        }
    }
    fn run(&self, pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Table> {
        live::live_rows(pool, scale).map(|rows| live::live_to_table(&rows))
    }
}

/// Thousands of live processes multiplexed onto 8 reactor threads.
pub struct LiveScale;

impl Experiment for LiveScale {
    fn name(&self) -> &'static str {
        "live_scale"
    }
    fn summary(&self) -> &'static str {
        "thousands of live processes multiplexed onto 8 reactor threads"
    }
    fn artifact(&self) -> &'static str {
        "reactor scaling north star (ROADMAP item 2)"
    }
    fn example(&self) -> &'static str {
        "cargo run --release -p agossip-bench --bin live_baseline"
    }
    // One trial per size, like `scale`: the single n = 4096 live run (16
    // staggered crashes, checker-verified, ~800k frames through the byte
    // codec) is the point. Trial sharding would not help — each trial's
    // reactor threads already saturate the box.
    fn trials_apply(&self) -> bool {
        false
    }
    fn default_scale(&self) -> ExperimentScale {
        ExperimentScale {
            n_values: vec![512, 4096],
            trials: 1,
            ..ExperimentScale::default()
        }
    }
    fn run(&self, _pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Table> {
        live::live_scale_rows(&scale.n_values, 8, scale.seed)
            .map(|rows| live::live_scale_to_table(&rows))
    }
}

/// Checker-verified `tears` at `n` up to 65 536 (scaled constants).
pub struct Scale;

impl Experiment for Scale {
    fn name(&self) -> &'static str {
        "scale"
    }
    fn summary(&self) -> &'static str {
        "checker-verified tears at n up to 65 536 (scaled constants)"
    }
    fn artifact(&self) -> &'static str {
        "scaling north star (ROADMAP)"
    }
    fn example(&self) -> &'static str {
        "cargo run --release -p agossip-bench --bin scale_baseline"
    }
    // One trial per size: a single tears n = 65 536 trial (tens of
    // millions of messages, ~GB-scale peak RSS) is the point of the
    // scenario. CI's scale_smoke job runs it at n = 4096 only.
    fn default_scale(&self) -> ExperimentScale {
        scale::scale_default_scale()
    }
    fn run(&self, pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Table> {
        scale::scale_rows(pool, scale).map(|rows| scale::scale_to_table(&rows))
    }
}

/// Service mode — pipelined epochs through the replicated rumor log.
pub struct Service;

impl Experiment for Service {
    fn name(&self) -> &'static str {
        "service"
    }
    fn summary(&self) -> &'static str {
        "service mode: epoch throughput and settle latency, open vs closed loop"
    }
    fn artifact(&self) -> &'static str {
        "continuous-traffic north star (ROADMAP item 3)"
    }
    fn example(&self) -> &'static str {
        "cargo run --release -p agossip-bench --bin service_baseline"
    }
    // Each point is one deterministic multi-epoch run (delays, workload
    // and admission all derive from the seed), so extra trials would
    // reproduce the same rows bit for bit.
    fn trials_apply(&self) -> bool {
        false
    }
    fn default_scale(&self) -> ExperimentScale {
        ExperimentScale {
            n_values: vec![32, 64],
            trials: 1,
            ..ExperimentScale::default()
        }
    }
    fn run(&self, pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Table> {
        service::service_rows(pool, scale).map(|rows| service::service_to_table(&rows))
    }
}
