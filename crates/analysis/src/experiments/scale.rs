//! Scale — checker-verified `tears` runs at `n` up to 65 536.
//!
//! The paper's default `tears` constants (`a = 4·√n·ln n`) are calibrated
//! for the high-probability arguments at the grid sizes of Table 1
//! (`n ≤ 256`). Taken literally at `n = 65 536` they demand `a ≈ 11 000`
//! and `Θ(n·a·√a)` second-level messages — hundreds of billions of
//! point-to-point sends, far beyond what any single machine can simulate.
//! This driver instead runs `tears` with *scaled constants*
//! ([`scale_tears_params`]): above [`SCALE_PARAM_CROSSOVER`] the target
//! neighbourhood size drops to the logarithmic [`scale_a_target`], and the
//! grid's delivery/step bounds (`d = 6`, `δ = 3`) stretch the first-level
//! phase so second-level triggers fire in several *waves*: each wave's
//! broadcasts carry the rumors accumulated from the previous waves, and
//! after `g` waves transitive coverage is `≈ a^g` — four waves clear the
//! majority threshold at every grid size even though `a³` alone would not
//! at `n = 65 536`. Every run is still checker-verified end to end:
//! majority gathering, validity and quiescence are asserted on the final
//! state exactly as for the Table 1 rows.
//!
//! The calibration is measured, not assumed. At `d = 6` the single-seed
//! coverage cliff sits at `a ≈ 14` (`n = 4 096`), `a ≈ 17` (`16 384`) and
//! by extrapolation `a ≈ 23` (`65 536`); the `< 4 GiB` peak-RSS budget of
//! the `n = 65 536` run caps `a` at about 28 (peak memory is dominated by
//! the `Θ(n·a·√a)` in-flight queue entries plus one dense rumor-set
//! snapshot generation per broadcasting wave). `a(n) = 2 + 1.5·log₂ n`
//! threads that needle: margins of 1.4×/1.3× over the cliff at the two
//! smaller sizes, 1.13× at `n = 65 536`, and a measured 3.6 GiB peak
//! (131 s, 18.7 M messages, this repo's 1-core reference box — see
//! `BENCH_scale.json`).
//!
//! The scenario exists to pin the simulator's *scaling* behaviour — the
//! adaptive sparse/dense set representation, the sharded network scheduler
//! — not the paper's asymptotics, which Table 1 and the `tears_lemmas`
//! scenario cover at their intended sizes. The `scale_baseline` bench
//! binary runs this grid and records steps/sec and peak RSS in
//! `BENCH_scale.json`; CI re-runs it in the bench-regression gate.

use agossip_core::params::ln_n;
use agossip_core::TearsParams;
use agossip_sim::SimResult;

use crate::experiments::common::ExperimentScale;
use crate::report::{fmt_f64, Table};
use crate::stats::Summary;
use crate::sweep::{run_grid, ScenarioSpec, TrialPool, TrialProtocol};

/// Below this system size the scenario runs the paper's default `tears`
/// constants; at or above it the scaled [`scale_tears_params`] engage. The
/// default constants are affordable (and their analysis meaningful) up to a
/// few thousand processes — see the Table 1 grid.
pub const SCALE_PARAM_CROSSOVER: usize = 2048;

/// The grid the `scale` scenario (and `BENCH_scale.json`) measures.
pub const SCALE_N_VALUES: [usize; 3] = [4096, 16384, 65536];

/// The expected `Π1`/`Π2` neighbourhood size the scaled constants target:
/// `a = 2 + 1.5·log₂ n` (20/23/26 across the measured grid).
///
/// Logarithmic growth is what the measured coverage cliff supports under
/// the grid's `d = 6` wave structure (see the module docs): the cliff
/// itself grows roughly like `n^{0.18}`, and the `< 4 GiB` memory budget
/// of the `n = 65 536` point caps `a` only slightly above this line, so
/// the margin deliberately compresses from ~1.4× at `n = 4 096` to ~1.13×
/// at `n = 65 536`.
pub fn scale_a_target(n: usize) -> f64 {
    (2.0 + 1.5 * (n as f64).log2()).max(8.0)
}

/// `tears` parameters for one system size of the scale grid.
///
/// Below [`SCALE_PARAM_CROSSOVER`] these are exactly
/// [`TearsParams::default`]. Above it, the multipliers are chosen so the
/// derived constants hit [`scale_a_target`] and `κ ≈ √a/2` (the
/// trigger-count minimiser: `T ≈ 2κ + a/(2κ)` second-level broadcasts per
/// process is smallest at `κ = √a/2`).
pub fn scale_tears_params(n: usize) -> TearsParams {
    if n < SCALE_PARAM_CROSSOVER {
        return TearsParams::default();
    }
    tears_params_for_a(n, scale_a_target(n))
}

/// `tears` parameters whose derived neighbourhood size hits `a_target` at
/// system size `n`, with `κ ≈ max(√a/2, 2)` — the per-process trigger-count
/// minimiser (`T ≈ 2κ + a/(2κ)` is smallest at `κ = √a/2`).
///
/// Exposed so the `scale_baseline` binary can recalibrate the grid (its
/// `--a` flag) without reimplementing the factor arithmetic.
pub fn tears_params_for_a(n: usize, a_target: f64) -> TearsParams {
    let kappa = (a_target.sqrt() / 2.0).max(2.0);
    TearsParams {
        a_factor: a_target / ((n as f64).sqrt() * ln_n(n)),
        kappa_factor: kappa / ((n as f64).powf(0.25) * ln_n(n)),
    }
}

/// The curated scale of the `scale` scenario.
///
/// One trial per size — a single `n = 65 536` trial is the point. `d = 6`
/// (rather than the Table 1 grid's 2) stretches the first-level delivery
/// window so second-level triggers fire in several waves, each carrying
/// the transitively accumulated rumors of the previous ones — the
/// compounding the logarithmic [`scale_a_target`] relies on. `δ = 3`
/// makes processes coalesce the triggers that arrive between two local
/// steps into *one* shared copy-on-write snapshot per step, which bounds
/// the number of simultaneously alive dense snapshot generations (the
/// dominant memory term at `n = 65 536`) without reducing the wave count.
/// Idle fast-forward is on; the runs are delivery-driven.
pub fn scale_default_scale() -> ExperimentScale {
    ExperimentScale {
        n_values: SCALE_N_VALUES.to_vec(),
        trials: 1,
        failure_fraction: 0.25,
        d: 6,
        delta: 3,
        seed: 2008,
        idle_fast_forward: true,
    }
}

/// One row of the scale sweep: a checker-verified `tears` point at size `n`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleRow {
    /// System size.
    pub n: usize,
    /// Failure budget of the configuration.
    pub f: usize,
    /// The derived neighbourhood-size constant `a` in effect.
    pub a: u64,
    /// Completion time in steps.
    pub time_steps: Summary,
    /// Completion time in multiples of `d + δ`.
    pub normalized_time: Summary,
    /// Total point-to-point messages.
    pub messages: Summary,
    /// Total wire units sent.
    pub wire_units: Summary,
    /// Fraction of trials whose majority-gossip check passed.
    pub success_rate: f64,
}

/// Runs the scale sweep on `pool`: one `tears` point per size in
/// `scale.n_values`, each with the size's [`scale_tears_params`].
pub fn scale_rows(pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Vec<ScaleRow>> {
    run_grid(
        pool,
        &scale.n_values,
        |&n| ScenarioSpec::from_scale(TrialProtocol::TearsWith(scale_tears_params(n)), scale, n),
        |&n, spec, aggregate| ScaleRow {
            n,
            f: spec.f,
            a: scale_tears_params(n).a(n).round() as u64,
            time_steps: aggregate.time_steps.clone(),
            normalized_time: aggregate.normalized_time.clone(),
            messages: aggregate.messages.clone(),
            wire_units: aggregate.wire_units.clone(),
            success_rate: aggregate.success_rate,
        },
    )
}

/// Renders the scale rows.
pub fn scale_to_table(rows: &[ScaleRow]) -> Table {
    let mut table = Table::new(
        "Scale — tears with scaled constants, checker-verified (measured)",
        &[
            "n",
            "f",
            "a",
            "time[steps]",
            "time/(d+δ)",
            "messages",
            "wire units",
            "ok",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.n.to_string(),
            row.f.to_string(),
            row.a.to_string(),
            fmt_f64(row.time_steps.mean),
            fmt_f64(row.normalized_time.mean),
            fmt_f64(row.messages.mean),
            fmt_f64(row.wire_units.mean),
            format!("{:.0}%", row.success_rate * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_are_default_below_the_crossover_and_scaled_above() {
        for n in [12, 64, 256, SCALE_PARAM_CROSSOVER - 1] {
            assert_eq!(scale_tears_params(n), TearsParams::default(), "n = {n}");
        }
        for n in SCALE_N_VALUES {
            let params = scale_tears_params(n);
            assert_ne!(params, TearsParams::default(), "n = {n}");
            params.validate().unwrap();
            // The derived a hits the Θ(n^{1/3}) target, far below the
            // paper's Θ(√n·log n) default.
            let a = params.a(n);
            assert!(
                (a - scale_a_target(n)).abs() < 1.0,
                "a = {a} misses target {} at n = {n}",
                scale_a_target(n)
            );
            assert!(a < TearsParams::default().a(n) / 10.0, "n = {n}");
            // κ stays below µ, so the trigger window is a window rather
            // than the degenerate everything-triggers regime.
            assert!(params.kappa(n) < params.mu(n), "n = {n}");
        }
    }

    #[test]
    fn a_target_is_the_measured_calibration() {
        // The calibration line a = 2 + 1.5·log₂n at the grid sizes. These
        // are load-bearing: the committed BENCH_scale.json rows and the
        // coverage-cliff margins in the module docs were measured at
        // exactly these neighbourhood sizes.
        assert_eq!(scale_a_target(4096).round() as u64, 20);
        assert_eq!(scale_a_target(16384).round() as u64, 23);
        assert_eq!(scale_a_target(65536).round() as u64, 26);
    }

    #[test]
    fn four_wave_coverage_clears_the_majority_threshold_with_margin() {
        // The wave structure of the d = 6 grid yields ≈ a⁴ transitive
        // second-level coverage (module docs); that — not a³, which is
        // deliberately *below* majority at n = 65 536 — is what must clear
        // the threshold with room to spare.
        for n in SCALE_N_VALUES {
            let a = scale_a_target(n);
            let majority = (n / 2 + 1) as f64;
            assert!(
                a.powi(4) > 2.0 * majority,
                "coverage margin too thin at n = {n}: a⁴ = {}, majority = {majority}",
                a.powi(4)
            );
        }
    }

    #[test]
    fn tiny_scale_run_is_checker_verified_and_renders() {
        // Below the crossover the scenario degenerates to a default-params
        // tears sweep — cheap enough for the tier-1 suite.
        let scale = ExperimentScale {
            n_values: vec![32],
            trials: 1,
            d: 1,
            delta: 1,
            ..ExperimentScale::tiny()
        };
        let rows = scale_rows(&TrialPool::serial(), &scale).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].success_rate, 1.0);
        let table = scale_to_table(&rows);
        assert_eq!(table.len(), 1);
        assert!(table.render().contains("32"));
    }

    #[test]
    fn default_grid_is_the_documented_one() {
        let scale = scale_default_scale();
        assert_eq!(scale.n_values, SCALE_N_VALUES.to_vec());
        assert_eq!(scale.trials, 1);
        assert_eq!((scale.d, scale.delta), (6, 3));
        assert!(scale.idle_fast_forward);
    }
}
