//! Robustness of the gossip protocols across the oblivious adversary family.
//!
//! The paper's upper bounds (Theorems 6, 7, 12) hold with high probability
//! against *every* oblivious `(d, δ)`-adversary, not just the uniform one the
//! other experiments use. This driver runs each protocol under a grid of
//! oblivious scheduling and delay policies — worst-case delays, bimodal
//! delays, a slow cross-partition link, skewed and round-robin schedules —
//! and verifies that correctness is preserved and that the measured costs
//! stay within the same regime.

use agossip_adversary::{DelayPolicy, SchedulePolicy};
use agossip_sim::{ProcessId, SimResult};

use crate::experiments::common::{ExperimentScale, GossipProtocolKind};
use crate::report::{fmt_f64, Table};
use crate::stats::Summary;
use crate::sweep::{
    run_grid as run_spec_grid, AdversarySpec, ScenarioSpec, TrialPool, TrialProtocol,
};

/// A named adversary environment used in the robustness grid.
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryEnvironment {
    /// Short name used in tables.
    pub name: &'static str,
    /// The scheduling policy.
    pub schedule: SchedulePolicy,
    /// The delay policy.
    pub delay: DelayPolicy,
}

/// The default grid of adversary environments.
///
/// `n` is needed so the skewed and partition environments can name concrete
/// process sets.
pub fn default_environments(n: usize) -> Vec<AdversaryEnvironment> {
    vec![
        AdversaryEnvironment {
            name: "uniform",
            schedule: SchedulePolicy::FairRandom,
            delay: DelayPolicy::Uniform,
        },
        AdversaryEnvironment {
            name: "max-delay",
            schedule: SchedulePolicy::FairRandom,
            delay: DelayPolicy::AlwaysMax,
        },
        AdversaryEnvironment {
            name: "bimodal",
            schedule: SchedulePolicy::FairRandom,
            delay: DelayPolicy::Bimodal { slow_fraction: 0.2 },
        },
        AdversaryEnvironment {
            name: "slow-link",
            schedule: SchedulePolicy::EveryStep,
            delay: DelayPolicy::CrossPartitionSlow { boundary: n / 2 },
        },
        AdversaryEnvironment {
            name: "skewed",
            schedule: SchedulePolicy::Skewed {
                slow: ProcessId::all(n).take(n / 4).collect(),
            },
            delay: DelayPolicy::Uniform,
        },
        AdversaryEnvironment {
            name: "round-robin",
            schedule: SchedulePolicy::RoundRobin {
                per_step: (n / 4).max(1),
            },
            delay: DelayPolicy::Uniform,
        },
    ]
}

/// One `(protocol, environment)` measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessRow {
    /// Protocol name.
    pub protocol: &'static str,
    /// Environment name.
    pub environment: &'static str,
    /// System size.
    pub n: usize,
    /// Failure budget.
    pub f: usize,
    /// Fraction of trials whose correctness check passed.
    pub success_rate: f64,
    /// Completion time in steps (trials that became quiescent).
    pub time_steps: Summary,
    /// Total point-to-point messages.
    pub messages: Summary,
}

/// The scenario spec for one `(protocol, environment)` cell of the grid.
fn grid_spec(
    kind: GossipProtocolKind,
    env: &AdversaryEnvironment,
    scale: &ExperimentScale,
    n: usize,
) -> ScenarioSpec {
    ScenarioSpec::from_scale(TrialProtocol::Gossip(kind), scale, n).with_adversary(
        AdversarySpec::Policy {
            schedule: env.schedule.clone(),
            delay: env.delay.clone(),
        },
    )
}

/// Runs one `(protocol, environment)` cell of the grid serially.
pub fn run_protocol_under(
    kind: GossipProtocolKind,
    env: &AdversaryEnvironment,
    scale: &ExperimentScale,
    n: usize,
) -> SimResult<RobustnessRow> {
    let spec = grid_spec(kind, env, scale, n);
    let aggregate = spec.run(&TrialPool::serial())?;
    Ok(RobustnessRow {
        protocol: kind.name(),
        environment: env.name,
        n,
        f: spec.f,
        success_rate: aggregate.success_rate,
        time_steps: aggregate.time_steps,
        messages: aggregate.messages,
    })
}

/// Runs the robustness grid at the largest system size of `scale` on `pool`.
pub fn robustness_rows(pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Vec<RobustnessRow>> {
    let n = scale.n_values.iter().copied().max().unwrap_or(64);
    let grid: Vec<(AdversaryEnvironment, GossipProtocolKind)> = default_environments(n)
        .into_iter()
        .flat_map(|env| {
            GossipProtocolKind::table1_rows()
                .into_iter()
                .map(move |kind| (env.clone(), kind))
        })
        .collect();
    run_spec_grid(
        pool,
        &grid,
        |(env, kind)| grid_spec(*kind, env, scale, n),
        |(env, kind), spec, aggregate| RobustnessRow {
            protocol: kind.name(),
            environment: env.name,
            n,
            f: spec.f,
            success_rate: aggregate.success_rate,
            time_steps: aggregate.time_steps.clone(),
            messages: aggregate.messages.clone(),
        },
    )
}

/// Renders robustness rows as a text table.
pub fn robustness_to_table(rows: &[RobustnessRow]) -> Table {
    let mut table = Table::new(
        "Robustness across the oblivious adversary family",
        &[
            "environment",
            "protocol",
            "n",
            "f",
            "ok",
            "time[steps]",
            "messages",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.environment.to_string(),
            row.protocol.to_string(),
            row.n.to_string(),
            row.f.to_string(),
            format!("{:.0}%", row.success_rate * 100.0),
            fmt_f64(row.time_steps.mean),
            fmt_f64(row.messages.mean),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_scale() -> ExperimentScale {
        ExperimentScale {
            n_values: vec![24],
            trials: 1,
            failure_fraction: 0.2,
            d: 2,
            delta: 2,
            seed: 11,
            idle_fast_forward: false,
        }
    }

    #[test]
    fn environment_grid_has_expected_entries() {
        let envs = default_environments(32);
        assert_eq!(envs.len(), 6);
        assert!(envs.iter().any(|e| e.name == "max-delay"));
        assert!(envs
            .iter()
            .any(|e| matches!(e.delay, DelayPolicy::CrossPartitionSlow { boundary: 16 })));
    }

    #[test]
    fn ears_is_correct_in_every_environment() {
        let scale = fast_scale();
        let n = 24;
        for env in default_environments(n) {
            let row = run_protocol_under(GossipProtocolKind::Ears, &env, &scale, n).unwrap();
            assert_eq!(
                row.success_rate, 1.0,
                "ears failed under {}: {row:?}",
                env.name
            );
        }
    }

    #[test]
    fn trivial_is_correct_under_worst_case_delays() {
        let scale = fast_scale();
        let env = AdversaryEnvironment {
            name: "max-delay",
            schedule: SchedulePolicy::FairRandom,
            delay: DelayPolicy::AlwaysMax,
        };
        let row = run_protocol_under(GossipProtocolKind::Trivial, &env, &scale, 24).unwrap();
        assert_eq!(row.success_rate, 1.0);
        // Trivial always sends exactly n(n-1) messages regardless of the
        // adversary.
        assert_eq!(row.messages.mean, (24 * 23) as f64);
    }

    #[test]
    fn table_renders_one_row_per_grid_cell() {
        let scale = fast_scale();
        let rows = robustness_rows(&TrialPool::serial(), &scale).unwrap();
        assert_eq!(rows.len(), 6 * 4);
        let table = robustness_to_table(&rows);
        assert_eq!(table.len(), rows.len());
        assert!(rows.iter().all(|r| r.success_rate > 0.0));
    }
}
