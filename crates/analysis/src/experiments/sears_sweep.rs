//! Theorem 7 — the `ε` trade-off of `sears`.
//!
//! `sears` has time complexity `O(n/(ε(n−f))·(d+δ))` and message complexity
//! `O(n^{2+ε}/(ε(n−f))·log n·(d+δ))`: a larger `ε` buys fewer epidemic phases
//! (less time) at the price of a polynomially larger per-step fan-out (more
//! messages). This driver sweeps `ε` at a fixed system size and reports both
//! sides of the trade-off.

use agossip_core::SearsParams;
use agossip_sim::SimResult;

use crate::experiments::common::ExperimentScale;
use crate::report::{fmt_f64, Table};
use crate::stats::Summary;
use crate::sweep::{run_grid, ScenarioSpec, TrialPool, TrialProtocol};

/// Measurements for one value of `ε`.
#[derive(Debug, Clone, PartialEq)]
pub struct SearsSweepRow {
    /// The fan-out exponent.
    pub epsilon: f64,
    /// System size.
    pub n: usize,
    /// Per-step fan-out `Θ(n^ε log n)` actually used.
    pub fanout: usize,
    /// Completion time in steps.
    pub time_steps: Summary,
    /// Total messages.
    pub messages: Summary,
    /// Fraction of trials that passed the full-gossip check.
    pub success_rate: f64,
}

/// The `ε` values swept by default.
pub fn default_epsilons() -> Vec<f64> {
    vec![0.25, 0.4, 0.5, 0.65, 0.8]
}

/// Runs the sweep at the largest size in `scale.n_values` on `pool`.
///
/// Every `ε` is validated before any trial runs (`0 < ε < 1`, Theorem 7's
/// range, enforced by the sweep engine): an out-of-range exponent fails the
/// sweep with a typed error instead of producing a nonsense fan-out.
pub fn sears_sweep_rows(
    pool: &TrialPool,
    scale: &ExperimentScale,
    epsilons: &[f64],
) -> SimResult<Vec<SearsSweepRow>> {
    let n = *scale.n_values.iter().max().expect("at least one size");
    run_grid(
        pool,
        epsilons,
        |&epsilon| {
            ScenarioSpec::from_scale(
                TrialProtocol::SearsWith(SearsParams::with_epsilon(epsilon)),
                scale,
                n,
            )
        },
        |&epsilon, _spec, aggregate| SearsSweepRow {
            epsilon,
            n,
            fanout: SearsParams::with_epsilon(epsilon).fanout(n),
            time_steps: aggregate.time_steps.clone(),
            messages: aggregate.messages.clone(),
            success_rate: aggregate.success_rate,
        },
    )
}

/// Renders the sweep as a table.
pub fn sears_sweep_to_table(rows: &[SearsSweepRow]) -> Table {
    let mut table = Table::new(
        "Theorem 7 — sears ε trade-off (time vs messages at fixed n)",
        &["ε", "n", "fanout", "time[steps]", "messages", "ok"],
    );
    for row in rows {
        table.push_row(vec![
            format!("{:.2}", row.epsilon),
            row.n.to_string(),
            row.fanout.to_string(),
            fmt_f64(row.time_steps.mean),
            fmt_f64(row.messages.mean),
            format!("{:.0}%", row.success_rate * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "expensive sweep; run with --release")]
    fn sweep_reports_monotone_fanout_in_epsilon() {
        let scale = ExperimentScale {
            n_values: vec![64],
            trials: 1,
            ..ExperimentScale::tiny()
        };
        let rows = sears_sweep_rows(&TrialPool::serial(), &scale, &[0.25, 0.5, 0.75]).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(rows[0].fanout < rows[1].fanout);
        assert!(rows[1].fanout < rows[2].fanout);
        for row in &rows {
            assert_eq!(row.success_rate, 1.0, "{row:?}");
        }
        assert!(sears_sweep_to_table(&rows).render().contains("fanout"));
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "expensive sweep; run with --release")]
    fn larger_epsilon_costs_messages() {
        let scale = ExperimentScale {
            n_values: vec![64],
            trials: 1,
            ..ExperimentScale::tiny()
        };
        let rows = sears_sweep_rows(&TrialPool::serial(), &scale, &[0.25, 0.8]).unwrap();
        assert!(
            rows[1].messages.mean > rows[0].messages.mean,
            "ε = 0.8 should send more messages than ε = 0.25: {rows:?}"
        );
    }
}
