//! Bit-complexity experiment (paper Section 7, open question).
//!
//! The paper counts only the *number* of point-to-point messages and leaves
//! the total volume of information exchanged — the bit complexity — as future
//! work. The protocols differ sharply on this axis: `ears` and `sears` ship
//! their whole rumor set *and* informed-list in every message, `tears` ships
//! only rumors, and the trivial protocol ships exactly one rumor per message.
//! This driver measures both message counts and total wire units (see
//! [`agossip_core::wire`]) per protocol and system size, so the message/bit
//! trade-off can be laid next to Table 1.

use agossip_sim::SimResult;

use crate::experiments::common::{ExperimentScale, GossipProtocolKind};
use crate::fit::{fit_power_law, PowerLawFit};
use crate::report::{fmt_f64, Table};
use crate::stats::Summary;
use crate::sweep::{run_grid, ScenarioSpec, TrialPool, TrialProtocol};

/// One `(protocol, n)` measurement of message and wire-unit volume.
#[derive(Debug, Clone, PartialEq)]
pub struct BitComplexityRow {
    /// Protocol name.
    pub protocol: &'static str,
    /// System size.
    pub n: usize,
    /// Failure budget used.
    pub f: usize,
    /// Total point-to-point messages over the trials.
    pub messages: Summary,
    /// Total wire units (rumor-entry equivalents) over the trials.
    pub wire_units: Summary,
    /// Mean wire units per message.
    pub units_per_message: f64,
    /// Fraction of trials whose correctness check passed.
    pub success_rate: f64,
}

/// Runs the bit-complexity sweep over the Table 1 protocols on `pool`.
pub fn bit_complexity_rows(
    pool: &TrialPool,
    scale: &ExperimentScale,
) -> SimResult<Vec<BitComplexityRow>> {
    let grid: Vec<(GossipProtocolKind, usize)> = GossipProtocolKind::table1_rows()
        .into_iter()
        .flat_map(|kind| scale.n_values.iter().map(move |&n| (kind, n)))
        .collect();
    run_grid(
        pool,
        &grid,
        |&(kind, n)| ScenarioSpec::from_scale(TrialProtocol::Gossip(kind), scale, n),
        |&(kind, n), spec, aggregate| {
            let units_per_message = if aggregate.messages.mean > 0.0 {
                aggregate.wire_units.mean / aggregate.messages.mean
            } else {
                0.0
            };
            BitComplexityRow {
                protocol: kind.name(),
                n,
                f: spec.f,
                messages: aggregate.messages.clone(),
                wire_units: aggregate.wire_units.clone(),
                units_per_message,
                success_rate: aggregate.success_rate,
            }
        },
    )
}

/// Fits the wire-unit growth exponent of one protocol's rows.
pub fn wire_unit_exponent(rows: &[BitComplexityRow], protocol: &str) -> Option<PowerLawFit> {
    let points: Vec<(f64, f64)> = rows
        .iter()
        .filter(|r| r.protocol == protocol)
        .map(|r| (r.n as f64, r.wire_units.mean))
        .collect();
    fit_power_law(&points)
}

/// Renders the sweep as a text table.
pub fn bit_complexity_to_table(rows: &[BitComplexityRow]) -> Table {
    let mut table = Table::new(
        "Bit complexity (wire units) — Section 7 open question",
        &[
            "protocol",
            "n",
            "f",
            "messages",
            "wire units",
            "units/msg",
            "ok",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.protocol.to_string(),
            row.n.to_string(),
            row.f.to_string(),
            fmt_f64(row.messages.mean),
            fmt_f64(row.wire_units.mean),
            fmt_f64(row.units_per_message),
            format!("{:.0}%", row.success_rate * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_rows_for_every_protocol_and_size() {
        let scale = ExperimentScale::tiny();
        let rows = bit_complexity_rows(&TrialPool::serial(), &scale).unwrap();
        assert_eq!(rows.len(), 4 * scale.n_values.len());
        assert!(rows.iter().all(|r| r.success_rate == 1.0));
        let table = bit_complexity_to_table(&rows);
        assert_eq!(table.len(), rows.len());
    }

    #[test]
    fn trivial_wire_units_are_twice_its_messages() {
        let scale = ExperimentScale::tiny();
        let rows = bit_complexity_rows(&TrialPool::serial(), &scale).unwrap();
        for row in rows.iter().filter(|r| r.protocol == "trivial") {
            assert!((row.units_per_message - 2.0).abs() < 1e-9);
            assert!((row.wire_units.mean - 2.0 * row.messages.mean).abs() < 1e-9);
        }
    }

    #[test]
    fn ears_messages_are_heavier_than_trivial_messages() {
        let scale = ExperimentScale::tiny();
        let rows = bit_complexity_rows(&TrialPool::serial(), &scale).unwrap();
        let ears: Vec<_> = rows.iter().filter(|r| r.protocol == "ears").collect();
        let trivial: Vec<_> = rows.iter().filter(|r| r.protocol == "trivial").collect();
        for (e, t) in ears.iter().zip(trivial.iter()) {
            assert!(
                e.units_per_message > t.units_per_message,
                "ears carries rumor sets + informed lists, so its per-message cost ({}) must exceed trivial's ({})",
                e.units_per_message,
                t.units_per_message
            );
        }
    }

    #[test]
    fn wire_unit_exponent_fits_available_protocols() {
        let scale = ExperimentScale::tiny();
        let rows = bit_complexity_rows(&TrialPool::serial(), &scale).unwrap();
        let fit = wire_unit_exponent(&rows, "trivial").unwrap();
        // Trivial: n(n-1) messages of 2 units each → exponent ≈ 2.
        assert!((fit.exponent - 2.0).abs() < 0.1, "got {}", fit.exponent);
        assert!(wire_unit_exponent(&rows, "nonexistent").is_none());
    }
}
