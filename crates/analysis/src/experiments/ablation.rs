//! Ablation of the hidden constants behind the paper's `Θ(·)` parameters.
//!
//! Every phase length and fan-out in the paper is stated up to a constant:
//! the `ears` shut-down phase lasts `Θ(n/(n−f)·log n)` local steps, `sears`
//! sends to `Θ(n^ε log n)` targets per step, and `tears` is built around
//! `a = 4√n·log n` and `κ = 8·n^{1/4}·log n`. The implementation exposes each
//! constant as a parameter (see [`agossip_core::params`]); this driver sweeps
//! them and records where the high-probability guarantees start to fail and
//! what the extra constant costs in messages. These are the "ablation"
//! experiments DESIGN.md calls out.

use agossip_core::{
    run_gossip, Ears, EarsParams, GossipSpec, Sears, SearsParams, Tears, TearsParams,
};
use agossip_sim::{FairObliviousAdversary, SimResult};

use crate::experiments::common::ExperimentScale;
use crate::report::{fmt_f64, Table};
use crate::stats::Summary;

/// Which protocol parameter an ablation point varies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AblationKnob {
    /// `ears` shut-down phase length multiplier.
    EarsShutdownFactor,
    /// `sears` per-step fan-out multiplier.
    SearsFanoutFactor,
    /// `tears` neighbourhood-size (`a`) multiplier.
    TearsAFactor,
    /// `tears` trigger-window (`κ`) multiplier.
    TearsKappaFactor,
}

impl AblationKnob {
    /// A short, table-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            AblationKnob::EarsShutdownFactor => "ears.shutdown_factor",
            AblationKnob::SearsFanoutFactor => "sears.fanout_factor",
            AblationKnob::TearsAFactor => "tears.a_factor",
            AblationKnob::TearsKappaFactor => "tears.kappa_factor",
        }
    }

    /// The default value of this knob (the value used by every other
    /// experiment).
    pub fn default_value(&self) -> f64 {
        match self {
            AblationKnob::EarsShutdownFactor => EarsParams::default().shutdown_factor,
            AblationKnob::SearsFanoutFactor => SearsParams::default().fanout_factor,
            AblationKnob::TearsAFactor => TearsParams::default().a_factor,
            AblationKnob::TearsKappaFactor => TearsParams::default().kappa_factor,
        }
    }

    /// The sweep of values used by [`run_ablation`], spanning "far too small"
    /// to "comfortably larger than the default".
    pub fn sweep(&self) -> Vec<f64> {
        match self {
            AblationKnob::EarsShutdownFactor => vec![0.25, 0.5, 1.0, 2.0, 4.0],
            AblationKnob::SearsFanoutFactor => vec![0.25, 0.5, 1.0, 2.0],
            AblationKnob::TearsAFactor => vec![1.0, 2.0, 4.0, 6.0],
            AblationKnob::TearsKappaFactor => vec![2.0, 4.0, 8.0, 16.0],
        }
    }
}

/// One ablation measurement: a knob, the value it was set to, and what
/// happened.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Which parameter was varied.
    pub knob: AblationKnob,
    /// The value it was set to.
    pub value: f64,
    /// System size used.
    pub n: usize,
    /// Failure budget used.
    pub f: usize,
    /// Fraction of trials whose correctness check passed.
    pub success_rate: f64,
    /// Total point-to-point messages over the trials.
    pub messages: Summary,
    /// Completion time in steps over the trials (only trials that became
    /// quiescent contribute).
    pub time_steps: Summary,
}

fn measure_knob(
    knob: AblationKnob,
    value: f64,
    scale: &ExperimentScale,
    n: usize,
) -> SimResult<AblationRow> {
    let mut messages = Vec::new();
    let mut steps = Vec::new();
    let mut successes = 0usize;
    for trial in 0..scale.trials.max(1) {
        let config = scale.config_for(n, trial);
        let mut adversary = FairObliviousAdversary::new(config.d, config.delta, config.seed);
        let report = match knob {
            AblationKnob::EarsShutdownFactor => {
                let params = EarsParams {
                    shutdown_factor: value,
                };
                run_gossip(&config, GossipSpec::Full, &mut adversary, move |ctx| {
                    Ears::with_params(ctx, params)
                })?
            }
            AblationKnob::SearsFanoutFactor => {
                let params = SearsParams {
                    fanout_factor: value,
                    ..SearsParams::default()
                };
                run_gossip(&config, GossipSpec::Full, &mut adversary, move |ctx| {
                    Sears::with_params(ctx, params)
                })?
            }
            AblationKnob::TearsAFactor => {
                let params = TearsParams {
                    a_factor: value,
                    ..TearsParams::default()
                };
                run_gossip(&config, GossipSpec::Majority, &mut adversary, move |ctx| {
                    Tears::with_params(ctx, params)
                })?
            }
            AblationKnob::TearsKappaFactor => {
                let params = TearsParams {
                    kappa_factor: value,
                    ..TearsParams::default()
                };
                run_gossip(&config, GossipSpec::Majority, &mut adversary, move |ctx| {
                    Tears::with_params(ctx, params)
                })?
            }
        };
        if report.check.all_ok() {
            successes += 1;
        }
        messages.push(report.messages() as f64);
        if let Some(t) = report.time_steps() {
            steps.push(t as f64);
        }
    }
    Ok(AblationRow {
        knob,
        value,
        n,
        f: scale.f_for(n),
        success_rate: successes as f64 / scale.trials.max(1) as f64,
        messages: Summary::of(&messages),
        time_steps: Summary::of(&steps),
    })
}

/// Sweeps one knob at the largest system size of `scale`.
pub fn run_knob_ablation(
    knob: AblationKnob,
    scale: &ExperimentScale,
) -> SimResult<Vec<AblationRow>> {
    let n = scale.n_values.iter().copied().max().unwrap_or(64);
    knob.sweep()
        .into_iter()
        .map(|value| measure_knob(knob, value, scale, n))
        .collect()
}

/// Runs the full ablation: every knob, every sweep value.
pub fn run_ablation(scale: &ExperimentScale) -> SimResult<Vec<AblationRow>> {
    let mut rows = Vec::new();
    for knob in [
        AblationKnob::EarsShutdownFactor,
        AblationKnob::SearsFanoutFactor,
        AblationKnob::TearsAFactor,
        AblationKnob::TearsKappaFactor,
    ] {
        rows.extend(run_knob_ablation(knob, scale)?);
    }
    Ok(rows)
}

/// Renders ablation rows as a text table.
pub fn ablation_to_table(rows: &[AblationRow]) -> Table {
    let mut table = Table::new(
        "Parameter ablation — where the Θ(·) constants start to matter",
        &[
            "knob",
            "value",
            "default",
            "n",
            "f",
            "ok",
            "messages",
            "time[steps]",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.knob.name().to_string(),
            fmt_f64(row.value),
            fmt_f64(row.knob.default_value()),
            row.n.to_string(),
            row.f.to_string(),
            format!("{:.0}%", row.success_rate * 100.0),
            fmt_f64(row.messages.mean),
            fmt_f64(row.time_steps.mean),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_metadata_is_consistent() {
        for knob in [
            AblationKnob::EarsShutdownFactor,
            AblationKnob::SearsFanoutFactor,
            AblationKnob::TearsAFactor,
            AblationKnob::TearsKappaFactor,
        ] {
            assert!(!knob.name().is_empty());
            assert!(knob.default_value() > 0.0);
            assert!(
                knob.sweep().contains(&knob.default_value()) || !knob.sweep().is_empty(),
                "sweep should bracket the default"
            );
        }
    }

    #[test]
    fn ears_shutdown_ablation_runs_and_larger_factor_costs_messages() {
        let scale = ExperimentScale::tiny();
        let rows = run_knob_ablation(AblationKnob::EarsShutdownFactor, &scale).unwrap();
        assert_eq!(rows.len(), AblationKnob::EarsShutdownFactor.sweep().len());
        let small = rows.first().unwrap();
        let large = rows.last().unwrap();
        assert!(
            large.messages.mean >= small.messages.mean,
            "a longer shut-down phase cannot send fewer messages: {} vs {}",
            large.messages.mean,
            small.messages.mean
        );
    }

    #[test]
    fn sears_fanout_ablation_scales_message_volume() {
        let scale = ExperimentScale::tiny();
        let rows = run_knob_ablation(AblationKnob::SearsFanoutFactor, &scale).unwrap();
        let small = rows.first().unwrap();
        let large = rows.last().unwrap();
        assert!(large.messages.mean > small.messages.mean);
        let table = ablation_to_table(&rows);
        assert_eq!(table.len(), rows.len());
    }

    #[test]
    fn tears_a_factor_default_succeeds() {
        let scale = ExperimentScale::tiny();
        let rows = run_knob_ablation(AblationKnob::TearsAFactor, &scale).unwrap();
        let default_row = rows
            .iter()
            .find(|r| (r.value - TearsParams::default().a_factor).abs() < 1e-9)
            .expect("sweep includes the default");
        assert_eq!(default_row.success_rate, 1.0);
    }
}
