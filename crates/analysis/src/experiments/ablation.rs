//! Ablation of the hidden constants behind the paper's `Θ(·)` parameters.
//!
//! Every phase length and fan-out in the paper is stated up to a constant:
//! the `ears` shut-down phase lasts `Θ(n/(n−f)·log n)` local steps, `sears`
//! sends to `Θ(n^ε log n)` targets per step, and `tears` is built around
//! `a = 4√n·log n` and `κ = 8·n^{1/4}·log n`. The implementation exposes each
//! constant as a parameter (see [`agossip_core::params`]); this driver sweeps
//! them and records where the high-probability guarantees start to fail and
//! what the extra constant costs in messages. These are the "ablation"
//! experiments DESIGN.md calls out.

use agossip_core::{EarsParams, SearsParams, TearsParams};
use agossip_sim::SimResult;

use crate::experiments::common::ExperimentScale;
use crate::report::{fmt_f64, Table};
use crate::stats::Summary;
use crate::sweep::{run_grid as run_spec_grid, ScenarioSpec, TrialPool, TrialProtocol};

/// Which protocol parameter an ablation point varies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AblationKnob {
    /// `ears` shut-down phase length multiplier.
    EarsShutdownFactor,
    /// `sears` per-step fan-out multiplier.
    SearsFanoutFactor,
    /// `tears` neighbourhood-size (`a`) multiplier.
    TearsAFactor,
    /// `tears` trigger-window (`κ`) multiplier.
    TearsKappaFactor,
}

impl AblationKnob {
    /// A short, table-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            AblationKnob::EarsShutdownFactor => "ears.shutdown_factor",
            AblationKnob::SearsFanoutFactor => "sears.fanout_factor",
            AblationKnob::TearsAFactor => "tears.a_factor",
            AblationKnob::TearsKappaFactor => "tears.kappa_factor",
        }
    }

    /// The default value of this knob (the value used by every other
    /// experiment).
    pub fn default_value(&self) -> f64 {
        match self {
            AblationKnob::EarsShutdownFactor => EarsParams::default().shutdown_factor,
            AblationKnob::SearsFanoutFactor => SearsParams::default().fanout_factor,
            AblationKnob::TearsAFactor => TearsParams::default().a_factor,
            AblationKnob::TearsKappaFactor => TearsParams::default().kappa_factor,
        }
    }

    /// The sweep of values used by [`ablation_rows`], spanning "far too small"
    /// to "comfortably larger than the default".
    pub fn sweep(&self) -> Vec<f64> {
        match self {
            AblationKnob::EarsShutdownFactor => vec![0.25, 0.5, 1.0, 2.0, 4.0],
            AblationKnob::SearsFanoutFactor => vec![0.25, 0.5, 1.0, 2.0],
            AblationKnob::TearsAFactor => vec![1.0, 2.0, 4.0, 6.0],
            AblationKnob::TearsKappaFactor => vec![2.0, 4.0, 8.0, 16.0],
        }
    }
}

/// One ablation measurement: a knob, the value it was set to, and what
/// happened.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Which parameter was varied.
    pub knob: AblationKnob,
    /// The value it was set to.
    pub value: f64,
    /// System size used.
    pub n: usize,
    /// Failure budget used.
    pub f: usize,
    /// Fraction of trials whose correctness check passed.
    pub success_rate: f64,
    /// Total point-to-point messages over the trials.
    pub messages: Summary,
    /// Completion time in steps over the trials (only trials that became
    /// quiescent contribute).
    pub time_steps: Summary,
}

impl AblationKnob {
    /// The protocol (with the knob set to `value`) an ablation point runs.
    pub fn protocol_with(&self, value: f64) -> TrialProtocol {
        match self {
            AblationKnob::EarsShutdownFactor => TrialProtocol::EarsWith(EarsParams {
                shutdown_factor: value,
            }),
            AblationKnob::SearsFanoutFactor => TrialProtocol::SearsWith(SearsParams {
                fanout_factor: value,
                ..SearsParams::default()
            }),
            AblationKnob::TearsAFactor => TrialProtocol::TearsWith(TearsParams {
                a_factor: value,
                ..TearsParams::default()
            }),
            AblationKnob::TearsKappaFactor => TrialProtocol::TearsWith(TearsParams {
                kappa_factor: value,
                ..TearsParams::default()
            }),
        }
    }
}

/// Builds ablation rows for a `(knob, value)` grid on `pool`.
fn run_knob_grid(
    pool: &TrialPool,
    grid: &[(AblationKnob, f64)],
    scale: &ExperimentScale,
    n: usize,
) -> SimResult<Vec<AblationRow>> {
    run_spec_grid(
        pool,
        grid,
        |&(knob, value)| ScenarioSpec::from_scale(knob.protocol_with(value), scale, n),
        |&(knob, value), spec, aggregate| AblationRow {
            knob,
            value,
            n,
            f: spec.f,
            success_rate: aggregate.success_rate,
            messages: aggregate.messages.clone(),
            time_steps: aggregate.time_steps.clone(),
        },
    )
}

/// Sweeps one knob at the largest system size of `scale` on `pool`.
pub fn knob_ablation_rows(
    pool: &TrialPool,
    knob: AblationKnob,
    scale: &ExperimentScale,
) -> SimResult<Vec<AblationRow>> {
    let n = scale.n_values.iter().copied().max().unwrap_or(64);
    let grid: Vec<(AblationKnob, f64)> = knob.sweep().into_iter().map(|v| (knob, v)).collect();
    run_knob_grid(pool, &grid, scale, n)
}

/// Runs the full ablation on `pool`: every knob, every sweep value, as one
/// flattened batch of trials.
pub fn ablation_rows(pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Vec<AblationRow>> {
    let n = scale.n_values.iter().copied().max().unwrap_or(64);
    let mut grid = Vec::new();
    for knob in [
        AblationKnob::EarsShutdownFactor,
        AblationKnob::SearsFanoutFactor,
        AblationKnob::TearsAFactor,
        AblationKnob::TearsKappaFactor,
    ] {
        grid.extend(knob.sweep().into_iter().map(|v| (knob, v)));
    }
    run_knob_grid(pool, &grid, scale, n)
}

/// Renders ablation rows as a text table.
pub fn ablation_to_table(rows: &[AblationRow]) -> Table {
    let mut table = Table::new(
        "Parameter ablation — where the Θ(·) constants start to matter",
        &[
            "knob",
            "value",
            "default",
            "n",
            "f",
            "ok",
            "messages",
            "time[steps]",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.knob.name().to_string(),
            fmt_f64(row.value),
            fmt_f64(row.knob.default_value()),
            row.n.to_string(),
            row.f.to_string(),
            format!("{:.0}%", row.success_rate * 100.0),
            fmt_f64(row.messages.mean),
            fmt_f64(row.time_steps.mean),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_metadata_is_consistent() {
        for knob in [
            AblationKnob::EarsShutdownFactor,
            AblationKnob::SearsFanoutFactor,
            AblationKnob::TearsAFactor,
            AblationKnob::TearsKappaFactor,
        ] {
            assert!(!knob.name().is_empty());
            assert!(knob.default_value() > 0.0);
            assert!(
                knob.sweep().contains(&knob.default_value()) || !knob.sweep().is_empty(),
                "sweep should bracket the default"
            );
        }
    }

    #[test]
    fn ears_shutdown_ablation_runs_and_larger_factor_costs_messages() {
        let scale = ExperimentScale::tiny();
        let rows = knob_ablation_rows(
            &TrialPool::serial(),
            AblationKnob::EarsShutdownFactor,
            &scale,
        )
        .unwrap();
        assert_eq!(rows.len(), AblationKnob::EarsShutdownFactor.sweep().len());
        let small = rows.first().unwrap();
        let large = rows.last().unwrap();
        assert!(
            large.messages.mean >= small.messages.mean,
            "a longer shut-down phase cannot send fewer messages: {} vs {}",
            large.messages.mean,
            small.messages.mean
        );
    }

    #[test]
    fn sears_fanout_ablation_scales_message_volume() {
        let scale = ExperimentScale::tiny();
        let rows = knob_ablation_rows(
            &TrialPool::serial(),
            AblationKnob::SearsFanoutFactor,
            &scale,
        )
        .unwrap();
        let small = rows.first().unwrap();
        let large = rows.last().unwrap();
        assert!(large.messages.mean > small.messages.mean);
        let table = ablation_to_table(&rows);
        assert_eq!(table.len(), rows.len());
    }

    #[test]
    fn tears_a_factor_default_succeeds() {
        let scale = ExperimentScale::tiny();
        let rows =
            knob_ablation_rows(&TrialPool::serial(), AblationKnob::TearsAFactor, &scale).unwrap();
        let default_row = rows
            .iter()
            .find(|r| (r.value - TearsParams::default().a_factor).abs() < 1e-9)
            .expect("sweep includes the default");
        assert_eq!(default_row.success_rate, 1.0);
    }
}
