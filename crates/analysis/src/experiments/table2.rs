//! Table 2 — consensus protocols built on the gossip protocols.
//!
//! For every row of the paper's Table 2 (Canetti–Rabin baseline, `CR-ears`,
//! `CR-sears`, `CR-tears`) and every system size in the sweep, this driver
//! measures consensus latency (steps and `d+δ` units), the total number of
//! messages, and the number of voting rounds, while checking agreement,
//! validity and termination.

use agossip_consensus::ConsensusProtocol;
use agossip_sim::SimResult;

use crate::experiments::common::ExperimentScale;
use crate::fit::{fit_power_law, PowerLawFit};
use crate::report::{fmt_f64, Table};
use crate::stats::Summary;
use crate::sweep::{run_grid, ScenarioSpec, TrialPool, TrialProtocol};

/// One row of the reproduced Table 2: a `(protocol, n)` measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Protocol name (`CR`, `CR-ears`, `CR-sears`, `CR-tears`).
    pub protocol: &'static str,
    /// System size.
    pub n: usize,
    /// Failure budget used.
    pub f: usize,
    /// Consensus latency in steps.
    pub time_steps: Summary,
    /// Consensus latency in `d+δ` units.
    pub normalized_time: Summary,
    /// Total point-to-point messages.
    pub messages: Summary,
    /// Maximum number of voting rounds any process started.
    pub rounds: Summary,
    /// Fraction of trials in which agreement, validity and termination all
    /// held.
    pub success_rate: f64,
    /// The paper's stated message bound, as text.
    pub paper_messages: &'static str,
    /// The paper's stated time bound, as text.
    pub paper_time: &'static str,
}

/// The protocols that appear as rows of Table 2.
pub fn table2_protocols() -> Vec<ConsensusProtocol> {
    vec![
        ConsensusProtocol::CanettiRabin,
        ConsensusProtocol::CrEars,
        ConsensusProtocol::CrSears { epsilon: 0.5 },
        ConsensusProtocol::CrTears,
    ]
}

/// The paper's stated bounds for a Table 2 row.
pub fn paper_bounds(protocol: ConsensusProtocol) -> (&'static str, &'static str) {
    match protocol {
        ConsensusProtocol::CanettiRabin => ("O(d+δ)", "O(n²)"),
        ConsensusProtocol::CrEars => ("O(log²n·(d+δ))", "O(n·log³n·(d+δ))"),
        ConsensusProtocol::CrSears { .. } => ("O(1/ε·(d+δ))", "O(n^{1+ε}·logn·(d+δ))"),
        ConsensusProtocol::CrTears => ("O(d+δ)", "O(n^{7/4}·log²n)"),
    }
}

/// Runs the Table 2 sweep on `pool`. Inputs are split 50/50 between 0 and 1
/// so the protocols actually have to resolve a conflict.
pub fn table2_rows(pool: &TrialPool, scale: &ExperimentScale) -> SimResult<Vec<Table2Row>> {
    let grid: Vec<(ConsensusProtocol, usize)> = table2_protocols()
        .into_iter()
        .flat_map(|protocol| scale.n_values.iter().map(move |&n| (protocol, n)))
        .collect();
    run_grid(
        pool,
        &grid,
        |&(protocol, n)| ScenarioSpec::from_scale(TrialProtocol::Consensus(protocol), scale, n),
        |&(protocol, n), spec, aggregate| {
            let (paper_time, paper_messages) = paper_bounds(protocol);
            Table2Row {
                protocol: protocol.name(),
                n,
                f: spec.f,
                time_steps: aggregate.time_steps.clone(),
                normalized_time: aggregate.normalized_time.clone(),
                messages: aggregate.messages.clone(),
                rounds: aggregate.rounds.clone(),
                success_rate: aggregate.success_rate,
                paper_messages,
                paper_time,
            }
        },
    )
}

/// Fits the message-complexity growth exponent of one protocol's rows.
pub fn message_exponent(rows: &[Table2Row], protocol: &str) -> Option<PowerLawFit> {
    let points: Vec<(f64, f64)> = rows
        .iter()
        .filter(|r| r.protocol == protocol)
        .map(|r| (r.n as f64, r.messages.mean))
        .collect();
    fit_power_law(&points)
}

/// Renders the rows in the layout of the paper's Table 2.
pub fn table2_to_table(rows: &[Table2Row]) -> Table {
    let mut table = Table::new(
        "Table 2 — consensus under an oblivious adversary (measured)",
        &[
            "protocol",
            "n",
            "f",
            "time[steps]",
            "time/(d+δ)",
            "messages",
            "rounds",
            "ok",
            "paper time",
            "paper messages",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.protocol.to_string(),
            row.n.to_string(),
            row.f.to_string(),
            fmt_f64(row.time_steps.mean),
            fmt_f64(row.normalized_time.mean),
            fmt_f64(row.messages.mean),
            fmt_f64(row.rounds.mean),
            format!("{:.0}%", row.success_rate * 100.0),
            row.paper_time.to_string(),
            row.paper_messages.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            n_values: vec![8, 16],
            trials: 1,
            failure_fraction: 0.2,
            d: 1,
            delta: 1,
            seed: 5,
            idle_fast_forward: false,
        }
    }

    #[test]
    fn tiny_sweep_produces_rows_for_every_protocol_and_size() {
        let rows = table2_rows(&TrialPool::serial(), &tiny()).unwrap();
        assert_eq!(rows.len(), 4 * 2);
        for row in &rows {
            assert_eq!(row.success_rate, 1.0, "{row:?}");
            assert!(row.messages.mean > 0.0);
            assert!(row.rounds.mean >= 1.0);
        }
        let rendered = table2_to_table(&rows).render();
        assert!(rendered.contains("CR-tears"));
        assert!(rendered.contains("CR-ears"));
    }

    #[test]
    fn parallel_and_serial_sweeps_are_bit_identical() {
        let scale = tiny();
        let serial = table2_rows(&TrialPool::serial(), &scale).unwrap();
        let sharded = table2_rows(&TrialPool::new(3), &scale).unwrap();
        assert_eq!(serial, sharded);
    }

    #[test]
    fn baseline_message_growth_is_roughly_quadratic() {
        let rows = table2_rows(&TrialPool::serial(), &tiny()).unwrap();
        let fit = message_exponent(&rows, "CR").unwrap();
        assert!(
            fit.exponent > 1.5,
            "the all-to-all baseline should be close to n², got {}",
            fit.exponent
        );
    }

    #[test]
    fn paper_bounds_text_is_present() {
        let (t, m) = paper_bounds(ConsensusProtocol::CrTears);
        assert!(t.contains("d+δ"));
        assert!(m.contains("7/4"));
    }
}
