//! Lemmas 8–11 / Theorem 12 — structural properties of `tears`.
//!
//! The correctness of `tears` rests on three statistical facts about the
//! two-hop structure:
//!
//! * **Lemma 8** — in any step a process sends either 0 or between `a − κ`
//!   and `a + κ` point-to-point messages (the random neighbourhoods `Π1`,
//!   `Π2` concentrate around `a`).
//! * **Lemma 9** — at least `n/2 − n/log n` rumors become *well-distributed*
//!   (reach many distinct processes in the first hop).
//! * **Lemmas 10–11 / Theorem 12** — every non-faulty process ends up with at
//!   least a majority of all rumors, and the total number of messages is
//!   `O(n^{7/4} log² n)`.
//!
//! This driver runs `tears`, inspects the per-process neighbourhood sizes and
//! the final rumor distribution, and reports how well each of these
//! properties held.

use agossip_core::{run_gossip, GossipSpec, Tears, TearsParams};
use agossip_sim::{FairObliviousAdversary, ProcessId, SimConfig, SimResult};

use crate::experiments::common::ExperimentScale;
use crate::report::{fmt_f64, Table};
use crate::sweep::TrialPool;

/// Structural measurements from one `tears` execution.
#[derive(Debug, Clone, PartialEq)]
pub struct TearsStructureRow {
    /// System size.
    pub n: usize,
    /// Failure budget.
    pub f: usize,
    /// The derived constant `a`.
    pub a: f64,
    /// The derived constant `κ`.
    pub kappa: f64,
    /// Fraction of processes whose first-hop neighbourhood size lies within
    /// `[a − 4κ, a + 4κ]` (Lemma 8's concentration, with slack for small `n`).
    pub fanout_within_bounds: f64,
    /// Number of rumors that reached at least `√n` processes (the empirical
    /// proxy for "well-distributed", Lemma 9).
    pub widely_held_rumors: usize,
    /// The Lemma 9 threshold `n/2 − n/ln n`.
    pub lemma9_threshold: f64,
    /// Smallest number of rumors held by any correct process at the end
    /// (Theorem 12 requires at least `⌊n/2⌋ + 1`).
    pub min_rumors_held: usize,
    /// Total messages sent.
    pub messages: u64,
    /// The `n^{7/4} log² n` reference value.
    pub message_reference: f64,
}

/// Runs the structural experiment at one system size with unit timing
/// bounds (`d = δ = 1`), the paper's baseline setting for these lemmas.
pub fn run_tears_structure(n: usize, f: usize, seed: u64) -> SimResult<TearsStructureRow> {
    run_tears_structure_at(n, f, seed, 1, 1)
}

/// Runs the structural experiment at one system size under explicit
/// `(d, δ)` bounds (the structural claims hold for any bounds; timing only
/// stretches the execution).
pub fn run_tears_structure_at(
    n: usize,
    f: usize,
    seed: u64,
    d: u64,
    delta: u64,
) -> SimResult<TearsStructureRow> {
    let config = SimConfig::new(n, f)
        .with_d(d)
        .with_delta(delta)
        .with_seed(seed);
    let params = TearsParams::default();

    // Build one instance per process just to inspect the neighbourhood sizes
    // (they are a deterministic function of the seed, so these are the same
    // neighbourhoods the execution below uses).
    let mut within = 0usize;
    for pid in ProcessId::all(n) {
        let engine = Tears::new(agossip_core::GossipCtx::new(pid, n, f, config.seed));
        let size = engine.pi1().len() as f64;
        let a = params.a(n);
        let kappa = params.kappa(n);
        if (size - a).abs() <= 4.0 * kappa {
            within += 1;
        }
    }

    let mut adversary = FairObliviousAdversary::new(config.d, config.delta, config.seed);
    let report = run_gossip(&config, GossipSpec::Majority, &mut adversary, Tears::new)?;

    // How many processes hold each rumor at the end.
    let mut holders = vec![0usize; n];
    for set in &report.final_rumors {
        for origin in set.origins() {
            holders[origin.index()] += 1;
        }
    }
    let widely_held = holders
        .iter()
        .filter(|&&count| (count as f64) >= (n as f64).sqrt())
        .count();
    let min_rumors_held = report
        .final_rumors
        .iter()
        .map(|set| set.len())
        .min()
        .unwrap_or(0);

    let ln_n = (n.max(2) as f64).ln();
    Ok(TearsStructureRow {
        n,
        f,
        a: params.a(n),
        kappa: params.kappa(n),
        fanout_within_bounds: within as f64 / n as f64,
        widely_held_rumors: widely_held,
        lemma9_threshold: n as f64 / 2.0 - n as f64 / ln_n,
        min_rumors_held,
        messages: report.messages(),
        message_reference: (n as f64).powf(1.75) * ln_n * ln_n,
    })
}

/// Runs the structural experiment at every system size of `scale`, with
/// `scale.trials` independently seeded runs per size (one output row each —
/// the structural quantities are per-execution, not averages), sharding the
/// mutually independent runs across `pool`'s workers.
pub fn tears_structure_rows(
    pool: &TrialPool,
    scale: &ExperimentScale,
) -> SimResult<Vec<TearsStructureRow>> {
    let trials = scale.trials.max(1);
    let grid: Vec<(usize, usize)> = scale
        .n_values
        .iter()
        .flat_map(|&n| (0..trials).map(move |trial| (n, trial)))
        .collect();
    pool.run(grid.len(), |i| {
        let (n, trial) = grid[i];
        run_tears_structure_at(
            n,
            scale.f_for(n),
            scale.seed_for(n, trial),
            scale.d,
            scale.delta,
        )
    })
    .into_iter()
    .collect()
}

/// Renders one or more structural rows as a table.
pub fn tears_structure_to_table(rows: &[TearsStructureRow]) -> Table {
    let mut table = Table::new(
        "Lemmas 8–11 — tears structural properties",
        &[
            "n",
            "f",
            "a",
            "κ",
            "fanout ok",
            "widely-held",
            "lemma9 thr",
            "min held",
            "majority",
            "messages",
            "n^{7/4}log²n",
        ],
    );
    for row in rows {
        table.push_row(vec![
            row.n.to_string(),
            row.f.to_string(),
            fmt_f64(row.a),
            fmt_f64(row.kappa),
            format!("{:.0}%", row.fanout_within_bounds * 100.0),
            row.widely_held_rumors.to_string(),
            fmt_f64(row.lemma9_threshold),
            row.min_rumors_held.to_string(),
            (row.n / 2 + 1).to_string(),
            row.messages.to_string(),
            fmt_f64(row.message_reference),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "expensive sweep; run with --release")]
    fn structure_holds_at_moderate_size() {
        let n = 128;
        let row = run_tears_structure(n, n / 4, 3).unwrap();
        // Lemma 8: the vast majority of neighbourhoods concentrate around a.
        assert!(row.fanout_within_bounds >= 0.9, "{row:?}");
        // Theorem 12: every process holds a majority of rumors.
        assert!(row.min_rumors_held > n / 2, "{row:?}");
        // Lemma 9 proxy: plenty of rumors are widely held.
        assert!(
            (row.widely_held_rumors as f64) >= row.lemma9_threshold,
            "{row:?}"
        );
    }

    #[test]
    fn table_renders() {
        let row = run_tears_structure(64, 16, 1).unwrap();
        let rendered = tears_structure_to_table(&[row]).render();
        assert!(rendered.contains("widely-held"));
    }
}
