//! Plain-text table rendering for experiment output.
//!
//! The examples and the `EXPERIMENTS.md` write-up print their results as
//! fixed-width text tables; this module is the single place that knows how to
//! align them.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; the number of cells must match the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        render_table(&self.title, &self.header, &self.rows)
    }
}

/// Renders a title, header and rows as a fixed-width text table.
pub fn render_table(title: &str, header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    if !title.is_empty() {
        out.push_str(title);
        out.push('\n');
    }
    let fmt_row = |cells: &[String]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(header));
    out.push('\n');
    let total_width: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
    out.push_str(&"-".repeat(total_width));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Formats a float with a sensible number of digits for table cells.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Demo", &["proto", "n", "messages"]);
        t.push_row(vec!["ears".into(), "64".into(), "1234".into()]);
        t.push_row(vec!["tears".into(), "1024".into(), "9".into()]);
        let rendered = t.render();
        assert!(rendered.contains("Demo"));
        assert!(rendered.contains("proto"));
        let lines: Vec<&str> = rendered.lines().collect();
        // Title, header, separator, 2 rows.
        assert_eq!(lines.len(), 5);
        // The "n" column is right-padded so "64" and "1024" start at the same
        // character offset.
        let header_n_pos = lines[1].find('n').unwrap();
        assert_eq!(lines[3].find("64").unwrap(), header_n_pos);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new("", &["a"]);
        let rendered = t.render();
        assert!(rendered.starts_with('a'));
        assert!(t.is_empty());
        assert_eq!(t.title(), "");
    }

    #[test]
    fn float_formatting_scales_with_magnitude() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(2.34567), "2.346");
        assert_eq!(fmt_f64(42.123), "42.1");
        assert_eq!(fmt_f64(12345.6), "12346");
    }
}
