//! # agossip-analysis
//!
//! Experiment drivers, statistics and reporting for reproducing the
//! evaluation artifacts of *"On the Complexity of Asynchronous Gossip"*
//! (PODC 2008).
//!
//! The paper is a theory paper; its "evaluation" consists of Table 1 (gossip
//! protocols), Table 2 (consensus protocols), Theorem 1 / Figure 1 (the
//! adaptive lower bound) and Corollary 2 (the cost of asynchrony). Each of
//! these has a driver in [`experiments`] that runs the corresponding
//! simulations and returns structured rows; [`report`] renders them as text
//! tables, and [`fit`] estimates growth exponents from measured series so the
//! *shape* of each bound can be compared against the measurement.
//!
//! All drivers execute their independent trials through the parallel sweep
//! engine in [`sweep`]: a [`sweep::ScenarioSpec`] describes one experiment
//! point as plain data, a [`sweep::TrialPool`] shards its trials across
//! worker threads with deterministic per-trial seeding (results are
//! bit-identical for any worker count), and [`sweep::registry`] names every
//! runnable scenario so the whole evaluation is drivable from one place (see
//! the `scenarios` example and the `sweep_baseline` binary).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms, unreachable_pub)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fit;
pub mod report;
pub mod stats;
pub mod sweep;

pub use experiments::experiment::Experiment;
pub use fit::{fit_power_law, PowerLawFit};
pub use report::{render_table, Table};
pub use stats::Summary;
pub use sweep::{
    find_scenario, registry, run_grid, AdversarySpec, ScenarioSpec, SweepArgs, SweepArgsError,
    TrialAggregate, TrialPool, TrialProtocol, TrialReport,
};
