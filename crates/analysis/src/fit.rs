//! Power-law fitting of measured complexity curves.
//!
//! The paper's bounds are asymptotic (`Θ(n²)`, `O(n^{7/4} log²n)`, …). To
//! compare a *measured* series `y(n)` against such a bound we fit
//! `y ≈ c · n^k` by ordinary least squares in log–log space and report the
//! exponent `k`, the constant `c` and the coefficient of determination `R²`.
//! Polylogarithmic factors show up as a small positive bias on the fitted
//! exponent, which is exactly how the experiment write-ups interpret them.

/// The result of fitting `y ≈ c · x^k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// The fitted exponent `k`.
    pub exponent: f64,
    /// The fitted multiplicative constant `c`.
    pub constant: f64,
    /// Coefficient of determination of the fit in log–log space.
    pub r_squared: f64,
    /// Number of points used.
    pub points: usize,
}

impl PowerLawFit {
    /// Evaluates the fitted law at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.constant * x.powf(self.exponent)
    }
}

/// Fits `y ≈ c·x^k` by least squares on `(ln x, ln y)`.
///
/// Points with non-positive coordinates are skipped. Returns `None` if fewer
/// than two usable points remain.
pub fn fit_power_law(points: &[(f64, f64)]) -> Option<PowerLawFit> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let sum_x: f64 = logs.iter().map(|(x, _)| x).sum();
    let sum_y: f64 = logs.iter().map(|(_, y)| y).sum();
    let mean_x = sum_x / n;
    let mean_y = sum_y / n;
    let sxx: f64 = logs.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| (x - mean_x) * (y - mean_y)).sum();
    if sxx.abs() < f64::EPSILON {
        return None;
    }
    let exponent = sxy / sxx;
    let intercept = mean_y - exponent * mean_x;
    let ss_tot: f64 = logs.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = logs
        .iter()
        .map(|(x, y)| {
            let pred = intercept + exponent * x;
            (y - pred).powi(2)
        })
        .sum();
    let r_squared = if ss_tot.abs() < f64::EPSILON {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(PowerLawFit {
        exponent,
        constant: intercept.exp(),
        r_squared,
        points: logs.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quadratic_is_recovered() {
        let points: Vec<(f64, f64)> = (1..=6)
            .map(|i| (i as f64, 3.0 * (i as f64).powi(2)))
            .collect();
        let fit = fit_power_law(&points).unwrap();
        assert!((fit.exponent - 2.0).abs() < 1e-9);
        assert!((fit.constant - 3.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
        assert!((fit.predict(10.0) - 300.0).abs() < 1e-6);
    }

    #[test]
    fn linear_with_log_factor_gives_exponent_slightly_above_one() {
        let points: Vec<(f64, f64)> = [16.0, 64.0, 256.0, 1024.0, 4096.0]
            .iter()
            .map(|&n: &f64| (n, n * n.ln()))
            .collect();
        let fit = fit_power_law(&points).unwrap();
        assert!(
            fit.exponent > 1.0 && fit.exponent < 1.5,
            "got {}",
            fit.exponent
        );
    }

    #[test]
    fn constant_series_has_zero_exponent() {
        let points = [(10.0, 7.0), (100.0, 7.0), (1000.0, 7.0)];
        let fit = fit_power_law(&points).unwrap();
        assert!(fit.exponent.abs() < 1e-9);
        assert!((fit.constant - 7.0).abs() < 1e-9);
    }

    #[test]
    fn insufficient_points_return_none() {
        assert!(fit_power_law(&[]).is_none());
        assert!(fit_power_law(&[(10.0, 5.0)]).is_none());
        // Non-positive values are skipped.
        assert!(fit_power_law(&[(0.0, 5.0), (10.0, 5.0)]).is_none());
        // Identical x values cannot be fitted.
        assert!(fit_power_law(&[(10.0, 5.0), (10.0, 6.0)]).is_none());
    }

    #[test]
    fn noisy_data_reports_lower_r_squared() {
        let clean: Vec<(f64, f64)> = (1..=8).map(|i| (i as f64, (i as f64).powf(1.5))).collect();
        let noisy: Vec<(f64, f64)> = clean
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| (x, y * if i % 2 == 0 { 1.8 } else { 0.55 }))
            .collect();
        let fit_clean = fit_power_law(&clean).unwrap();
        let fit_noisy = fit_power_law(&noisy).unwrap();
        assert!(fit_clean.r_squared > fit_noisy.r_squared);
    }
}
