//! Parallel trial-sweep engine and the unified scenario registry.
//!
//! Every evaluation artifact of the paper is statistical: a point of Table 1
//! or Table 2 is the average of many independent trials of one
//! `(protocol, n, adversary)` configuration. Historically each driver in
//! [`crate::experiments`] owned its own serial trial loop; this module
//! collapses all of them onto three pieces:
//!
//! * [`ScenarioSpec`] — the value describing one experiment point: which
//!   protocol runs ([`TrialProtocol`]), at which system size and failure
//!   budget, under which adversary ([`AdversarySpec`]), with which timing
//!   bounds, base seed and trial count. A spec is plain data: it can be
//!   stored, compared, and shipped to a worker thread.
//! * [`TrialPool`] — a crossbeam-channel worker pool that shards trials
//!   across OS threads. Trial `t` of a spec always runs with seed
//!   [`trial_seed`]`(base_seed, t)`, so the executions — and therefore the
//!   aggregated [`TrialAggregate`]s — are **bit-identical regardless of the
//!   number of workers or their interleaving**. This is the determinism
//!   contract the doc-test below pins down.
//! * [`registry`] — the catalogue of every named scenario the repository can
//!   run (one per experiment driver), so tooling like the `scenarios`
//!   example and the `sweep_baseline` bench binary can run any artifact from
//!   one place.
//!
//! ## Determinism contract
//!
//! ```
//! use agossip_analysis::experiments::{ExperimentScale, GossipProtocolKind};
//! use agossip_analysis::sweep::{ScenarioSpec, TrialPool, TrialProtocol};
//!
//! let scale = ExperimentScale::tiny();
//! let spec = ScenarioSpec::from_scale(
//!     TrialProtocol::Gossip(GossipProtocolKind::Ears),
//!     &scale,
//!     16,
//! );
//!
//! // One worker and four workers produce byte-identical aggregates.
//! let serial = spec.run(&TrialPool::new(1)).unwrap();
//! let sharded = spec.run(&TrialPool::new(4)).unwrap();
//! assert_eq!(format!("{serial:?}"), format!("{sharded:?}"));
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::thread;

use agossip_adversary::{DelayPolicy, PolicyAdversary, SchedulePolicy};
use agossip_consensus::{run_consensus, ConsensusProtocol};
use agossip_core::{
    run_gossip, Ears, EarsParams, GossipReport, GossipSpec, Sears, SearsParams, SyncEpidemic,
    Tears, TearsParams, Trivial,
};
use agossip_sim::rng::trial_seed;
use agossip_sim::{
    Adversary, EnvelopeMeta, FairObliviousAdversary, SimConfig, SimError, SimResult, StepPlan,
    SystemView, MAX_PROCESSES,
};
use crossbeam::channel;

use crate::experiments::common::{ExperimentScale, GossipProtocolKind};
pub use crate::experiments::experiment::Experiment;
use crate::stats::Summary;

/// Which protocol one trial runs.
///
/// The plain Table 1 / Table 2 rows use [`TrialProtocol::Gossip`] and
/// [`TrialProtocol::Consensus`]; the `*With` variants carry explicit
/// parameter structs so the ablation driver can sweep the hidden `Θ(·)`
/// constants through the same engine.
#[derive(Debug, Clone, PartialEq)]
pub enum TrialProtocol {
    /// One of the Table 1 gossip protocols with default parameters.
    Gossip(GossipProtocolKind),
    /// `ears` with explicit parameters (ablation).
    EarsWith(EarsParams),
    /// `sears` with explicit parameters (ablation, ε sweep).
    SearsWith(SearsParams),
    /// `tears` with explicit parameters (ablation).
    TearsWith(TearsParams),
    /// One of the Table 2 consensus protocols; inputs are split 50/50
    /// between 0 and 1 so the protocol has a real conflict to resolve.
    Consensus(ConsensusProtocol),
}

impl TrialProtocol {
    /// A short, table-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            TrialProtocol::Gossip(kind) => kind.name(),
            TrialProtocol::EarsWith(_) => "ears",
            TrialProtocol::SearsWith(_) => "sears",
            TrialProtocol::TearsWith(_) => "tears",
            TrialProtocol::Consensus(protocol) => protocol.name(),
        }
    }

    /// The gossip variant this protocol is checked against; `None` for the
    /// consensus protocols, which have their own agreement/validity/
    /// termination check.
    pub fn gossip_spec(&self) -> Option<GossipSpec> {
        match self {
            TrialProtocol::Gossip(kind) => Some(kind.spec()),
            TrialProtocol::EarsWith(_) | TrialProtocol::SearsWith(_) => Some(GossipSpec::Full),
            TrialProtocol::TearsWith(_) => Some(GossipSpec::Majority),
            TrialProtocol::Consensus(_) => None,
        }
    }

    /// Validates the protocol parameters before any trial runs.
    ///
    /// A `sears` exponent outside `0 < ε < 1`, or a non-positive/non-finite
    /// `Θ(·)` multiplier on any of the parameterised variants, is rejected
    /// with a typed error (see [`agossip_core::ParamError`]) instead of
    /// silently producing a nonsensical execution.
    pub fn validate(&self) -> SimResult<()> {
        let checked = match self {
            TrialProtocol::Gossip(GossipProtocolKind::Sears { epsilon })
            | TrialProtocol::Consensus(ConsensusProtocol::CrSears { epsilon }) => {
                SearsParams::with_epsilon(*epsilon).validate()
            }
            TrialProtocol::EarsWith(params) => params.validate(),
            TrialProtocol::SearsWith(params) => params.validate(),
            TrialProtocol::TearsWith(params) => params.validate(),
            _ => Ok(()),
        };
        checked.map_err(|e| SimError::InvalidConfig {
            reason: e.to_string(),
        })
    }
}

/// Which adversary family drives a trial.
///
/// All variants build an *oblivious* `(d, δ)`-adversary seeded from the
/// trial's config, so the determinism contract of the pool holds for every
/// scenario in the registry. (The adaptive Theorem 1 adversary drives the
/// simulation manually and has its own driver; see
/// [`crate::experiments::lower_bound`].)
#[derive(Debug, Clone, PartialEq)]
pub enum AdversarySpec {
    /// The reference fair oblivious adversary: `1/δ` scheduling, uniform
    /// delays in `[1, d]`.
    FairOblivious,
    /// A policy-composed oblivious adversary from the robustness grid.
    Policy {
        /// The scheduling policy.
        schedule: SchedulePolicy,
        /// The delay policy.
        delay: DelayPolicy,
    },
}

impl AdversarySpec {
    fn build(&self, config: &SimConfig) -> SweepAdversary {
        match self {
            AdversarySpec::FairOblivious => SweepAdversary::Fair(FairObliviousAdversary::new(
                config.d,
                config.delta,
                config.seed,
            )),
            AdversarySpec::Policy { schedule, delay } => {
                SweepAdversary::Policy(PolicyAdversary::new(
                    config.d,
                    config.delta,
                    config.seed,
                    schedule.clone(),
                    delay.clone(),
                ))
            }
        }
    }
}

/// Runtime dispatch over the adversary families of [`AdversarySpec`].
enum SweepAdversary {
    Fair(FairObliviousAdversary),
    Policy(PolicyAdversary),
}

impl Adversary for SweepAdversary {
    fn plan_step(&mut self, view: &SystemView<'_>) -> StepPlan {
        match self {
            SweepAdversary::Fair(a) => a.plan_step(view),
            SweepAdversary::Policy(a) => a.plan_step(view),
        }
    }

    fn message_delay(&mut self, meta: &EnvelopeMeta, view: &SystemView<'_>) -> u64 {
        match self {
            SweepAdversary::Fair(a) => a.message_delay(meta, view),
            SweepAdversary::Policy(a) => a.message_delay(meta, view),
        }
    }
}

/// One experiment point: everything needed to run its trials, as plain data.
///
/// ```
/// use agossip_analysis::experiments::{ExperimentScale, GossipProtocolKind};
/// use agossip_analysis::sweep::{ScenarioSpec, TrialProtocol};
///
/// let spec = ScenarioSpec::from_scale(
///     TrialProtocol::Gossip(GossipProtocolKind::Trivial),
///     &ExperimentScale::tiny(),
///     16,
/// );
/// // Trial seeds are a pure function of (base_seed, trial): the configs are
/// // reproducible and distinct across trials.
/// assert_ne!(spec.config_for(0).seed, spec.config_for(1).seed);
/// let report = spec.run_trial(0).unwrap();
/// assert!(report.ok);
/// assert_eq!(report.messages, 16 * 15); // trivial gossip: n(n−1) messages
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Which protocol runs.
    pub protocol: TrialProtocol,
    /// System size.
    pub n: usize,
    /// Failure budget.
    pub f: usize,
    /// Delivery bound `d`.
    pub d: u64,
    /// Scheduling bound `δ`.
    pub delta: u64,
    /// The adversary family driving every trial.
    pub adversary: AdversarySpec,
    /// Base seed; trial `t` runs with [`trial_seed`]`(base_seed, t)`.
    pub base_seed: u64,
    /// Number of independent trials.
    pub trials: usize,
    /// Whether the simulator may fast-forward idle windows (see
    /// [`SimConfig::idle_fast_forward`]).
    pub idle_fast_forward: bool,
}

impl ScenarioSpec {
    /// Builds the spec for one `(protocol, n)` point of an
    /// [`ExperimentScale`] sweep, under the reference oblivious adversary.
    pub fn from_scale(protocol: TrialProtocol, scale: &ExperimentScale, n: usize) -> Self {
        ScenarioSpec {
            protocol,
            n,
            f: scale.f_for(n),
            d: scale.d,
            delta: scale.delta,
            adversary: AdversarySpec::FairOblivious,
            base_seed: scale.base_seed_for(n),
            trials: scale.trials.max(1),
            idle_fast_forward: scale.idle_fast_forward,
        }
    }

    /// Replaces the adversary family.
    pub fn with_adversary(mut self, adversary: AdversarySpec) -> Self {
        self.adversary = adversary;
        self
    }

    /// The simulation configuration of trial `trial`.
    pub fn config_for(&self, trial: usize) -> SimConfig {
        SimConfig::new(self.n, self.f)
            .with_d(self.d)
            .with_delta(self.delta)
            .with_seed(trial_seed(self.base_seed, trial as u64))
            .with_idle_fast_forward(self.idle_fast_forward)
    }

    /// Runs one trial. Pure in `(self, trial)`: any thread, any time, same
    /// result.
    pub fn run_trial(&self, trial: usize) -> SimResult<TrialReport> {
        self.protocol.validate()?;
        let config = self.config_for(trial);
        match &self.protocol {
            TrialProtocol::Consensus(protocol) => {
                let inputs: Vec<u64> = (0..self.n).map(|i| (i % 2) as u64).collect();
                let mut adversary = self.adversary.build(&config);
                let report = run_consensus(&config, *protocol, &inputs, &mut adversary)?;
                Ok(TrialReport {
                    ok: report.check.all_ok(),
                    time_steps: report.time_steps(),
                    normalized_time: report.normalized_time,
                    messages: report.messages(),
                    wire_units: 0,
                    rounds: report.max_rounds,
                })
            }
            gossip => {
                let report = run_gossip_protocol(gossip, &self.adversary, &config)?;
                Ok(TrialReport {
                    ok: report.check.all_ok(),
                    time_steps: report.time_steps(),
                    normalized_time: report.normalized_time,
                    messages: report.messages(),
                    wire_units: report.rumor_units_sent,
                    rounds: 0,
                })
            }
        }
    }

    /// Runs all trials on `pool` and aggregates them.
    pub fn run(&self, pool: &TrialPool) -> SimResult<TrialAggregate> {
        let mut aggregates = pool.run_specs(std::slice::from_ref(self))?;
        Ok(aggregates.pop().expect("one aggregate per spec"))
    }
}

/// Runs one gossip execution of a (non-consensus) [`TrialProtocol`] under an
/// [`AdversarySpec`], returning the full driver report.
///
/// The synchronous baseline always runs under unit bounds (`d = δ = 1` known
/// a priori is its defining assumption). Panics if called with
/// [`TrialProtocol::Consensus`].
pub fn run_gossip_protocol(
    protocol: &TrialProtocol,
    adversary: &AdversarySpec,
    config: &SimConfig,
) -> SimResult<GossipReport> {
    let config = match protocol {
        TrialProtocol::Gossip(GossipProtocolKind::SyncEpidemic) => {
            config.clone().with_d(1).with_delta(1)
        }
        _ => config.clone(),
    };
    let spec = protocol
        .gossip_spec()
        .expect("run_gossip_protocol requires a gossip protocol");
    let mut adversary = adversary.build(&config);
    match protocol {
        TrialProtocol::Gossip(kind) => match *kind {
            GossipProtocolKind::Trivial => run_gossip(&config, spec, &mut adversary, Trivial::new),
            GossipProtocolKind::Ears => run_gossip(&config, spec, &mut adversary, Ears::new),
            GossipProtocolKind::Sears { epsilon } => {
                run_gossip(&config, spec, &mut adversary, move |ctx| {
                    Sears::with_params(ctx, SearsParams::with_epsilon(epsilon))
                })
            }
            GossipProtocolKind::Tears => run_gossip(&config, spec, &mut adversary, Tears::new),
            GossipProtocolKind::SyncEpidemic => {
                run_gossip(&config, spec, &mut adversary, SyncEpidemic::new)
            }
        },
        TrialProtocol::EarsWith(params) => {
            let params = *params;
            run_gossip(&config, spec, &mut adversary, move |ctx| {
                Ears::with_params(ctx, params)
            })
        }
        TrialProtocol::SearsWith(params) => {
            let params = *params;
            run_gossip(&config, spec, &mut adversary, move |ctx| {
                Sears::with_params(ctx, params)
            })
        }
        TrialProtocol::TearsWith(params) => {
            let params = *params;
            run_gossip(&config, spec, &mut adversary, move |ctx| {
                Tears::with_params(ctx, params)
            })
        }
        TrialProtocol::Consensus(_) => unreachable!("guarded by gossip_spec() above"),
    }
}

/// Runs a grid of experiment points on `pool` and maps each aggregated
/// point to a driver row: the one shape every sweep driver shares.
///
/// `to_spec` builds the [`ScenarioSpec`] of one grid item; `to_row` turns
/// the item, its spec, and its [`TrialAggregate`] into the driver's row
/// type. All trials of all items run as one flattened batch, so a grid of
/// many points with few trials each still saturates the workers.
pub fn run_grid<K, R>(
    pool: &TrialPool,
    items: &[K],
    to_spec: impl Fn(&K) -> ScenarioSpec,
    to_row: impl Fn(&K, &ScenarioSpec, &TrialAggregate) -> R,
) -> SimResult<Vec<R>> {
    let specs: Vec<ScenarioSpec> = items.iter().map(&to_spec).collect();
    let aggregates = pool.run_specs(&specs)?;
    Ok(items
        .iter()
        .zip(&specs)
        .zip(&aggregates)
        .map(|((item, spec), aggregate)| to_row(item, spec, aggregate))
        .collect())
}

/// The measurements of one trial, uniform across every scenario kind.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialReport {
    /// Whether the protocol's correctness check passed.
    pub ok: bool,
    /// Completion time in steps (`None` if the run never became quiescent).
    pub time_steps: Option<u64>,
    /// Completion time in multiples of `d + δ`.
    pub normalized_time: Option<f64>,
    /// Total point-to-point messages.
    pub messages: u64,
    /// Total wire units sent (gossip trials; 0 for consensus trials).
    pub wire_units: u64,
    /// Maximum voting rounds any process started (consensus trials; 0 for
    /// gossip trials).
    pub rounds: u32,
}

/// The aggregation of a spec's trials.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialAggregate {
    /// Number of trials aggregated.
    pub trials: usize,
    /// Fraction of trials whose correctness check passed.
    pub success_rate: f64,
    /// Completion time in steps, over the trials that became quiescent.
    pub time_steps: Summary,
    /// Completion time in `d + δ` units, over the same trials.
    pub normalized_time: Summary,
    /// Total point-to-point messages, over all trials.
    pub messages: Summary,
    /// Total wire units, over all trials.
    pub wire_units: Summary,
    /// Maximum voting rounds, over all trials.
    pub rounds: Summary,
}

impl TrialAggregate {
    /// Aggregates the reports of one spec's trials (in trial order).
    pub fn of(reports: &[TrialReport]) -> TrialAggregate {
        let mut steps = Vec::new();
        let mut normalized = Vec::new();
        let mut messages = Vec::new();
        let mut wire_units = Vec::new();
        let mut rounds = Vec::new();
        let mut successes = 0usize;
        for report in reports {
            if report.ok {
                successes += 1;
            }
            if let Some(t) = report.time_steps {
                steps.push(t as f64);
            }
            if let Some(t) = report.normalized_time {
                normalized.push(t);
            }
            messages.push(report.messages as f64);
            wire_units.push(report.wire_units as f64);
            rounds.push(report.rounds as f64);
        }
        TrialAggregate {
            trials: reports.len(),
            success_rate: successes as f64 / reports.len().max(1) as f64,
            time_steps: Summary::of(&steps),
            normalized_time: Summary::of(&normalized),
            messages: Summary::of(&messages),
            wire_units: Summary::of(&wire_units),
            rounds: Summary::of(&rounds),
        }
    }
}

/// A worker pool that shards independent jobs across OS threads.
///
/// Jobs are pulled from a shared crossbeam channel and results are returned
/// tagged with their index, so the output vector is always in job order: the
/// caller observes the exact result a serial loop would have produced, only
/// faster.
///
/// ```
/// use agossip_analysis::sweep::TrialPool;
///
/// // The job is a pure function of its index, so the pool's output is
/// // identical for any worker count — here 1 worker vs 4 workers.
/// let serial: Vec<u64> = TrialPool::new(1).run(32, |i| (i as u64) * 3);
/// let sharded: Vec<u64> = TrialPool::new(4).run(32, |i| (i as u64) * 3);
/// assert_eq!(serial, sharded);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrialPool {
    threads: NonZeroUsize,
}

impl TrialPool {
    /// A pool with the given number of worker threads; `0` selects
    /// [`std::thread::available_parallelism`].
    pub fn new(threads: usize) -> TrialPool {
        let threads = match NonZeroUsize::new(threads) {
            Some(t) => t,
            None => thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        };
        TrialPool { threads }
    }

    /// A single-threaded pool: runs every job inline, in order.
    pub fn serial() -> TrialPool {
        TrialPool {
            threads: NonZeroUsize::MIN,
        }
    }

    /// A pool sized to the machine (`available_parallelism`).
    pub fn auto() -> TrialPool {
        TrialPool::new(0)
    }

    /// The number of worker threads this pool uses.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Runs `jobs` jobs — `job(0), …, job(jobs − 1)` — and returns their
    /// results in index order.
    ///
    /// `job` must be a pure function of its index for the output to be
    /// independent of the worker count; every job built from a
    /// [`ScenarioSpec`] is (its seed is derived from the trial index, not
    /// from execution order).
    pub fn run<T, F>(&self, jobs: usize, job: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.get().min(jobs.max(1));
        if workers <= 1 {
            return (0..jobs).map(job).collect();
        }

        let (job_tx, job_rx) = channel::unbounded::<usize>();
        let (result_tx, result_rx) = channel::unbounded::<(usize, T)>();
        for idx in 0..jobs {
            job_tx.send(idx).expect("job queue receiver alive");
        }
        drop(job_tx);

        let mut slots: Vec<Option<T>> = Vec::with_capacity(jobs);
        slots.resize_with(jobs, || None);
        let job = &job;
        thread::scope(|scope| {
            for _ in 0..workers {
                let job_rx = job_rx.clone();
                let result_tx = result_tx.clone();
                scope.spawn(move || {
                    while let Ok(idx) = job_rx.recv() {
                        if result_tx.send((idx, job(idx))).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(result_tx);
            drop(job_rx);
            // Collect until every worker has dropped its sender. If a worker
            // panicked its jobs are simply missing here; the scope re-raises
            // the panic when it joins, so the expect below is unreachable in
            // that case.
            while let Ok((idx, value)) = result_rx.recv() {
                slots[idx] = Some(value);
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every job produced a result"))
            .collect()
    }

    /// Runs every trial of every spec (flattened, so a grid of many specs
    /// with few trials each still saturates the workers) and returns one
    /// [`TrialAggregate`] per spec, in spec order.
    ///
    /// Every spec's parameters are validated up front — a sweep with one
    /// invalid spec fails immediately instead of after burning the whole
    /// grid's wall-clock. A trial that fails at runtime cancels the trials
    /// that have not started yet (in-flight ones finish), and the error
    /// reported is the earliest one in (spec-major, trial-minor) order among
    /// the trials that ran — so the wasted work is bounded by the worker
    /// count, not the grid size. Successful sweeps are unaffected and remain
    /// bit-identical for any worker count.
    pub fn run_specs(&self, specs: &[ScenarioSpec]) -> SimResult<Vec<TrialAggregate>> {
        for spec in specs {
            spec.protocol.validate()?;
        }
        let mut index: Vec<(usize, usize)> = Vec::new();
        for (spec_idx, spec) in specs.iter().enumerate() {
            for trial in 0..spec.trials.max(1) {
                index.push((spec_idx, trial));
            }
        }
        let cancelled = AtomicBool::new(false);
        // None = skipped because an earlier (in wall-clock) trial failed.
        let results: Vec<Option<SimResult<TrialReport>>> = self.run(index.len(), |i| {
            if cancelled.load(AtomicOrdering::Relaxed) {
                return None;
            }
            let (spec_idx, trial) = index[i];
            let result = specs[spec_idx].run_trial(trial);
            if result.is_err() {
                cancelled.store(true, AtomicOrdering::Relaxed);
            }
            Some(result)
        });
        let mut per_spec: Vec<Vec<TrialReport>> = specs.iter().map(|_| Vec::new()).collect();
        for (&(spec_idx, _), outcome) in index.iter().zip(results) {
            match outcome {
                Some(Ok(report)) => per_spec[spec_idx].push(report),
                Some(Err(e)) => return Err(e),
                // A skipped trial implies a failed one exists in `results`,
                // so the aggregates below are never reached incomplete.
                None => {}
            }
        }
        Ok(per_spec
            .iter()
            .map(|reports| TrialAggregate::of(reports))
            .collect())
    }
}

impl Default for TrialPool {
    fn default() -> TrialPool {
        TrialPool::auto()
    }
}

/// The catalogue of every registered experiment, as trait objects — one
/// per evaluation artifact. See [`Experiment`] for the migration from the
/// old `Scenario` struct of function pointers.
pub fn registry() -> Vec<Box<dyn Experiment>> {
    use crate::experiments::experiment;
    vec![
        Box::new(experiment::Table1),
        Box::new(experiment::Table2),
        Box::new(experiment::LowerBound),
        Box::new(experiment::Coa),
        Box::new(experiment::SearsSweep),
        Box::new(experiment::TearsLemmas),
        Box::new(experiment::BitComplexity),
        Box::new(experiment::Ablation),
        Box::new(experiment::Robustness),
        Box::new(experiment::Live),
        Box::new(experiment::LiveScale),
        Box::new(experiment::Scale),
        Box::new(experiment::Service),
    ]
}

/// Looks up a registered experiment by name.
pub fn find_scenario(name: &str) -> Option<Box<dyn Experiment>> {
    registry().into_iter().find(|s| s.name() == name)
}

/// The shared `--threads` / `--trials` / `--scenario` / `--n` command-line
/// surface of the example binaries. (`sweep_baseline` keeps its own tiny
/// parser: its `--threads 0` intentionally means "all cores, floored at 4"
/// so the 1-vs-many comparison always exercises a sharded pool, and it adds
/// benchmark-only `--toy`/`--label` flags.)
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Worker threads; `0` means all available cores. Defaults to `1`
    /// (serial): peak memory scales with the number of concurrently resident
    /// trials (a single `tears` trial at large `n` holds a rumor-set working
    /// set of many GB), so going wide is an explicit opt-in.
    pub threads: usize,
    /// Overrides the scale's trials-per-point when set.
    pub trials: Option<usize>,
    /// Restricts a multi-scenario runner to one registered scenario.
    pub scenario: Option<String>,
    /// Overrides the scale's system sizes when set.
    pub n_values: Option<Vec<usize>>,
    /// When set, the runner should list the registry and exit.
    pub list: bool,
}

impl Default for SweepArgs {
    fn default() -> SweepArgs {
        SweepArgs {
            threads: 1,
            trials: None,
            scenario: None,
            n_values: None,
            list: false,
        }
    }
}

/// Why [`SweepArgs::parse`] did not return a usable argument set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepArgsError {
    /// `--help`/`-h` was passed: print the usage and exit successfully.
    HelpRequested,
    /// The arguments were malformed.
    Invalid(String),
}

impl SweepArgs {
    /// Parses the process's command-line arguments. Prints the usage and
    /// exits 0 on `--help`, or exits 2 on a parse error.
    pub fn from_env() -> SweepArgs {
        match SweepArgs::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(SweepArgsError::HelpRequested) => {
                println!("{}", SweepArgs::usage());
                std::process::exit(0);
            }
            Err(SweepArgsError::Invalid(message)) => {
                eprintln!("{message}\n\n{}", SweepArgs::usage());
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument list (without the program name).
    pub fn parse<I>(args: I) -> Result<SweepArgs, SweepArgsError>
    where
        I: IntoIterator<Item = String>,
    {
        let invalid = SweepArgsError::Invalid;
        let mut parsed = SweepArgs::default();
        let mut args = args.into_iter();
        while let Some(arg) = args.next() {
            let mut value_for = |flag: &str| {
                args.next()
                    .ok_or_else(|| invalid(format!("{flag} requires a value")))
            };
            match arg.as_str() {
                "--threads" => {
                    parsed.threads = value_for("--threads")?
                        .parse()
                        .map_err(|e| invalid(format!("--threads: {e}")))?;
                }
                "--trials" => {
                    parsed.trials = Some(
                        value_for("--trials")?
                            .parse()
                            .map_err(|e| invalid(format!("--trials: {e}")))?,
                    );
                }
                "--scenario" => parsed.scenario = Some(value_for("--scenario")?),
                "--n" => {
                    let list = value_for("--n")?;
                    let values: Result<Vec<usize>, _> =
                        list.split(',').map(|v| v.trim().parse()).collect();
                    let values = values.map_err(|e| invalid(format!("--n: {e}")))?;
                    // Catch a size the simulator would reject anyway before
                    // a multi-point sweep burns wall-clock getting there
                    // (the n/64 word math is kept within 32-bit indices;
                    // see agossip_sim::MAX_PROCESSES).
                    if let Some(&too_big) = values.iter().find(|&&n| n > MAX_PROCESSES) {
                        return Err(invalid(format!(
                            "--n: {too_big} exceeds the supported maximum of \
                             {MAX_PROCESSES} (2^20) processes"
                        )));
                    }
                    parsed.n_values = Some(values);
                }
                "--list" => parsed.list = true,
                "--help" | "-h" => return Err(SweepArgsError::HelpRequested),
                other => return Err(invalid(format!("unknown argument: {other}"))),
            }
        }
        Ok(parsed)
    }

    /// The usage string shared by every sweep-aware binary.
    pub fn usage() -> &'static str {
        "options:\n  \
         --threads N      worker threads (0 = all cores; default 1 — memory\n                   \
         scales with concurrently resident trials)\n  \
         --trials N       independent trials per experiment point\n  \
         --scenario NAME  run one registered scenario (see --list)\n  \
         --n A,B,C        system sizes to sweep\n  \
         --list           list the scenario registry and exit"
    }

    /// The worker pool these arguments select.
    pub fn pool(&self) -> TrialPool {
        TrialPool::new(self.threads)
    }

    /// Exits with an error if `--scenario`/`--list` were passed to a binary
    /// that runs exactly one scenario (those flags belong to the `scenarios`
    /// example).
    pub fn reject_registry_flags(&self, binary: &str) {
        if self.scenario.is_some() || self.list {
            eprintln!(
                "{binary} runs a single scenario; --scenario/--list are only \
                 understood by the `scenarios` example"
            );
            std::process::exit(2);
        }
    }

    /// Applies the trial/size overrides to a scale.
    pub fn apply(&self, scale: &mut ExperimentScale) {
        if let Some(trials) = self.trials {
            scale.trials = trials.max(1);
        }
        if let Some(n_values) = &self.n_values {
            scale.n_values = n_values.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(trials: usize) -> ScenarioSpec {
        ScenarioSpec::from_scale(
            TrialProtocol::Gossip(GossipProtocolKind::Ears),
            &ExperimentScale {
                trials,
                ..ExperimentScale::tiny()
            },
            16,
        )
    }

    #[test]
    fn pool_output_is_in_job_order_for_any_worker_count() {
        for workers in [1, 2, 3, 8] {
            let pool = TrialPool::new(workers);
            let out = pool.run(37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn pool_handles_empty_and_single_job_sets() {
        let pool = TrialPool::new(4);
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.run(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn worker_count_does_not_change_aggregates() {
        let spec = tiny_spec(4);
        let serial = spec.run(&TrialPool::serial()).unwrap();
        for workers in [2, 4, 8] {
            let sharded = spec.run(&TrialPool::new(workers)).unwrap();
            assert_eq!(serial, sharded, "{workers} workers diverged");
        }
    }

    #[test]
    fn consensus_trials_run_through_the_same_engine() {
        let scale = ExperimentScale {
            n_values: vec![8],
            failure_fraction: 0.2,
            d: 1,
            delta: 1,
            ..ExperimentScale::tiny()
        };
        let spec = ScenarioSpec::from_scale(
            TrialProtocol::Consensus(ConsensusProtocol::CanettiRabin),
            &scale,
            8,
        );
        let aggregate = spec.run(&TrialPool::serial()).unwrap();
        assert_eq!(aggregate.success_rate, 1.0);
        assert!(aggregate.rounds.mean >= 1.0);
    }

    #[test]
    fn invalid_sears_epsilon_is_rejected_with_a_typed_error() {
        for &epsilon in &[0.0, -0.2, 1.0, 1.7] {
            let spec = ScenarioSpec::from_scale(
                TrialProtocol::Gossip(GossipProtocolKind::Sears { epsilon }),
                &ExperimentScale::tiny(),
                16,
            );
            let err = spec.run_trial(0).unwrap_err();
            match err {
                SimError::InvalidConfig { reason } => {
                    assert!(reason.contains('ε'), "reason should name ε: {reason}")
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
            let err = spec.run(&TrialPool::new(2)).unwrap_err();
            assert!(matches!(err, SimError::InvalidConfig { .. }));
        }
    }

    #[test]
    fn invalid_theta_multipliers_are_rejected_before_any_trial_runs() {
        for protocol in [
            TrialProtocol::EarsWith(EarsParams {
                shutdown_factor: -1.0,
            }),
            TrialProtocol::TearsWith(TearsParams {
                a_factor: f64::NAN,
                ..TearsParams::default()
            }),
            TrialProtocol::SearsWith(SearsParams {
                fanout_factor: 0.0,
                ..SearsParams::default()
            }),
        ] {
            let spec = ScenarioSpec::from_scale(protocol, &ExperimentScale::tiny(), 16);
            // run_specs validates the whole grid up front, so a poisoned
            // spec fails immediately — even when it is not the first one.
            let err = TrialPool::new(2)
                .run_specs(&[tiny_spec(1), spec])
                .unwrap_err();
            assert!(matches!(err, SimError::InvalidConfig { .. }), "{err:?}");
        }
    }

    #[test]
    fn runtime_trial_errors_propagate_and_cancel_the_rest_of_the_grid() {
        // Consensus demands a failure minority; f = n/2 passes protocol
        // validation but errors at run time, exercising the cancellation
        // path (later trials are skipped once the failure is observed).
        let poisoned = ScenarioSpec {
            f: 8,
            ..ScenarioSpec::from_scale(
                TrialProtocol::Consensus(ConsensusProtocol::CanettiRabin),
                &ExperimentScale::tiny(),
                16,
            )
        };
        for workers in [1, 4] {
            let err = TrialPool::new(workers)
                .run_specs(&[poisoned.clone(), tiny_spec(3)])
                .unwrap_err();
            assert!(matches!(err, SimError::InvalidConfig { .. }), "{err:?}");
        }
    }

    #[test]
    fn trials_apply_everywhere_but_the_single_trial_scenarios() {
        // `lower_bound` is fully deterministic per `(n, protocol)`;
        // `live_scale` runs exactly one live trial per size by design (its
        // reactor threads already saturate the box); `service` is one
        // deterministic multi-epoch run per point.
        let single_trial = ["lower_bound", "live_scale", "service"];
        for scenario in registry() {
            assert_eq!(
                scenario.trials_apply(),
                !single_trial.contains(&scenario.name()),
                "{}",
                scenario.name()
            );
        }
    }

    #[test]
    fn run_specs_flattens_grids_and_keeps_spec_order() {
        let fast = tiny_spec(2);
        let slow = ScenarioSpec {
            n: 24,
            ..tiny_spec(3)
        };
        let aggregates = TrialPool::new(4)
            .run_specs(&[fast.clone(), slow.clone()])
            .unwrap();
        assert_eq!(aggregates.len(), 2);
        assert_eq!(aggregates[0].trials, 2);
        assert_eq!(aggregates[1].trials, 3);
        // Same result as running each spec alone.
        assert_eq!(aggregates[0], fast.run(&TrialPool::serial()).unwrap());
        assert_eq!(aggregates[1], slow.run(&TrialPool::serial()).unwrap());
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let registry = registry();
        assert_eq!(registry.len(), 13);
        let mut names: Vec<&str> = registry.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 13, "duplicate scenario names");
        for name in names {
            assert!(find_scenario(name).is_some());
        }
        assert!(find_scenario("nonexistent").is_none());
        for scenario in registry {
            let scale = scenario.default_scale();
            assert!(!scale.n_values.is_empty(), "{}", scenario.name());
            assert!(scale.trials >= 1, "{}", scenario.name());
        }
    }

    #[test]
    fn every_registered_scenario_runs_at_tiny_scale() {
        let scale = ExperimentScale {
            n_values: vec![12],
            trials: 1,
            failure_fraction: 0.2,
            d: 1,
            delta: 1,
            seed: 3,
            idle_fast_forward: false,
        };
        let pool = TrialPool::new(2);
        for scenario in registry() {
            let table = scenario
                .run(&pool, &scale)
                .unwrap_or_else(|e| panic!("{} failed: {e}", scenario.name()));
            assert!(!table.is_empty(), "{} produced no rows", scenario.name());
        }
    }

    #[test]
    fn sweep_args_parse_and_apply() {
        let args = SweepArgs::parse(
            [
                "--threads",
                "3",
                "--trials",
                "7",
                "--n",
                "16,32",
                "--scenario",
                "table1",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(args.threads, 3);
        assert_eq!(args.pool().threads(), 3);
        assert_eq!(args.scenario.as_deref(), Some("table1"));
        let mut scale = ExperimentScale::tiny();
        args.apply(&mut scale);
        assert_eq!(scale.trials, 7);
        assert_eq!(scale.n_values, vec![16, 32]);

        assert!(matches!(
            SweepArgs::parse(["--threads".into()]),
            Err(SweepArgsError::Invalid(_))
        ));
        assert!(matches!(
            SweepArgs::parse(["--bogus".into()]),
            Err(SweepArgsError::Invalid(_))
        ));
        // The largest supported size parses; one past it is rejected with a
        // message naming the cap.
        let at_cap = format!("{MAX_PROCESSES}");
        assert!(SweepArgs::parse(["--n".into(), at_cap]).is_ok());
        let past_cap = format!("16,{}", MAX_PROCESSES + 1);
        match SweepArgs::parse(["--n".into(), past_cap]) {
            Err(SweepArgsError::Invalid(message)) => {
                assert!(message.contains("2^20"), "{message}")
            }
            other => panic!("oversized --n must be rejected, got {other:?}"),
        }
        assert_eq!(
            SweepArgs::parse(["--help".into()]),
            Err(SweepArgsError::HelpRequested)
        );
        assert!(SweepArgs::parse(["--list".into()]).unwrap().list);
    }
}
