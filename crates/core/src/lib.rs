//! # agossip-core
//!
//! Asynchronous gossip protocols from *"On the Complexity of Asynchronous
//! Gossip"* (Georgiou, Gilbert, Guerraoui, Kowalski — PODC 2008), implemented
//! as pure state machines that can be driven either by the discrete-event
//! simulator in [`agossip_sim`] or by the thread-based runtime in
//! `agossip-runtime`.
//!
//! ## The gossip problem
//!
//! Every process `p` starts with a rumor `r_p` and maintains a collection of
//! rumors it has received. A gossip protocol must satisfy (paper, Section 1):
//!
//! 1. **Rumor gathering** — eventually every correct process has added every
//!    rumor that initiated at a correct process to its collection;
//! 2. **Validity** — only initial rumors are ever added;
//! 3. **Quiescence** — eventually every process stops sending messages
//!    forever.
//!
//! *Majority gossip* (Section 5) weakens gathering: each correct process must
//! receive at least a majority of the rumors.
//!
//! ## Protocols
//!
//! | Module | Paper | Time | Messages |
//! |---|---|---|---|
//! | [`trivial`] | "Trivial" row of Table 1 | `O(d+δ)` | `Θ(n²)` |
//! | [`ears`] | Section 3, Figure 2 | `O(n/(n−f)·log²n·(d+δ))` | `O(n log³n (d+δ))` |
//! | [`sears`] | Section 4 | `O(n/(ε(n−f))·(d+δ))` | `O(n^{2+ε}/(ε(n−f))·log n·(d+δ))` |
//! | [`tears`] | Section 5, Figure 3 | `O(d+δ)` | `O(n^{7/4} log²n)` (majority gossip) |
//! | [`sync_epidemic`] | synchronous baseline (cf. CK \[9\]) | `O(log n)` rounds | `O(n log n)` |
//!
//! All bounds hold with high probability against an **oblivious** adversary;
//! Section 2 of the paper (reproduced in `agossip-adversary::theorem1`) shows
//! that no protocol can beat `Ω(n+f²)` messages *and* `Ω(f(d+δ))` time
//! against an **adaptive** adversary.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms, unreachable_pub)]
#![warn(missing_docs)]

pub mod adapter;
mod bits;
pub mod checker;
pub mod codec;
pub mod codec_view;
pub mod driver;
pub mod ears;
pub mod engine;
pub mod epoch;
pub mod informed_list;
pub mod params;
pub mod rumor;
pub mod sears;
pub mod service;
pub mod sync_epidemic;
pub mod tears;
pub mod trivial;
pub mod wire;

pub use adapter::SimGossip;
pub use bits::ADAPTIVE_SPARSE_LIMIT;
pub use checker::{check_engines, check_gossip, CheckReport, GossipSpec};
pub use codec::{CodecError, WireCodec, CODEC_VERSION};
pub use codec_view::{
    EarsView, InformedListView, RumorSetView, SearsView, SyncView, TearsView, TrivialView,
    WireDecodeView,
};
pub use driver::{run_gossip, GossipReport};
pub use ears::{Ears, EarsMessage};
pub use engine::{broadcast, EncodedFrame, GossipCtx, GossipEngine};
pub use epoch::{
    epoch_initial_rumors, epoch_rumor, epoch_seed, service_open_upto, EpochBoard, EpochMsg,
    EpochMux, LoopMode,
};
pub use params::{EarsParams, ParamError, SearsParams, SyncParams, TearsParams};
pub use rumor::{Rumor, RumorSet};
pub use sears::{Sears, SearsMessage};
pub use service::{percentile, run_service_sim, EpochOutcome, ServiceSimReport, SimServiceConfig};
pub use sync_epidemic::{SyncEpidemic, SyncMessage};
pub use tears::{Tears, TearsFlag, TearsMessage};
pub use trivial::{Trivial, TrivialMessage};
pub use wire::WireSize;
