//! Rumors and rumor collections.

use std::fmt;

use agossip_sim::ProcessId;

use crate::bits::WordSet;

/// A rumor: the unit of information spread by gossip.
///
/// In the paper a rumor `r_p` is an opaque value known initially only to its
/// originating process `p`. We carry a 64-bit payload alongside the origin so
/// that higher layers (notably the consensus protocols of Section 6, where
/// rumors are votes) can transport application data through any gossip
/// protocol unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rumor {
    /// The process at which the rumor initiated.
    pub origin: ProcessId,
    /// Application payload (for plain gossip experiments this is an arbitrary
    /// tag; for consensus it encodes a vote).
    pub payload: u64,
}

impl Rumor {
    /// Creates a rumor originating at `origin` with the given payload.
    pub fn new(origin: ProcessId, payload: u64) -> Self {
        Rumor { origin, payload }
    }
}

impl fmt::Display for Rumor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r({}, {})", self.origin, self.payload)
    }
}

/// A collection of rumors, at most one per origin.
///
/// The paper's sets `V(p)` never contain two distinct rumors from the same
/// origin (each process has exactly one initial rumor), so the collection is
/// keyed by origin over the fixed universe `0..n` and stored *densely*: a
/// word-packed presence bitset plus a payload array indexed by origin.
/// [`RumorSet::contains_origin`] is a bit test, [`RumorSet::union`] is a
/// word-wise OR over `⌈n/64⌉` words (plus a payload copy for each newly set
/// bit), and iteration walks set bits in ascending order — the same origin
/// order the historical `BTreeMap<ProcessId, u64>` representation produced,
/// so every metric downstream is bit-identical (pinned by
/// `tests/tests/seed_equivalence.rs` and the representation-differential
/// proptests in `tests/tests/rumor_differential.rs`).
///
/// Insertion keeps the first payload seen for an origin; in a correct
/// execution there is only ever one.
#[derive(Clone, Default)]
pub struct RumorSet {
    present: WordSet,
    /// `payloads[origin]` is meaningful iff the presence bit for `origin` is
    /// set; kept at exactly `64 ×` the presence word count.
    payloads: Vec<u64>,
    len: usize,
}

impl RumorSet {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collection containing a single rumor.
    pub fn singleton(rumor: Rumor) -> Self {
        let mut set = Self::new();
        set.insert(rumor);
        set
    }

    /// Keeps the payload array sized to the presence bitset.
    fn sync_payloads(&mut self) {
        let need = self.present.words().len() * 64;
        if self.payloads.len() < need {
            self.payloads.resize(need, 0);
        }
    }

    /// Inserts a rumor. Returns `true` if the origin was not present before.
    pub fn insert(&mut self, rumor: Rumor) -> bool {
        let index = rumor.origin.index();
        if !self.present.insert(index) {
            return false;
        }
        self.sync_payloads();
        self.payloads[index] = rumor.payload;
        self.len += 1;
        true
    }

    /// Merges every rumor of `other` into `self`. Returns the number of new
    /// origins added.
    pub fn union(&mut self, other: &RumorSet) -> usize {
        let mut added = 0usize;
        for (w, &word) in other.present.words().iter().enumerate() {
            let mut fresh = self.present.or_word(w, word);
            if fresh == 0 {
                continue;
            }
            self.sync_payloads();
            added += fresh.count_ones() as usize;
            while fresh != 0 {
                let index = w * 64 + fresh.trailing_zeros() as usize;
                self.payloads[index] = other.payloads[index];
                fresh &= fresh - 1;
            }
        }
        self.len += added;
        added
    }

    /// True if a rumor originating at `origin` is present.
    pub fn contains_origin(&self, origin: ProcessId) -> bool {
        self.present.contains(origin.index())
    }

    /// Returns the rumor originating at `origin`, if present.
    pub fn get(&self, origin: ProcessId) -> Option<Rumor> {
        self.contains_origin(origin).then(|| Rumor {
            origin,
            payload: self.payloads[origin.index()],
        })
    }

    /// Number of distinct rumors held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no rumor is held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the rumors in origin order.
    pub fn iter(&self) -> impl Iterator<Item = Rumor> + '_ {
        self.present.iter().map(|index| Rumor {
            origin: ProcessId(index),
            payload: self.payloads[index],
        })
    }

    /// Iterates over the origins in order.
    pub fn origins(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.present.iter().map(ProcessId)
    }

    /// True if `self` contains every rumor of `other`.
    pub fn is_superset_of(&self, other: &RumorSet) -> bool {
        self.present.is_superset_of(&other.present)
    }

    /// The raw presence words (low word first), for the wire codec's dense
    /// section: the encoder ships these words byte-for-byte.
    pub(crate) fn present_words(&self) -> &[u64] {
        self.present.words()
    }
}

impl PartialEq for RumorSet {
    fn eq(&self, other: &Self) -> bool {
        // Capacity-insensitive: two sets holding the same rumors are equal
        // no matter how much backing storage each has grown.
        self.len == other.len
            && self.present.eq_bits(&other.present)
            && self
                .origins()
                .all(|o| self.payloads[o.index()] == other.payloads[o.index()])
    }
}

impl Eq for RumorSet {}

impl fmt::Debug for RumorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.iter().map(|r| (r.origin, r.payload)))
            .finish()
    }
}

impl FromIterator<Rumor> for RumorSet {
    fn from_iter<T: IntoIterator<Item = Rumor>>(iter: T) -> Self {
        let mut set = RumorSet::new();
        for r in iter {
            set.insert(r);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(origin: usize, payload: u64) -> Rumor {
        Rumor::new(ProcessId(origin), payload)
    }

    #[test]
    fn insert_and_lookup() {
        let mut set = RumorSet::new();
        assert!(set.is_empty());
        assert!(set.insert(r(1, 10)));
        assert!(!set.insert(r(1, 99)), "second rumor per origin is ignored");
        assert_eq!(set.len(), 1);
        assert!(set.contains_origin(ProcessId(1)));
        assert_eq!(set.get(ProcessId(1)), Some(r(1, 10)));
        assert_eq!(set.get(ProcessId(2)), None);
    }

    #[test]
    fn union_counts_new_origins() {
        let mut a: RumorSet = [r(0, 0), r(1, 1)].into_iter().collect();
        let b: RumorSet = [r(1, 1), r(2, 2), r(3, 3)].into_iter().collect();
        let added = a.union(&b);
        assert_eq!(added, 2);
        assert_eq!(a.len(), 4);
        assert!(a.is_superset_of(&b));
    }

    #[test]
    fn union_is_idempotent() {
        let mut a: RumorSet = [r(0, 0)].into_iter().collect();
        let b: RumorSet = [r(0, 0), r(1, 1)].into_iter().collect();
        a.union(&b);
        let len = a.len();
        assert_eq!(a.union(&b), 0);
        assert_eq!(a.len(), len);
    }

    #[test]
    fn union_keeps_first_payload_per_origin() {
        let mut a: RumorSet = [r(0, 7)].into_iter().collect();
        let b: RumorSet = [r(0, 99), r(1, 1)].into_iter().collect();
        assert_eq!(a.union(&b), 1);
        assert_eq!(a.get(ProcessId(0)), Some(r(0, 7)));
        assert_eq!(a.get(ProcessId(1)), Some(r(1, 1)));
    }

    #[test]
    fn iteration_is_origin_ordered() {
        let set: RumorSet = [r(3, 3), r(1, 1), r(2, 2)].into_iter().collect();
        let origins: Vec<_> = set.origins().collect();
        assert_eq!(origins, vec![ProcessId(1), ProcessId(2), ProcessId(3)]);
        let rumors: Vec<_> = set.iter().collect();
        assert_eq!(rumors, vec![r(1, 1), r(2, 2), r(3, 3)]);
    }

    #[test]
    fn iteration_crosses_word_boundaries_in_order() {
        let set: RumorSet = [r(200, 200), r(63, 63), r(64, 64), r(0, 0)]
            .into_iter()
            .collect();
        let origins: Vec<_> = set.origins().map(|p| p.index()).collect();
        assert_eq!(origins, vec![0, 63, 64, 200]);
        assert_eq!(set.len(), 4);
        assert_eq!(set.get(ProcessId(200)), Some(r(200, 200)));
    }

    #[test]
    fn singleton_contains_only_its_rumor() {
        let set = RumorSet::singleton(r(5, 50));
        assert_eq!(set.len(), 1);
        assert!(set.contains_origin(ProcessId(5)));
        assert!(!set.contains_origin(ProcessId(4)));
    }

    #[test]
    fn superset_checks() {
        let big: RumorSet = [r(0, 0), r(1, 1), r(2, 2)].into_iter().collect();
        let small: RumorSet = [r(1, 1)].into_iter().collect();
        assert!(big.is_superset_of(&small));
        assert!(!small.is_superset_of(&big));
        assert!(big.is_superset_of(&RumorSet::new()));
    }

    #[test]
    fn equality_ignores_backing_capacity() {
        // Same content built in different insertion orders, so the two sets
        // went through different growth sequences.
        let high_first: RumorSet = [r(300, 300), r(1, 1)].into_iter().collect();
        let low_first: RumorSet = [r(1, 1), r(300, 300)].into_iter().collect();
        assert_eq!(high_first, low_first);
        // Extra zeroed capacity on one side must not break equality.
        let mut grown = RumorSet::singleton(r(1, 1));
        grown.present.ensure_words(8);
        grown.payloads.resize(8 * 64, 0);
        assert_eq!(grown, RumorSet::singleton(r(1, 1)));
        assert_eq!(RumorSet::singleton(r(1, 1)), grown);
        // Different payload for the same origin is a real difference.
        assert_ne!(RumorSet::singleton(r(1, 1)), RumorSet::singleton(r(1, 2)));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(r(2, 7).to_string(), "r(p2, 7)");
    }

    #[test]
    fn debug_lists_rumors_in_origin_order() {
        let set: RumorSet = [r(2, 20), r(0, 5)].into_iter().collect();
        let dbg = format!("{set:?}");
        assert!(dbg.contains("ProcessId(0)"), "{dbg}");
        assert!(dbg.find("ProcessId(0)") < dbg.find("ProcessId(2)"), "{dbg}");
    }
}
