//! Rumors and rumor collections.

use std::collections::BTreeMap;
use std::fmt;

use agossip_sim::ProcessId;

/// A rumor: the unit of information spread by gossip.
///
/// In the paper a rumor `r_p` is an opaque value known initially only to its
/// originating process `p`. We carry a 64-bit payload alongside the origin so
/// that higher layers (notably the consensus protocols of Section 6, where
/// rumors are votes) can transport application data through any gossip
/// protocol unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rumor {
    /// The process at which the rumor initiated.
    pub origin: ProcessId,
    /// Application payload (for plain gossip experiments this is an arbitrary
    /// tag; for consensus it encodes a vote).
    pub payload: u64,
}

impl Rumor {
    /// Creates a rumor originating at `origin` with the given payload.
    pub fn new(origin: ProcessId, payload: u64) -> Self {
        Rumor { origin, payload }
    }
}

impl fmt::Display for Rumor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r({}, {})", self.origin, self.payload)
    }
}

/// A collection of rumors, at most one per origin.
///
/// The paper's sets `V(p)` never contain two distinct rumors from the same
/// origin (each process has exactly one initial rumor), so the collection is
/// keyed by origin. Insertion keeps the first payload seen for an origin; in
/// a correct execution there is only ever one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RumorSet {
    by_origin: BTreeMap<ProcessId, u64>,
}

impl RumorSet {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collection containing a single rumor.
    pub fn singleton(rumor: Rumor) -> Self {
        let mut set = Self::new();
        set.insert(rumor);
        set
    }

    /// Inserts a rumor. Returns `true` if the origin was not present before.
    pub fn insert(&mut self, rumor: Rumor) -> bool {
        match self.by_origin.entry(rumor.origin) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(rumor.payload);
                true
            }
            std::collections::btree_map::Entry::Occupied(_) => false,
        }
    }

    /// Merges every rumor of `other` into `self`. Returns the number of new
    /// origins added.
    pub fn union(&mut self, other: &RumorSet) -> usize {
        let mut added = 0;
        for (&origin, &payload) in &other.by_origin {
            if self.insert(Rumor { origin, payload }) {
                added += 1;
            }
        }
        added
    }

    /// True if a rumor originating at `origin` is present.
    pub fn contains_origin(&self, origin: ProcessId) -> bool {
        self.by_origin.contains_key(&origin)
    }

    /// Returns the rumor originating at `origin`, if present.
    pub fn get(&self, origin: ProcessId) -> Option<Rumor> {
        self.by_origin
            .get(&origin)
            .map(|&payload| Rumor { origin, payload })
    }

    /// Number of distinct rumors held.
    pub fn len(&self) -> usize {
        self.by_origin.len()
    }

    /// True if no rumor is held.
    pub fn is_empty(&self) -> bool {
        self.by_origin.is_empty()
    }

    /// Iterates over the rumors in origin order.
    pub fn iter(&self) -> impl Iterator<Item = Rumor> + '_ {
        self.by_origin
            .iter()
            .map(|(&origin, &payload)| Rumor { origin, payload })
    }

    /// Iterates over the origins in order.
    pub fn origins(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.by_origin.keys().copied()
    }

    /// True if `self` contains every rumor of `other`.
    pub fn is_superset_of(&self, other: &RumorSet) -> bool {
        other
            .by_origin
            .keys()
            .all(|origin| self.by_origin.contains_key(origin))
    }
}

impl FromIterator<Rumor> for RumorSet {
    fn from_iter<T: IntoIterator<Item = Rumor>>(iter: T) -> Self {
        let mut set = RumorSet::new();
        for r in iter {
            set.insert(r);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(origin: usize, payload: u64) -> Rumor {
        Rumor::new(ProcessId(origin), payload)
    }

    #[test]
    fn insert_and_lookup() {
        let mut set = RumorSet::new();
        assert!(set.is_empty());
        assert!(set.insert(r(1, 10)));
        assert!(!set.insert(r(1, 99)), "second rumor per origin is ignored");
        assert_eq!(set.len(), 1);
        assert!(set.contains_origin(ProcessId(1)));
        assert_eq!(set.get(ProcessId(1)), Some(r(1, 10)));
        assert_eq!(set.get(ProcessId(2)), None);
    }

    #[test]
    fn union_counts_new_origins() {
        let mut a: RumorSet = [r(0, 0), r(1, 1)].into_iter().collect();
        let b: RumorSet = [r(1, 1), r(2, 2), r(3, 3)].into_iter().collect();
        let added = a.union(&b);
        assert_eq!(added, 2);
        assert_eq!(a.len(), 4);
        assert!(a.is_superset_of(&b));
    }

    #[test]
    fn union_is_idempotent() {
        let mut a: RumorSet = [r(0, 0)].into_iter().collect();
        let b: RumorSet = [r(0, 0), r(1, 1)].into_iter().collect();
        a.union(&b);
        let len = a.len();
        assert_eq!(a.union(&b), 0);
        assert_eq!(a.len(), len);
    }

    #[test]
    fn iteration_is_origin_ordered() {
        let set: RumorSet = [r(3, 3), r(1, 1), r(2, 2)].into_iter().collect();
        let origins: Vec<_> = set.origins().collect();
        assert_eq!(origins, vec![ProcessId(1), ProcessId(2), ProcessId(3)]);
        let rumors: Vec<_> = set.iter().collect();
        assert_eq!(rumors, vec![r(1, 1), r(2, 2), r(3, 3)]);
    }

    #[test]
    fn singleton_contains_only_its_rumor() {
        let set = RumorSet::singleton(r(5, 50));
        assert_eq!(set.len(), 1);
        assert!(set.contains_origin(ProcessId(5)));
        assert!(!set.contains_origin(ProcessId(4)));
    }

    #[test]
    fn superset_checks() {
        let big: RumorSet = [r(0, 0), r(1, 1), r(2, 2)].into_iter().collect();
        let small: RumorSet = [r(1, 1)].into_iter().collect();
        assert!(big.is_superset_of(&small));
        assert!(!small.is_superset_of(&big));
        assert!(big.is_superset_of(&RumorSet::new()));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(r(2, 7).to_string(), "r(p2, 7)");
    }
}
