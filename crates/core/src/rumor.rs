//! Rumors and rumor collections.

use std::borrow::Cow;
use std::fmt;

use agossip_sim::ProcessId;

use crate::bits::{trimmed, WordSet, WordSetIter, ADAPTIVE_SPARSE_LIMIT};

/// A rumor: the unit of information spread by gossip.
///
/// In the paper a rumor `r_p` is an opaque value known initially only to its
/// originating process `p`. We carry a 64-bit payload alongside the origin so
/// that higher layers (notably the consensus protocols of Section 6, where
/// rumors are votes) can transport application data through any gossip
/// protocol unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rumor {
    /// The process at which the rumor initiated.
    pub origin: ProcessId,
    /// Application payload (for plain gossip experiments this is an arbitrary
    /// tag; for consensus it encodes a vote).
    pub payload: u64,
}

impl Rumor {
    /// Creates a rumor originating at `origin` with the given payload.
    pub fn new(origin: ProcessId, payload: u64) -> Self {
        Rumor { origin, payload }
    }
}

impl fmt::Display for Rumor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r({}, {})", self.origin, self.payload)
    }
}

/// A collection of rumors, at most one per origin.
///
/// The paper's sets `V(p)` never contain two distinct rumors from the same
/// origin (each process has exactly one initial rumor), so the collection is
/// keyed by origin over the fixed universe `0..n`. The representation is
/// *adaptive* (see the `bits` module): a set starts as a sorted sparse
/// `(origin, payload)` entry list — 16 bytes per rumor, independent of `n`,
/// so a fresh process at `n = 65 536` holds its singleton in one small
/// allocation instead of a `Θ(n)` payload array — and promotes past
/// [`ADAPTIVE_SPARSE_LIMIT`] entries to the dense form: a word-packed
/// presence bitset plus payloads. Dense payloads are *identity-compressed*:
/// the gossip experiments tag every rumor with its origin index
/// (`payload == origin`), and as long as that holds no payload array is
/// materialized at all — only consensus, whose payloads are votes, pays for
/// an explicit array.
///
/// Both representations expose identical semantics: [`RumorSet::union`]
/// deltas, membership, and iteration in ascending origin order — the same
/// order the historical `BTreeMap<ProcessId, u64>` representation produced,
/// so every metric downstream is bit-identical (pinned by
/// `tests/tests/seed_equivalence.rs` and the representation-differential
/// proptests in `tests/tests/rumor_differential.rs` /
/// `tests/tests/adaptive_differential.rs`).
///
/// Insertion keeps the first payload seen for an origin; in a correct
/// execution there is only ever one.
#[derive(Clone)]
pub struct RumorSet {
    repr: Repr,
    len: usize,
}

#[derive(Clone)]
enum Repr {
    /// Sorted by origin, no duplicate origins.
    Sparse(Vec<(u32, u64)>),
    /// Word-packed presence plus payloads.
    Dense {
        present: WordSet,
        payloads: Payloads,
    },
}

/// Dense payload storage.
#[derive(Clone)]
enum Payloads {
    /// Every present origin's payload equals its own index — the invariant
    /// all plain gossip runs maintain — so no storage is needed.
    Identity,
    /// `v[origin]` is meaningful iff the presence bit for `origin` is set;
    /// kept at `64 ×` the presence word count.
    Explicit(Vec<u64>),
}

impl Payloads {
    fn get(&self, index: usize) -> u64 {
        match self {
            Payloads::Identity => index as u64,
            Payloads::Explicit(v) => v[index],
        }
    }

    /// Records `payload` for `index`; `slots` is the presence capacity in
    /// bits (≥ `index + 1`). Stays [`Payloads::Identity`] when the payload
    /// already matches the index.
    fn set(&mut self, index: usize, payload: u64, slots: usize) {
        match self {
            Payloads::Identity if payload == index as u64 => {}
            Payloads::Identity => {
                let mut v: Vec<u64> = (0..slots as u64).collect();
                v[index] = payload;
                *self = Payloads::Explicit(v);
            }
            Payloads::Explicit(v) => {
                if v.len() < slots {
                    v.extend(v.len() as u64..slots as u64);
                }
                v[index] = payload;
            }
        }
    }
}

impl Default for RumorSet {
    fn default() -> Self {
        RumorSet {
            repr: Repr::Sparse(Vec::new()),
            len: 0,
        }
    }
}

impl RumorSet {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a collection containing a single rumor.
    pub fn singleton(rumor: Rumor) -> Self {
        let mut set = Self::new();
        set.insert(rumor);
        set
    }

    /// Switches to the dense representation (no-op if already dense).
    fn promote(&mut self) {
        if let Repr::Sparse(entries) = &mut self.repr {
            let entries = std::mem::take(entries);
            let mut present = WordSet::new();
            if let Some(&(max, _)) = entries.last() {
                present.ensure_words(max as usize / 64 + 1);
            }
            for &(o, _) in &entries {
                present.insert(o as usize);
            }
            let payloads = if entries.iter().all(|&(o, p)| p == o as u64) {
                Payloads::Identity
            } else {
                let slots = present.words().len() * 64;
                let mut v: Vec<u64> = (0..slots as u64).collect();
                for &(o, p) in &entries {
                    v[o as usize] = p;
                }
                Payloads::Explicit(v)
            };
            self.repr = Repr::Dense { present, payloads };
        }
    }

    /// Forces the dense representation regardless of cardinality. A hook
    /// for the representation-differential tests and benches; never needed
    /// in protocol code.
    #[doc(hidden)]
    pub fn force_dense(&mut self) {
        self.promote();
    }

    /// True if the set is currently in the dense representation (test
    /// hook).
    #[doc(hidden)]
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, Repr::Dense { .. })
    }

    /// Inserts a rumor. Returns `true` if the origin was not present before.
    pub fn insert(&mut self, rumor: Rumor) -> bool {
        let index = rumor.origin.index();
        match &mut self.repr {
            Repr::Sparse(entries) => {
                let Ok(id) = u32::try_from(index) else {
                    // Beyond the sparse id range: fall through to dense,
                    // which handles any index (as the historical
                    // representation did).
                    self.promote();
                    return self.insert(rumor);
                };
                match entries.binary_search_by_key(&id, |&(o, _)| o) {
                    Ok(_) => false,
                    Err(pos) => {
                        entries.insert(pos, (id, rumor.payload));
                        self.len += 1;
                        if entries.len() > ADAPTIVE_SPARSE_LIMIT {
                            self.promote();
                        }
                        true
                    }
                }
            }
            Repr::Dense { present, payloads } => {
                if !present.insert(index) {
                    return false;
                }
                payloads.set(index, rumor.payload, present.words().len() * 64);
                self.len += 1;
                true
            }
        }
    }

    /// Merges every rumor of `other` into `self`. Returns the number of new
    /// origins added.
    pub fn union(&mut self, other: &RumorSet) -> usize {
        if matches!(&self.repr, Repr::Sparse(_)) && matches!(&other.repr, Repr::Dense { .. }) {
            // The other side has already outgrown the sparse form; so will
            // the union.
            self.promote();
        }
        let added = match (&mut self.repr, &other.repr) {
            (Repr::Sparse(own), Repr::Sparse(theirs)) => merge_entries(own, theirs),
            (Repr::Dense { present, payloads }, Repr::Sparse(theirs)) => {
                let mut added = 0usize;
                for &(o, p) in theirs {
                    let index = o as usize;
                    if present.insert(index) {
                        payloads.set(index, p, present.words().len() * 64);
                        added += 1;
                    }
                }
                added
            }
            (
                Repr::Dense { present, payloads },
                Repr::Dense {
                    present: other_present,
                    payloads: other_payloads,
                },
            ) => {
                if let (Payloads::Identity, Payloads::Identity) = (&*payloads, other_payloads) {
                    // The gossip hot path: membership OR, no payload work.
                    present.union(other_present)
                } else {
                    let mut added = 0usize;
                    for (w, &word) in other_present.words().iter().enumerate() {
                        let mut fresh = present.or_word(w, word);
                        if fresh == 0 {
                            continue;
                        }
                        added += fresh.count_ones() as usize;
                        let slots = present.words().len() * 64;
                        while fresh != 0 {
                            let index = w * 64 + fresh.trailing_zeros() as usize;
                            payloads.set(index, other_payloads.get(index), slots);
                            fresh &= fresh - 1;
                        }
                    }
                    added
                }
            }
            (Repr::Sparse(_), Repr::Dense { .. }) => unreachable!("promoted above"),
        };
        self.len += added;
        if let Repr::Sparse(entries) = &self.repr {
            if entries.len() > ADAPTIVE_SPARSE_LIMIT {
                self.promote();
            }
        }
        added
    }

    /// Merges a borrowed wire view (see [`crate::codec_view`]) into `self`,
    /// producing exactly the contents that decoding the view's frame and
    /// calling [`RumorSet::union`] would — without materializing the
    /// sender's set. A dense view's word region is OR-ed straight into the
    /// presence bitmap; with identity payloads on both sides no payload
    /// work happens at all. Returns the number of new origins.
    pub fn union_view(&mut self, view: &crate::codec_view::RumorSetView<'_>) -> usize {
        use crate::codec_view::RumorViewRepr;
        match view.repr() {
            RumorViewRepr::Sparse { .. } => {
                let mut added = 0usize;
                for rumor in view.iter() {
                    added += self.insert(rumor) as usize;
                }
                added
            }
            RumorViewRepr::Dense { words, payloads } => {
                // The view outgrew the sparse wire form; so will the union.
                self.promote();
                let Repr::Dense {
                    present,
                    payloads: own,
                } = &mut self.repr
                else {
                    return 0;
                };
                let added = if view.identity() && matches!(own, Payloads::Identity) {
                    // The gossip hot path: membership OR, no payload work.
                    present.or_le_words(words)
                } else {
                    let mut added = 0usize;
                    let mut cursor: &[u8] = payloads;
                    for (w, chunk) in words.chunks_exact(8).enumerate() {
                        let Some(arr) = chunk.first_chunk::<8>() else {
                            break;
                        };
                        let word = u64::from_le_bytes(*arr);
                        if word == 0 {
                            continue;
                        }
                        let fresh = present.or_word(w, word);
                        added += fresh.count_ones() as usize;
                        let mut bits = word;
                        while bits != 0 {
                            let low = bits & bits.wrapping_neg();
                            let index = w * 64 + low.trailing_zeros() as usize;
                            bits ^= low;
                            let Ok((payload, used)) = crate::codec::read_varint(cursor) else {
                                break;
                            };
                            cursor = cursor.get(used..).unwrap_or(&[]);
                            if fresh & low != 0 {
                                own.set(index, payload, present.words().len() * 64);
                            }
                        }
                    }
                    added
                };
                self.len += added;
                added
            }
        }
    }

    /// True if `self` contains every rumor of the borrowed wire view — the
    /// same answer [`RumorSet::is_superset_of`] gives for the decoded frame,
    /// with no allocation.
    pub fn is_superset_of_view(&self, view: &crate::codec_view::RumorSetView<'_>) -> bool {
        use crate::codec_view::RumorViewRepr;
        match view.repr() {
            RumorViewRepr::Sparse { .. } => {
                view.len() <= self.len && view.iter().all(|r| self.contains_origin(r.origin))
            }
            RumorViewRepr::Dense { words, .. } => match &self.repr {
                Repr::Dense { present, .. } => {
                    let own = present.words();
                    words.chunks_exact(8).enumerate().all(|(w, chunk)| {
                        let word = chunk
                            .first_chunk::<8>()
                            .map(|arr| u64::from_le_bytes(*arr))
                            .unwrap_or(0);
                        word & !own.get(w).copied().unwrap_or(0) == 0
                    })
                }
                Repr::Sparse(_) => {
                    view.len() <= self.len && view.iter().all(|r| self.contains_origin(r.origin))
                }
            },
        }
    }

    /// True if a rumor originating at `origin` is present.
    pub fn contains_origin(&self, origin: ProcessId) -> bool {
        match &self.repr {
            Repr::Sparse(entries) => u32::try_from(origin.index())
                .is_ok_and(|id| entries.binary_search_by_key(&id, |&(o, _)| o).is_ok()),
            Repr::Dense { present, .. } => present.contains(origin.index()),
        }
    }

    /// Returns the rumor originating at `origin`, if present.
    pub fn get(&self, origin: ProcessId) -> Option<Rumor> {
        match &self.repr {
            Repr::Sparse(entries) => {
                let id = u32::try_from(origin.index()).ok()?;
                entries
                    .binary_search_by_key(&id, |&(o, _)| o)
                    .ok()
                    .map(|pos| Rumor {
                        origin,
                        payload: entries[pos].1,
                    })
            }
            Repr::Dense { present, payloads } => present.contains(origin.index()).then(|| Rumor {
                origin,
                payload: payloads.get(origin.index()),
            }),
        }
    }

    /// Number of distinct rumors held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no rumor is held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over the rumors in origin order.
    pub fn iter(&self) -> impl Iterator<Item = Rumor> + '_ {
        match &self.repr {
            Repr::Sparse(entries) => RumorIter::Sparse(entries.iter()),
            Repr::Dense { present, payloads } => RumorIter::Dense {
                bits: present.iter(),
                payloads,
            },
        }
    }

    /// Iterates over the origins in order.
    pub fn origins(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.iter().map(|r| r.origin)
    }

    /// True if `self` contains every rumor of `other`.
    pub fn is_superset_of(&self, other: &RumorSet) -> bool {
        match (&self.repr, &other.repr) {
            (_, Repr::Sparse(theirs)) => theirs
                .iter()
                .all(|&(o, _)| self.contains_origin(ProcessId(o as usize))),
            (
                Repr::Dense { present, .. },
                Repr::Dense {
                    present: other_present,
                    ..
                },
            ) => present.is_superset_of(other_present),
            (
                Repr::Sparse(_),
                Repr::Dense {
                    present: other_present,
                    ..
                },
            ) => {
                other.len <= self.len
                    && other_present
                        .iter()
                        .all(|i| self.contains_origin(ProcessId(i)))
            }
        }
    }

    /// The presence bitmap as trimmed dense words (low word first) — for the
    /// wire codec's dense section. Borrowed when the set is already dense,
    /// materialized when sparse, so the bytes on the wire are identical
    /// whichever representation the set happens to be in.
    pub(crate) fn dense_words(&self) -> Cow<'_, [u64]> {
        match &self.repr {
            Repr::Sparse(entries) => {
                let Some(&(max, _)) = entries.last() else {
                    return Cow::Owned(Vec::new());
                };
                let mut words = vec![0u64; max as usize / 64 + 1];
                for &(o, _) in entries {
                    words[o as usize / 64] |= 1 << (o % 64);
                }
                Cow::Owned(words)
            }
            Repr::Dense { present, .. } => Cow::Borrowed(trimmed(present.words())),
        }
    }
}

/// Merges sorted `theirs` into sorted `own` (both keyed by origin,
/// duplicate free); an origin already present keeps its payload. Returns
/// the number of new origins.
fn merge_entries(own: &mut Vec<(u32, u64)>, theirs: &[(u32, u64)]) -> usize {
    if theirs.is_empty() {
        return 0;
    }
    // Fast path: everything new lands past the current tail.
    if own.last().is_none_or(|&(tail, _)| tail < theirs[0].0) {
        own.extend_from_slice(theirs);
        return theirs.len();
    }
    let mut merged = Vec::with_capacity(own.len() + theirs.len());
    let (mut i, mut j, mut added) = (0usize, 0usize, 0usize);
    while i < own.len() && j < theirs.len() {
        match own[i].0.cmp(&theirs[j].0) {
            std::cmp::Ordering::Less => {
                merged.push(own[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(theirs[j]);
                j += 1;
                added += 1;
            }
            std::cmp::Ordering::Equal => {
                // First payload wins.
                merged.push(own[i]);
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&own[i..]);
    added += theirs.len() - j;
    merged.extend_from_slice(&theirs[j..]);
    *own = merged;
    added
}

enum RumorIter<'a> {
    Sparse(std::slice::Iter<'a, (u32, u64)>),
    Dense {
        bits: WordSetIter<'a>,
        payloads: &'a Payloads,
    },
}

impl Iterator for RumorIter<'_> {
    type Item = Rumor;

    fn next(&mut self) -> Option<Rumor> {
        match self {
            RumorIter::Sparse(entries) => entries
                .next()
                .map(|&(o, p)| Rumor::new(ProcessId(o as usize), p)),
            RumorIter::Dense { bits, payloads } => bits
                .next()
                .map(|index| Rumor::new(ProcessId(index), payloads.get(index))),
        }
    }
}

impl PartialEq for RumorSet {
    fn eq(&self, other: &Self) -> bool {
        // Representation- and capacity-insensitive: two sets holding the
        // same rumors are equal no matter which form each is in or how much
        // backing storage each has grown.
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for RumorSet {}

impl fmt::Debug for RumorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map()
            .entries(self.iter().map(|r| (r.origin, r.payload)))
            .finish()
    }
}

impl FromIterator<Rumor> for RumorSet {
    fn from_iter<T: IntoIterator<Item = Rumor>>(iter: T) -> Self {
        let mut set = RumorSet::new();
        for r in iter {
            set.insert(r);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(origin: usize, payload: u64) -> Rumor {
        Rumor::new(ProcessId(origin), payload)
    }

    #[test]
    fn insert_and_lookup() {
        let mut set = RumorSet::new();
        assert!(set.is_empty());
        assert!(set.insert(r(1, 10)));
        assert!(!set.insert(r(1, 99)), "second rumor per origin is ignored");
        assert_eq!(set.len(), 1);
        assert!(set.contains_origin(ProcessId(1)));
        assert_eq!(set.get(ProcessId(1)), Some(r(1, 10)));
        assert_eq!(set.get(ProcessId(2)), None);
    }

    #[test]
    fn union_counts_new_origins() {
        let mut a: RumorSet = [r(0, 0), r(1, 1)].into_iter().collect();
        let b: RumorSet = [r(1, 1), r(2, 2), r(3, 3)].into_iter().collect();
        let added = a.union(&b);
        assert_eq!(added, 2);
        assert_eq!(a.len(), 4);
        assert!(a.is_superset_of(&b));
    }

    #[test]
    fn union_is_idempotent() {
        let mut a: RumorSet = [r(0, 0)].into_iter().collect();
        let b: RumorSet = [r(0, 0), r(1, 1)].into_iter().collect();
        a.union(&b);
        let len = a.len();
        assert_eq!(a.union(&b), 0);
        assert_eq!(a.len(), len);
    }

    #[test]
    fn union_keeps_first_payload_per_origin() {
        let mut a: RumorSet = [r(0, 7)].into_iter().collect();
        let b: RumorSet = [r(0, 99), r(1, 1)].into_iter().collect();
        assert_eq!(a.union(&b), 1);
        assert_eq!(a.get(ProcessId(0)), Some(r(0, 7)));
        assert_eq!(a.get(ProcessId(1)), Some(r(1, 1)));
    }

    #[test]
    fn iteration_is_origin_ordered() {
        let set: RumorSet = [r(3, 3), r(1, 1), r(2, 2)].into_iter().collect();
        let origins: Vec<_> = set.origins().collect();
        assert_eq!(origins, vec![ProcessId(1), ProcessId(2), ProcessId(3)]);
        let rumors: Vec<_> = set.iter().collect();
        assert_eq!(rumors, vec![r(1, 1), r(2, 2), r(3, 3)]);
    }

    #[test]
    fn iteration_crosses_word_boundaries_in_order() {
        let set: RumorSet = [r(200, 200), r(63, 63), r(64, 64), r(0, 0)]
            .into_iter()
            .collect();
        let origins: Vec<_> = set.origins().map(|p| p.index()).collect();
        assert_eq!(origins, vec![0, 63, 64, 200]);
        assert_eq!(set.len(), 4);
        assert_eq!(set.get(ProcessId(200)), Some(r(200, 200)));
    }

    #[test]
    fn singleton_contains_only_its_rumor() {
        let set = RumorSet::singleton(r(5, 50));
        assert_eq!(set.len(), 1);
        assert!(set.contains_origin(ProcessId(5)));
        assert!(!set.contains_origin(ProcessId(4)));
        assert!(!set.is_dense(), "a singleton stays sparse");
    }

    #[test]
    fn superset_checks() {
        let big: RumorSet = [r(0, 0), r(1, 1), r(2, 2)].into_iter().collect();
        let small: RumorSet = [r(1, 1)].into_iter().collect();
        assert!(big.is_superset_of(&small));
        assert!(!small.is_superset_of(&big));
        assert!(big.is_superset_of(&RumorSet::new()));
    }

    #[test]
    fn equality_ignores_representation() {
        // Same content built in different insertion orders.
        let high_first: RumorSet = [r(300, 300), r(1, 1)].into_iter().collect();
        let low_first: RumorSet = [r(1, 1), r(300, 300)].into_iter().collect();
        assert_eq!(high_first, low_first);
        // A force-promoted set equals its sparse twin, both ways.
        let mut grown = RumorSet::singleton(r(1, 1));
        grown.force_dense();
        assert!(grown.is_dense());
        assert_eq!(grown, RumorSet::singleton(r(1, 1)));
        assert_eq!(RumorSet::singleton(r(1, 1)), grown);
        // Different payload for the same origin is a real difference.
        assert_ne!(RumorSet::singleton(r(1, 1)), RumorSet::singleton(r(1, 2)));
    }

    #[test]
    fn promotion_happens_past_the_crossover_and_preserves_content() {
        let mut set = RumorSet::new();
        for i in 0..=ADAPTIVE_SPARSE_LIMIT {
            set.insert(r(2 * i, (2 * i) as u64));
        }
        assert!(set.is_dense(), "one past the limit promotes");
        assert_eq!(set.len(), ADAPTIVE_SPARSE_LIMIT + 1);
        let origins: Vec<usize> = set.origins().map(|p| p.index()).collect();
        let want: Vec<usize> = (0..=ADAPTIVE_SPARSE_LIMIT).map(|i| 2 * i).collect();
        assert_eq!(origins, want);
        assert_eq!(set.get(ProcessId(4)), Some(r(4, 4)));
    }

    #[test]
    fn non_identity_payloads_survive_promotion_and_dense_union() {
        // Payloads that do NOT equal their origin (the consensus case).
        let mut set = RumorSet::new();
        for i in 0..=ADAPTIVE_SPARSE_LIMIT {
            set.insert(r(i, (i % 2) as u64));
        }
        assert!(set.is_dense());
        for i in 0..=ADAPTIVE_SPARSE_LIMIT {
            assert_eq!(set.get(ProcessId(i)), Some(r(i, (i % 2) as u64)));
        }
        // A dense union carrying a non-identity payload lands intact.
        let mut incoming = RumorSet::singleton(r(400, 9));
        incoming.force_dense();
        assert_eq!(set.union(&incoming), 1);
        assert_eq!(set.get(ProcessId(400)), Some(r(400, 9)));
    }

    #[test]
    fn union_agrees_across_representation_pairings() {
        let a_rumors = [r(1, 1), r(5, 5), r(130, 130)];
        let b_rumors = [r(0, 0), r(5, 5), r(131, 131)];
        for a_dense in [false, true] {
            for b_dense in [false, true] {
                let mut a: RumorSet = a_rumors.into_iter().collect();
                let mut b: RumorSet = b_rumors.into_iter().collect();
                if a_dense {
                    a.force_dense();
                }
                if b_dense {
                    b.force_dense();
                }
                assert_eq!(a.union(&b), 2, "({a_dense}, {b_dense})");
                assert_eq!(a.union(&b), 0);
                let origins: Vec<usize> = a.origins().map(|p| p.index()).collect();
                assert_eq!(origins, vec![0, 1, 5, 130, 131]);
                assert!(a.is_superset_of(&b));
                assert!(!b.is_superset_of(&a));
            }
        }
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(r(2, 7).to_string(), "r(p2, 7)");
    }

    #[test]
    fn debug_lists_rumors_in_origin_order() {
        let set: RumorSet = [r(2, 20), r(0, 5)].into_iter().collect();
        let dbg = format!("{set:?}");
        assert!(dbg.contains("ProcessId(0)"), "{dbg}");
        assert!(dbg.find("ProcessId(0)") < dbg.find("ProcessId(2)"), "{dbg}");
    }
}
