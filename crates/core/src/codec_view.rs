//! Zero-copy decode: borrowed message *views* over an encoded frame.
//!
//! [`WireCodec::decode`] materializes a
//! fresh owned message per frame — for the set-carrying protocols that means
//! a fresh `Vec<u64>` of bitmap words, possibly a payload vector, and an
//! `Arc` allocation, *per received frame*. On the live runtime's hot path
//! the receiver immediately unions that owned message into its own state and
//! drops it, so all of those allocations are pure churn.
//!
//! [`WireDecodeView::decode_view`] replaces that with a validating parse
//! that returns a **view**: a tiny struct of borrowed sub-slices of the
//! input buffer (the sparse entry region, the dense word region, the payload
//! varint region). Validation is exhaustive — a view is only handed out for
//! a frame that [`WireCodec::decode`] would
//! also accept, with the *same typed error* otherwise (pinned by the
//! differential proptests in `tests/tests/props_codec.rs`) — so downstream
//! consumers can fold the view straight into their collections:
//! [`RumorSet::union_view`](crate::rumor::RumorSet::union_view) ORs the
//! dense word region into the receiver's bitmap without ever materializing
//! the sender's set.
//!
//! Decoding never panics; this module is under the same `never-panic-decode`
//! lint policy as `codec.rs`.

use agossip_sim::ProcessId;

use crate::codec::{
    kind, read_header, read_varint, CodecError, Reader, WireCodec, MAX_WIRE_ID, TAG_DENSE,
    TAG_SPARSE,
};
use crate::ears::EarsMessage;
use crate::informed_list::InformedList;
use crate::rumor::{Rumor, RumorSet};
use crate::sears::SearsMessage;
use crate::sync_epidemic::SyncMessage;
use crate::tears::{TearsFlag, TearsMessage};
use crate::trivial::TrivialMessage;

/// Messages with a borrowed-slice decode path in addition to the owned one.
///
/// The contract, pinned by differential proptests: for every byte string
/// `b`, `decode_view(b)` succeeds iff `decode(b)` succeeds, with the same
/// [`CodecError`] on failure, and on success
/// `Self::view_to_owned(&decode_view(b)?) == Self::decode(b)?`.
pub trait WireDecodeView: WireCodec {
    /// The borrowed view over one encoded frame.
    type View<'a>;

    /// Validates `bytes` as one whole frame of this kind and returns a view
    /// borrowing from it. Never panics; never allocates.
    fn decode_view(bytes: &[u8]) -> Result<Self::View<'_>, CodecError>;

    /// Materializes the owned message a view describes (equals what
    /// [`WireCodec::decode`] returns for the same bytes).
    fn view_to_owned(view: &Self::View<'_>) -> Self;
}

// ---------------------------------------------------------------------------
// RumorSet section view
// ---------------------------------------------------------------------------

/// A validated, borrowed rumor-set section of an encoded frame.
pub struct RumorSetView<'a> {
    repr: RumorViewRepr<'a>,
    len: usize,
    identity: bool,
}

/// Which wire representation the section used, with its borrowed regions.
pub(crate) enum RumorViewRepr<'a> {
    /// `count` validated `(origin, payload)` varint pairs.
    Sparse { entries: &'a [u8] },
    /// Raw little-endian presence words plus the payload varints of the set
    /// bits in ascending order.
    Dense { words: &'a [u8], payloads: &'a [u8] },
}

impl<'a> RumorSetView<'a> {
    /// Number of rumors in the section.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the section holds no rumor.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True if every payload equals its origin index (the plain-gossip
    /// invariant; lets the union keep identity-compressed payloads).
    pub(crate) fn identity(&self) -> bool {
        self.identity
    }

    pub(crate) fn repr(&self) -> &RumorViewRepr<'a> {
        &self.repr
    }

    /// Iterates the rumors in ascending origin order (re-parsing the
    /// borrowed regions; the slices were validated at construction).
    pub fn iter(&self) -> RumorViewIter<'a> {
        match self.repr {
            RumorViewRepr::Sparse { entries } => RumorViewIter::Sparse { entries },
            RumorViewRepr::Dense { words, payloads } => RumorViewIter::Dense {
                words,
                payloads,
                w: 0,
                bits: first_word(words),
            },
        }
    }

    /// Materializes the owned set (exactly what the owned decoder builds).
    pub fn to_set(&self) -> RumorSet {
        let mut set = RumorSet::new();
        for rumor in self.iter() {
            set.insert(rumor);
        }
        set
    }
}

fn first_word(words: &[u8]) -> u64 {
    words
        .first_chunk::<8>()
        .map(|arr| u64::from_le_bytes(*arr))
        .unwrap_or(0)
}

/// Iterator over the rumors of a [`RumorSetView`].
pub enum RumorViewIter<'a> {
    /// Walking the sparse entry region.
    Sparse {
        /// Remaining `(origin, payload)` varint pairs.
        entries: &'a [u8],
    },
    /// Walking the dense word and payload regions in step.
    Dense {
        /// The full little-endian word region.
        words: &'a [u8],
        /// Remaining payload varints.
        payloads: &'a [u8],
        /// Current word index.
        w: usize,
        /// Unconsumed bits of the current word.
        bits: u64,
    },
}

impl Iterator for RumorViewIter<'_> {
    type Item = Rumor;

    fn next(&mut self) -> Option<Rumor> {
        match self {
            RumorViewIter::Sparse { entries } => {
                if entries.is_empty() {
                    return None;
                }
                let (origin, used) = read_varint(entries).ok()?;
                *entries = entries.get(used..).unwrap_or(&[]);
                let (payload, used) = read_varint(entries).ok()?;
                *entries = entries.get(used..).unwrap_or(&[]);
                let origin = usize::try_from(origin).ok()?;
                Some(Rumor::new(ProcessId(origin), payload))
            }
            RumorViewIter::Dense {
                words,
                payloads,
                w,
                bits,
            } => {
                while *bits == 0 {
                    *w += 1;
                    let chunk = words.get(*w * 8..*w * 8 + 8)?;
                    *bits = first_word(chunk);
                }
                // lint:allow(no-unchecked-narrowing): trailing_zeros of a u64 is at most 63
                let origin = *w * 64 + bits.trailing_zeros() as usize;
                *bits &= *bits - 1;
                let (payload, used) = read_varint(payloads).ok()?;
                *payloads = payloads.get(used..).unwrap_or(&[]);
                Some(Rumor::new(ProcessId(origin), payload))
            }
        }
    }
}

/// Parses and validates one rumor-set section, mirroring the owned
/// decoder's checks (and error order) exactly.
pub(crate) fn read_rumor_view<'a>(reader: &mut Reader<'a>) -> Result<RumorSetView<'a>, CodecError> {
    match reader.u8()? {
        TAG_SPARSE => {
            let count = reader.varint()?;
            if count > MAX_WIRE_ID {
                return Err(CodecError::IdOutOfRange(count));
            }
            let start = reader.pos();
            let mut identity = true;
            for _ in 0..count {
                let origin = reader.id()?;
                let payload = reader.varint()?;
                identity &= payload == origin as u64;
            }
            Ok(RumorSetView {
                repr: RumorViewRepr::Sparse {
                    entries: reader.since(start),
                },
                len: usize::try_from(count).map_err(|_| CodecError::IdOutOfRange(count))?,
                identity,
            })
        }
        TAG_DENSE => {
            let word_count = reader.word_count()?;
            let words = reader.take(word_count * 8)?;
            let payload_start = reader.pos();
            let mut len = 0usize;
            let mut identity = true;
            for (w, chunk) in words.chunks_exact(8).enumerate() {
                let Some(arr) = chunk.first_chunk::<8>() else {
                    break;
                };
                let mut bits = u64::from_le_bytes(*arr);
                while bits != 0 {
                    // lint:allow(no-unchecked-narrowing): trailing_zeros of a u64 is at most 63
                    let origin = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let payload = reader.varint()?;
                    identity &= payload == origin as u64;
                    len += 1;
                }
            }
            Ok(RumorSetView {
                repr: RumorViewRepr::Dense {
                    words,
                    payloads: reader.since(payload_start),
                },
                len,
                identity,
            })
        }
        tag => Err(CodecError::BadSectionTag(tag)),
    }
}

// ---------------------------------------------------------------------------
// InformedList section view
// ---------------------------------------------------------------------------

/// A validated, borrowed informed-list section of an encoded frame.
pub struct InformedListView<'a> {
    repr: InformedViewRepr<'a>,
    len: usize,
}

/// Wire representation of an informed-list section, with borrowed regions.
pub(crate) enum InformedViewRepr<'a> {
    /// Validated `(origin, target)` varint pairs.
    Sparse { entries: &'a [u8] },
    /// Validated `(origin, word_count, words)` rows.
    Dense { rows: &'a [u8] },
}

impl<'a> InformedListView<'a> {
    /// Number of `(origin, target)` pairs in the section.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the section holds no pair.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub(crate) fn repr(&self) -> &InformedViewRepr<'a> {
        &self.repr
    }

    /// Iterates the dense rows as `(origin, little-endian word bytes)`.
    /// Empty for a sparse section.
    pub(crate) fn rows(&self) -> InformedRowIter<'a> {
        match self.repr {
            InformedViewRepr::Sparse { .. } => InformedRowIter { rows: &[] },
            InformedViewRepr::Dense { rows } => InformedRowIter { rows },
        }
    }

    /// Iterates the `(origin, target)` pairs in encoding order.
    pub fn iter(&self) -> InformedViewIter<'a> {
        InformedViewIter {
            inner: match self.repr {
                InformedViewRepr::Sparse { entries } => InformedViewIterInner::Sparse { entries },
                InformedViewRepr::Dense { rows } => InformedViewIterInner::Dense {
                    rows: InformedRowIter { rows },
                    row: None,
                },
            },
        }
    }

    /// Materializes the owned list (exactly what the owned decoder builds).
    pub fn to_list(&self) -> InformedList {
        let mut list = InformedList::new();
        for (origin, target) in self.iter() {
            list.insert(origin, target);
        }
        list
    }
}

/// One dense informed-list row: the rumor origin and the row's raw
/// little-endian target words.
pub(crate) struct InformedRowView<'a> {
    /// The rumor origin this row covers targets for.
    pub(crate) origin: usize,
    /// The row's target bitmap as raw little-endian word bytes.
    pub(crate) words: &'a [u8],
}

/// Iterator over the rows of a dense informed-list section.
pub(crate) struct InformedRowIter<'a> {
    rows: &'a [u8],
}

impl<'a> Iterator for InformedRowIter<'a> {
    type Item = InformedRowView<'a>;

    fn next(&mut self) -> Option<InformedRowView<'a>> {
        if self.rows.is_empty() {
            return None;
        }
        let (origin, used) = read_varint(self.rows).ok()?;
        self.rows = self.rows.get(used..).unwrap_or(&[]);
        let (word_count, used) = read_varint(self.rows).ok()?;
        self.rows = self.rows.get(used..).unwrap_or(&[]);
        let bytes = usize::try_from(word_count).ok()?.checked_mul(8)?;
        let words = self.rows.get(..bytes)?;
        self.rows = self.rows.get(bytes..).unwrap_or(&[]);
        Some(InformedRowView {
            origin: usize::try_from(origin).ok()?,
            words,
        })
    }
}

/// Iterator over the `(origin, target)` pairs of an [`InformedListView`].
pub struct InformedViewIter<'a> {
    inner: InformedViewIterInner<'a>,
}

enum InformedViewIterInner<'a> {
    /// Walking the sparse entry region.
    Sparse {
        /// Remaining `(origin, target)` varint pairs.
        entries: &'a [u8],
    },
    /// Walking the dense rows, one bit at a time.
    Dense {
        /// Remaining rows.
        rows: InformedRowIter<'a>,
        /// The row in progress: `(origin, words, word index, unconsumed bits)`.
        row: Option<(usize, &'a [u8], usize, u64)>,
    },
}

impl Iterator for InformedViewIter<'_> {
    type Item = (ProcessId, ProcessId);

    fn next(&mut self) -> Option<(ProcessId, ProcessId)> {
        match &mut self.inner {
            InformedViewIterInner::Sparse { entries } => {
                if entries.is_empty() {
                    return None;
                }
                let (origin, used) = read_varint(entries).ok()?;
                *entries = entries.get(used..).unwrap_or(&[]);
                let (target, used) = read_varint(entries).ok()?;
                *entries = entries.get(used..).unwrap_or(&[]);
                Some((
                    ProcessId(usize::try_from(origin).ok()?),
                    ProcessId(usize::try_from(target).ok()?),
                ))
            }
            InformedViewIterInner::Dense { rows, row } => loop {
                if let Some((origin, words, w, bits)) = row {
                    if *bits != 0 {
                        // lint:allow(no-unchecked-narrowing): trailing_zeros of a u64 is at most 63
                        let target = *w * 64 + bits.trailing_zeros() as usize;
                        *bits &= *bits - 1;
                        return Some((ProcessId(*origin), ProcessId(target)));
                    }
                    *w += 1;
                    match words.get(*w * 8..*w * 8 + 8) {
                        Some(chunk) => *bits = first_word(chunk),
                        None => *row = None,
                    }
                    continue;
                }
                let next = rows.next()?;
                *row = Some((next.origin, next.words, 0, first_word(next.words)));
            },
        }
    }
}

/// Parses and validates one informed-list section, mirroring the owned
/// decoder's checks (and error order) exactly.
pub(crate) fn read_informed_view<'a>(
    reader: &mut Reader<'a>,
) -> Result<InformedListView<'a>, CodecError> {
    match reader.u8()? {
        TAG_SPARSE => {
            let count = reader.varint()?;
            if count > MAX_WIRE_ID {
                return Err(CodecError::IdOutOfRange(count));
            }
            let start = reader.pos();
            for _ in 0..count {
                reader.id()?;
                reader.id()?;
            }
            Ok(InformedListView {
                repr: InformedViewRepr::Sparse {
                    entries: reader.since(start),
                },
                len: usize::try_from(count).map_err(|_| CodecError::IdOutOfRange(count))?,
            })
        }
        TAG_DENSE => {
            let row_count = reader.varint()?;
            if row_count > MAX_WIRE_ID {
                return Err(CodecError::IdOutOfRange(row_count));
            }
            let start = reader.pos();
            let mut len = 0usize;
            for _ in 0..row_count {
                reader.id()?;
                let word_count = reader.word_count()?;
                let words = reader.take(word_count * 8)?;
                len += words
                    .chunks_exact(8)
                    // lint:allow(no-unchecked-narrowing): count_ones of a u64 is at most 64
                    .map(|chunk| first_word(chunk).count_ones() as usize)
                    .sum::<usize>();
            }
            Ok(InformedListView {
                repr: InformedViewRepr::Dense {
                    rows: reader.since(start),
                },
                len,
            })
        }
        tag => Err(CodecError::BadSectionTag(tag)),
    }
}

// ---------------------------------------------------------------------------
// Message views
// ---------------------------------------------------------------------------

/// Borrowed view of an encoded [`TrivialMessage`] (nothing to borrow).
pub struct TrivialView {
    /// The single rumor the message carries.
    pub rumor: Rumor,
}

/// Borrowed view of an encoded [`TearsMessage`].
pub struct TearsView<'a> {
    /// Message level.
    pub flag: TearsFlag,
    /// The sender's rumor collection at send time.
    pub rumors: RumorSetView<'a>,
}

/// Borrowed view of an encoded [`EarsMessage`].
pub struct EarsView<'a> {
    /// The sender's rumor collection at send time.
    pub rumors: RumorSetView<'a>,
    /// The sender's informed-list at send time.
    pub informed: InformedListView<'a>,
}

/// Borrowed view of an encoded [`SearsMessage`].
pub struct SearsView<'a> {
    /// The sender's rumor collection at send time.
    pub rumors: RumorSetView<'a>,
    /// The sender's informed-list at send time.
    pub informed: InformedListView<'a>,
}

/// Borrowed view of an encoded [`SyncMessage`].
pub struct SyncView<'a> {
    /// The sender's rumor collection at send time.
    pub rumors: RumorSetView<'a>,
}

impl WireDecodeView for TrivialMessage {
    type View<'a> = TrivialView;

    fn decode_view(bytes: &[u8]) -> Result<TrivialView, CodecError> {
        let mut reader = Reader::new(bytes);
        match read_header(&mut reader)? {
            kind::TRIVIAL => {}
            k => return Err(CodecError::BadKind(k)),
        }
        let origin = reader.id()?;
        let payload = reader.varint()?;
        reader.finish()?;
        Ok(TrivialView {
            rumor: Rumor::new(ProcessId(origin), payload),
        })
    }

    fn view_to_owned(view: &TrivialView) -> Self {
        TrivialMessage { rumor: view.rumor }
    }
}

impl WireDecodeView for TearsMessage {
    type View<'a> = TearsView<'a>;

    fn decode_view(bytes: &[u8]) -> Result<TearsView<'_>, CodecError> {
        let mut reader = Reader::new(bytes);
        let flag = match read_header(&mut reader)? {
            kind::TEARS_UP => TearsFlag::Up,
            kind::TEARS_DOWN => TearsFlag::Down,
            k => return Err(CodecError::BadKind(k)),
        };
        let rumors = read_rumor_view(&mut reader)?;
        reader.finish()?;
        Ok(TearsView { flag, rumors })
    }

    fn view_to_owned(view: &TearsView<'_>) -> Self {
        TearsMessage {
            rumors: std::sync::Arc::new(view.rumors.to_set()),
            flag: view.flag,
        }
    }
}

impl WireDecodeView for EarsMessage {
    type View<'a> = EarsView<'a>;

    fn decode_view(bytes: &[u8]) -> Result<EarsView<'_>, CodecError> {
        let mut reader = Reader::new(bytes);
        match read_header(&mut reader)? {
            kind::EARS => {}
            k => return Err(CodecError::BadKind(k)),
        }
        let rumors = read_rumor_view(&mut reader)?;
        let informed = read_informed_view(&mut reader)?;
        reader.finish()?;
        Ok(EarsView { rumors, informed })
    }

    fn view_to_owned(view: &EarsView<'_>) -> Self {
        EarsMessage {
            rumors: std::sync::Arc::new(view.rumors.to_set()),
            informed: std::sync::Arc::new(view.informed.to_list()),
        }
    }
}

impl WireDecodeView for SearsMessage {
    type View<'a> = SearsView<'a>;

    fn decode_view(bytes: &[u8]) -> Result<SearsView<'_>, CodecError> {
        let mut reader = Reader::new(bytes);
        match read_header(&mut reader)? {
            kind::SEARS => {}
            k => return Err(CodecError::BadKind(k)),
        }
        let rumors = read_rumor_view(&mut reader)?;
        let informed = read_informed_view(&mut reader)?;
        reader.finish()?;
        Ok(SearsView { rumors, informed })
    }

    fn view_to_owned(view: &SearsView<'_>) -> Self {
        SearsMessage {
            rumors: std::sync::Arc::new(view.rumors.to_set()),
            informed: std::sync::Arc::new(view.informed.to_list()),
        }
    }
}

impl WireDecodeView for SyncMessage {
    type View<'a> = SyncView<'a>;

    fn decode_view(bytes: &[u8]) -> Result<SyncView<'_>, CodecError> {
        let mut reader = Reader::new(bytes);
        match read_header(&mut reader)? {
            kind::SYNC => {}
            k => return Err(CodecError::BadKind(k)),
        }
        let rumors = read_rumor_view(&mut reader)?;
        reader.finish()?;
        Ok(SyncView { rumors })
    }

    fn view_to_owned(view: &SyncView<'_>) -> Self {
        SyncMessage {
            rumors: std::sync::Arc::new(view.rumors.to_set()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn rumors(origins: &[usize]) -> RumorSet {
        origins
            .iter()
            .map(|&o| Rumor::new(ProcessId(o), (o as u64) * 31 + 7))
            .collect()
    }

    fn informed(pairs: &[(usize, usize)]) -> InformedList {
        let mut list = InformedList::new();
        for &(o, t) in pairs {
            list.insert(ProcessId(o), ProcessId(t));
        }
        list
    }

    #[test]
    fn view_round_trips_match_owned_decode_for_every_kind() {
        let v = rumors(&[0, 3, 64, 130]);
        let i = informed(&[(0, 1), (3, 70), (130, 0)]);
        let tears = TearsMessage {
            rumors: Arc::new(v.clone()),
            flag: TearsFlag::Up,
        };
        let bytes = tears.encode();
        let view = TearsMessage::decode_view(&bytes).unwrap();
        assert_eq!(TearsMessage::view_to_owned(&view), tears);
        assert_eq!(view.rumors.len(), 4);

        let ears = EarsMessage {
            rumors: Arc::new(v.clone()),
            informed: Arc::new(i.clone()),
        };
        let bytes = ears.encode();
        let view = EarsMessage::decode_view(&bytes).unwrap();
        assert_eq!(EarsMessage::view_to_owned(&view), ears);
        assert_eq!(view.informed.len(), 3);

        let sears = SearsMessage {
            rumors: Arc::new(v.clone()),
            informed: Arc::new(i),
        };
        let bytes = sears.encode();
        assert_eq!(
            SearsMessage::view_to_owned(&SearsMessage::decode_view(&bytes).unwrap()),
            sears
        );

        let sync = SyncMessage {
            rumors: Arc::new(v),
        };
        let bytes = sync.encode();
        assert_eq!(
            SyncMessage::view_to_owned(&SyncMessage::decode_view(&bytes).unwrap()),
            sync
        );

        let trivial = TrivialMessage {
            rumor: Rumor::new(ProcessId(5), 42),
        };
        let bytes = trivial.encode();
        assert_eq!(
            TrivialMessage::view_to_owned(&TrivialMessage::decode_view(&bytes).unwrap()),
            trivial
        );
    }

    #[test]
    fn dense_sections_expose_identity_detection() {
        // Identity payloads (payload == origin) over a full universe: dense
        // on the wire, identity flag up.
        let identity: RumorSet = (0..300)
            .map(|o| Rumor::new(ProcessId(o), o as u64))
            .collect();
        let msg = SyncMessage {
            rumors: Arc::new(identity),
        };
        let bytes = msg.encode();
        let view = SyncMessage::decode_view(&bytes).unwrap();
        assert!(view.rumors.identity());
        assert!(matches!(view.rumors.repr(), RumorViewRepr::Dense { .. }));

        // One non-identity payload flips the flag.
        let mut off: RumorSet = (0..300)
            .map(|o| Rumor::new(ProcessId(o), o as u64))
            .collect();
        off = off
            .iter()
            .map(|r| {
                if r.origin.index() == 7 {
                    Rumor::new(r.origin, 999)
                } else {
                    r
                }
            })
            .collect();
        let msg = SyncMessage {
            rumors: Arc::new(off),
        };
        let bytes = msg.encode();
        let view = SyncMessage::decode_view(&bytes).unwrap();
        assert!(!view.rumors.identity());
    }

    #[test]
    fn view_iteration_matches_owned_iteration() {
        for set in [
            rumors(&[4095]),                           // sparse on the wire
            rumors(&(0..256).collect::<Vec<usize>>()), // dense on the wire
            RumorSet::new(),
        ] {
            let msg = SyncMessage {
                rumors: Arc::new(set),
            };
            let bytes = msg.encode();
            let view = SyncMessage::decode_view(&bytes).unwrap();
            let from_view: Vec<Rumor> = view.rumors.iter().collect();
            let owned: Vec<Rumor> = SyncMessage::decode(&bytes).unwrap().rumors.iter().collect();
            assert_eq!(from_view, owned);
            assert_eq!(view.rumors.len(), owned.len());
        }
        let list = informed(&[(0, 1), (3, 70), (130, 0), (3, 3)]);
        let msg = EarsMessage {
            rumors: Arc::new(RumorSet::new()),
            informed: Arc::new(list),
        };
        let bytes = msg.encode();
        let view = EarsMessage::decode_view(&bytes).unwrap();
        let from_view: Vec<_> = view.informed.iter().collect();
        let decoded = EarsMessage::decode(&bytes).unwrap();
        let owned_pairs: Vec<_> = decoded.informed.iter().collect();
        assert_eq!(from_view, owned_pairs);
    }

    #[test]
    fn view_decode_rejects_what_owned_decode_rejects() {
        let msg = TearsMessage {
            rumors: Arc::new(rumors(&(0..300).collect::<Vec<usize>>())),
            flag: TearsFlag::Down,
        };
        let encoded = msg.encode();
        for len in 0..encoded.len() {
            let owned = TearsMessage::decode(&encoded[..len]).unwrap_err();
            let viewed = TearsMessage::decode_view(&encoded[..len])
                .map(|_| ())
                .unwrap_err();
            assert_eq!(owned, viewed, "prefix of length {len}");
        }
        let mut trailing = encoded.clone();
        trailing.push(0);
        assert_eq!(
            TearsMessage::decode_view(&trailing)
                .map(|_| ())
                .unwrap_err(),
            CodecError::TrailingBytes(1)
        );
    }
}
