//! `sears` — Spamming Epidemic Asynchronous Rumor Spreading (paper Section 4).
//!
//! `sears` is `ears` with two modifications (Theorem 7):
//!
//! 1. in each local step, instead of a single random target, the process
//!    sends to `Θ(n^ε · log n)` targets chosen at random;
//! 2. the shut-down phase consists of a single step.
//!
//! The higher fan-out makes every rumor saturate the system after `O(1/ε)`
//! dissemination phases, giving a constant-time (w.r.t. `n`) gossip protocol:
//! for every constant `ε < 1` and `f < n/2`, time `O(n/(ε(n−f))·(d+δ))` and
//! messages `O(n^{2+ε}/(ε(n−f))·log n·(d+δ))`, w.h.p.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use agossip_sim::ProcessId;

use crate::codec_view::WireDecodeView;
use crate::engine::{broadcast, EncodedFrame, GossipCtx, GossipEngine};
use crate::informed_list::InformedList;
use crate::params::SearsParams;
use crate::rumor::RumorSet;

/// Wire message of `sears`; identical in structure to the `ears` message.
///
/// As for `ears`, both components are copy-on-write [`Arc`] snapshots: one
/// spamming step to `Θ(n^ε·log n)` targets shares a single payload
/// allocation across every destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearsMessage {
    /// The sender's rumor collection `V` at send time (shared snapshot).
    pub rumors: Arc<RumorSet>,
    /// The sender's informed-list `I` at send time (shared snapshot).
    pub informed: Arc<InformedList>,
}

/// The `sears` protocol state machine for one process.
#[derive(Debug, Clone)]
pub struct Sears {
    ctx: GossipCtx,
    params: SearsParams,
    fanout: usize,
    rumors: Arc<RumorSet>,
    informed: Arc<InformedList>,
    sleep_cnt: u64,
    steps: u64,
    rng: StdRng,
    /// Reusable buffer for the targets drawn in one spamming step.
    target_buf: Vec<ProcessId>,
}

impl Sears {
    /// Creates an instance with default parameters (`ε = 0.5`).
    pub fn new(ctx: GossipCtx) -> Self {
        Self::with_params(ctx, SearsParams::default())
    }

    /// Creates an instance with explicit parameters.
    pub fn with_params(ctx: GossipCtx, params: SearsParams) -> Self {
        let fanout = params.fanout(ctx.n);
        Sears {
            rumors: Arc::new(RumorSet::singleton(ctx.rumor)),
            informed: Arc::new(InformedList::new()),
            sleep_cnt: 0,
            steps: 0,
            fanout,
            rng: StdRng::seed_from_u64(ctx.seed),
            ctx,
            params,
            target_buf: Vec::new(),
        }
    }

    /// The per-step fan-out `Θ(n^ε · log n)`.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// The parameters in effect.
    pub fn params(&self) -> SearsParams {
        self.params
    }

    /// True if the process has completed its single shut-down step.
    pub fn is_asleep(&self) -> bool {
        // Theorem 7: "each process takes only one shut-down step".
        self.sleep_cnt >= 1
    }

    fn covered(&self) -> bool {
        self.informed.covers_all(&self.rumors, self.ctx.n)
    }
}

impl GossipEngine for Sears {
    type Msg = SearsMessage;

    fn deliver(&mut self, _from: ProcessId, msg: SearsMessage) {
        if !self.rumors.is_superset_of(&msg.rumors) {
            Arc::make_mut(&mut self.rumors).union(&msg.rumors);
        }
        if !self.informed.is_superset_of(&msg.informed) {
            Arc::make_mut(&mut self.informed).union(&msg.informed);
        }
    }

    fn deliver_encoded<F: EncodedFrame>(&mut self, frames: &[F]) -> usize {
        // Batched form of `deliver`: one borrowed-view decode walk per body,
        // folded into V and I with at most one copy-on-write per set per
        // batch — the first fresh view pays the `Arc` copy, every later
        // `make_mut` sees a unique handle.
        let mut errors = 0usize;
        let (mut unioning_rumors, mut unioning_informed) = (false, false);
        for frame in frames {
            match SearsMessage::decode_view(frame.body()) {
                Ok(view) => {
                    if unioning_rumors || !self.rumors.is_superset_of_view(&view.rumors) {
                        unioning_rumors = true;
                        Arc::make_mut(&mut self.rumors).union_view(&view.rumors);
                    }
                    if unioning_informed || !self.informed.is_superset_of_view(&view.informed) {
                        unioning_informed = true;
                        Arc::make_mut(&mut self.informed).union_view(&view.informed);
                    }
                }
                Err(_) => errors += 1,
            }
        }
        errors
    }

    fn local_step(&mut self, out: &mut Vec<(ProcessId, SearsMessage)>) {
        self.steps += 1;

        if self.covered() {
            self.sleep_cnt = self.sleep_cnt.saturating_add(1);
        } else {
            self.sleep_cnt = 0;
        }
        if self.sleep_cnt > 1 {
            // Shut-down already taken; stay silent until a new uncovered
            // rumor resets the counter.
            return;
        }

        // Every target of this step receives the same pre-step snapshot of
        // ⟨V, I⟩ (one shared allocation), exactly as when the message was
        // built once before the loop and deep-cloned per target.
        let msg = SearsMessage {
            rumors: Arc::clone(&self.rumors),
            informed: Arc::clone(&self.informed),
        };
        let mut targets = std::mem::take(&mut self.target_buf);
        targets.clear();
        targets.extend((0..self.fanout).map(|_| ProcessId(self.rng.gen_range(0..self.ctx.n))));
        let informed = Arc::make_mut(&mut self.informed);
        for &target in &targets {
            informed.insert_all(&self.rumors, target);
        }
        broadcast(out, &targets, msg);
        self.target_buf = targets;
    }

    fn pid(&self) -> ProcessId {
        self.ctx.pid
    }

    fn rumors(&self) -> &RumorSet {
        &self.rumors
    }

    fn is_quiescent(&self) -> bool {
        self.is_asleep()
    }

    fn steps_taken(&self) -> u64 {
        self.steps
    }

    fn msg_units(msg: &Self::Msg) -> u64 {
        crate::wire::WireSize::wire_units(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rumor::Rumor;

    fn ctx(pid: usize, n: usize, f: usize) -> GossipCtx {
        GossipCtx::new(ProcessId(pid), n, f, 4242)
    }

    fn step(p: &mut Sears) -> Vec<(ProcessId, SearsMessage)> {
        let mut out = Vec::new();
        p.local_step(&mut out);
        out
    }

    #[test]
    fn sends_fanout_messages_per_active_step() {
        let n = 64;
        let mut p = Sears::new(ctx(0, n, 8));
        let expected = SearsParams::default().fanout(n);
        let out = step(&mut p);
        assert_eq!(out.len(), expected);
        assert!(expected > 1, "sears must spam more than one target");
    }

    #[test]
    fn fanout_grows_with_epsilon() {
        let n = 256;
        let low = Sears::with_params(ctx(0, n, 0), SearsParams::with_epsilon(0.25));
        let high = Sears::with_params(ctx(0, n, 0), SearsParams::with_epsilon(0.75));
        assert!(low.fanout() < high.fanout());
    }

    #[test]
    fn single_shutdown_step_then_silence() {
        let mut p = Sears::new(ctx(0, 4, 0));
        // Artificially cover everything so the sleep counter starts rising.
        let mut informed = InformedList::new();
        for q in ProcessId::all(4) {
            informed.insert(ProcessId(0), q);
        }
        p.deliver(
            ProcessId(1),
            SearsMessage {
                rumors: Arc::new(RumorSet::new()),
                informed: Arc::new(informed),
            },
        );
        // First step after coverage: this is the single shut-down step — the
        // process still sends.
        let out = step(&mut p);
        assert!(!out.is_empty());
        assert!(p.is_asleep());
        assert!(p.is_quiescent());
        // Subsequent steps: silence.
        let out = step(&mut p);
        assert!(out.is_empty());
        let out = step(&mut p);
        assert!(out.is_empty());
    }

    #[test]
    fn new_rumor_reactivates_after_shutdown() {
        let n = 2;
        let mut p = Sears::new(ctx(0, n, 0));
        // Run enough steps that its own rumor gets covered and the shut-down
        // step happens (fan-out ≥ 1 targets per step over both processes).
        for _ in 0..50 {
            step(&mut p);
        }
        assert!(p.is_asleep());
        p.deliver(
            ProcessId(1),
            SearsMessage {
                rumors: Arc::new(RumorSet::singleton(Rumor::new(ProcessId(1), 1))),
                informed: Arc::new(InformedList::new()),
            },
        );
        let out = step(&mut p);
        assert!(!out.is_empty(), "an uncovered rumor must wake the process");
        assert!(!p.is_asleep());
    }

    #[test]
    fn delivery_merges_state() {
        let mut p = Sears::new(ctx(0, 8, 2));
        let mut informed = InformedList::new();
        informed.insert(ProcessId(3), ProcessId(4));
        p.deliver(
            ProcessId(3),
            SearsMessage {
                rumors: Arc::new(RumorSet::singleton(Rumor::new(ProcessId(3), 3))),
                informed: Arc::new(informed),
            },
        );
        assert!(p.rumors().contains_origin(ProcessId(3)));
        assert_eq!(p.rumors().len(), 2);
    }

    #[test]
    fn informed_list_tracks_spammed_targets() {
        let mut p = Sears::new(ctx(0, 16, 0));
        let out = step(&mut p);
        for (target, _) in &out {
            assert!(p.informed.contains(ProcessId(0), *target));
        }
    }
}
