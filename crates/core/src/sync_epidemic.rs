//! A synchronous epidemic baseline.
//!
//! The paper contrasts its asynchronous protocols with synchronous gossip
//! algorithms that know `d = δ = 1` a priori (the `CK [9]` row of Table 1 and
//! the cost-of-asynchrony Corollary 2). This module provides such a baseline:
//! a push-epidemic that runs for a *fixed, pre-computed* number of rounds
//! `Θ(log n)` and then stops unconditionally.
//!
//! Knowing the synchrony bounds is exactly what lets it stop after a fixed
//! number of local steps — the behaviour that, per the paper's introduction,
//! cannot be transplanted to an asynchronous system: if `d` and `δ` are not
//! `1`, a fixed iteration count no longer guarantees dissemination. The
//! cost-of-asynchrony experiments use this protocol only in executions with
//! `d = δ = 1`, where its `O(log n)` rounds and `O(n log n)` messages make it
//! the denominator of the CoA ratios.
//!
//! This is a simplification of the deterministic expander-based protocol of
//! Chlebus–Kowalski `[9]` (polylog time, `n·polylog` messages): we keep the
//! randomized epidemic form because only the asymptotic *shape* of the
//! denominator matters for Corollary 2, as documented in `DESIGN.md`.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use agossip_sim::ProcessId;

use crate::engine::{GossipCtx, GossipEngine};
use crate::params::SyncParams;
use crate::rumor::RumorSet;

/// Wire message of the synchronous baseline: the sender's full rumor set,
/// carried as a copy-on-write [`Arc`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncMessage {
    /// The sender's rumor collection at send time (shared snapshot).
    pub rumors: Arc<RumorSet>,
}

/// The synchronous push-epidemic baseline.
#[derive(Debug, Clone)]
pub struct SyncEpidemic {
    ctx: GossipCtx,
    params: SyncParams,
    rumors: Arc<RumorSet>,
    rounds_left: u64,
    total_rounds: u64,
    steps: u64,
    rng: StdRng,
}

impl SyncEpidemic {
    /// Creates an instance with default parameters.
    pub fn new(ctx: GossipCtx) -> Self {
        Self::with_params(ctx, SyncParams::default())
    }

    /// Creates an instance with explicit parameters.
    pub fn with_params(ctx: GossipCtx, params: SyncParams) -> Self {
        let rounds = params.rounds(ctx.n);
        SyncEpidemic {
            rumors: Arc::new(RumorSet::singleton(ctx.rumor)),
            rounds_left: rounds,
            total_rounds: rounds,
            steps: 0,
            rng: StdRng::seed_from_u64(ctx.seed),
            ctx,
            params,
        }
    }

    /// The pre-computed number of push rounds.
    pub fn total_rounds(&self) -> u64 {
        self.total_rounds
    }

    /// Rounds remaining before the process stops unconditionally.
    pub fn rounds_left(&self) -> u64 {
        self.rounds_left
    }

    /// The parameters in effect.
    pub fn params(&self) -> SyncParams {
        self.params
    }
}

impl GossipEngine for SyncEpidemic {
    type Msg = SyncMessage;

    fn deliver(&mut self, _from: ProcessId, msg: SyncMessage) {
        if !self.rumors.is_superset_of(&msg.rumors) {
            Arc::make_mut(&mut self.rumors).union(&msg.rumors);
        }
    }

    fn local_step(&mut self, out: &mut Vec<(ProcessId, SyncMessage)>) {
        self.steps += 1;
        if self.rounds_left == 0 {
            return;
        }
        self.rounds_left -= 1;
        if self.ctx.n <= 1 {
            return;
        }
        // Push the full rumor set to one uniformly random other process.
        let mut target = ProcessId(self.rng.gen_range(0..self.ctx.n));
        while target == self.ctx.pid {
            target = ProcessId(self.rng.gen_range(0..self.ctx.n));
        }
        out.push((
            target,
            SyncMessage {
                rumors: Arc::clone(&self.rumors),
            },
        ));
    }

    fn pid(&self) -> ProcessId {
        self.ctx.pid
    }

    fn rumors(&self) -> &RumorSet {
        &self.rumors
    }

    fn is_quiescent(&self) -> bool {
        self.rounds_left == 0
    }

    fn steps_taken(&self) -> u64 {
        self.steps
    }

    fn msg_units(msg: &Self::Msg) -> u64 {
        crate::wire::WireSize::wire_units(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rumor::Rumor;

    fn ctx(pid: usize, n: usize) -> GossipCtx {
        GossipCtx::new(ProcessId(pid), n, 0, 31)
    }

    fn step(p: &mut SyncEpidemic) -> Vec<(ProcessId, SyncMessage)> {
        let mut out = Vec::new();
        p.local_step(&mut out);
        out
    }

    #[test]
    fn stops_after_fixed_rounds() {
        let mut p = SyncEpidemic::new(ctx(0, 32));
        let rounds = p.total_rounds();
        assert_eq!(rounds, SyncParams::default().rounds(32));
        let mut sent = 0;
        for _ in 0..(rounds + 10) {
            sent += step(&mut p).len();
        }
        assert_eq!(sent as u64, rounds, "exactly one message per round");
        assert!(p.is_quiescent());
        assert_eq!(p.rounds_left(), 0);
    }

    #[test]
    fn round_count_is_logarithmic() {
        let small = SyncEpidemic::new(ctx(0, 16)).total_rounds();
        let large = SyncEpidemic::new(ctx(0, 4096)).total_rounds();
        assert!(large > small);
        assert!(large < 16 * small, "growth is logarithmic, not polynomial");
    }

    #[test]
    fn never_pushes_to_itself() {
        let mut p = SyncEpidemic::new(ctx(3, 8));
        for _ in 0..p.total_rounds() {
            for (target, _) in step(&mut p) {
                assert_ne!(target, ProcessId(3));
            }
        }
    }

    #[test]
    fn delivery_merges_rumors() {
        let mut p = SyncEpidemic::new(ctx(0, 4));
        let incoming: RumorSet = [Rumor::new(ProcessId(1), 1), Rumor::new(ProcessId(2), 2)]
            .into_iter()
            .collect();
        p.deliver(
            ProcessId(1),
            SyncMessage {
                rumors: Arc::new(incoming),
            },
        );
        assert_eq!(p.rumors().len(), 3);
    }

    #[test]
    fn single_process_sends_nothing_but_terminates() {
        let mut p = SyncEpidemic::new(ctx(0, 1));
        for _ in 0..(p.total_rounds() + 1) {
            assert!(step(&mut p).is_empty());
        }
        assert!(p.is_quiescent());
    }
}
