//! The byte-level wire codec: a compact, versioned binary encoding for every
//! gossip message.
//!
//! The paper's headline results are *bit*-complexity bounds, yet the
//! simulator only ever accounts for abstract rumor units ([`crate::wire`]).
//! This module gives each of the six wire message kinds a concrete byte
//! encoding so the live runtime (`agossip-runtime`) can push real frames
//! between concurrently running processes — and so the abstract unit count
//! can be *pinned* to the encoded size (see the proportionality constants
//! below).
//!
//! ## Frame body layout
//!
//! ```text
//! byte 0        CODEC_VERSION
//! byte 1        kind: 0 trivial · 1 ears · 2 sears · 3 tears↑ · 4 tears↓ · 5 sync
//! bytes 2..     kind-specific sections
//! ```
//!
//! Integers are LEB128 varints ([`write_varint`]/[`read_varint`]). A
//! [`RumorSet`] or [`InformedList`] section is written in whichever of two
//! representations is smaller for the value at hand:
//!
//! * **sparse** (tag `0`) — a count followed by `(origin, payload)` (resp.
//!   `(origin, target)`) varint entries in ascending order: proportional to
//!   the cardinality, best for nearly-empty sets;
//! * **dense** (tag `1`) — the set's word-packed presence bitmap, shipped as
//!   the raw `bits::WordSet` words (8 bytes each, little-endian,
//!   trailing zero words trimmed) followed by the payload varints of the set
//!   bits in ascending order: best once a constant fraction of the universe
//!   is present, which is the steady state of every epidemic protocol.
//!
//! Because the encoder always picks the smaller representation, the encoded
//! size is provably proportional to the [`crate::wire::WireSize`] unit count:
//! `encoded_len ≤ `[`MAX_BYTES_PER_UNIT`]` · wire_units` (for origins below
//! 2²⁴, i.e. any realistic system size) and `wire_units ≤ `
//! [`MAX_UNITS_PER_BYTE`]` · encoded_len`, for every message of every kind.
//! Both bounds are pinned by unit tests here and by the round-trip property
//! tests in `tests/tests/props_codec.rs`.
//!
//! ## Robustness
//!
//! [`WireCodec::decode`] never panics: truncated, bit-flipped or otherwise
//! corrupt input yields a typed [`CodecError`]. Identifiers are capped at
//! [`MAX_WIRE_ID`] so a small corrupt frame cannot ask the decoder to
//! allocate an enormous universe.

use std::fmt;
use std::sync::Arc;

use agossip_sim::ProcessId;

use crate::ears::EarsMessage;
use crate::informed_list::InformedList;
use crate::rumor::{Rumor, RumorSet};
use crate::sears::SearsMessage;
use crate::sync_epidemic::SyncMessage;
use crate::tears::{TearsFlag, TearsMessage};
use crate::trivial::TrivialMessage;

/// Version byte every encoded message starts with.
pub const CODEC_VERSION: u8 = 1;

/// Upper bound on `encoded_len / wire_units` for any message whose origin
/// identifiers are below 2²⁴ (see the module docs for the derivation).
pub const MAX_BYTES_PER_UNIT: usize = 24;

/// Upper bound on `wire_units / encoded_len` for any message.
pub const MAX_UNITS_PER_BYTE: u64 = 8;

/// Largest process/origin identifier the decoder accepts.
///
/// A sparse entry is a varint, so without a cap a 9-byte corrupt frame could
/// name origin `2⁶⁰` and ask the decoder to allocate a petabit presence
/// bitmap. The cap cannot make allocation *proportional* to input — a
/// legitimate 6-byte singleton frame may name the highest origin of a large
/// universe, and the dense-indexed collections allocate up to that origin —
/// but it bounds the worst case: one section can demand at most ~8 MiB of
/// payload array (2²⁰ origins × 8 bytes), not petabytes. 2²⁰ processes is
/// still far beyond any run this repository performs. The live runtime
/// additionally only ever decodes frames produced by in-run peers; the cap
/// is a corruption backstop, not an untrusted-input hardening claim.
pub const MAX_WIRE_ID: u64 = 1 << 20;

/// Why a frame failed to decode. Decoding never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the message was complete.
    Truncated,
    /// The version byte does not match [`CODEC_VERSION`].
    BadVersion(u8),
    /// The kind byte names no known message kind.
    BadKind(u8),
    /// A section tag named no known representation.
    BadSectionTag(u8),
    /// A varint ran past 10 bytes (would overflow `u64`).
    VarintOverflow,
    /// An identifier exceeded [`MAX_WIRE_ID`].
    IdOutOfRange(u64),
    /// The message decoded but `n` bytes of trailing garbage followed it.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadVersion(v) => {
                write!(
                    f,
                    "unsupported codec version {v} (expected {CODEC_VERSION})"
                )
            }
            CodecError::BadKind(k) => write!(f, "unknown message kind {k}"),
            CodecError::BadSectionTag(t) => write!(f, "unknown section representation tag {t}"),
            CodecError::VarintOverflow => write!(f, "varint overflows u64"),
            CodecError::IdOutOfRange(id) => {
                write!(f, "identifier {id} exceeds the wire cap {MAX_WIRE_ID}")
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after the message"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends `value` to `buf` as a LEB128 varint (7 bits per byte, low group
/// first, high bit = continuation).
pub fn write_varint(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8; // lint:allow(no-unchecked-narrowing): masked to the low 7 bits
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from the front of `bytes`, returning the value and
/// the number of bytes consumed.
pub fn read_varint(bytes: &[u8]) -> Result<(u64, usize), CodecError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &byte) in bytes.iter().enumerate() {
        if shift >= 64 || (shift == 63 && byte & 0x7e != 0) {
            return Err(CodecError::VarintOverflow);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(CodecError::Truncated)
}

/// The number of bytes [`write_varint`] emits for `value`.
pub fn varint_len(value: u64) -> usize {
    // lint:allow(no-unchecked-narrowing): leading_zeros of a u64 is at most 64
    ((64 - value.leading_zeros() as usize).div_ceil(7)).max(1)
}

/// Types with a byte-level wire encoding.
///
/// Every message kind of every protocol implements this; the live runtime is
/// generic over it. `decode(encode(m)) == m` for every value (pinned by the
/// round-trip property tests), and `decode` returns a typed error — never
/// panics — on arbitrary corrupt input.
pub trait WireCodec: Sized {
    /// Appends the encoded message to `buf`.
    fn encode_into(&self, buf: &mut Vec<u8>);

    /// Encodes the message into a fresh buffer.
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.encode_into(&mut buf);
        buf
    }

    /// Decodes one message occupying the whole of `bytes`.
    fn decode(bytes: &[u8]) -> Result<Self, CodecError>;
}

/// On-wire message kind discriminants (byte 1 of every frame body). The
/// `tears` flag is folded into the kind, giving the six protocol wire kinds;
/// `EPOCH` is an envelope kind whose body nests a complete protocol frame
/// (see [`crate::epoch`]).
pub(crate) mod kind {
    pub(crate) const TRIVIAL: u8 = 0;
    pub(crate) const EARS: u8 = 1;
    pub(crate) const SEARS: u8 = 2;
    pub(crate) const TEARS_UP: u8 = 3;
    pub(crate) const TEARS_DOWN: u8 = 4;
    pub(crate) const SYNC: u8 = 5;
    pub(crate) const EPOCH: u8 = 6;
}

/// Section representation tags.
pub(crate) const TAG_SPARSE: u8 = 0;
pub(crate) const TAG_DENSE: u8 = 1;

/// A cursor over the input of one decode call. Shared with the borrowed
/// view-decode path in [`crate::codec_view`].
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CodecError> {
        let byte = *self.bytes.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(byte)
    }

    pub(crate) fn varint(&mut self) -> Result<u64, CodecError> {
        let (value, used) = read_varint(&self.bytes[self.pos..])?;
        self.pos += used;
        Ok(value)
    }

    /// A varint checked against [`MAX_WIRE_ID`].
    pub(crate) fn id(&mut self) -> Result<usize, CodecError> {
        let value = self.varint()?;
        if value >= MAX_WIRE_ID {
            return Err(CodecError::IdOutOfRange(value));
        }
        usize::try_from(value).map_err(|_| CodecError::IdOutOfRange(value))
    }

    /// A dense-section word count: a varint checked against
    /// `MAX_WIRE_ID / 64`, so `count * 64` can never wrap (a corrupt ~9-byte
    /// varint times 64 would otherwise bypass the id cap).
    pub(crate) fn word_count(&mut self) -> Result<usize, CodecError> {
        let count = self.varint()?;
        if count > MAX_WIRE_ID / 64 {
            return Err(CodecError::IdOutOfRange(count.saturating_mul(64)));
        }
        usize::try_from(count).map_err(|_| CodecError::IdOutOfRange(count))
    }

    pub(crate) fn word(&mut self) -> Result<u64, CodecError> {
        let rest = self.bytes.get(self.pos..).ok_or(CodecError::Truncated)?;
        let word = rest.first_chunk::<8>().ok_or(CodecError::Truncated)?;
        self.pos += 8;
        Ok(u64::from_le_bytes(*word))
    }

    /// The current cursor position (for carving borrowed sub-slices).
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// Borrows the next `len` bytes and advances past them.
    pub(crate) fn take(&mut self, len: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(len).ok_or(CodecError::Truncated)?;
        let slice = self.bytes.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    /// The bytes between an earlier cursor position and the current one.
    pub(crate) fn since(&self, start: usize) -> &'a [u8] {
        self.bytes.get(start..self.pos).unwrap_or(&[])
    }

    pub(crate) fn finish(self) -> Result<(), CodecError> {
        let left = self.bytes.len() - self.pos;
        if left != 0 {
            return Err(CodecError::TrailingBytes(left));
        }
        Ok(())
    }
}

pub(crate) fn write_header(buf: &mut Vec<u8>, kind: u8) {
    buf.push(CODEC_VERSION);
    buf.push(kind);
}

pub(crate) fn read_header(reader: &mut Reader<'_>) -> Result<u8, CodecError> {
    let version = reader.u8()?;
    if version != CODEC_VERSION {
        return Err(CodecError::BadVersion(version));
    }
    reader.u8()
}

// ---------------------------------------------------------------------------
// RumorSet section
// ---------------------------------------------------------------------------

fn encode_rumor_set(buf: &mut Vec<u8>, set: &RumorSet) {
    // Trimmed dense presence words — borrowed when the set is dense,
    // materialized when it is sparse, so the sparse-vs-dense choice below
    // (and therefore every wire byte) depends only on the set's *contents*,
    // never on its in-memory representation.
    let words = set.dense_words();
    // The payload varints are common to both representations; compare only
    // the parts that differ: the origin varints vs the raw bitmap words.
    let sparse_ids: usize = varint_len(set.len() as u64)
        + set
            .origins()
            .map(|o| varint_len(o.index() as u64))
            .sum::<usize>();
    let dense_ids = varint_len(words.len() as u64) + 8 * words.len();
    if sparse_ids <= dense_ids {
        buf.push(TAG_SPARSE);
        write_varint(buf, set.len() as u64);
        for rumor in set.iter() {
            write_varint(buf, rumor.origin.index() as u64);
            write_varint(buf, rumor.payload);
        }
    } else {
        buf.push(TAG_DENSE);
        write_varint(buf, words.len() as u64);
        for &word in words.iter() {
            buf.extend_from_slice(&word.to_le_bytes());
        }
        for rumor in set.iter() {
            write_varint(buf, rumor.payload);
        }
    }
}

fn decode_rumor_set(reader: &mut Reader<'_>) -> Result<RumorSet, CodecError> {
    let mut set = RumorSet::new();
    match reader.u8()? {
        TAG_SPARSE => {
            let count = reader.varint()?;
            if count > MAX_WIRE_ID {
                return Err(CodecError::IdOutOfRange(count));
            }
            for _ in 0..count {
                let origin = reader.id()?;
                let payload = reader.varint()?;
                set.insert(Rumor::new(ProcessId(origin), payload));
            }
        }
        TAG_DENSE => {
            let word_count = reader.word_count()?;
            // Borrow the word region in place — no `Vec<u64>` staging buffer.
            let words = reader.take(word_count * 8)?;
            for (w, chunk) in words.chunks_exact(8).enumerate() {
                let Some(arr) = chunk.first_chunk::<8>() else {
                    break;
                };
                let mut bits = u64::from_le_bytes(*arr);
                while bits != 0 {
                    // lint:allow(no-unchecked-narrowing): trailing_zeros of a u64 is at most 63
                    let origin = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let payload = reader.varint()?;
                    set.insert(Rumor::new(ProcessId(origin), payload));
                }
            }
        }
        tag => return Err(CodecError::BadSectionTag(tag)),
    }
    Ok(set)
}

// ---------------------------------------------------------------------------
// InformedList section
// ---------------------------------------------------------------------------

fn encode_informed(buf: &mut Vec<u8>, list: &InformedList) {
    // As with the rumor section: trimmed per-row dense words regardless of
    // each row's in-memory representation, so the size comparison and the
    // emitted bytes are a pure function of the list's contents.
    let rows = list.dense_rows();
    let sparse_size: usize = varint_len(list.len() as u64)
        + list
            .iter()
            .map(|(o, t)| varint_len(o.index() as u64) + varint_len(t.index() as u64))
            .sum::<usize>();
    let dense_size: usize = varint_len(rows.len() as u64)
        + rows
            .iter()
            .map(|(origin, words)| {
                varint_len(*origin as u64) + varint_len(words.len() as u64) + 8 * words.len()
            })
            .sum::<usize>();
    if sparse_size <= dense_size {
        buf.push(TAG_SPARSE);
        write_varint(buf, list.len() as u64);
        for (origin, target) in list.iter() {
            write_varint(buf, origin.index() as u64);
            write_varint(buf, target.index() as u64);
        }
    } else {
        buf.push(TAG_DENSE);
        write_varint(buf, rows.len() as u64);
        for (origin, words) in &rows {
            write_varint(buf, *origin as u64);
            write_varint(buf, words.len() as u64);
            for &word in words.iter() {
                buf.extend_from_slice(&word.to_le_bytes());
            }
        }
    }
}

fn decode_informed(reader: &mut Reader<'_>) -> Result<InformedList, CodecError> {
    let mut list = InformedList::new();
    match reader.u8()? {
        TAG_SPARSE => {
            let count = reader.varint()?;
            if count > MAX_WIRE_ID {
                return Err(CodecError::IdOutOfRange(count));
            }
            for _ in 0..count {
                let origin = reader.id()?;
                let target = reader.id()?;
                list.insert(ProcessId(origin), ProcessId(target));
            }
        }
        TAG_DENSE => {
            let row_count = reader.varint()?;
            if row_count > MAX_WIRE_ID {
                return Err(CodecError::IdOutOfRange(row_count));
            }
            for _ in 0..row_count {
                let origin = reader.id()?;
                let word_count = reader.word_count()?;
                for w in 0..word_count {
                    let mut bits = reader.word()?;
                    while bits != 0 {
                        // lint:allow(no-unchecked-narrowing): trailing_zeros of a u64 is at most 63
                        let target = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        list.insert(ProcessId(origin), ProcessId(target));
                    }
                }
            }
        }
        tag => return Err(CodecError::BadSectionTag(tag)),
    }
    Ok(list)
}

// ---------------------------------------------------------------------------
// Message implementations
// ---------------------------------------------------------------------------

impl WireCodec for TrivialMessage {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        write_header(buf, kind::TRIVIAL);
        write_varint(buf, self.rumor.origin.index() as u64);
        write_varint(buf, self.rumor.payload);
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut reader = Reader::new(bytes);
        match read_header(&mut reader)? {
            kind::TRIVIAL => {}
            k => return Err(CodecError::BadKind(k)),
        }
        let origin = reader.id()?;
        let payload = reader.varint()?;
        reader.finish()?;
        Ok(TrivialMessage {
            rumor: Rumor::new(ProcessId(origin), payload),
        })
    }
}

impl WireCodec for EarsMessage {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        write_header(buf, kind::EARS);
        encode_rumor_set(buf, &self.rumors);
        encode_informed(buf, &self.informed);
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut reader = Reader::new(bytes);
        match read_header(&mut reader)? {
            kind::EARS => {}
            k => return Err(CodecError::BadKind(k)),
        }
        let rumors = decode_rumor_set(&mut reader)?;
        let informed = decode_informed(&mut reader)?;
        reader.finish()?;
        Ok(EarsMessage {
            rumors: Arc::new(rumors),
            informed: Arc::new(informed),
        })
    }
}

impl WireCodec for SearsMessage {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        write_header(buf, kind::SEARS);
        encode_rumor_set(buf, &self.rumors);
        encode_informed(buf, &self.informed);
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut reader = Reader::new(bytes);
        match read_header(&mut reader)? {
            kind::SEARS => {}
            k => return Err(CodecError::BadKind(k)),
        }
        let rumors = decode_rumor_set(&mut reader)?;
        let informed = decode_informed(&mut reader)?;
        reader.finish()?;
        Ok(SearsMessage {
            rumors: Arc::new(rumors),
            informed: Arc::new(informed),
        })
    }
}

impl WireCodec for TearsMessage {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        let kind = match self.flag {
            TearsFlag::Up => kind::TEARS_UP,
            TearsFlag::Down => kind::TEARS_DOWN,
        };
        write_header(buf, kind);
        encode_rumor_set(buf, &self.rumors);
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut reader = Reader::new(bytes);
        let flag = match read_header(&mut reader)? {
            kind::TEARS_UP => TearsFlag::Up,
            kind::TEARS_DOWN => TearsFlag::Down,
            k => return Err(CodecError::BadKind(k)),
        };
        let rumors = decode_rumor_set(&mut reader)?;
        reader.finish()?;
        Ok(TearsMessage {
            rumors: Arc::new(rumors),
            flag,
        })
    }
}

impl WireCodec for SyncMessage {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        write_header(buf, kind::SYNC);
        encode_rumor_set(buf, &self.rumors);
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut reader = Reader::new(bytes);
        match read_header(&mut reader)? {
            kind::SYNC => {}
            k => return Err(CodecError::BadKind(k)),
        }
        let rumors = decode_rumor_set(&mut reader)?;
        reader.finish()?;
        Ok(SyncMessage {
            rumors: Arc::new(rumors),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireSize;

    fn rumors(origins: &[usize]) -> RumorSet {
        origins
            .iter()
            .map(|&o| Rumor::new(ProcessId(o), (o as u64) * 31 + 7))
            .collect()
    }

    fn informed(pairs: &[(usize, usize)]) -> InformedList {
        let mut list = InformedList::new();
        for &(o, t) in pairs {
            list.insert(ProcessId(o), ProcessId(t));
        }
        list
    }

    fn full_universe(n: usize) -> RumorSet {
        rumors(&(0..n).collect::<Vec<_>>())
    }

    #[test]
    fn varint_round_trips_edge_values() {
        for value in [0u64, 1, 127, 128, 16383, 16384, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, value);
            assert_eq!(buf.len(), varint_len(value), "length of {value}");
            let (decoded, used) = read_varint(&buf).unwrap();
            assert_eq!(decoded, value);
            assert_eq!(used, buf.len());
        }
        assert_eq!(read_varint(&[]), Err(CodecError::Truncated));
        assert_eq!(read_varint(&[0x80]), Err(CodecError::Truncated));
        // An 11-byte continuation chain overflows u64.
        assert_eq!(read_varint(&[0xff; 11]), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn all_six_kinds_round_trip() {
        let v = rumors(&[0, 3, 64, 130]);
        let i = informed(&[(0, 1), (3, 70), (130, 0)]);
        let trivial = TrivialMessage {
            rumor: Rumor::new(ProcessId(5), 42),
        };
        assert_eq!(TrivialMessage::decode(&trivial.encode()).unwrap(), trivial);
        let ears = EarsMessage {
            rumors: Arc::new(v.clone()),
            informed: Arc::new(i.clone()),
        };
        assert_eq!(EarsMessage::decode(&ears.encode()).unwrap(), ears);
        let sears = SearsMessage {
            rumors: Arc::new(v.clone()),
            informed: Arc::new(i),
        };
        assert_eq!(SearsMessage::decode(&sears.encode()).unwrap(), sears);
        for flag in [TearsFlag::Up, TearsFlag::Down] {
            let tears = TearsMessage {
                rumors: Arc::new(v.clone()),
                flag,
            };
            assert_eq!(TearsMessage::decode(&tears.encode()).unwrap(), tears);
        }
        let sync = SyncMessage {
            rumors: Arc::new(v),
        };
        assert_eq!(SyncMessage::decode(&sync.encode()).unwrap(), sync);
    }

    #[test]
    fn empty_collections_round_trip() {
        let ears = EarsMessage {
            rumors: Arc::new(RumorSet::new()),
            informed: Arc::new(InformedList::new()),
        };
        assert_eq!(EarsMessage::decode(&ears.encode()).unwrap(), ears);
    }

    #[test]
    fn dense_beats_sparse_on_a_full_universe() {
        // A full universe of 256 origins should ship as 4 bitmap words, not
        // 256 origin varints: the dense path must be chosen and smaller.
        let full = SyncMessage {
            rumors: Arc::new(full_universe(256)),
        };
        let mut sparse_only = Vec::new();
        write_varint(&mut sparse_only, 256);
        for rumor in full.rumors.iter() {
            write_varint(&mut sparse_only, rumor.origin.index() as u64);
            write_varint(&mut sparse_only, rumor.payload);
        }
        assert!(
            full.encode().len() < sparse_only.len() + 3,
            "dense encoding should beat the sparse origin list"
        );
        assert_eq!(SyncMessage::decode(&full.encode()).unwrap(), full);
    }

    #[test]
    fn sparse_is_chosen_for_a_lone_high_origin() {
        // One rumor at origin 4095: dense would ship 64 bitmap words
        // (512 bytes); sparse ships two varints.
        let msg = SyncMessage {
            rumors: Arc::new(rumors(&[4095])),
        };
        let encoded = msg.encode();
        assert!(encoded.len() < 12, "got {} bytes", encoded.len());
        assert_eq!(SyncMessage::decode(&encoded).unwrap(), msg);
    }

    #[test]
    fn encoded_size_is_proportional_to_wire_units() {
        let cases: Vec<(u64, usize)> = vec![
            {
                let m = TrivialMessage {
                    rumor: Rumor::new(ProcessId(9), u64::MAX),
                };
                (m.wire_units(), m.encode().len())
            },
            {
                let m = EarsMessage {
                    rumors: Arc::new(full_universe(200)),
                    informed: Arc::new(informed(&[(0, 0), (1, 199), (199, 3)])),
                };
                (m.wire_units(), m.encode().len())
            },
            {
                let m = TearsMessage {
                    rumors: Arc::new(rumors(&[7])),
                    flag: TearsFlag::Down,
                };
                (m.wire_units(), m.encode().len())
            },
            {
                let m = SyncMessage {
                    rumors: Arc::new(RumorSet::new()),
                };
                (m.wire_units(), m.encode().len())
            },
        ];
        for (units, bytes) in cases {
            assert!(
                bytes <= MAX_BYTES_PER_UNIT * units as usize,
                "{bytes} bytes for {units} units"
            );
            assert!(
                units <= MAX_UNITS_PER_BYTE * bytes as u64,
                "{units} units for {bytes} bytes"
            );
        }
    }

    #[test]
    fn decode_rejects_bad_version_kind_and_trailing_bytes() {
        let msg = TrivialMessage {
            rumor: Rumor::new(ProcessId(1), 2),
        };
        let good = msg.encode();

        let mut bad_version = good.clone();
        bad_version[0] = 99;
        assert_eq!(
            TrivialMessage::decode(&bad_version),
            Err(CodecError::BadVersion(99))
        );

        let mut bad_kind = good.clone();
        bad_kind[1] = 77;
        assert_eq!(
            TrivialMessage::decode(&bad_kind),
            Err(CodecError::BadKind(77))
        );

        // A frame of the wrong (but valid) kind is also a kind error.
        assert_eq!(
            EarsMessage::decode(&good),
            Err(CodecError::BadKind(kind::TRIVIAL))
        );

        let mut trailing = good.clone();
        trailing.extend_from_slice(&[0, 0]);
        assert_eq!(
            TrivialMessage::decode(&trailing),
            Err(CodecError::TrailingBytes(2))
        );
    }

    #[test]
    fn decode_rejects_every_truncation() {
        let msg = EarsMessage {
            rumors: Arc::new(full_universe(100)),
            informed: Arc::new(informed(&[(0, 1), (5, 9)])),
        };
        let encoded = msg.encode();
        for len in 0..encoded.len() {
            let err =
                EarsMessage::decode(&encoded[..len]).expect_err("a strict prefix must not decode");
            assert!(
                !matches!(err, CodecError::TrailingBytes(_)),
                "prefix of length {len} reported trailing bytes"
            );
        }
    }

    #[test]
    fn decode_caps_identifier_allocations() {
        // kind=sync, sparse rumor section claiming an origin of 2^40.
        let mut frame = vec![CODEC_VERSION, kind::SYNC, TAG_SPARSE];
        write_varint(&mut frame, 1);
        write_varint(&mut frame, 1 << 40);
        write_varint(&mut frame, 0);
        assert!(matches!(
            SyncMessage::decode(&frame),
            Err(CodecError::IdOutOfRange(_))
        ));

        // Dense section claiming 2^30 bitmap words.
        let mut frame = vec![CODEC_VERSION, kind::SYNC, TAG_DENSE];
        write_varint(&mut frame, 1 << 30);
        assert!(matches!(
            SyncMessage::decode(&frame),
            Err(CodecError::IdOutOfRange(_))
        ));

        // A word count large enough that `word_count * 64` would wrap u64:
        // the cap check must not overflow (and must still reject).
        for huge in [1u64 << 58, u64::MAX] {
            let mut frame = vec![CODEC_VERSION, kind::SYNC, TAG_DENSE];
            write_varint(&mut frame, huge);
            assert!(matches!(
                SyncMessage::decode(&frame),
                Err(CodecError::IdOutOfRange(_))
            ));
            // Same header inside an informed-list row.
            let mut frame = vec![CODEC_VERSION, kind::EARS, TAG_SPARSE, 0, TAG_DENSE, 1, 0];
            write_varint(&mut frame, huge);
            assert!(matches!(
                EarsMessage::decode(&frame),
                Err(CodecError::IdOutOfRange(_))
            ));
        }
    }
}
