//! End-to-end gossip execution driver.
//!
//! Glues together a protocol factory, the simulator, an adversary, and the
//! correctness checker, and returns everything the experiment harnesses need:
//! the metrics (message and time complexity of the execution) and the
//! correctness verdict.

use agossip_sim::{
    Adversary, Metrics, ProcessId, SimConfig, SimError, SimResult, Simulation, StopReason,
};

use crate::adapter::SimGossip;
use crate::checker::{check_gossip, CheckReport, GossipSpec};
use crate::engine::{GossipCtx, GossipEngine};
use crate::rumor::{Rumor, RumorSet};

/// The result of one gossip execution.
#[derive(Debug, Clone)]
pub struct GossipReport {
    /// Execution metrics: message counts, time, observed `d`/`δ`.
    pub metrics: Metrics,
    /// Correctness verdict.
    pub check: CheckReport,
    /// Why the run loop stopped.
    pub stop_reason: StopReason,
    /// Completion time in multiples of `d + δ` (None if never quiescent).
    pub normalized_time: Option<f64>,
    /// Total wire units sent by all processes (see [`crate::wire`]); a proxy
    /// for the paper's open "bit complexity" question.
    pub rumor_units_sent: u64,
    /// Final rumor sets, one per process (useful for debugging and for the
    /// consensus layer's tests).
    pub final_rumors: Vec<RumorSet>,
}

impl GossipReport {
    /// Total point-to-point messages sent in the execution.
    pub fn messages(&self) -> u64 {
        self.metrics.messages_sent
    }

    /// Completion time in raw time steps (None if never quiescent).
    pub fn time_steps(&self) -> Option<u64> {
        self.metrics.quiescence_time.map(|t| t.as_u64())
    }
}

/// Runs one gossip execution.
///
/// * `config` — system size, failure budget, `(d, δ)` bounds, seed;
/// * `spec` — which gossip variant to check at the end;
/// * `adversary` — schedules, crashes and delays (it must respect `config.f`);
/// * `make` — protocol factory invoked once per process.
///
/// Returns an error if the configuration is invalid or the execution exceeds
/// `config.max_steps` without becoming quiescent.
pub fn run_gossip<G, A, F>(
    config: &SimConfig,
    spec: GossipSpec,
    adversary: &mut A,
    make: F,
) -> SimResult<GossipReport>
where
    G: GossipEngine,
    A: Adversary,
    F: Fn(GossipCtx) -> G,
{
    config.validate()?;
    let initial: Vec<Rumor> = ProcessId::all(config.n)
        .map(|pid| GossipCtx::new(pid, config.n, config.f, config.seed).rumor)
        .collect();

    let processes: Vec<SimGossip<G>> = ProcessId::all(config.n)
        .map(|pid| SimGossip::new(make(GossipCtx::new(pid, config.n, config.f, config.seed))))
        .collect();

    let mut sim = Simulation::new(config.clone(), processes)?;
    let outcome = match sim.run_with(adversary) {
        Ok(outcome) => outcome,
        Err(SimError::StepLimitExceeded { .. }) => {
            // Surface a non-quiescent execution as a failed check rather than
            // an error: the experiment harnesses want to observe it.
            let correct: Vec<bool> = sim.statuses().iter().map(|s| s.is_alive()).collect();
            let final_rumors: Vec<RumorSet> = sim
                .processes()
                .iter()
                .map(|p| p.engine().rumors().clone())
                .collect();
            let check = check_gossip(spec, &final_rumors, &initial, &correct, false);
            let rumor_units_sent = sim.processes().iter().map(|p| p.units_sent()).sum();
            let metrics = sim.metrics().clone();
            return Ok(GossipReport {
                normalized_time: None,
                check,
                stop_reason: StopReason::StepLimit,
                final_rumors,
                metrics,
                rumor_units_sent,
            });
        }
        Err(e) => return Err(e),
    };

    let correct: Vec<bool> = sim.statuses().iter().map(|s| s.is_alive()).collect();
    let final_rumors: Vec<RumorSet> = sim
        .processes()
        .iter()
        .map(|p| p.engine().rumors().clone())
        .collect();
    let quiescent = outcome.reason == StopReason::Quiescent;
    let check = check_gossip(spec, &final_rumors, &initial, &correct, quiescent);
    let rumor_units_sent = sim.processes().iter().map(|p| p.units_sent()).sum();
    let metrics = sim.metrics().clone();
    let normalized_time = metrics.normalized_time(config.d, config.delta);

    Ok(GossipReport {
        metrics,
        check,
        stop_reason: outcome.reason,
        normalized_time,
        final_rumors,
        rumor_units_sent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ears::Ears;
    use crate::sears::Sears;
    use crate::sync_epidemic::SyncEpidemic;
    use crate::tears::Tears;
    use crate::trivial::Trivial;
    use agossip_sim::FairObliviousAdversary;

    fn config(n: usize, f: usize, d: u64, delta: u64, seed: u64) -> SimConfig {
        SimConfig::new(n, f)
            .with_d(d)
            .with_delta(delta)
            .with_seed(seed)
    }

    #[test]
    fn trivial_gossip_completes_without_failures() {
        let cfg = config(16, 0, 1, 1, 1);
        let mut adv = FairObliviousAdversary::new(1, 1, 1);
        let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, Trivial::new).unwrap();
        assert!(report.check.all_ok(), "{:?}", report.check);
        assert_eq!(report.messages(), 16 * 15);
        assert!(report.normalized_time.is_some());
    }

    #[test]
    fn ears_gossip_completes_without_failures() {
        let cfg = config(16, 0, 1, 1, 2);
        let mut adv = FairObliviousAdversary::new(1, 1, 2);
        let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, Ears::new).unwrap();
        assert!(report.check.all_ok(), "{:?}", report.check);
        // EARS should use far fewer than n² messages even at n = 16? Not
        // necessarily at this small size, but it must at least terminate and
        // be correct. Check the message count is positive and bounded by the
        // step limit implied maximum.
        assert!(report.messages() > 0);
    }

    #[test]
    fn ears_gossip_with_delays_and_crashes() {
        let n = 16;
        let cfg = config(n, 4, 3, 2, 3);
        let crashes = (0..4).map(|i| {
            (
                agossip_sim::TimeStep(5 + i as u64 * 3),
                ProcessId(n - 1 - i),
            )
        });
        let mut adv = FairObliviousAdversary::new(3, 2, 3).with_crashes(crashes);
        let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, Ears::new).unwrap();
        assert!(report.check.all_ok(), "{:?}", report.check);
    }

    #[test]
    fn sears_gossip_completes() {
        let cfg = config(32, 8, 2, 1, 4);
        let mut adv = FairObliviousAdversary::new(2, 1, 4);
        let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, Sears::new).unwrap();
        assert!(report.check.all_ok(), "{:?}", report.check);
    }

    #[test]
    fn tears_achieves_majority_gossip() {
        let cfg = config(64, 0, 1, 1, 5);
        let mut adv = FairObliviousAdversary::new(1, 1, 5);
        let report = run_gossip(&cfg, GossipSpec::Majority, &mut adv, Tears::new).unwrap();
        assert!(report.check.all_ok(), "{:?}", report.check);
    }

    #[test]
    fn sync_epidemic_completes_in_logarithmic_steps() {
        let n = 64;
        let cfg = config(n, 0, 1, 1, 6);
        let mut adv = FairObliviousAdversary::new(1, 1, 6);
        let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, SyncEpidemic::new).unwrap();
        assert!(report.check.all_ok(), "{:?}", report.check);
        let steps = report.time_steps().unwrap();
        assert!(
            steps <= 8 * (n as f64).log2().ceil() as u64 + 16,
            "sync baseline should finish in O(log n) rounds, took {steps}"
        );
    }

    #[test]
    fn idle_fast_forward_skips_quiet_windows_and_stays_correct() {
        // Trivial floods once and goes quiescent; with a large delivery bound
        // and few messages the run is mostly idle waiting, which fast-forward
        // jumps over without changing the outcome's correctness.
        let n = 4;
        let d = 40;
        let cfg = config(n, 0, d, 2, 9).with_idle_fast_forward(true);
        let mut adv = FairObliviousAdversary::new(d, 2, 9);
        let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, Trivial::new).unwrap();
        assert!(report.check.all_ok(), "{:?}", report.check);
        assert_eq!(report.messages(), (n * (n - 1)) as u64);
        assert!(
            report.metrics.idle_steps_skipped > 0,
            "a d = 40 trivial flood must contain skippable idle windows"
        );
        // The clock still adds up: executed steps + skipped steps cover the
        // whole run up to quiescence.
        let q = report.time_steps().unwrap();
        assert!(report.metrics.elapsed_steps + report.metrics.idle_steps_skipped > q);
    }

    #[test]
    fn reports_are_deterministic_for_a_seed() {
        let cfg = config(24, 6, 2, 2, 77);
        let mut adv1 = FairObliviousAdversary::new(2, 2, 77);
        let mut adv2 = FairObliviousAdversary::new(2, 2, 77);
        let r1 = run_gossip(&cfg, GossipSpec::Full, &mut adv1, Ears::new).unwrap();
        let r2 = run_gossip(&cfg, GossipSpec::Full, &mut adv2, Ears::new).unwrap();
        assert_eq!(r1.messages(), r2.messages());
        assert_eq!(r1.time_steps(), r2.time_steps());
    }

    #[test]
    fn step_limit_is_reported_as_non_quiescent_check() {
        // An absurdly small step limit forces a StepLimit outcome.
        let cfg = config(16, 0, 1, 1, 8).with_max_steps(3);
        let mut adv = FairObliviousAdversary::new(1, 1, 8);
        let report = run_gossip(&cfg, GossipSpec::Full, &mut adv, Ears::new).unwrap();
        assert_eq!(report.stop_reason, StopReason::StepLimit);
        assert!(!report.check.quiescence_ok);
        assert!(report.normalized_time.is_none());
    }
}
