//! Tunable protocol parameters and the derived constants of the paper.
//!
//! Every `Θ(·)` in the paper hides a constant; this module makes each one an
//! explicit, documented knob with a default chosen so that the high-probability
//! arguments hold comfortably at the system sizes exercised by the test suite
//! and the benchmarks (`n` up to a few thousand). The ablation benches vary
//! these constants to show where the analysis starts to fail.

use std::fmt;

/// Natural logarithm of `n`, clamped below by 1 so that tiny systems do not
/// degenerate to zero-length phases.
pub fn ln_n(n: usize) -> f64 {
    (n.max(2) as f64).ln().max(1.0)
}

/// A protocol parameter outside the range the paper's analysis is stated
/// for.
///
/// Returned by the `validate` methods on the parameter structs; the
/// experiment path refuses to run a trial with invalid parameters instead of
/// silently producing a nonsensical execution (e.g. a `sears` fan-out of `n`
/// for `ε ≥ 1`, which degenerates to the trivial protocol while still being
/// labelled `sears`).
#[derive(Debug, Clone, PartialEq)]
pub enum ParamError {
    /// `sears` requires `0 < ε < 1` (Theorem 7): `ε ≥ 1` collapses the
    /// fan-out cap to `n` (trivial flooding) and `ε ≤ 0` yields a sub-unit
    /// fan-out and a divergent `1/ε` phase count.
    EpsilonOutOfRange {
        /// The offending exponent.
        epsilon: f64,
    },
    /// A multiplier of a `Θ(·)` constant must be a positive finite number.
    NonPositiveFactor {
        /// Which factor was out of range.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::EpsilonOutOfRange { epsilon } => {
                write!(f, "sears requires 0 < ε < 1 (Theorem 7), got ε = {epsilon}")
            }
            ParamError::NonPositiveFactor { name, value } => {
                write!(f, "{name} must be positive and finite, got {value}")
            }
        }
    }
}

impl std::error::Error for ParamError {}

/// Parameters of the `ears` protocol (Section 3, Figure 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarsParams {
    /// Multiplier of the shut-down phase length `Θ(n/(n−f) · log n)` local
    /// steps (Figure 2, line 15).
    pub shutdown_factor: f64,
}

impl Default for EarsParams {
    fn default() -> Self {
        EarsParams {
            shutdown_factor: 2.0,
        }
    }
}

/// Checks that a `Θ(·)` multiplier is positive and finite.
fn validate_factor(name: &'static str, value: f64) -> Result<(), ParamError> {
    if !value.is_finite() || value <= 0.0 {
        return Err(ParamError::NonPositiveFactor { name, value });
    }
    Ok(())
}

impl EarsParams {
    /// Checks that the parameters lie in the range the Section 3 analysis is
    /// stated for (a positive, finite shut-down multiplier). The experiment
    /// drivers call this before running a trial.
    pub fn validate(&self) -> Result<(), ParamError> {
        validate_factor("ears.shutdown_factor", self.shutdown_factor)
    }

    /// The shut-down phase length in local steps for a system of size `n`
    /// with failure budget `f`: `⌈shutdown_factor · n/(n−f) · ln n⌉`.
    pub fn shutdown_steps(&self, n: usize, f: usize) -> u64 {
        let n_f = (n.saturating_sub(f)).max(1) as f64;
        let steps = self.shutdown_factor * (n as f64 / n_f) * ln_n(n);
        steps.ceil().max(1.0) as u64
    }
}

/// Parameters of the `sears` protocol (Section 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearsParams {
    /// The exponent `ε < 1` controlling the per-step fan-out `Θ(n^ε log n)`.
    pub epsilon: f64,
    /// Multiplier of the fan-out.
    pub fanout_factor: f64,
}

impl Default for SearsParams {
    fn default() -> Self {
        SearsParams {
            epsilon: 0.5,
            fanout_factor: 1.0,
        }
    }
}

impl SearsParams {
    /// Creates parameters with the given `ε` and the default fan-out factor.
    pub fn with_epsilon(epsilon: f64) -> Self {
        SearsParams {
            epsilon,
            ..Default::default()
        }
    }

    /// Checks that the parameters lie in the range Theorem 7's analysis is
    /// stated for: `0 < ε < 1` and a positive, finite fan-out factor.
    ///
    /// The experiment drivers call this before running a trial, so an
    /// out-of-range `ε` is a typed [`ParamError`] instead of a silently
    /// nonsensical fan-out.
    pub fn validate(&self) -> Result<(), ParamError> {
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 || self.epsilon >= 1.0 {
            return Err(ParamError::EpsilonOutOfRange {
                epsilon: self.epsilon,
            });
        }
        validate_factor("sears.fanout_factor", self.fanout_factor)
    }

    /// The per-step fan-out `⌈fanout_factor · n^ε · ln n⌉`, capped at `n`.
    pub fn fanout(&self, n: usize) -> usize {
        let raw = self.fanout_factor * (n as f64).powf(self.epsilon) * ln_n(n);
        (raw.ceil() as usize).clamp(1, n)
    }

    /// Number of epidemic phases needed for a rumor to saturate the system:
    /// `⌈1/ε⌉ + O(1)` (Theorem 7's "after 1/ε steps a constant fraction of
    /// the correct nodes know r").
    pub fn phases(&self) -> u64 {
        (1.0 / self.epsilon.clamp(0.05, 1.0)).ceil() as u64 + 2
    }
}

/// Parameters of the `tears` protocol (Section 5, Figure 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TearsParams {
    /// Multiplier of `a = 4·√n·ln n`, the expected first/second-level
    /// neighbourhood size (Figure 3, line 2).
    pub a_factor: f64,
    /// Multiplier of `κ = 8·n^{1/4}·ln n`, the trigger-window half width
    /// (Figure 3, line 4).
    pub kappa_factor: f64,
}

impl Default for TearsParams {
    fn default() -> Self {
        TearsParams {
            a_factor: 4.0,
            kappa_factor: 8.0,
        }
    }
}

impl TearsParams {
    /// Checks that the parameters lie in the range the Section 5 analysis is
    /// stated for (positive, finite multipliers of `a` and `κ`). The
    /// experiment drivers call this before running a trial.
    pub fn validate(&self) -> Result<(), ParamError> {
        validate_factor("tears.a_factor", self.a_factor)?;
        validate_factor("tears.kappa_factor", self.kappa_factor)
    }

    /// `a = a_factor · √n · ln n`, the expected size of `Π1(p)` and `Π2(p)`,
    /// capped at `n − 1` (a process never sends to itself).
    pub fn a(&self, n: usize) -> f64 {
        let raw = self.a_factor * (n as f64).sqrt() * ln_n(n);
        raw.min((n.saturating_sub(1)) as f64).max(1.0)
    }

    /// `µ = a/2`, the centre of the first trigger window (Figure 3, line 3).
    pub fn mu(&self, n: usize) -> f64 {
        self.a(n) / 2.0
    }

    /// `κ = kappa_factor · n^{1/4} · ln n`, the trigger-window half width.
    pub fn kappa(&self, n: usize) -> f64 {
        (self.kappa_factor * (n as f64).powf(0.25) * ln_n(n)).max(1.0)
    }

    /// Per-process probability of including any given other process in
    /// `Π1(p)` (and independently in `Π2(p)`): `a/n`.
    pub fn membership_probability(&self, n: usize) -> f64 {
        (self.a(n) / n as f64).clamp(0.0, 1.0)
    }
}

/// Parameters of the synchronous epidemic baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncParams {
    /// Multiplier of the number of push rounds, `⌈round_factor · log₂ n⌉`.
    pub round_factor: f64,
}

impl Default for SyncParams {
    fn default() -> Self {
        SyncParams { round_factor: 4.0 }
    }
}

impl SyncParams {
    /// Number of synchronous push rounds to run.
    pub fn rounds(&self, n: usize) -> u64 {
        let log2 = (n.max(2) as f64).log2();
        (self.round_factor * log2).ceil().max(1.0) as u64 + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_n_is_clamped() {
        assert_eq!(ln_n(0), 1.0);
        assert_eq!(ln_n(1), 1.0);
        assert!(ln_n(1000) > 6.0);
    }

    #[test]
    fn ears_shutdown_grows_with_f() {
        let p = EarsParams::default();
        let no_failures = p.shutdown_steps(100, 0);
        let half_failures = p.shutdown_steps(100, 50);
        let many_failures = p.shutdown_steps(100, 90);
        assert!(no_failures < half_failures);
        assert!(half_failures < many_failures);
        assert!(no_failures >= 1);
    }

    #[test]
    fn ears_shutdown_handles_f_equal_n() {
        // Degenerate input should not panic or return zero.
        assert!(EarsParams::default().shutdown_steps(10, 10) >= 1);
    }

    #[test]
    fn sears_fanout_scales_with_epsilon() {
        let n = 1024;
        let small = SearsParams::with_epsilon(0.25).fanout(n);
        let mid = SearsParams::with_epsilon(0.5).fanout(n);
        let large = SearsParams::with_epsilon(0.75).fanout(n);
        assert!(small < mid);
        assert!(mid < large);
        assert!(large <= n);
    }

    #[test]
    fn sears_fanout_capped_at_n() {
        let p = SearsParams {
            epsilon: 0.99,
            fanout_factor: 100.0,
        };
        assert_eq!(p.fanout(16), 16);
    }

    #[test]
    fn sears_validate_accepts_the_open_unit_interval_only() {
        assert!(SearsParams::with_epsilon(0.5).validate().is_ok());
        assert!(SearsParams::with_epsilon(0.01).validate().is_ok());
        for bad in [0.0, -0.5, 1.0, 1.5, f64::NAN, f64::INFINITY] {
            let err = SearsParams::with_epsilon(bad).validate().unwrap_err();
            assert!(
                matches!(err, ParamError::EpsilonOutOfRange { .. }),
                "ε = {bad} should be rejected as out of range, got {err:?}"
            );
        }
        let err = SearsParams {
            fanout_factor: 0.0,
            ..SearsParams::default()
        }
        .validate()
        .unwrap_err();
        assert!(matches!(err, ParamError::NonPositiveFactor { .. }));
        assert!(err.to_string().contains("fanout_factor"));
    }

    #[test]
    fn ears_and_tears_factors_are_validated() {
        assert!(EarsParams::default().validate().is_ok());
        assert!(TearsParams::default().validate().is_ok());
        for bad in [0.0, -2.0, f64::NAN, f64::INFINITY] {
            let err = EarsParams {
                shutdown_factor: bad,
            }
            .validate()
            .unwrap_err();
            assert!(err.to_string().contains("shutdown_factor"), "{err}");
            let err = TearsParams {
                a_factor: bad,
                ..TearsParams::default()
            }
            .validate()
            .unwrap_err();
            assert!(err.to_string().contains("a_factor"), "{err}");
            let err = TearsParams {
                kappa_factor: bad,
                ..TearsParams::default()
            }
            .validate()
            .unwrap_err();
            assert!(err.to_string().contains("kappa_factor"), "{err}");
        }
    }

    #[test]
    fn sears_phases_inverse_in_epsilon() {
        assert!(SearsParams::with_epsilon(0.25).phases() > SearsParams::with_epsilon(0.5).phases());
    }

    #[test]
    fn tears_constants_match_paper_shape() {
        let p = TearsParams::default();
        let n = 4096;
        let a = p.a(n);
        let mu = p.mu(n);
        let kappa = p.kappa(n);
        // a = 4·√n·ln n, µ = a/2
        assert!((mu - a / 2.0).abs() < 1e-9);
        // κ is asymptotically much smaller than µ.
        assert!(kappa < mu);
        // Membership probability stays a probability.
        let prob = p.membership_probability(n);
        assert!(prob > 0.0 && prob <= 1.0);
    }

    #[test]
    fn tears_a_capped_below_n() {
        let p = TearsParams::default();
        assert!(p.a(8) <= 7.0);
        assert!(p.membership_probability(8) <= 1.0);
    }

    #[test]
    fn sync_rounds_logarithmic() {
        let p = SyncParams::default();
        assert!(p.rounds(16) < p.rounds(1024));
        // Roughly 4·log2(n) + 2.
        assert_eq!(p.rounds(1024), 42);
    }
}
