//! Epoch-tagged frames and the epoch multiplexer behind service mode.
//!
//! Everything below turns the one-shot gossip engines into a *replicated
//! log*: a numbered sequence of independent gossip instances ("epochs"),
//! each seeded with a fresh rumor per process, running concurrently inside
//! a bounded window while earlier epochs settle and are garbage-collected.
//!
//! The design deliberately leaves the protocol engines untouched:
//!
//! * [`EpochMsg`] is an *envelope* wire kind (`kind::EPOCH` = 6) that
//!   nests one complete versioned protocol frame after a varint epoch
//!   number, so the existing codec and [`crate::codec_view`] zero-copy
//!   paths keep working unchanged on the nested frame.
//! * [`EpochMux`] is itself a [`GossipEngine`] whose message type is
//!   `EpochMsg<G::Msg>`. It owns at most `window` live instances of the
//!   inner engine `G` (one per open epoch, in a slot ring indexed by
//!   `epoch % window`), routes deliveries by epoch, steps open epochs in
//!   ascending order, and drops an instance the moment its epoch is
//!   harvested — that drop *is* the garbage collection that keeps live
//!   state `O(window)` instead of `O(epochs)`.
//! * [`EpochBoard`] is the shared coordination surface between one driver
//!   and the `n` multiplexers: the driver publishes the virtual time, the
//!   admission frontier ([`EpochBoard::open_upto`]) and harvest requests;
//!   the multiplexers publish per-slot activity and harvested rumor sets.
//!
//! Determinism: everything a multiplexer does is a pure function of the
//! values the driver published on the board and of the frames it received.
//! Under lockstep pacing the driver only writes the board between ticks
//! (while every node is parked on the tick barrier), the epoch admission
//! frontier is the pure function [`service_open_upto`] of
//! `(mode, window, total, tick, finalized)`, and per-epoch rumors come from
//! the pure [`epoch_rumor`] workload generator — so a service run is
//! bit-identical per seed across thread placements, exactly like the
//! one-shot lockstep runs.
//!
//! Decode paths in this module never panic; the file is under the same
//! `never-panic-decode` lint policy as `codec.rs`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use agossip_sim::rng::{splitmix64, trial_seed};
use agossip_sim::ProcessId;

use crate::codec::{kind, read_header, write_header, write_varint, CodecError, Reader, WireCodec};
use crate::codec_view::WireDecodeView;
use crate::engine::{EncodedFrame, GossipCtx, GossipEngine};
use crate::rumor::{Rumor, RumorSet};

// ---------------------------------------------------------------------------
// Wire envelope
// ---------------------------------------------------------------------------

/// One inner-protocol message tagged with the epoch it belongs to.
///
/// On the wire this is an *envelope* frame: the versioned header with kind
/// `kind::EPOCH`, a varint epoch number, then one complete inner frame
/// (with its own header), so the nested bytes decode with the inner
/// protocol's existing owned and view decoders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochMsg<M> {
    /// The epoch the inner message belongs to.
    pub epoch: u64,
    /// The inner protocol message.
    pub inner: M,
}

impl<M: WireCodec> WireCodec for EpochMsg<M> {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        write_header(buf, kind::EPOCH);
        write_varint(buf, self.epoch);
        self.inner.encode_into(buf);
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let (epoch, at) = peel_epoch_header(bytes)?;
        let rest = bytes.get(at..).ok_or(CodecError::Truncated)?;
        Ok(EpochMsg {
            epoch,
            inner: M::decode(rest)?,
        })
    }
}

/// Borrowed view over an encoded [`EpochMsg`]: the epoch plus the inner
/// message's view.
pub struct EpochMsgView<'a, M: WireDecodeView> {
    /// The epoch the frame belongs to.
    pub epoch: u64,
    /// The borrowed view of the nested inner frame.
    pub inner: M::View<'a>,
}

impl<M: WireDecodeView> WireDecodeView for EpochMsg<M> {
    type View<'a> = EpochMsgView<'a, M>;

    fn decode_view(bytes: &[u8]) -> Result<Self::View<'_>, CodecError> {
        let (epoch, at) = peel_epoch_header(bytes)?;
        let rest = bytes.get(at..).ok_or(CodecError::Truncated)?;
        Ok(EpochMsgView {
            epoch,
            inner: M::decode_view(rest)?,
        })
    }

    fn view_to_owned(view: &Self::View<'_>) -> Self {
        EpochMsg {
            epoch: view.epoch,
            inner: M::view_to_owned(&view.inner),
        }
    }
}

/// Parses the envelope header of an encoded [`EpochMsg`]: validates the
/// codec version and the `kind::EPOCH` discriminant, reads the varint
/// epoch, and returns `(epoch, offset)` where `offset` is the start of the
/// nested inner frame. Never panics.
///
/// This is the cheap routing parse [`EpochMux::deliver_encoded`] uses to
/// group a batch by epoch without decoding the nested frames.
pub fn peel_epoch_header(bytes: &[u8]) -> Result<(u64, usize), CodecError> {
    let mut reader = Reader::new(bytes);
    let k = read_header(&mut reader)?;
    if k != kind::EPOCH {
        return Err(CodecError::BadKind(k));
    }
    let epoch = reader.varint()?;
    Ok((epoch, reader.pos()))
}

// ---------------------------------------------------------------------------
// Deterministic workload generator
// ---------------------------------------------------------------------------

/// Domain-separation salt for the epoch workload stream.
const EPOCH_SEED_SALT: u64 = 0x5EED_E70C_2008_0001;

/// The protocol seed for one epoch, derived from the service master seed.
///
/// Every process derives its per-epoch [`GossipCtx`] from this value, so
/// epoch `e` of a service run with master seed `s` behaves exactly like a
/// one-shot run seeded with `epoch_seed(s, e)`.
pub fn epoch_seed(master_seed: u64, epoch: u64) -> u64 {
    trial_seed(splitmix64(master_seed ^ EPOCH_SEED_SALT), epoch)
}

/// The rumor payload process `pid` injects into `epoch`.
///
/// A pure function of `(master_seed, epoch, pid)` — this is the
/// deterministic workload generator: the driver uses it to reconstruct the
/// initial rumors when checking a settled epoch, and [`EpochMux`] uses it
/// when instantiating the epoch's engine, without either side sending the
/// other anything.
pub fn epoch_payload(master_seed: u64, epoch: u64, pid: ProcessId) -> u64 {
    splitmix64(epoch_seed(master_seed, epoch) ^ (pid.index() as u64))
}

/// The rumor process `pid` injects into `epoch` (see [`epoch_payload`]).
pub fn epoch_rumor(master_seed: u64, epoch: u64, pid: ProcessId) -> Rumor {
    Rumor::new(pid, epoch_payload(master_seed, epoch, pid))
}

/// The full slate of `n` initial rumors for one epoch, in pid order (what
/// the per-epoch checker takes as the gossip input).
pub fn epoch_initial_rumors(master_seed: u64, epoch: u64, n: usize) -> Vec<Rumor> {
    (0..n)
        .map(|i| epoch_rumor(master_seed, epoch, ProcessId(i)))
        .collect()
}

// ---------------------------------------------------------------------------
// Admission policy
// ---------------------------------------------------------------------------

/// How fresh epochs are admitted into the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopMode {
    /// Open loop: admit one fresh epoch every `period` time units,
    /// regardless of completions (backpressured only by the window cap).
    Open {
        /// Time units (lockstep ticks, or milliseconds free-running)
        /// between admissions.
        period: u64,
    },
    /// Closed loop: keep exactly `in_flight` epochs outstanding — admit a
    /// fresh epoch only when one finalizes.
    Closed {
        /// Target number of concurrently outstanding epochs.
        in_flight: usize,
    },
}

impl LoopMode {
    /// Short stable name for reports ("open" / "closed").
    pub fn name(&self) -> &'static str {
        match self {
            LoopMode::Open { .. } => "open",
            LoopMode::Closed { .. } => "closed",
        }
    }
}

/// The epoch admission frontier: epochs `0..service_open_upto(..)` may be
/// open at time `now` given `finalized` epochs are fully settled.
///
/// A pure function of its arguments and monotone in `(now, finalized)` —
/// the driver recomputes it between ticks and publishes it on the
/// [`EpochBoard`]; nothing about thread placement can perturb it, which is
/// what keeps service runs bit-identical across threadings. The frontier
/// never exceeds `finalized + window` (slot-ring capacity) or `total`.
pub fn service_open_upto(
    mode: LoopMode,
    window: usize,
    total: u64,
    now: u64,
    finalized: u64,
) -> u64 {
    let window = window.max(1) as u64;
    let cap = finalized.saturating_add(window).min(total);
    match mode {
        LoopMode::Open { period } => (now / period.max(1)).saturating_add(1).min(cap),
        LoopMode::Closed { in_flight } => {
            let target = (in_flight.max(1) as u64).min(window);
            finalized.saturating_add(target).min(cap)
        }
    }
}

// ---------------------------------------------------------------------------
// Shared epoch board
// ---------------------------------------------------------------------------

/// Sentinel for "no harvest requested" in a slot's request cell.
const NO_HARVEST: u64 = u64::MAX;

/// One slot of the shared board (see [`EpochBoard`]).
struct BoardSlot {
    /// Latest board time at which the slot's epoch showed activity (a send,
    /// a delivery, or a non-quiescent engine at a local step).
    last_activity: AtomicU64,
    /// Epoch the driver wants harvested out of this slot ([`NO_HARVEST`]
    /// when none).
    harvest_req: AtomicU64,
    /// Rumor sets the processes harvested for the requested epoch.
    harvest: Mutex<Vec<(ProcessId, RumorSet)>>,
}

/// The shared coordination surface between a service driver and the
/// per-process [`EpochMux`] engines.
///
/// All cells are written with relaxed ordering: under lockstep pacing the
/// tick barrier orders every access (the driver writes only while all
/// nodes are parked on it); free-running, the numeric cells are monotone
/// heuristics and the harvest vectors are guarded by their mutex.
pub struct EpochBoard {
    window: usize,
    /// Virtual time: the lockstep tick (or free-running milliseconds) the
    /// driver last published.
    now: AtomicU64,
    /// Admission frontier: epochs `0..open_upto` may be open.
    open_upto: AtomicU64,
    /// All epochs below this are finalized; frames for them are stale.
    finalized_floor: AtomicU64,
    /// Frames dropped because their epoch was already finalized or its
    /// slot was reused (absorbed, not errors — the epidemic re-send makes
    /// them redundant by construction).
    stale_drops: AtomicU64,
    slots: Vec<BoardSlot>,
}

impl fmt::Debug for EpochBoard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochBoard")
            .field("window", &self.window)
            .field("now", &self.now())
            .field("open_upto", &self.open_upto())
            .field("finalized_floor", &self.finalized_floor())
            .field("stale_drops", &self.stale_drops())
            .finish()
    }
}

impl EpochBoard {
    /// A fresh board with `window` slots (clamped to at least 1).
    pub fn new(window: usize) -> Self {
        let window = window.max(1);
        EpochBoard {
            window,
            now: AtomicU64::new(0),
            open_upto: AtomicU64::new(0),
            finalized_floor: AtomicU64::new(0),
            stale_drops: AtomicU64::new(0),
            slots: (0..window)
                .map(|_| BoardSlot {
                    last_activity: AtomicU64::new(0),
                    harvest_req: AtomicU64::new(NO_HARVEST),
                    harvest: Mutex::new(Vec::new()),
                })
                .collect(),
        }
    }

    /// Number of slots (the maximum number of concurrently open epochs).
    pub fn window(&self) -> usize {
        self.window
    }

    /// The slot epoch `epoch` lives in.
    pub fn slot_of(&self, epoch: u64) -> usize {
        (epoch % self.window as u64) as usize
    }

    /// The driver-published virtual time.
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }

    /// Publishes the virtual time (driver only, between ticks).
    pub fn set_now(&self, t: u64) {
        self.now.store(t, Ordering::Relaxed);
    }

    /// The published admission frontier.
    pub fn open_upto(&self) -> u64 {
        self.open_upto.load(Ordering::Relaxed)
    }

    /// Publishes the admission frontier (driver only, between ticks).
    pub fn publish_open_upto(&self, upto: u64) {
        self.open_upto.store(upto, Ordering::Relaxed);
    }

    /// The published finalized floor.
    pub fn finalized_floor(&self) -> u64 {
        self.finalized_floor.load(Ordering::Relaxed)
    }

    /// Publishes the finalized floor (driver only).
    pub fn set_finalized_floor(&self, floor: u64) {
        self.finalized_floor.store(floor, Ordering::Relaxed);
    }

    fn slot(&self, slot: usize) -> &BoardSlot {
        // Callers compute `slot` with `slot_of`, so it is always in range;
        // fall back to the first slot rather than panic if one ever is not
        // (the board always has at least one slot).
        self.slots
            .get(slot)
            .or_else(|| self.slots.first())
            .unwrap_or_else(|| unreachable_slot())
    }

    /// Latest activity time recorded for `slot`.
    pub fn last_activity(&self, slot: usize) -> u64 {
        self.slot(slot).last_activity.load(Ordering::Relaxed)
    }

    /// Records activity for `slot` at time `t` (monotone max).
    pub fn bump_activity(&self, slot: usize, t: u64) {
        self.slot(slot)
            .last_activity
            .fetch_max(t, Ordering::Relaxed);
    }

    /// Resets `slot`'s activity clock to `t` (driver only, when opening an
    /// epoch into the slot).
    pub fn reset_activity(&self, slot: usize, t: u64) {
        self.slot(slot).last_activity.store(t, Ordering::Relaxed);
    }

    /// Asks every process to harvest `epoch` out of `slot` at its next
    /// local step (driver only).
    pub fn request_harvest(&self, slot: usize, epoch: u64) {
        self.slot(slot).harvest_req.store(epoch, Ordering::Relaxed);
    }

    /// The epoch currently requested for harvest from `slot`, if any.
    pub fn harvest_request(&self, slot: usize) -> Option<u64> {
        match self.slot(slot).harvest_req.load(Ordering::Relaxed) {
            NO_HARVEST => None,
            epoch => Some(epoch),
        }
    }

    /// Deposits one process's final rumor set for the epoch being harvested
    /// from `slot`.
    pub fn push_harvest(&self, slot: usize, pid: ProcessId, rumors: RumorSet) {
        lock(&self.slot(slot).harvest).push((pid, rumors));
    }

    /// The pids that have deposited a harvest for `slot` so far.
    pub fn harvested_pids(&self, slot: usize) -> Vec<ProcessId> {
        lock(&self.slot(slot).harvest)
            .iter()
            .map(|(pid, _)| *pid)
            .collect()
    }

    /// Drains the harvested rumor sets of `slot` and clears its request
    /// cell, freeing the slot for reuse (driver only, at finalization).
    pub fn take_harvest(&self, slot: usize) -> Vec<(ProcessId, RumorSet)> {
        let drained = std::mem::take(&mut *lock(&self.slot(slot).harvest));
        self.slot(slot)
            .harvest_req
            .store(NO_HARVEST, Ordering::Relaxed);
        drained
    }

    /// Counts `k` stale frames absorbed (delivered to an already-finalized
    /// or displaced epoch).
    pub fn note_stale_drops(&self, k: u64) {
        self.stale_drops.fetch_add(k, Ordering::Relaxed);
    }

    /// Total stale frames absorbed so far.
    pub fn stale_drops(&self) -> u64 {
        self.stale_drops.load(Ordering::Relaxed)
    }
}

/// Poison-tolerant mutex lock: a thread that panicked while holding the
/// harvest lock only ever pushed complete `(pid, set)` pairs, so the data
/// stays usable.
fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Diverges without a panicking macro in this never-panic file; only
/// reachable if [`EpochBoard::slot`]'s in-range invariant is broken *and*
/// the board has zero slots, which `EpochBoard::new` makes impossible.
fn unreachable_slot() -> ! {
    std::process::abort()
}

// ---------------------------------------------------------------------------
// The epoch multiplexer
// ---------------------------------------------------------------------------

/// An epoch-multiplexed [`GossipEngine`]: at most `window` live instances
/// of the inner engine `G`, one per open epoch, behind a single engine
/// interface whose message type is [`EpochMsg`]`<G::Msg>`.
///
/// Because `EpochMux` *is* a `GossipEngine`, the existing lockstep and
/// free-running node loops (and the reactor) drive it unchanged; epochs
/// are invisible to the transport. The mux reads its marching orders from
/// the shared [`EpochBoard`]: it opens epochs up to the published
/// admission frontier at each local step, harvests (and drops) an epoch's
/// engine when the driver requests it, and reports per-slot activity so
/// the driver can detect per-epoch settling.
pub struct EpochMux<G: GossipEngine, F> {
    board: Arc<EpochBoard>,
    make: F,
    pid: ProcessId,
    n: usize,
    f: usize,
    master_seed: u64,
    /// Slot ring: `slots[epoch % window]` holds the open epoch's engine.
    slots: Vec<Option<(u64, G)>>,
    /// All epochs below this have been opened locally at some point.
    next_open: u64,
    steps: u64,
    /// What `rumors()` returns: the mux spans many epochs, so it exposes no
    /// single rumor set of its own (per-epoch sets travel via the board).
    none: RumorSet,
    scratch: Vec<(ProcessId, G::Msg)>,
}

impl<G, F> EpochMux<G, F>
where
    G: GossipEngine,
    F: Fn(GossipCtx) -> G,
{
    /// A fresh multiplexer for process `pid` of `n` (failure budget `f`),
    /// building one `G` per epoch via `make` from a [`GossipCtx`] carrying
    /// the epoch's derived seed and this process's generated rumor.
    pub fn new(
        board: Arc<EpochBoard>,
        pid: ProcessId,
        n: usize,
        f: usize,
        master_seed: u64,
        make: F,
    ) -> Self {
        let window = board.window();
        EpochMux {
            board,
            make,
            pid,
            n,
            f,
            master_seed,
            slots: (0..window).map(|_| None).collect(),
            next_open: 0,
            steps: 0,
            none: RumorSet::new(),
            scratch: Vec::new(),
        }
    }

    /// The epochs currently open in this mux, ascending.
    pub fn open_epochs(&self) -> Vec<u64> {
        let mut epochs: Vec<u64> = self
            .slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(e, _)| *e))
            .collect();
        epochs.sort_unstable();
        epochs
    }

    /// Instantiates `epoch`'s engine into `slot`.
    fn open_at(&mut self, slot: usize, epoch: u64) {
        let ctx = GossipCtx::new(
            self.pid,
            self.n,
            self.f,
            epoch_seed(self.master_seed, epoch),
        )
        .with_payload(epoch_payload(self.master_seed, epoch, self.pid));
        if let Some(entry) = self.slots.get_mut(slot) {
            *entry = Some((epoch, (self.make)(ctx)));
        }
    }

    /// Harvests `slot`: deposits the engine's rumor set on the board and
    /// drops the engine (the garbage collection).
    fn harvest_slot(&mut self, slot: usize) {
        if let Some(entry) = self.slots.get_mut(slot) {
            if let Some((_, engine)) = entry.take() {
                self.board
                    .push_harvest(slot, self.pid, engine.rumors().clone());
            }
        }
    }

    /// Routes an incoming frame for `epoch` to its slot, opening the epoch
    /// on delivery if this process has not opened it yet (free-running
    /// only; under lockstep every process opens an epoch at the local step
    /// before any frame for it can arrive, since send delays are ≥ 1
    /// tick). Returns `None` for stale frames (epoch already finalized or
    /// slot reused), which the caller absorbs.
    fn route(&mut self, epoch: u64) -> Option<usize> {
        if epoch < self.board.finalized_floor() {
            return None;
        }
        let slot = self.board.slot_of(epoch);
        match self.slots.get(slot).and_then(|s| s.as_ref()) {
            Some((e, _)) if *e == epoch => return Some(slot),
            Some((e, _)) if *e > epoch => return None,
            _ => {}
        }
        if epoch < self.next_open {
            // Opened locally before and since harvested or displaced.
            return None;
        }
        // Any older occupant's epoch was finalized without this process's
        // harvest (the driver does not wait for processes configured to
        // crash); its engine is dropped unharvested.
        if let Some(entry) = self.slots.get_mut(slot) {
            *entry = None;
        }
        self.open_at(slot, epoch);
        Some(slot)
    }
}

impl<G, F> GossipEngine for EpochMux<G, F>
where
    G: GossipEngine,
    G::Msg: WireCodec,
    F: Fn(GossipCtx) -> G,
{
    type Msg = EpochMsg<G::Msg>;

    fn deliver(&mut self, from: ProcessId, msg: Self::Msg) {
        match self.route(msg.epoch) {
            Some(slot) => {
                self.board.bump_activity(slot, self.board.now());
                if let Some(Some((_, engine))) = self.slots.get_mut(slot) {
                    engine.deliver(from, msg.inner);
                }
            }
            None => self.board.note_stale_drops(1),
        }
    }

    fn deliver_encoded<E: EncodedFrame>(&mut self, frames: &[E]) -> usize
    where
        Self::Msg: WireCodec,
    {
        /// One epoch's slice of the incoming batch, in arrival order.
        type EpochBatch<'a> = Vec<(ProcessId, &'a [u8])>;
        let mut errors = 0usize;
        // Group the batch by epoch (preserving arrival order within each
        // epoch) using only the cheap envelope-header parse, so each open
        // engine still gets its nested frames as one batch and keeps its
        // batched-union fast path.
        let mut groups: Vec<(u64, EpochBatch<'_>)> = Vec::new();
        for frame in frames {
            match peel_epoch_header(frame.body()) {
                Ok((epoch, at)) => {
                    let inner = frame.body().get(at..).unwrap_or(&[]);
                    match groups.iter_mut().find(|(e, _)| *e == epoch) {
                        Some((_, batch)) => batch.push((frame.sender(), inner)),
                        None => groups.push((epoch, vec![(frame.sender(), inner)])),
                    }
                }
                Err(_) => errors += 1,
            }
        }
        for (epoch, batch) in groups {
            match self.route(epoch) {
                Some(slot) => {
                    self.board.bump_activity(slot, self.board.now());
                    if let Some(Some((_, engine))) = self.slots.get_mut(slot) {
                        errors += engine.deliver_encoded(&batch);
                    }
                }
                // Stale frames are absorbed (counted, not errors): the
                // epidemic re-send makes late duplicates inevitable.
                None => self.board.note_stale_drops(batch.len() as u64),
            }
        }
        errors
    }

    fn local_step(&mut self, out: &mut Vec<(ProcessId, Self::Msg)>) {
        let now = self.board.now();
        // 1. Harvest slots the driver asked for: deposit the final rumor
        //    set and drop the engine.
        for slot in 0..self.slots.len() {
            let requested = match self.slots.get(slot).and_then(|s| s.as_ref()) {
                Some((e, _)) => self.board.harvest_request(slot) == Some(*e),
                None => false,
            };
            if requested {
                self.harvest_slot(slot);
            }
        }
        // 2. Open every epoch the driver has admitted since our last step.
        let floor = self.board.finalized_floor();
        if self.next_open < floor {
            self.next_open = floor;
        }
        let upto = self.board.open_upto();
        while self.next_open < upto {
            let epoch = self.next_open;
            self.next_open += 1;
            let slot = self.board.slot_of(epoch);
            match self.slots.get(slot).and_then(|s| s.as_ref()) {
                // Already open (delivery-opened) or overtaken.
                Some((e, _)) if *e >= epoch => {}
                _ => {
                    if let Some(entry) = self.slots.get_mut(slot) {
                        *entry = None;
                    }
                    self.open_at(slot, epoch);
                }
            }
        }
        // 3. Step every open epoch in ascending epoch order, tagging its
        //    output messages with the epoch.
        let mut order: Vec<(u64, usize)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(slot, s)| s.as_ref().map(|(e, _)| (*e, slot)))
            .collect();
        order.sort_unstable();
        for (epoch, slot) in order {
            let scratch = &mut self.scratch;
            scratch.clear();
            if let Some(Some((_, engine))) = self.slots.get_mut(slot) {
                engine.local_step(scratch);
                let active = !scratch.is_empty() || !engine.is_quiescent();
                if active {
                    self.board.bump_activity(slot, now);
                }
            }
            out.reserve(scratch.len());
            for (to, inner) in scratch.drain(..) {
                out.push((to, EpochMsg { epoch, inner }));
            }
        }
        self.steps += 1;
    }

    fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The mux spans many epochs, so it has no rumor set of its own; the
    /// per-epoch sets travel through the board's harvest cells instead.
    fn rumors(&self) -> &RumorSet {
        &self.none
    }

    fn is_quiescent(&self) -> bool {
        self.slots
            .iter()
            .all(|s| s.as_ref().is_none_or(|(_, engine)| engine.is_quiescent()))
    }

    fn steps_taken(&self) -> u64 {
        self.steps
    }

    fn msg_units(msg: &Self::Msg) -> u64 {
        G::msg_units(&msg.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ears::{Ears, EarsMessage};
    use crate::informed_list::InformedList;
    use crate::trivial::{Trivial, TrivialMessage};

    #[test]
    fn epoch_msg_round_trips() {
        let msg = EpochMsg {
            epoch: 300,
            inner: TrivialMessage {
                rumor: Rumor::new(ProcessId(3), 77),
            },
        };
        let bytes = msg.encode();
        assert_eq!(bytes[1], kind::EPOCH);
        let back = EpochMsg::<TrivialMessage>::decode(&bytes).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn epoch_view_matches_owned_decode() {
        let mut set = RumorSet::new();
        for i in 0..40 {
            set.insert(Rumor::new(ProcessId(i), i as u64));
        }
        let msg = EpochMsg {
            epoch: 9,
            inner: EarsMessage {
                rumors: Arc::new(set),
                informed: Arc::new(InformedList::new()),
            },
        };
        let bytes = msg.encode();
        let view = EpochMsg::<EarsMessage>::decode_view(&bytes).unwrap();
        assert_eq!(view.epoch, 9);
        assert_eq!(EpochMsg::view_to_owned(&view), msg);
    }

    #[test]
    fn peel_rejects_non_epoch_frames() {
        let inner = TrivialMessage {
            rumor: Rumor::new(ProcessId(0), 0),
        };
        let bytes = inner.encode();
        assert!(matches!(
            peel_epoch_header(&bytes),
            Err(CodecError::BadKind(k)) if k == kind::TRIVIAL
        ));
        assert!(matches!(peel_epoch_header(&[]), Err(CodecError::Truncated)));
    }

    #[test]
    fn decode_rejects_truncation_and_trailing() {
        let msg = EpochMsg {
            epoch: 5,
            inner: TrivialMessage {
                rumor: Rumor::new(ProcessId(1), 2),
            },
        };
        let bytes = msg.encode();
        for len in 0..bytes.len() {
            assert!(EpochMsg::<TrivialMessage>::decode(&bytes[..len]).is_err());
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(
            EpochMsg::<TrivialMessage>::decode(&trailing),
            Err(CodecError::TrailingBytes(1))
        ));
    }

    #[test]
    fn workload_generator_is_deterministic_and_epoch_distinct() {
        let a = epoch_rumor(42, 0, ProcessId(3));
        let b = epoch_rumor(42, 0, ProcessId(3));
        assert_eq!(a, b);
        assert_ne!(
            epoch_rumor(42, 0, ProcessId(3)).payload,
            epoch_rumor(42, 1, ProcessId(3)).payload
        );
        assert_ne!(
            epoch_rumor(42, 0, ProcessId(3)).payload,
            epoch_rumor(43, 0, ProcessId(3)).payload
        );
        let slate = epoch_initial_rumors(7, 4, 16);
        assert_eq!(slate.len(), 16);
        for (i, rumor) in slate.iter().enumerate() {
            assert_eq!(rumor.origin, ProcessId(i));
        }
    }

    #[test]
    fn open_upto_respects_window_and_total() {
        // Closed loop: frontier tracks finalized + in_flight, capped.
        assert_eq!(
            service_open_upto(LoopMode::Closed { in_flight: 4 }, 8, 100, 0, 0),
            4
        );
        assert_eq!(
            service_open_upto(LoopMode::Closed { in_flight: 4 }, 8, 100, 50, 10),
            14
        );
        assert_eq!(
            service_open_upto(LoopMode::Closed { in_flight: 16 }, 8, 100, 0, 0),
            8
        );
        assert_eq!(
            service_open_upto(LoopMode::Closed { in_flight: 4 }, 8, 3, 0, 0),
            3
        );
        // Open loop: frontier tracks time, capped by the window.
        assert_eq!(
            service_open_upto(LoopMode::Open { period: 10 }, 8, 100, 0, 0),
            1
        );
        assert_eq!(
            service_open_upto(LoopMode::Open { period: 10 }, 8, 100, 35, 2),
            4
        );
        assert_eq!(
            service_open_upto(LoopMode::Open { period: 1 }, 8, 100, 50, 2),
            10
        );
    }

    #[test]
    fn open_upto_is_monotone_in_time_and_finalized() {
        for mode in [
            LoopMode::Open { period: 3 },
            LoopMode::Closed { in_flight: 5 },
        ] {
            let mut prev = 0;
            let mut finalized = 0;
            for now in 0..200u64 {
                if now % 7 == 0 && finalized + 2 < prev {
                    finalized += 1;
                }
                let upto = service_open_upto(mode, 8, 64, now, finalized);
                assert!(upto >= prev, "frontier went backwards under {mode:?}");
                prev = upto;
            }
        }
    }

    /// Drives a tiny 3-process service entirely by hand: open two epochs,
    /// exchange messages until quiet, harvest, and check the board GC'd.
    #[test]
    fn mux_lifecycle_open_step_harvest() {
        let n = 3;
        let board = Arc::new(EpochBoard::new(4));
        let mut muxes: Vec<_> = (0..n)
            .map(|p| {
                EpochMux::new(board.clone(), ProcessId(p), n, 0, 99, |ctx: GossipCtx| {
                    Trivial::new(ctx)
                })
            })
            .collect();

        board.publish_open_upto(2);
        let mut inboxes: Vec<Vec<(ProcessId, EpochMsg<TrivialMessage>)>> =
            (0..n).map(|_| Vec::new()).collect();
        for tick in 0..50u64 {
            board.set_now(tick);
            let mut quiet = true;
            for p in 0..n {
                let mux = &mut muxes[p];
                let pending = std::mem::take(&mut inboxes[p]);
                for (from, msg) in pending {
                    mux.deliver(from, msg);
                }
                let mut out = Vec::new();
                mux.local_step(&mut out);
                quiet &= out.is_empty();
                for (to, msg) in out {
                    inboxes[to.index()].push((ProcessId(p), msg));
                }
            }
            if quiet && inboxes.iter().all(|i| i.is_empty()) {
                break;
            }
        }
        for mux in &muxes {
            assert_eq!(mux.open_epochs(), vec![0, 1]);
            assert!(mux.is_quiescent());
        }

        // Harvest epoch 0 out of slot 0.
        board.request_harvest(0, 0);
        for mux in &mut muxes {
            let mut out = Vec::new();
            mux.local_step(&mut out);
            assert!(out.is_empty());
            assert_eq!(mux.open_epochs(), vec![1], "engine dropped after harvest");
        }
        let harvest = board.take_harvest(0);
        assert_eq!(harvest.len(), n);
        for (pid, set) in &harvest {
            assert_eq!(set.len(), n, "gossip completed for pid {pid:?}");
            for p in 0..n {
                assert!(set.contains_origin(ProcessId(p)));
            }
            let expected = epoch_rumor(99, 0, *pid);
            assert!(set.iter().any(|r| r == expected));
        }
        assert_eq!(board.harvest_request(0), None, "request cleared on take");
    }

    /// Stale frames (below the finalized floor) are absorbed, not errors.
    #[test]
    fn stale_frames_are_absorbed() {
        let board = Arc::new(EpochBoard::new(2));
        let mut mux = EpochMux::new(board.clone(), ProcessId(0), 2, 0, 1, |ctx: GossipCtx| {
            Ears::new(ctx)
        });
        board.publish_open_upto(4);
        board.set_finalized_floor(2);
        let mut out = Vec::new();
        mux.local_step(&mut out);
        assert_eq!(mux.open_epochs(), vec![2, 3]);

        let stale = EpochMsg {
            epoch: 1,
            inner: EarsMessage {
                rumors: Arc::new(RumorSet::new()),
                informed: Arc::new(InformedList::new()),
            },
        };
        mux.deliver(ProcessId(1), stale.clone());
        assert_eq!(board.stale_drops(), 1);
        let frames = vec![(ProcessId(1), stale.encode())];
        assert_eq!(
            mux.deliver_encoded(&frames),
            0,
            "stale is not a decode error"
        );
        assert_eq!(board.stale_drops(), 2);
    }
}
