//! The trivial gossip protocol (the "Trivial" row of Table 1).
//!
//! Every process sends its rumor directly to every other process in its first
//! local step and then stops. Time complexity `O(d+δ)`, message complexity
//! `Θ(n²)`. It tolerates any number of crash failures and works against an
//! adaptive adversary — it is the baseline every non-trivial protocol tries
//! to beat on message complexity, and what the Theorem 1 lower bound says
//! cannot be beaten for free.

use agossip_sim::ProcessId;

use crate::engine::{GossipCtx, GossipEngine};
use crate::rumor::{Rumor, RumorSet};

/// Wire message of the trivial protocol: just the sender's rumor.
///
/// Two words on the wire — `Copy`, so broadcasting it costs no allocation at
/// all (no `Arc` indirection needed, unlike the set-carrying protocols).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrivialMessage {
    /// The sender's initial rumor.
    pub rumor: Rumor,
}

/// The trivial all-to-all gossip protocol.
#[derive(Debug, Clone)]
pub struct Trivial {
    ctx: GossipCtx,
    rumors: RumorSet,
    sent: bool,
    steps: u64,
}

impl Trivial {
    /// Creates an instance for the process described by `ctx`.
    pub fn new(ctx: GossipCtx) -> Self {
        Trivial {
            rumors: RumorSet::singleton(ctx.rumor),
            ctx,
            sent: false,
            steps: 0,
        }
    }
}

impl GossipEngine for Trivial {
    type Msg = TrivialMessage;

    fn deliver(&mut self, _from: ProcessId, msg: TrivialMessage) {
        self.rumors.insert(msg.rumor);
    }

    fn local_step(&mut self, out: &mut Vec<(ProcessId, TrivialMessage)>) {
        self.steps += 1;
        if self.sent {
            return;
        }
        self.sent = true;
        let msg = TrivialMessage {
            rumor: self.ctx.rumor,
        };
        for q in ProcessId::all(self.ctx.n) {
            if q != self.ctx.pid {
                out.push((q, msg));
            }
        }
    }

    fn pid(&self) -> ProcessId {
        self.ctx.pid
    }

    fn rumors(&self) -> &RumorSet {
        &self.rumors
    }

    fn is_quiescent(&self) -> bool {
        self.sent
    }

    fn steps_taken(&self) -> u64 {
        self.steps
    }

    fn msg_units(msg: &Self::Msg) -> u64 {
        crate::wire::WireSize::wire_units(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pid: usize, n: usize) -> GossipCtx {
        GossipCtx::new(ProcessId(pid), n, 0, 7)
    }

    #[test]
    fn first_step_broadcasts_to_everyone_else() {
        let mut p = Trivial::new(ctx(0, 5));
        assert!(!p.is_quiescent());
        let mut out = Vec::new();
        p.local_step(&mut out);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|(q, _)| *q != ProcessId(0)));
        assert!(p.is_quiescent());
    }

    #[test]
    fn later_steps_send_nothing() {
        let mut p = Trivial::new(ctx(1, 4));
        let mut out = Vec::new();
        p.local_step(&mut out);
        out.clear();
        p.local_step(&mut out);
        p.local_step(&mut out);
        assert!(out.is_empty());
        assert_eq!(p.steps_taken(), 3);
    }

    #[test]
    fn delivery_adds_rumor() {
        let mut p = Trivial::new(ctx(0, 3));
        assert_eq!(p.rumors().len(), 1);
        p.deliver(
            ProcessId(2),
            TrivialMessage {
                rumor: Rumor::new(ProcessId(2), 2),
            },
        );
        assert_eq!(p.rumors().len(), 2);
        assert!(p.rumors().contains_origin(ProcessId(2)));
    }

    #[test]
    fn own_rumor_present_from_start() {
        let p = Trivial::new(ctx(3, 8));
        assert!(p.rumors().contains_origin(ProcessId(3)));
        assert_eq!(p.pid(), ProcessId(3));
    }

    #[test]
    fn single_process_system_sends_nothing() {
        let mut p = Trivial::new(ctx(0, 1));
        let mut out = Vec::new();
        p.local_step(&mut out);
        assert!(out.is_empty());
        assert!(p.is_quiescent());
    }
}
