//! The protocol state-machine interface shared by every gossip algorithm.
//!
//! Protocols are written as *engines*: plain state machines that are told
//! when a message arrives ([`GossipEngine::deliver`]) and when they are
//! scheduled for a local step ([`GossipEngine::local_step`]). Engines never
//! touch a clock, a socket, or a thread — which is exactly what makes them
//! asynchronous algorithms in the paper's sense: their behaviour depends only
//! on the sequence of local steps and received messages.
//!
//! The same engine can therefore be driven by:
//!
//! * the discrete-event simulator ([`crate::adapter::SimGossip`] adapts an
//!   engine to [`agossip_sim::Process`]), which is what the complexity
//!   experiments use, and
//! * the thread-per-process runtime in `agossip-runtime`, which demonstrates
//!   the protocols running under real (uncontrolled) asynchrony.

use std::fmt;

use agossip_sim::ProcessId;

use crate::rumor::{Rumor, RumorSet};

/// Construction context handed to every protocol instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipCtx {
    /// Identifier of this process.
    pub pid: ProcessId,
    /// System size `n`.
    pub n: usize,
    /// Failure budget `f < n` the protocol must tolerate.
    pub f: usize,
    /// This process's initial rumor.
    pub rumor: Rumor,
    /// Seed for the protocol's local randomness.
    pub seed: u64,
}

impl GossipCtx {
    /// Convenience constructor: process `pid` of `n` with failure budget `f`,
    /// carrying a rumor whose payload is its own index, with per-process
    /// seeds derived from `seed`.
    pub fn new(pid: ProcessId, n: usize, f: usize, seed: u64) -> Self {
        GossipCtx {
            pid,
            n,
            f,
            rumor: Rumor::new(pid, pid.index() as u64),
            seed: agossip_sim::rng::derive_seed(seed, agossip_sim::rng::RngStream::Process(pid)),
        }
    }

    /// Replaces the rumor payload (used by the consensus layer to gossip
    /// votes).
    pub fn with_payload(mut self, payload: u64) -> Self {
        self.rumor = Rumor::new(self.pid, payload);
        self
    }

    /// Size of a majority of the system, `⌊n/2⌋ + 1`.
    pub fn majority(&self) -> usize {
        self.n / 2 + 1
    }
}

/// Pushes one message to every target, cloning for all but the last target,
/// which receives the message by move.
///
/// Every broadcast loop in the protocols goes through this helper so no send
/// ever pays a trailing clone. Since the set-carrying messages hold
/// [`std::sync::Arc`] snapshots, the per-target clone is a reference-count
/// bump, not a copy of the rumor state.
pub fn broadcast<M: Clone>(out: &mut Vec<(ProcessId, M)>, targets: &[ProcessId], msg: M) {
    if let Some((&last, rest)) = targets.split_last() {
        out.reserve(targets.len());
        for &q in rest {
            out.push((q, msg.clone()));
        }
        out.push((last, msg));
    }
}

/// One received, still-encoded frame awaiting delivery: the sender plus the
/// encoded message bytes. The runtime's pending queues implement this so
/// [`GossipEngine::deliver_encoded`] can walk a batch without the queue
/// having to materialize `(ProcessId, &[u8])` pairs.
pub trait EncodedFrame {
    /// The process the frame came from.
    fn sender(&self) -> ProcessId;

    /// The encoded message body.
    fn body(&self) -> &[u8];
}

impl EncodedFrame for (ProcessId, &[u8]) {
    fn sender(&self) -> ProcessId {
        self.0
    }

    fn body(&self) -> &[u8] {
        self.1
    }
}

impl EncodedFrame for (ProcessId, Vec<u8>) {
    fn sender(&self) -> ProcessId {
        self.0
    }

    fn body(&self) -> &[u8] {
        &self.1
    }
}

/// A gossip protocol instance for one process.
pub trait GossipEngine {
    /// The wire message exchanged by this protocol.
    type Msg: Clone + fmt::Debug;

    /// Incorporates a message received from `from`.
    ///
    /// Receiving never sends: in the paper's model a process sends only
    /// during a local step, after having received the messages delivered at
    /// that step.
    fn deliver(&mut self, from: ProcessId, msg: Self::Msg);

    /// Delivers a batch of encoded frame bodies, all due at the same
    /// instant, in order. Returns the number of bodies that failed to
    /// decode (the rest of the batch is still delivered).
    ///
    /// Semantically identical to decoding each body and calling
    /// [`GossipEngine::deliver`] in order — which is exactly what this
    /// default does. The set-carrying protocols override it to decode
    /// borrowed views ([`crate::codec_view`]) and fold the whole batch into
    /// their state with at most one copy-on-write per set per batch,
    /// instead of one owned decode + one potential `Arc` copy per message.
    fn deliver_encoded<F: EncodedFrame>(&mut self, frames: &[F]) -> usize
    where
        Self::Msg: crate::codec::WireCodec,
    {
        let mut errors = 0usize;
        for frame in frames {
            match <Self::Msg as crate::codec::WireCodec>::decode(frame.body()) {
                Ok(msg) => self.deliver(frame.sender(), msg),
                Err(_) => errors += 1,
            }
        }
        errors
    }

    /// Executes one local step: compute and push any outgoing messages (as
    /// `(destination, message)` pairs) into `out`.
    fn local_step(&mut self, out: &mut Vec<(ProcessId, Self::Msg)>);

    /// This process's identifier.
    fn pid(&self) -> ProcessId;

    /// The rumors collected so far (always contains the process's own rumor).
    fn rumors(&self) -> &RumorSet;

    /// True when the process has stopped sending messages (it will send
    /// nothing in future local steps unless a received message reactivates
    /// it).
    fn is_quiescent(&self) -> bool;

    /// Number of local steps taken so far. Mostly useful for tests and
    /// progress diagnostics.
    fn steps_taken(&self) -> u64;

    /// The wire size of one message of this protocol, in rumor units (see
    /// [`crate::wire`]).
    ///
    /// The default charges one unit per message, which reduces the metric to
    /// plain message counting; protocols whose messages carry rumor sets
    /// override it so the experiment harnesses can estimate bit complexity
    /// (the paper's Section 7 open question).
    fn msg_units(msg: &Self::Msg) -> u64 {
        let _ = msg;
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_new_derives_distinct_seeds() {
        let a = GossipCtx::new(ProcessId(0), 8, 2, 42);
        let b = GossipCtx::new(ProcessId(1), 8, 2, 42);
        assert_ne!(a.seed, b.seed);
        assert_eq!(a.rumor, Rumor::new(ProcessId(0), 0));
        assert_eq!(b.rumor, Rumor::new(ProcessId(1), 1));
    }

    #[test]
    fn ctx_majority() {
        assert_eq!(GossipCtx::new(ProcessId(0), 7, 3, 0).majority(), 4);
        assert_eq!(GossipCtx::new(ProcessId(0), 8, 3, 0).majority(), 5);
        assert_eq!(GossipCtx::new(ProcessId(0), 1, 0, 0).majority(), 1);
    }

    #[test]
    fn with_payload_overrides_rumor_payload() {
        let ctx = GossipCtx::new(ProcessId(3), 8, 2, 1).with_payload(99);
        assert_eq!(ctx.rumor, Rumor::new(ProcessId(3), 99));
    }

    #[test]
    fn broadcast_preserves_target_order_and_handles_empty() {
        let mut out: Vec<(ProcessId, u64)> = Vec::new();
        broadcast(&mut out, &[], 7);
        assert!(out.is_empty());
        let targets = [ProcessId(3), ProcessId(1), ProcessId(2)];
        broadcast(&mut out, &targets, 7);
        let got: Vec<ProcessId> = out.iter().map(|(q, _)| *q).collect();
        assert_eq!(got, targets);
        assert!(out.iter().all(|(_, m)| *m == 7));
    }
}
