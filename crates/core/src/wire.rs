//! Wire-size accounting for gossip messages.
//!
//! The paper counts only the *number* of point-to-point messages and leaves
//! the *bit complexity* — the total volume of information exchanged — as
//! future work (Section 7). Message sizes differ sharply between the
//! protocols: `ears` ships its whole rumor set *and* informed-list in every
//! message, `tears` ships only rumors, and the trivial protocol ships exactly
//! one rumor per message. This module gives every wire message a size in
//! *rumor units* so the experiment harnesses can measure that trade-off.
//!
//! A *rumor unit* is the cost of one rumor entry (an origin identifier plus a
//! payload word). An informed-list pair `⟨r, q⟩` also costs one unit (two
//! identifiers). Every message additionally pays one unit of fixed header.
//! The absolute scale is arbitrary; only ratios between protocols matter.
//!
//! The unit count is not merely abstract: since the byte-level codec landed
//! ([`crate::codec`]), every message's encoded size is provably proportional
//! to its unit count — `encoded_len ≤ 24 · wire_units` and
//! `wire_units ≤ 8 · encoded_len` (see
//! [`crate::codec::MAX_BYTES_PER_UNIT`] / [`crate::codec::MAX_UNITS_PER_BYTE`]
//! and the pinning tests there and in `tests/tests/props_codec.rs`). Unit
//! counts measured by the simulator therefore estimate real wire bytes up to
//! a bounded constant.

/// Types with a measurable size on the wire, in rumor units.
pub trait WireSize {
    /// The size of this value in rumor units (see the module documentation).
    ///
    /// Bare collections ([`crate::rumor::RumorSet`],
    /// [`crate::informed_list::InformedList`]) report their exact cardinality
    /// — `0` for an empty collection. Only *message* implementations add the
    /// one unit of fixed header, so a full wire message is always ≥ 1 even
    /// when the collections it carries are empty.
    fn wire_units(&self) -> u64;
}

/// Sums the wire size of a batch of outgoing messages.
pub fn total_units<'a, M, I>(msgs: I) -> u64
where
    M: WireSize + 'a,
    I: IntoIterator<Item = &'a M>,
{
    msgs.into_iter().map(WireSize::wire_units).sum()
}

impl WireSize for crate::rumor::RumorSet {
    fn wire_units(&self) -> u64 {
        self.len() as u64
    }
}

impl WireSize for crate::informed_list::InformedList {
    fn wire_units(&self) -> u64 {
        self.len() as u64
    }
}

impl WireSize for crate::ears::EarsMessage {
    fn wire_units(&self) -> u64 {
        1 + self.rumors.wire_units() + self.informed.wire_units()
    }
}

impl WireSize for crate::sears::SearsMessage {
    fn wire_units(&self) -> u64 {
        1 + self.rumors.wire_units() + self.informed.wire_units()
    }
}

impl WireSize for crate::tears::TearsMessage {
    fn wire_units(&self) -> u64 {
        1 + self.rumors.wire_units()
    }
}

impl WireSize for crate::trivial::TrivialMessage {
    fn wire_units(&self) -> u64 {
        // One rumor plus the header.
        2
    }
}

impl WireSize for crate::sync_epidemic::SyncMessage {
    fn wire_units(&self) -> u64 {
        1 + self.rumors.wire_units()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::ears::EarsMessage;
    use crate::informed_list::InformedList;
    use crate::rumor::{Rumor, RumorSet};
    use crate::sync_epidemic::SyncMessage;
    use crate::tears::{TearsFlag, TearsMessage};
    use crate::trivial::TrivialMessage;
    use agossip_sim::ProcessId;

    struct Fixed(u64);
    impl WireSize for Fixed {
        fn wire_units(&self) -> u64 {
            self.0
        }
    }

    fn rumors(k: usize) -> RumorSet {
        (0..k).map(|i| Rumor::new(ProcessId(i), i as u64)).collect()
    }

    #[test]
    fn total_units_sums_over_batch() {
        let batch = [Fixed(1), Fixed(4), Fixed(2)];
        assert_eq!(total_units(batch.iter()), 7);
    }

    #[test]
    fn total_units_of_empty_batch_is_zero() {
        let batch: [Fixed; 0] = [];
        assert_eq!(total_units(batch.iter()), 0);
    }

    #[test]
    fn rumor_set_units_equal_cardinality() {
        assert_eq!(rumors(0).wire_units(), 0);
        assert_eq!(rumors(5).wire_units(), 5);
    }

    #[test]
    fn ears_message_counts_rumors_and_informed_pairs() {
        let mut informed = InformedList::new();
        informed.insert(ProcessId(0), ProcessId(1));
        informed.insert(ProcessId(0), ProcessId(2));
        let msg = EarsMessage {
            rumors: Arc::new(rumors(3)),
            informed: Arc::new(informed),
        };
        assert_eq!(msg.wire_units(), 1 + 3 + 2);
    }

    #[test]
    fn empty_collections_cost_zero_but_messages_pay_the_header() {
        // The trait contract: bare collections report exact cardinality
        // (zero when empty); messages add one header unit on top.
        assert_eq!(RumorSet::new().wire_units(), 0);
        assert_eq!(InformedList::new().wire_units(), 0);
        let msg = SyncMessage {
            rumors: Arc::new(RumorSet::new()),
        };
        assert_eq!(msg.wire_units(), 1);
    }

    #[test]
    fn trivial_message_is_constant_size() {
        let msg = TrivialMessage {
            rumor: Rumor::new(ProcessId(0), 0),
        };
        assert_eq!(msg.wire_units(), 2);
    }

    #[test]
    fn tears_and_sync_messages_scale_with_rumor_count() {
        let tears = TearsMessage {
            rumors: Arc::new(rumors(4)),
            flag: TearsFlag::Up,
        };
        assert_eq!(tears.wire_units(), 5);
        let sync = SyncMessage {
            rumors: Arc::new(rumors(7)),
        };
        assert_eq!(sync.wire_units(), 8);
    }
}
