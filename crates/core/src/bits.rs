//! A growable word-packed bitset: the shared representation machinery behind
//! [`crate::rumor::RumorSet`] and [`crate::informed_list::InformedList`].
//!
//! Both collections live over the fixed universe `0..n` of process indices,
//! so membership packs into `⌈n/64⌉` machine words: `contains` is a bit test,
//! `union` is a word-wise OR, and iteration walks set bits in ascending index
//! order (which is exactly the origin order the old tree-based
//! representations produced). The capacity grows on demand because the
//! collections are constructed before `n` is known to them; two sets that
//! hold the same indices compare equal regardless of how much capacity each
//! happens to have allocated.

/// A set of `usize` indices packed 64 per word.
#[derive(Clone, Default)]
pub(crate) struct WordSet {
    words: Vec<u64>,
}

impl WordSet {
    /// Creates an empty set.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// The backing words (low word first).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Grows the backing storage to at least `len` words.
    pub(crate) fn ensure_words(&mut self, len: usize) {
        if self.words.len() < len {
            self.words.resize(len, 0);
        }
    }

    /// True if `index` is in the set.
    pub(crate) fn contains(&self, index: usize) -> bool {
        self.words
            .get(index / 64)
            .is_some_and(|w| w & (1 << (index % 64)) != 0)
    }

    /// Inserts `index`. Returns `true` if it was not present before.
    pub(crate) fn insert(&mut self, index: usize) -> bool {
        self.ensure_words(index / 64 + 1);
        let word = &mut self.words[index / 64];
        let bit = 1u64 << (index % 64);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// ORs `word` into the `w`-th backing word, growing as needed. Returns
    /// the mask of bits that were newly set.
    pub(crate) fn or_word(&mut self, w: usize, word: u64) -> u64 {
        if word == 0 {
            return 0;
        }
        self.ensure_words(w + 1);
        let fresh = word & !self.words[w];
        self.words[w] |= word;
        fresh
    }

    /// Merges `other` into `self`. Returns the number of indices added.
    pub(crate) fn union(&mut self, other: &WordSet) -> usize {
        let mut added = 0usize;
        for (w, &word) in other.words.iter().enumerate() {
            added += self.or_word(w, word).count_ones() as usize;
        }
        added
    }

    /// True if every index of `other` is in `self`.
    pub(crate) fn is_superset_of(&self, other: &WordSet) -> bool {
        other.words.iter().enumerate().all(|(w, &word)| {
            let own = self.words.get(w).copied().unwrap_or(0);
            word & !own == 0
        })
    }

    /// Iterates over the set indices in ascending order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(w, &word)| BitIter { word }.map(move |b| w * 64 + b))
    }

    /// Capacity-insensitive equality: same indices, regardless of how many
    /// trailing zero words either side has allocated.
    pub(crate) fn eq_bits(&self, other: &WordSet) -> bool {
        let common = self.words.len().min(other.words.len());
        self.words[..common] == other.words[..common]
            && self.words[common..].iter().all(|&w| w == 0)
            && other.words[common..].iter().all(|&w| w == 0)
    }
}

/// Iterates the set bit positions of one word, low bit first.
struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_and_growth() {
        let mut s = WordSet::new();
        assert!(!s.contains(0));
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(200), "insertion grows the word vector");
        assert!(s.contains(3));
        assert!(s.contains(200));
        assert!(!s.contains(199));
        assert_eq!(s.words().len(), 4);
    }

    #[test]
    fn union_counts_fresh_bits_only() {
        let mut a = WordSet::new();
        a.insert(1);
        a.insert(65);
        let mut b = WordSet::new();
        b.insert(1);
        b.insert(2);
        b.insert(130);
        assert_eq!(a.union(&b), 2);
        assert_eq!(a.union(&b), 0);
        assert!(a.is_superset_of(&b));
        assert!(!b.is_superset_of(&a));
    }

    #[test]
    fn iter_is_ascending() {
        let mut s = WordSet::new();
        for i in [130, 0, 63, 64, 5] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 130]);
    }

    #[test]
    fn equality_ignores_capacity() {
        let mut a = WordSet::new();
        a.insert(1);
        let mut b = WordSet::new();
        b.insert(1);
        b.insert(500);
        let mut c = WordSet::new();
        c.insert(1);
        assert!(a.eq_bits(&c));
        assert!(!a.eq_bits(&b));
        // Give `c` extra capacity holding only zeros.
        c.ensure_words(16);
        assert!(a.eq_bits(&c));
        assert!(c.eq_bits(&a));
    }

    #[test]
    fn or_word_reports_fresh_mask() {
        let mut s = WordSet::new();
        assert_eq!(s.or_word(2, 0b1010), 0b1010);
        assert_eq!(s.or_word(2, 0b1110), 0b0100);
        assert_eq!(s.or_word(5, 0), 0, "zero word neither grows nor sets");
        assert_eq!(s.words().len(), 3);
    }
}
