//! Word-packed and adaptive bitsets: the shared representation machinery
//! behind [`crate::rumor::RumorSet`] and
//! [`crate::informed_list::InformedList`].
//!
//! Both collections live over the fixed universe `0..n` of process indices.
//! [`WordSet`] packs membership 64 indices per word: `contains` is a bit
//! test, `union` is a word-wise OR, and iteration walks set bits in
//! ascending index order (which is exactly the origin order the old
//! tree-based representations produced). The capacity grows on demand
//! because the collections are constructed before `n` is known to them; two
//! sets that hold the same indices compare equal regardless of how much
//! capacity each happens to have allocated.
//!
//! [`AdaptiveSet`] is the roaring-bitmap-style wrapper that makes the same
//! semantics affordable at `n = 65 536`: a set starts as a sorted sparse id
//! list (16 bytes per element, independent of the universe size) and
//! promotes — once, irreversibly — to the dense word-packed form when it
//! grows past [`ADAPTIVE_SPARSE_LIMIT`] elements. Every observable
//! behaviour (membership, union deltas, ascending iteration order,
//! equality) is identical in both representations, so executions are
//! bit-for-bit unchanged; only the memory touched by small sets shrinks
//! from `Θ(n)` to `O(|set|)`.

use std::borrow::Cow;

/// The sparse→dense crossover: an `AdaptiveSet` (and the sparse entry
/// list inside `RumorSet`) promotes to the word-packed form as soon as it
/// holds more than this many elements. At 16 bytes per sparse element the
/// sparse form caps at ~4 KiB — about the dense bitmap cost at
/// `n = 32 768` — while staying small enough that sorted-merge unions of
/// two sparse sets are cheap.
pub const ADAPTIVE_SPARSE_LIMIT: usize = 256;

/// Presence words with trailing zero words trimmed (the capacity a set has
/// grown to is not part of its value).
pub(crate) fn trimmed(words: &[u64]) -> &[u64] {
    let len = words.len() - words.iter().rev().take_while(|&&w| w == 0).count();
    &words[..len]
}

/// A set of `usize` indices packed 64 per word.
#[derive(Clone, Default)]
pub(crate) struct WordSet {
    words: Vec<u64>,
}

impl WordSet {
    /// Creates an empty set.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// The backing words (low word first).
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Grows the backing storage to at least `len` words.
    pub(crate) fn ensure_words(&mut self, len: usize) {
        if self.words.len() < len {
            self.words.resize(len, 0);
        }
    }

    /// True if `index` is in the set.
    pub(crate) fn contains(&self, index: usize) -> bool {
        self.words
            .get(index / 64)
            .is_some_and(|w| w & (1 << (index % 64)) != 0)
    }

    /// Inserts `index`. Returns `true` if it was not present before.
    pub(crate) fn insert(&mut self, index: usize) -> bool {
        self.ensure_words(index / 64 + 1);
        let word = &mut self.words[index / 64];
        let bit = 1u64 << (index % 64);
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// ORs `word` into the `w`-th backing word, growing as needed. Returns
    /// the mask of bits that were newly set.
    pub(crate) fn or_word(&mut self, w: usize, word: u64) -> u64 {
        if word == 0 {
            return 0;
        }
        self.ensure_words(w + 1);
        let fresh = word & !self.words[w];
        self.words[w] |= word;
        fresh
    }

    /// Merges `other` into `self`. Returns the number of indices added.
    pub(crate) fn union(&mut self, other: &WordSet) -> usize {
        self.or_words(&other.words)
    }

    /// ORs a word slice (low word first) into the set, growing once up
    /// front. Returns the number of indices added. The loop body is a
    /// straight-line zip over two slices — no per-word bounds checks or
    /// growth branches — so it autovectorizes.
    pub(crate) fn or_words(&mut self, words: &[u64]) -> usize {
        let words = trimmed(words);
        self.ensure_words(words.len());
        let mut added = 0usize;
        for (own, &word) in self.words.iter_mut().zip(words) {
            added += (word & !*own).count_ones() as usize;
            *own |= word;
        }
        added
    }

    /// ORs `bytes.len() / 8` little-endian 8-byte words (starting at word
    /// 0) into the set — the dense wire section lands here without an
    /// intermediate `Vec<u64>`. Trailing bytes short of a full word are
    /// ignored. Returns the number of indices added.
    pub(crate) fn or_le_words(&mut self, bytes: &[u8]) -> usize {
        self.ensure_words(bytes.len() / 8);
        let mut added = 0usize;
        for (own, chunk) in self.words.iter_mut().zip(bytes.chunks_exact(8)) {
            if let Some(arr) = chunk.first_chunk::<8>() {
                let word = u64::from_le_bytes(*arr);
                added += (word & !*own).count_ones() as usize;
                *own |= word;
            }
        }
        added
    }

    /// True if every index of `other` is in `self`.
    pub(crate) fn is_superset_of(&self, other: &WordSet) -> bool {
        let theirs = trimmed(&other.words);
        // `trimmed` ends at the last non-zero word, so anything longer than
        // our storage necessarily holds a bit we do not.
        theirs.len() <= self.words.len()
            && self
                .words
                .iter()
                .zip(theirs)
                .all(|(&own, &word)| word & !own == 0)
    }

    /// Iterates over the set indices in ascending order.
    pub(crate) fn iter(&self) -> WordSetIter<'_> {
        WordSetIter {
            words: &self.words,
            w: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Ascending iterator over a [`WordSet`]'s indices.
pub(crate) struct WordSetIter<'a> {
    words: &'a [u64],
    w: usize,
    current: u64,
}

impl Iterator for WordSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.w += 1;
            if self.w >= self.words.len() {
                return None;
            }
            self.current = self.words[self.w];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.w * 64 + bit)
    }
}

/// An index set that adapts its representation to its cardinality: sorted
/// sparse ids below [`ADAPTIVE_SPARSE_LIMIT`], the dense word-packed
/// [`WordSet`] above it. Promotion is one-way — a set that has gone dense
/// stays dense — so a long-lived set settles into the representation its
/// steady state wants.
#[derive(Clone)]
pub(crate) enum AdaptiveSet {
    /// Sorted ascending, no duplicates.
    Sparse(Vec<u32>),
    /// The word-packed form.
    Dense(WordSet),
}

impl Default for AdaptiveSet {
    fn default() -> Self {
        AdaptiveSet::Sparse(Vec::new())
    }
}

impl AdaptiveSet {
    /// Creates an empty set (sparse).
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// True if the set holds no index.
    pub(crate) fn is_empty(&self) -> bool {
        match self {
            AdaptiveSet::Sparse(ids) => ids.is_empty(),
            AdaptiveSet::Dense(words) => words.words().iter().all(|&w| w == 0),
        }
    }

    /// True if the set is in the dense word-packed representation.
    #[cfg(test)]
    pub(crate) fn is_dense(&self) -> bool {
        matches!(self, AdaptiveSet::Dense(_))
    }

    /// True if `index` is in the set.
    pub(crate) fn contains(&self, index: usize) -> bool {
        match self {
            AdaptiveSet::Sparse(ids) => {
                u32::try_from(index).is_ok_and(|id| ids.binary_search(&id).is_ok())
            }
            AdaptiveSet::Dense(words) => words.contains(index),
        }
    }

    /// Switches to the dense representation (no-op if already dense).
    pub(crate) fn promote(&mut self) {
        if let AdaptiveSet::Sparse(ids) = self {
            let mut words = WordSet::new();
            if let Some(&max) = ids.last() {
                words.ensure_words(max as usize / 64 + 1);
            }
            for &id in ids.iter() {
                words.insert(id as usize);
            }
            *self = AdaptiveSet::Dense(words);
        }
    }

    /// Inserts `index`. Returns `true` if it was not present before.
    /// Promotes past the crossover (or for indices beyond `u32`, which the
    /// sparse id list cannot represent).
    pub(crate) fn insert(&mut self, index: usize) -> bool {
        match self {
            AdaptiveSet::Sparse(ids) => {
                let Ok(id) = u32::try_from(index) else {
                    self.promote();
                    return self.insert(index);
                };
                match ids.binary_search(&id) {
                    Ok(_) => false,
                    Err(pos) => {
                        ids.insert(pos, id);
                        if ids.len() > ADAPTIVE_SPARSE_LIMIT {
                            self.promote();
                        }
                        true
                    }
                }
            }
            AdaptiveSet::Dense(words) => words.insert(index),
        }
    }

    /// Merges `other` into `self`. Returns the number of indices added.
    pub(crate) fn union(&mut self, other: &AdaptiveSet) -> usize {
        match (&mut *self, other) {
            (AdaptiveSet::Sparse(own), AdaptiveSet::Sparse(theirs)) => {
                let added = merge_sorted(own, theirs);
                if own.len() > ADAPTIVE_SPARSE_LIMIT {
                    self.promote();
                }
                added
            }
            (AdaptiveSet::Sparse(_), AdaptiveSet::Dense(_)) => {
                self.promote();
                self.union(other)
            }
            (AdaptiveSet::Dense(words), AdaptiveSet::Sparse(theirs)) => theirs
                .iter()
                .map(|&id| words.insert(id as usize) as usize)
                .sum(),
            (AdaptiveSet::Dense(own), AdaptiveSet::Dense(theirs)) => own.union(theirs),
        }
    }

    /// ORs raw little-endian word bytes (a dense wire row) into the set,
    /// promoting to the dense form first. Returns the number of indices
    /// added.
    pub(crate) fn or_le_words(&mut self, bytes: &[u8]) -> usize {
        self.promote();
        match self {
            AdaptiveSet::Dense(words) => words.or_le_words(bytes),
            AdaptiveSet::Sparse(_) => 0,
        }
    }

    /// True if every index named by raw little-endian word bytes is in
    /// `self`.
    pub(crate) fn is_superset_of_le_words(&self, bytes: &[u8]) -> bool {
        match self {
            AdaptiveSet::Dense(words) => {
                let own = words.words();
                bytes.chunks_exact(8).enumerate().all(|(w, chunk)| {
                    let word = chunk
                        .first_chunk::<8>()
                        .map(|arr| u64::from_le_bytes(*arr))
                        .unwrap_or(0);
                    word & !own.get(w).copied().unwrap_or(0) == 0
                })
            }
            AdaptiveSet::Sparse(_) => bytes.chunks_exact(8).enumerate().all(|(w, chunk)| {
                let mut word = chunk
                    .first_chunk::<8>()
                    .map(|arr| u64::from_le_bytes(*arr))
                    .unwrap_or(0);
                while word != 0 {
                    let index = w * 64 + word.trailing_zeros() as usize;
                    if !self.contains(index) {
                        return false;
                    }
                    word &= word - 1;
                }
                true
            }),
        }
    }

    /// True if every index of `other` is in `self`.
    pub(crate) fn is_superset_of(&self, other: &AdaptiveSet) -> bool {
        match (self, other) {
            (AdaptiveSet::Dense(own), AdaptiveSet::Dense(theirs)) => own.is_superset_of(theirs),
            (_, AdaptiveSet::Sparse(theirs)) => theirs.iter().all(|&id| self.contains(id as usize)),
            // Self is sparse (≤ the crossover), other dense: every index of
            // `other` must be one of self's few ids.
            (AdaptiveSet::Sparse(_), AdaptiveSet::Dense(theirs)) => {
                theirs.iter().all(|id| self.contains(id))
            }
        }
    }

    /// Iterates over the set indices in ascending order.
    pub(crate) fn iter(&self) -> AdaptiveIter<'_> {
        match self {
            AdaptiveSet::Sparse(ids) => AdaptiveIter::Sparse(ids.iter()),
            AdaptiveSet::Dense(words) => AdaptiveIter::Dense(words.iter()),
        }
    }

    /// ANDs this set into `mask` (one bit per index, `mask[w]` covering
    /// indices `64w..64w+64`): bits of `mask` whose index is not in the set
    /// are cleared. Indices beyond the mask are ignored.
    pub(crate) fn and_into(&self, mask: &mut [u64]) {
        match self {
            AdaptiveSet::Sparse(ids) => {
                let mut next = 0usize;
                for (w, m) in mask.iter_mut().enumerate() {
                    let mut own = 0u64;
                    while next < ids.len() && ids[next] as usize / 64 == w {
                        own |= 1 << (ids[next] % 64);
                        next += 1;
                    }
                    *m &= own;
                }
            }
            AdaptiveSet::Dense(words) => {
                let words = words.words();
                for (w, m) in mask.iter_mut().enumerate() {
                    *m &= words.get(w).copied().unwrap_or(0);
                }
            }
        }
    }

    /// The set as trimmed dense words — borrowed when already dense,
    /// materialized when sparse. This is what the wire codec's dense section
    /// ships, so the bytes are identical whichever representation the set
    /// happens to be in.
    pub(crate) fn to_words(&self) -> Cow<'_, [u64]> {
        match self {
            AdaptiveSet::Sparse(ids) => {
                let Some(&max) = ids.last() else {
                    return Cow::Owned(Vec::new());
                };
                let mut words = vec![0u64; max as usize / 64 + 1];
                for &id in ids {
                    words[id as usize / 64] |= 1 << (id % 64);
                }
                Cow::Owned(words)
            }
            AdaptiveSet::Dense(words) => Cow::Borrowed(trimmed(words.words())),
        }
    }
}

/// Merges sorted `theirs` into sorted `own` (both ascending, duplicate
/// free). Returns the number of new elements.
fn merge_sorted(own: &mut Vec<u32>, theirs: &[u32]) -> usize {
    if theirs.is_empty() {
        return 0;
    }
    // Fast path: everything new lands past the current tail.
    if own.last().is_none_or(|&tail| tail < theirs[0]) {
        own.extend_from_slice(theirs);
        return theirs.len();
    }
    let mut merged = Vec::with_capacity(own.len() + theirs.len());
    let (mut i, mut j, mut added) = (0usize, 0usize, 0usize);
    while i < own.len() && j < theirs.len() {
        match own[i].cmp(&theirs[j]) {
            std::cmp::Ordering::Less => {
                merged.push(own[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(theirs[j]);
                j += 1;
                added += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push(own[i]);
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&own[i..]);
    added += theirs.len() - j;
    merged.extend_from_slice(&theirs[j..]);
    *own = merged;
    added
}

/// Ascending iterator over an [`AdaptiveSet`]'s indices.
pub(crate) enum AdaptiveIter<'a> {
    Sparse(std::slice::Iter<'a, u32>),
    Dense(WordSetIter<'a>),
}

impl Iterator for AdaptiveIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            AdaptiveIter::Sparse(ids) => ids.next().map(|&id| id as usize),
            AdaptiveIter::Dense(bits) => bits.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_and_growth() {
        let mut s = WordSet::new();
        assert!(!s.contains(0));
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(200), "insertion grows the word vector");
        assert!(s.contains(3));
        assert!(s.contains(200));
        assert!(!s.contains(199));
        assert_eq!(s.words().len(), 4);
    }

    #[test]
    fn union_counts_fresh_bits_only() {
        let mut a = WordSet::new();
        a.insert(1);
        a.insert(65);
        let mut b = WordSet::new();
        b.insert(1);
        b.insert(2);
        b.insert(130);
        assert_eq!(a.union(&b), 2);
        assert_eq!(a.union(&b), 0);
        assert!(a.is_superset_of(&b));
        assert!(!b.is_superset_of(&a));
    }

    #[test]
    fn or_words_and_or_le_words_match_per_word_or() {
        let mut by_word = WordSet::new();
        let mut by_slice = WordSet::new();
        let mut by_bytes = WordSet::new();
        let words = [0b1010u64, 0, u64::MAX, 1 << 63];
        for (w, &word) in words.iter().enumerate() {
            by_word.or_word(w, word);
        }
        assert_eq!(by_slice.or_words(&words), 64 + 3);
        assert_eq!(by_slice.or_words(&words), 0);
        let mut bytes = Vec::new();
        for &word in &words {
            bytes.extend_from_slice(&word.to_le_bytes());
        }
        assert_eq!(by_bytes.or_le_words(&bytes), 64 + 3);
        assert_eq!(by_word.words(), by_slice.words());
        assert_eq!(trimmed(by_word.words()), trimmed(by_bytes.words()));
        // Trailing partial words are ignored.
        let mut partial = WordSet::new();
        assert_eq!(partial.or_le_words(&[0xFF, 0xFF, 0xFF]), 0);
        assert!(partial.words().is_empty());
    }

    #[test]
    fn iter_is_ascending() {
        let mut s = WordSet::new();
        for i in [130, 0, 63, 64, 5] {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 130]);
    }

    #[test]
    fn or_word_reports_fresh_mask() {
        let mut s = WordSet::new();
        assert_eq!(s.or_word(2, 0b1010), 0b1010);
        assert_eq!(s.or_word(2, 0b1110), 0b0100);
        assert_eq!(s.or_word(5, 0), 0, "zero word neither grows nor sets");
        assert_eq!(s.words().len(), 3);
    }

    #[test]
    fn adaptive_starts_sparse_and_promotes_past_the_crossover() {
        let mut s = AdaptiveSet::new();
        assert!(!s.is_dense());
        for i in 0..ADAPTIVE_SPARSE_LIMIT {
            assert!(s.insert(i * 3));
        }
        assert!(!s.is_dense(), "at the limit the set is still sparse");
        assert!(s.insert(ADAPTIVE_SPARSE_LIMIT * 3));
        assert!(s.is_dense(), "one past the limit promotes");
        // Semantics survive the promotion.
        for i in 0..=ADAPTIVE_SPARSE_LIMIT {
            assert!(s.contains(i * 3));
            assert!(!s.contains(i * 3 + 1));
        }
        let got: Vec<usize> = s.iter().collect();
        let want: Vec<usize> = (0..=ADAPTIVE_SPARSE_LIMIT).map(|i| i * 3).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn adaptive_union_matches_in_every_representation_pairing() {
        let build = |ids: &[usize], dense: bool| {
            let mut s = AdaptiveSet::new();
            if dense {
                s.promote();
            }
            for &i in ids {
                s.insert(i);
            }
            s
        };
        let a_ids = [1usize, 5, 64, 130];
        let b_ids = [0usize, 5, 131, 200];
        for &a_dense in &[false, true] {
            for &b_dense in &[false, true] {
                let mut a = build(&a_ids, a_dense);
                let b = build(&b_ids, b_dense);
                assert_eq!(a.union(&b), 3, "({a_dense}, {b_dense})");
                assert_eq!(a.union(&b), 0);
                let got: Vec<usize> = a.iter().collect();
                assert_eq!(got, vec![0, 1, 5, 64, 130, 131, 200]);
                assert!(a.is_superset_of(&b));
                assert!(!b.is_superset_of(&a));
            }
        }
    }

    #[test]
    fn adaptive_union_promotes_when_the_merge_crosses_the_limit() {
        let mut a = AdaptiveSet::new();
        let mut b = AdaptiveSet::new();
        for i in 0..ADAPTIVE_SPARSE_LIMIT {
            a.insert(2 * i);
            b.insert(2 * i + 1);
        }
        assert!(!a.is_dense() && !b.is_dense());
        assert_eq!(a.union(&b), ADAPTIVE_SPARSE_LIMIT);
        assert!(a.is_dense());
        assert_eq!(a.iter().count(), 2 * ADAPTIVE_SPARSE_LIMIT);
    }

    #[test]
    fn adaptive_and_into_masks_identically_for_both_representations() {
        let ids = [0usize, 3, 64, 127, 190];
        let mut sparse = AdaptiveSet::new();
        let mut dense = AdaptiveSet::new();
        dense.promote();
        for &i in &ids {
            sparse.insert(i);
            dense.insert(i);
        }
        let mut m1 = vec![u64::MAX; 3];
        let mut m2 = m1.clone();
        sparse.and_into(&mut m1);
        dense.and_into(&mut m2);
        assert_eq!(m1, m2);
        for i in 0..192 {
            let set = m1[i / 64] & (1 << (i % 64)) != 0;
            assert_eq!(set, ids.contains(&i), "index {i}");
        }
    }

    #[test]
    fn adaptive_to_words_is_identical_for_both_representations() {
        let ids = [1usize, 64, 500];
        let mut sparse = AdaptiveSet::new();
        let mut dense = AdaptiveSet::new();
        dense.promote();
        for &i in &ids {
            sparse.insert(i);
            dense.insert(i);
        }
        assert_eq!(sparse.to_words(), dense.to_words());
        assert!(AdaptiveSet::new().to_words().is_empty());
        // Dense words are trimmed: trailing capacity is not part of the value.
        let mut grown = AdaptiveSet::Dense(WordSet::new());
        grown.insert(1);
        if let AdaptiveSet::Dense(w) = &mut grown {
            w.ensure_words(12);
        }
        assert_eq!(grown.to_words().len(), 1);
    }

    #[test]
    fn merge_sorted_counts_only_new_elements() {
        let mut own = vec![1, 4, 9];
        assert_eq!(merge_sorted(&mut own, &[0, 4, 10]), 2);
        assert_eq!(own, vec![0, 1, 4, 9, 10]);
        assert_eq!(merge_sorted(&mut own, &[]), 0);
        assert_eq!(merge_sorted(&mut own, &[11, 12]), 2, "append fast path");
        assert_eq!(own, vec![0, 1, 4, 9, 10, 11, 12]);
    }
}
