//! Simulator-side service mode: a pipelined multi-epoch gossip run.
//!
//! The deterministic counterpart of `agossip_runtime::service`: the same
//! [`EpochMux`]/[`EpochBoard`] machinery from [`crate::epoch`], driven by
//! the discrete-event simulator via [`Simulation::step_manual`] instead of
//! threads. One global step of the simulator is one board time unit; the
//! driver publishes the admission frontier before each step, detects
//! per-epoch settling from the board's activity clocks after each step,
//! harvests settled epochs (which garbage-collects their engines), checks
//! each harvested epoch against [`check_gossip`] with the rumors of the
//! deterministic workload generator, and finalizes epochs strictly in
//! order like a replicated-log commit index.
//!
//! The whole run is a pure function of the [`SimServiceConfig`] (the
//! delays come from a seeded RNG, the workload from [`crate::epoch_rumor`]), so
//! per-epoch latencies and message counts are exactly reproducible.

use std::sync::Arc;

use agossip_sim::rng::{rng_for, splitmix64, RngStream};
use agossip_sim::{ProcessId, SimError, SimResult, Simulation};
use rand::Rng;

use crate::adapter::SimGossip;
use crate::checker::{check_gossip, CheckReport, GossipSpec};
use crate::codec::WireCodec;
use crate::engine::{GossipCtx, GossipEngine};
use crate::epoch::{epoch_initial_rumors, service_open_upto, EpochBoard, EpochMux, LoopMode};
use crate::rumor::RumorSet;

/// Domain-separation salt for the service driver's delay RNG.
const SERVICE_DELAY_SALT: u64 = 0xD31A_7E70_C200_8001;

/// Configuration of one simulated service run.
#[derive(Debug, Clone)]
pub struct SimServiceConfig {
    /// System size.
    pub n: usize,
    /// Failure budget (crash slots available to `crashes`).
    pub f: usize,
    /// Message delay bound `d`; every delivery delay is drawn uniformly
    /// from `1..=d`.
    pub d: u64,
    /// Master seed: protocol randomness, delivery delays, and the epoch
    /// workload all derive from it.
    pub seed: u64,
    /// Total number of epochs to push through the log.
    pub epochs: u64,
    /// Maximum number of concurrently open epochs (the slot-ring size).
    pub window: usize,
    /// How fresh epochs are admitted.
    pub mode: LoopMode,
    /// Which gossip variant each epoch is checked against.
    pub spec: GossipSpec,
    /// Processes to crash, as `(pid, step)` pairs.
    pub crashes: Vec<(ProcessId, u64)>,
    /// An epoch still unsettled this many steps after opening aborts the
    /// run (stall detection).
    pub stall_steps: u64,
    /// Global step budget for the whole run.
    pub max_steps: u64,
}

impl SimServiceConfig {
    /// A closed-loop config with sensible defaults: window 8, in-flight 4,
    /// full-gossip checking, no crashes.
    pub fn closed(n: usize, f: usize, d: u64, seed: u64, epochs: u64) -> Self {
        SimServiceConfig {
            n,
            f,
            d,
            seed,
            epochs,
            window: 8,
            mode: LoopMode::Closed { in_flight: 4 },
            spec: GossipSpec::Full,
            crashes: Vec::new(),
            stall_steps: 10_000,
            max_steps: 1 << 20,
        }
    }

    fn validate(&self) -> SimResult<()> {
        let reason = if self.n == 0 {
            Some("n must be positive".to_string())
        } else if self.f >= self.n {
            Some(format!(
                "failure budget f = {} must be < n = {}",
                self.f, self.n
            ))
        } else if self.d == 0 {
            Some("delay bound d must be ≥ 1".to_string())
        } else if self.epochs == 0 {
            Some("epochs must be ≥ 1".to_string())
        } else if self.window == 0 {
            Some("window must be ≥ 1".to_string())
        } else if self.crashes.len() > self.f {
            Some(format!(
                "{} crashes exceed failure budget f = {}",
                self.crashes.len(),
                self.f
            ))
        } else if self.crashes.iter().any(|(pid, _)| pid.index() >= self.n) {
            Some("crash victim out of range".to_string())
        } else {
            None
        };
        match reason {
            Some(reason) => Err(SimError::InvalidConfig { reason }),
            None => Ok(()),
        }
    }
}

/// The lifecycle record of one finalized epoch.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// The epoch number.
    pub epoch: u64,
    /// Step at which the driver admitted the epoch.
    pub opened_at: u64,
    /// Step at which the epoch was detected settled (its settle latency is
    /// `settled_at - opened_at`).
    pub settled_at: u64,
    /// Step at which it was finalized (settled *and* every earlier epoch
    /// finalized — the commit-index semantics).
    pub finalized_at: u64,
    /// Per-epoch correctness verdict.
    pub check: CheckReport,
}

impl EpochOutcome {
    /// Settle latency in steps: time from admission to detected settling.
    pub fn settle_latency(&self) -> u64 {
        self.settled_at.saturating_sub(self.opened_at)
    }
}

/// The result of one simulated service run.
#[derive(Debug, Clone)]
pub struct ServiceSimReport {
    /// One outcome per finalized epoch, in epoch order.
    pub epochs: Vec<EpochOutcome>,
    /// Total steps the run took.
    pub steps: u64,
    /// Total point-to-point messages sent.
    pub messages_sent: u64,
    /// Stale frames absorbed by the multiplexers.
    pub stale_drops: u64,
    /// Peak number of concurrently open epochs observed.
    pub max_open: usize,
}

impl ServiceSimReport {
    /// True when every epoch passed its per-epoch check.
    pub fn all_ok(&self) -> bool {
        self.epochs.iter().all(|e| e.check.all_ok())
    }

    /// Settle latencies in epoch order.
    pub fn settle_latencies(&self) -> Vec<u64> {
        self.epochs.iter().map(|e| e.settle_latency()).collect()
    }
}

/// Nearest-rank percentile of a latency sample (`p` in `0..=100`). Returns
/// 0 for an empty sample. The input need not be sorted.
pub fn percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    let idx = rank.max(1).min(sorted.len()) - 1;
    sorted.get(idx).copied().unwrap_or(0)
}

/// Driver-side view of one slot of the ring.
#[derive(Debug, Clone, Copy)]
enum SlotState {
    Free,
    Open {
        epoch: u64,
        opened_at: u64,
    },
    Harvesting {
        epoch: u64,
        opened_at: u64,
        settled_at: u64,
    },
}

/// Runs a multi-epoch gossip service on the discrete-event simulator.
///
/// `make` builds one inner engine per `(process, epoch)` pair from a
/// [`GossipCtx`] carrying the epoch's derived seed and generated rumor.
pub fn run_service_sim<G, F>(cfg: &SimServiceConfig, make: F) -> SimResult<ServiceSimReport>
where
    G: GossipEngine,
    G::Msg: WireCodec,
    F: Fn(GossipCtx) -> G + Clone,
{
    cfg.validate()?;
    let board = Arc::new(EpochBoard::new(cfg.window));
    let processes: Vec<SimGossip<EpochMux<G, F>>> = ProcessId::all(cfg.n)
        .map(|pid| {
            SimGossip::new(EpochMux::new(
                board.clone(),
                pid,
                cfg.n,
                cfg.f,
                cfg.seed,
                make.clone(),
            ))
        })
        .collect();
    let sim_config = agossip_sim::SimConfig::new(cfg.n, cfg.f)
        .with_d(cfg.d)
        .with_seed(cfg.seed)
        .with_max_steps(cfg.max_steps);
    let mut sim = Simulation::new(sim_config, processes)?;
    let mut delay_rng = rng_for(
        splitmix64(cfg.seed ^ SERVICE_DELAY_SALT),
        RngStream::Adversary,
    );

    let schedule: Vec<ProcessId> = ProcessId::all(cfg.n).collect();
    let window = cfg.window;
    let mut slots: Vec<SlotState> = vec![SlotState::Free; window];
    let mut outcomes: Vec<EpochOutcome> = Vec::with_capacity(cfg.epochs as usize);
    let mut finalized: u64 = 0;
    let mut admitted: u64 = 0;
    let mut max_open = 0usize;
    let mut step: u64 = 0;

    while finalized < cfg.epochs {
        if step >= cfg.max_steps {
            return Err(SimError::StepLimitExceeded {
                max_steps: cfg.max_steps,
            });
        }
        board.set_now(step);

        // Admit fresh epochs up to the frontier (a pure function of the
        // step and the finalized count).
        let upto = service_open_upto(cfg.mode, window, cfg.epochs, step, finalized);
        while admitted < upto {
            let epoch = admitted;
            admitted += 1;
            let slot = board.slot_of(epoch);
            slots[slot] = SlotState::Open {
                epoch,
                opened_at: step,
            };
            board.reset_activity(slot, step);
        }
        board.publish_open_upto(upto);
        max_open = max_open.max(
            slots
                .iter()
                .filter(|s| matches!(s, SlotState::Open { .. }))
                .count(),
        );

        // One global step: crashes due now, then every alive process
        // receives, computes, and sends with seeded uniform delays.
        let due: Vec<ProcessId> = cfg
            .crashes
            .iter()
            .filter(|(_, at)| *at == step)
            .map(|(pid, _)| *pid)
            .collect();
        let d = cfg.d;
        sim.step_manual(&schedule, &due, |_meta| delay_rng.gen_range(1..=d))?;

        // Finalize: a harvest requested at step S is complete after the
        // step S+1 every process harvested in; epochs finalize strictly in
        // order.
        loop {
            let ready = slots.iter().position(|s| {
                matches!(s, SlotState::Harvesting { epoch, settled_at, .. }
                    if *epoch == finalized && *settled_at < step)
            });
            let Some(slot) = ready else { break };
            let SlotState::Harvesting {
                epoch,
                opened_at,
                settled_at,
            } = slots[slot]
            else {
                break;
            };
            let mut final_rumors: Vec<RumorSet> = vec![RumorSet::new(); cfg.n];
            for (pid, set) in board.take_harvest(slot) {
                if let Some(entry) = final_rumors.get_mut(pid.index()) {
                    *entry = set;
                }
            }
            let correct: Vec<bool> = sim.statuses().iter().map(|s| s.is_alive()).collect();
            let initial = epoch_initial_rumors(cfg.seed, epoch, cfg.n);
            let check = check_gossip(cfg.spec, &final_rumors, &initial, &correct, true);
            outcomes.push(EpochOutcome {
                epoch,
                opened_at,
                settled_at,
                finalized_at: step,
                check,
            });
            slots[slot] = SlotState::Free;
            finalized += 1;
            board.set_finalized_floor(finalized);
        }

        // Settle detection: an epoch with no activity for more than `d`
        // steps has drained the network and gone quiescent (any frame sent
        // at its last activity step would have been delivered — and bumped
        // the clock — within `d` steps). Stall detection rides along.
        for (slot, state) in slots.iter_mut().enumerate() {
            if let SlotState::Open { epoch, opened_at } = *state {
                if step.saturating_sub(board.last_activity(slot)) > cfg.d {
                    board.request_harvest(slot, epoch);
                    *state = SlotState::Harvesting {
                        epoch,
                        opened_at,
                        settled_at: step,
                    };
                } else if step.saturating_sub(opened_at) > cfg.stall_steps {
                    return Err(SimError::InvalidConfig {
                        reason: format!(
                            "epoch {epoch} stalled: unsettled {} steps after opening",
                            step - opened_at
                        ),
                    });
                }
            }
        }

        step += 1;
    }

    Ok(ServiceSimReport {
        epochs: outcomes,
        steps: step,
        messages_sent: sim.metrics().messages_sent,
        stale_drops: board.stale_drops(),
        max_open,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ears::Ears;
    use crate::tears::Tears;
    use crate::trivial::Trivial;

    #[test]
    fn closed_loop_service_finalizes_every_epoch_in_order() {
        let cfg = SimServiceConfig::closed(16, 0, 2, 0xC105ED, 12);
        let report = run_service_sim(&cfg, Trivial::new).unwrap();
        assert!(report.all_ok(), "{:?}", report.epochs);
        assert_eq!(report.epochs.len(), 12);
        for (i, outcome) in report.epochs.iter().enumerate() {
            assert_eq!(outcome.epoch, i as u64);
            assert!(outcome.settled_at >= outcome.opened_at);
            assert!(outcome.finalized_at > outcome.settled_at);
        }
        assert!(report.max_open >= 2, "closed loop must pipeline epochs");
        assert_eq!(report.stale_drops, 0, "no stale frames in a clean run");
    }

    #[test]
    fn open_loop_service_finalizes_every_epoch() {
        let cfg = SimServiceConfig {
            mode: LoopMode::Open { period: 6 },
            window: 6,
            ..SimServiceConfig::closed(12, 0, 2, 0x09E7, 8)
        };
        let report = run_service_sim(&cfg, Ears::new).unwrap();
        assert!(report.all_ok());
        assert_eq!(report.epochs.len(), 8);
    }

    #[test]
    fn service_runs_are_bit_identical_per_seed() {
        let cfg = SimServiceConfig::closed(12, 0, 3, 77, 6);
        let a = run_service_sim(&cfg, Ears::new).unwrap();
        let b = run_service_sim(&cfg, Ears::new).unwrap();
        assert_eq!(a.messages_sent, b.messages_sent);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.settle_latencies(), b.settle_latencies());
    }

    #[test]
    fn service_tolerates_crashes_within_budget() {
        let mut cfg = SimServiceConfig::closed(16, 4, 2, 5, 6);
        cfg.crashes = (0..4)
            .map(|i| (ProcessId(15 - i), 3 + i as u64 * 5))
            .collect();
        let report = run_service_sim(&cfg, Ears::new).unwrap();
        assert!(report.all_ok(), "{:?}", report.epochs);
        assert_eq!(report.epochs.len(), 6);
    }

    #[test]
    fn majority_spec_checks_tears_epochs() {
        let cfg = SimServiceConfig {
            spec: GossipSpec::Majority,
            ..SimServiceConfig::closed(32, 0, 1, 9, 4)
        };
        let report = run_service_sim(&cfg, Tears::new).unwrap();
        assert!(report.all_ok(), "{:?}", report.epochs);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = SimServiceConfig::closed(8, 0, 1, 1, 4);
        cfg.window = 0;
        assert!(run_service_sim(&cfg, Trivial::new).is_err());
        let mut cfg = SimServiceConfig::closed(8, 0, 1, 1, 4);
        cfg.epochs = 0;
        assert!(run_service_sim(&cfg, Trivial::new).is_err());
        let mut cfg = SimServiceConfig::closed(8, 0, 1, 1, 4);
        cfg.crashes = vec![(ProcessId(0), 1)];
        assert!(run_service_sim(&cfg, Trivial::new).is_err(), "crash budget");
    }

    #[test]
    fn percentile_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 50.0), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        let unsorted = vec![30, 10, 20];
        assert_eq!(percentile(&unsorted, 50.0), 20);
    }
}
