//! `tears` — Two-hop Epidemic Asynchronous Rumor Spreading
//! (paper Section 5, Figure 3).
//!
//! `tears` solves *majority gossip*: every correct process must receive at
//! least a majority of the rumors (not necessarily all of them). It requires
//! `f < n/2` and achieves `O(d+δ)` time with `O(n^{7/4}·log²n)` messages —
//! strictly subquadratic and, unlike `ears`/`sears`, independent of `d` and
//! `δ` — with high probability against an oblivious adversary (Theorem 12).
//!
//! The protocol uses the derived constants (Figure 3, lines 2–4)
//! `a = 4·√n·log n`, `µ = a/2`, `κ = 8·n^{1/4}·log n`, and two random
//! neighbourhoods `Π1(p)`, `Π2(p)` where every other process is included
//! independently with probability `a/n`:
//!
//! * **First hop.** In its first local step, `p` sends a *first-level*
//!   message — its own rumor with a raised flag — to every process in
//!   `Π1(p)`.
//! * **Second hop.** `p` counts the first-level messages it receives
//!   (`up_msg_cnt`). After receiving `µ−κ` of them, and again at every count
//!   `µ+j` for `−κ < j < κ`, and thereafter at every count `µ+i·κ` for
//!   positive integers `i`, it sends a *second-level* message containing all
//!   gathered rumors to every process in `Π2(p)`.
//!
//! Unlike `ears`, a process does not send in every step; whether it sends at
//! all is governed entirely by how many first-level messages have arrived.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use agossip_sim::ProcessId;

use crate::codec_view::WireDecodeView;
use crate::engine::{broadcast, EncodedFrame, GossipCtx, GossipEngine};
use crate::params::TearsParams;
use crate::rumor::RumorSet;

/// Whether a `tears` message is first-level (flag raised) or second-level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TearsFlag {
    /// First-level message, sent in the sender's first local step ("flag up").
    Up,
    /// Second-level message, triggered by the first-level message count
    /// ("flag down").
    Down,
}

/// Wire message of `tears`: the gathered rumors plus the level flag.
///
/// The rumor collection is a copy-on-write snapshot: a broadcast to the
/// `Θ(√n·log n)`-sized `Π1`/`Π2` neighbourhood clones one [`Arc`] pointer per
/// destination instead of one rumor map per destination. Receivers only ever
/// *union* a message into their own state, so the shared payload stays
/// immutable for its whole lifetime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TearsMessage {
    /// The sender's rumor collection `V` at send time (shared snapshot).
    pub rumors: Arc<RumorSet>,
    /// Message level.
    pub flag: TearsFlag,
}

/// The `tears` protocol state machine for one process.
#[derive(Debug, Clone)]
pub struct Tears {
    ctx: GossipCtx,
    params: TearsParams,
    rumors: Arc<RumorSet>,
    pi1: Vec<ProcessId>,
    pi2: Vec<ProcessId>,
    mu: u64,
    kappa: u64,
    up_msg_cnt: u64,
    first_level_sent: bool,
    pending_bcasts: u64,
    second_level_sends: u64,
    steps: u64,
}

impl Tears {
    /// Creates an instance with default parameters.
    pub fn new(ctx: GossipCtx) -> Self {
        Self::with_params(ctx, TearsParams::default())
    }

    /// Creates an instance with explicit parameters.
    pub fn with_params(ctx: GossipCtx, params: TearsParams) -> Self {
        let mut rng = StdRng::seed_from_u64(ctx.seed);
        let prob = params.membership_probability(ctx.n);
        // Figure 3, lines 6–7: every other process joins Π1 (resp. Π2)
        // independently with probability a/n.
        let mut pi1 = Vec::new();
        let mut pi2 = Vec::new();
        for q in ProcessId::all(ctx.n) {
            if q == ctx.pid {
                continue;
            }
            if rng.gen_bool(prob) {
                pi1.push(q);
            }
            if rng.gen_bool(prob) {
                pi2.push(q);
            }
        }
        let mu = params.mu(ctx.n).round().max(1.0) as u64;
        let kappa = params.kappa(ctx.n).round().max(1.0) as u64;
        Tears {
            rumors: Arc::new(RumorSet::singleton(ctx.rumor)),
            pi1,
            pi2,
            mu,
            kappa,
            up_msg_cnt: 0,
            first_level_sent: false,
            pending_bcasts: 0,
            second_level_sends: 0,
            steps: 0,
            ctx,
            params,
        }
    }

    /// The first-hop neighbourhood `Π1(p)`.
    pub fn pi1(&self) -> &[ProcessId] {
        &self.pi1
    }

    /// The second-hop neighbourhood `Π2(p)`.
    pub fn pi2(&self) -> &[ProcessId] {
        &self.pi2
    }

    /// The trigger-window centre `µ`.
    pub fn mu(&self) -> u64 {
        self.mu
    }

    /// The trigger-window half width `κ`.
    pub fn kappa(&self) -> u64 {
        self.kappa
    }

    /// The number of first-level messages received so far.
    pub fn up_msg_count(&self) -> u64 {
        self.up_msg_cnt
    }

    /// Total number of second-level broadcast rounds performed so far.
    pub fn second_level_rounds(&self) -> u64 {
        self.second_level_sends
    }

    /// The parameters in effect.
    pub fn params(&self) -> TearsParams {
        self.params
    }

    /// Whether reaching first-level message count `count` triggers a
    /// second-level broadcast (Figure 3, lines 21–24): counts in the window
    /// `[µ−κ, µ+κ)` all trigger, and beyond the window every further multiple
    /// `µ + i·κ` (for positive integer `i`) triggers.
    pub fn is_trigger_count(&self, count: u64) -> bool {
        if count == 0 {
            return false;
        }
        let lower = self.mu.saturating_sub(self.kappa);
        if count >= lower && count < self.mu + self.kappa {
            return true;
        }
        if count > self.mu && (count - self.mu).is_multiple_of(self.kappa) {
            return true;
        }
        false
    }
}

impl GossipEngine for Tears {
    type Msg = TearsMessage;

    fn deliver(&mut self, _from: ProcessId, msg: TearsMessage) {
        // Figure 3, lines 16–19. The superset pre-check keeps the state
        // untouched (and unshared snapshots un-copied) when the message
        // brings nothing new; `make_mut` copies the set only when it is still
        // shared with in-flight snapshots.
        if !self.rumors.is_superset_of(&msg.rumors) {
            Arc::make_mut(&mut self.rumors).union(&msg.rumors);
        }
        if msg.flag == TearsFlag::Up {
            self.up_msg_cnt += 1;
            if self.is_trigger_count(self.up_msg_cnt) {
                self.pending_bcasts += 1;
            }
        }
    }

    fn deliver_encoded<F: EncodedFrame>(&mut self, frames: &[F]) -> usize {
        // Batched form of `deliver`: one borrowed-view decode walk per body,
        // counting the first-level messages (each increment still visits its
        // own trigger count) and folding the rumor sections in with at most
        // one copy-on-write of the state — the first fresh view pays the
        // `Arc` copy, every later `make_mut` sees a unique handle.
        let mut errors = 0usize;
        let mut unioning = false;
        for frame in frames {
            match TearsMessage::decode_view(frame.body()) {
                Ok(view) => {
                    if view.flag == TearsFlag::Up {
                        self.up_msg_cnt += 1;
                        if self.is_trigger_count(self.up_msg_cnt) {
                            self.pending_bcasts += 1;
                        }
                    }
                    if unioning || !self.rumors.is_superset_of_view(&view.rumors) {
                        unioning = true;
                        Arc::make_mut(&mut self.rumors).union_view(&view.rumors);
                    }
                }
                Err(_) => errors += 1,
            }
        }
        errors
    }

    fn local_step(&mut self, out: &mut Vec<(ProcessId, TearsMessage)>) {
        self.steps += 1;

        // Figure 3, lines 12–15: the first-level transmission happens once,
        // in the process's first local step, with the flag raised. The
        // snapshot is an `Arc` clone — every destination shares one payload.
        if !self.first_level_sent {
            self.first_level_sent = true;
            let msg = TearsMessage {
                rumors: Arc::clone(&self.rumors),
                flag: TearsFlag::Up,
            };
            broadcast(out, &self.pi1, msg);
        }

        // Figure 3, lines 20–27: one second-level broadcast per trigger count
        // reached since the previous step.
        while self.pending_bcasts > 0 {
            self.pending_bcasts -= 1;
            self.second_level_sends += 1;
            let msg = TearsMessage {
                rumors: Arc::clone(&self.rumors),
                flag: TearsFlag::Down,
            };
            broadcast(out, &self.pi2, msg);
        }
    }

    fn pid(&self) -> ProcessId {
        self.ctx.pid
    }

    fn rumors(&self) -> &RumorSet {
        &self.rumors
    }

    fn is_quiescent(&self) -> bool {
        self.first_level_sent && self.pending_bcasts == 0
    }

    fn steps_taken(&self) -> u64 {
        self.steps
    }

    fn msg_units(msg: &Self::Msg) -> u64 {
        crate::wire::WireSize::wire_units(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rumor::Rumor;

    fn ctx(pid: usize, n: usize, seed: u64) -> GossipCtx {
        GossipCtx::new(ProcessId(pid), n, n / 2 - 1, seed)
    }

    fn step(p: &mut Tears) -> Vec<(ProcessId, TearsMessage)> {
        let mut out = Vec::new();
        p.local_step(&mut out);
        out
    }

    fn up_msg(origin: usize) -> TearsMessage {
        TearsMessage {
            rumors: Arc::new(RumorSet::singleton(Rumor::new(
                ProcessId(origin),
                origin as u64,
            ))),
            flag: TearsFlag::Up,
        }
    }

    #[test]
    fn neighbourhood_sizes_concentrate_around_a() {
        // Lemma 8 shape: |Π1| is a binomial with mean a; for a large n it
        // should be within a few κ of a.
        let n = 2048;
        let p = Tears::new(ctx(0, n, 7));
        let a = TearsParams::default().a(n);
        let kappa = TearsParams::default().kappa(n);
        let size = p.pi1().len() as f64;
        assert!(
            (size - a).abs() < 4.0 * kappa,
            "|Π1| = {size} too far from a = {a} (κ = {kappa})"
        );
        assert!(!p.pi1().contains(&ProcessId(0)), "never includes itself");
        assert!(!p.pi2().contains(&ProcessId(0)));
    }

    #[test]
    fn first_step_sends_first_level_to_pi1_only_once() {
        let mut p = Tears::new(ctx(0, 256, 3));
        let out = step(&mut p);
        assert_eq!(out.len(), p.pi1().len());
        assert!(out.iter().all(|(_, m)| m.flag == TearsFlag::Up));
        // Second step: nothing new to send.
        let out = step(&mut p);
        assert!(out.is_empty());
        assert!(p.is_quiescent());
    }

    #[test]
    fn trigger_window_matches_paper_definition() {
        let p = Tears::new(ctx(0, 1024, 5));
        let mu = p.mu();
        let kappa = p.kappa();
        // Inside the window [µ−κ, µ+κ).
        assert!(p.is_trigger_count(mu - kappa));
        assert!(p.is_trigger_count(mu));
        assert!(p.is_trigger_count(mu + kappa - 1));
        // Just outside the window and not a multiple of κ.
        assert!(!p.is_trigger_count(mu - kappa - 1));
        assert!(!p.is_trigger_count(mu + kappa + 1));
        // Later multiples µ + iκ trigger.
        assert!(p.is_trigger_count(mu + kappa));
        assert!(p.is_trigger_count(mu + 3 * kappa));
        // Zero never triggers.
        assert!(!p.is_trigger_count(0));
    }

    #[test]
    fn second_level_broadcast_fires_when_threshold_reached() {
        // n must be large enough that µ > κ (the paper assumes n sufficiently
        // large); n = 1024 gives µ ≈ 440, κ ≈ 310.
        let n = 1024;
        let mut p = Tears::new(ctx(0, n, 11));
        // Take the first step so the first-level send is out of the way.
        step(&mut p);
        let threshold = p.mu() - p.kappa();
        // Deliver exactly threshold − 1 first-level messages: no broadcast.
        for i in 0..(threshold - 1) {
            p.deliver(ProcessId(1), up_msg((i % (n as u64 - 1)) as usize + 1));
        }
        assert!(step(&mut p).is_empty());
        // The threshold-th message triggers a broadcast to Π2.
        p.deliver(ProcessId(1), up_msg(1));
        let out = step(&mut p);
        assert_eq!(out.len(), p.pi2().len());
        assert!(out.iter().all(|(_, m)| m.flag == TearsFlag::Down));
        assert_eq!(p.second_level_rounds(), 1);
    }

    #[test]
    fn counts_only_first_level_messages() {
        let mut p = Tears::new(ctx(0, 64, 13));
        p.deliver(
            ProcessId(1),
            TearsMessage {
                rumors: Arc::new(RumorSet::singleton(Rumor::new(ProcessId(1), 1))),
                flag: TearsFlag::Down,
            },
        );
        assert_eq!(p.up_msg_count(), 0);
        p.deliver(ProcessId(2), up_msg(2));
        assert_eq!(p.up_msg_count(), 1);
    }

    #[test]
    fn rumors_accumulate_from_both_levels() {
        let mut p = Tears::new(ctx(0, 16, 17));
        p.deliver(ProcessId(1), up_msg(1));
        let mut many = RumorSet::new();
        for i in 2..6 {
            many.insert(Rumor::new(ProcessId(i), i as u64));
        }
        p.deliver(
            ProcessId(2),
            TearsMessage {
                rumors: Arc::new(many),
                flag: TearsFlag::Down,
            },
        );
        assert_eq!(p.rumors().len(), 6); // own + 1 + 4
    }

    #[test]
    fn quiescent_until_pending_broadcast_exists() {
        let n = 1024;
        let mut p = Tears::new(ctx(0, n, 19));
        step(&mut p);
        assert!(p.is_quiescent());
        let threshold = p.mu() - p.kappa();
        for i in 0..threshold {
            p.deliver(ProcessId(1), up_msg((i % (n as u64 - 1)) as usize + 1));
        }
        assert!(!p.is_quiescent(), "a pending broadcast means not quiescent");
        step(&mut p);
        assert!(p.is_quiescent());
    }

    #[test]
    fn broadcast_payloads_are_shared_not_copied() {
        let mut p = Tears::new(ctx(0, 256, 3));
        let out = step(&mut p);
        assert!(out.len() > 1);
        let first = &out[0].1.rumors;
        assert!(
            out.iter().all(|(_, m)| Arc::ptr_eq(&m.rumors, first)),
            "all destinations of one broadcast share one snapshot allocation"
        );
    }

    #[test]
    fn delivery_after_broadcast_does_not_mutate_snapshots() {
        let mut p = Tears::new(ctx(0, 64, 23));
        let out = step(&mut p);
        let snapshot = Arc::clone(&out[0].1.rumors);
        let before = snapshot.len();
        p.deliver(ProcessId(1), up_msg(1));
        assert_eq!(snapshot.len(), before, "in-flight snapshots are immutable");
        assert_eq!(p.rumors().len(), before + 1);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = Tears::new(ctx(3, 512, 123));
        let b = Tears::new(ctx(3, 512, 123));
        assert_eq!(a.pi1(), b.pi1());
        assert_eq!(a.pi2(), b.pi2());
    }

    #[test]
    fn different_processes_get_different_neighbourhoods() {
        let a = Tears::new(ctx(0, 512, 123));
        let b = Tears::new(ctx(1, 512, 123));
        assert_ne!(a.pi1(), b.pi1());
    }
}
