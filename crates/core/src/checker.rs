//! Correctness checkers for the gossip problem.
//!
//! After an execution finishes, these checkers inspect the final state of
//! every process and decide whether the three requirements of the gossip
//! problem (paper, Section 1) were met:
//!
//! 1. **Rumor gathering** — every correct process holds the rumor of every
//!    correct process (or, for [`GossipSpec::Majority`], at least a majority
//!    of all rumors — Section 5);
//! 2. **Validity** — every rumor held by any process is some process's
//!    initial rumor;
//! 3. **Quiescence** — the execution reached a state in which every process
//!    has stopped sending messages (reported by the simulator's run loop and
//!    passed in by the driver).

use agossip_sim::ProcessId;

use crate::engine::GossipEngine;
use crate::rumor::{Rumor, RumorSet};

/// Which variant of the gossip problem an execution is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GossipSpec {
    /// Classic gossip: every correct process learns every correct process's
    /// rumor.
    Full,
    /// Majority gossip (paper, Section 5): every correct process learns at
    /// least `⌊n/2⌋ + 1` rumors. Requires `f < n/2` to be solvable.
    Majority,
}

/// The verdict of a post-execution correctness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// The specification checked against.
    pub spec: GossipSpec,
    /// Whether the gathering requirement held.
    pub gathering_ok: bool,
    /// Whether validity held.
    pub validity_ok: bool,
    /// Whether the execution became quiescent.
    pub quiescence_ok: bool,
    /// For each correct process that failed gathering: its id and the number
    /// of rumors it was missing (full) or the number it held (majority).
    pub gathering_violations: Vec<(ProcessId, usize)>,
    /// Rumors held somewhere that are not any process's initial rumor.
    pub validity_violations: Vec<Rumor>,
}

impl CheckReport {
    /// True if every requirement held.
    pub fn all_ok(&self) -> bool {
        self.gathering_ok && self.validity_ok && self.quiescence_ok
    }
}

/// Checks an execution's final state.
///
/// * `final_rumors[i]` — the rumor set of process `i` at the end of the
///   execution;
/// * `initial_rumors[i]` — process `i`'s initial rumor;
/// * `correct[i]` — whether process `i` never crashed;
/// * `quiescent` — whether the run loop reported system quiescence.
pub fn check_gossip(
    spec: GossipSpec,
    final_rumors: &[RumorSet],
    initial_rumors: &[Rumor],
    correct: &[bool],
    quiescent: bool,
) -> CheckReport {
    let n = final_rumors.len();
    assert_eq!(
        initial_rumors.len(),
        n,
        "initial rumor per process required"
    );
    assert_eq!(correct.len(), n, "correctness flag per process required");

    // Validity: every rumor held anywhere must equal the initial rumor of its
    // origin.
    let mut validity_violations = Vec::new();
    for set in final_rumors {
        for rumor in set.iter() {
            let origin = rumor.origin.index();
            if origin >= n || initial_rumors[origin] != rumor {
                validity_violations.push(rumor);
            }
        }
    }

    // Gathering.
    let majority = n / 2 + 1;
    let mut gathering_violations = Vec::new();
    for (i, set) in final_rumors.iter().enumerate() {
        if !correct[i] {
            continue;
        }
        match spec {
            GossipSpec::Full => {
                let missing = (0..n)
                    .filter(|&j| correct[j] && !set.contains_origin(ProcessId(j)))
                    .count();
                if missing > 0 {
                    gathering_violations.push((ProcessId(i), missing));
                }
            }
            GossipSpec::Majority => {
                if set.len() < majority {
                    gathering_violations.push((ProcessId(i), set.len()));
                }
            }
        }
    }

    CheckReport {
        spec,
        gathering_ok: gathering_violations.is_empty(),
        validity_ok: validity_violations.is_empty(),
        quiescence_ok: quiescent,
        gathering_violations,
        validity_violations,
    }
}

/// Convenience wrapper: checks engines directly.
pub fn check_engines<G: GossipEngine>(
    spec: GossipSpec,
    engines: &[G],
    initial_rumors: &[Rumor],
    correct: &[bool],
    quiescent: bool,
) -> CheckReport {
    let final_rumors: Vec<RumorSet> = engines.iter().map(|e| e.rumors().clone()).collect();
    check_gossip(spec, &final_rumors, initial_rumors, correct, quiescent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn initial(n: usize) -> Vec<Rumor> {
        (0..n).map(|i| Rumor::new(ProcessId(i), i as u64)).collect()
    }

    fn full_sets(n: usize) -> Vec<RumorSet> {
        let all: RumorSet = initial(n).into_iter().collect();
        vec![all; n]
    }

    #[test]
    fn perfect_execution_passes_full_spec() {
        let n = 5;
        let report = check_gossip(
            GossipSpec::Full,
            &full_sets(n),
            &initial(n),
            &vec![true; n],
            true,
        );
        assert!(report.all_ok());
        assert!(report.gathering_violations.is_empty());
        assert!(report.validity_violations.is_empty());
    }

    #[test]
    fn missing_rumor_fails_full_gathering() {
        let n = 4;
        let mut sets = full_sets(n);
        // Process 2 is missing the rumor of process 0.
        sets[2] = [
            Rumor::new(ProcessId(1), 1),
            Rumor::new(ProcessId(2), 2),
            Rumor::new(ProcessId(3), 3),
        ]
        .into_iter()
        .collect();
        let report = check_gossip(GossipSpec::Full, &sets, &initial(n), &vec![true; n], true);
        assert!(!report.gathering_ok);
        assert_eq!(report.gathering_violations, vec![(ProcessId(2), 1)]);
        assert!(!report.all_ok());
    }

    #[test]
    fn crashed_processes_are_exempt_from_gathering() {
        let n = 4;
        let mut sets = full_sets(n);
        sets[3] = RumorSet::singleton(Rumor::new(ProcessId(3), 3));
        let mut correct = vec![true; n];
        correct[3] = false; // crashed: its incomplete set is fine
        let report = check_gossip(GossipSpec::Full, &sets, &initial(n), &correct, true);
        assert!(report.gathering_ok);
    }

    #[test]
    fn crashed_origins_need_not_be_gathered() {
        let n = 4;
        // Everyone is missing crashed process 0's rumor.
        let without0: RumorSet = (1..n).map(|i| Rumor::new(ProcessId(i), i as u64)).collect();
        let sets = vec![without0; n];
        let mut correct = vec![true; n];
        correct[0] = false;
        let report = check_gossip(GossipSpec::Full, &sets, &initial(n), &correct, true);
        assert!(
            report.gathering_ok,
            "rumors of crashed processes are optional"
        );
    }

    #[test]
    fn majority_spec_counts_rumors() {
        let n = 7; // majority = 4
        let four: RumorSet = (0..4).map(|i| Rumor::new(ProcessId(i), i as u64)).collect();
        let three: RumorSet = (0..3).map(|i| Rumor::new(ProcessId(i), i as u64)).collect();
        let mut sets = vec![four; n];
        sets[6] = three;
        let report = check_gossip(
            GossipSpec::Majority,
            &sets,
            &initial(n),
            &vec![true; n],
            true,
        );
        assert!(!report.gathering_ok);
        assert_eq!(report.gathering_violations, vec![(ProcessId(6), 3)]);
    }

    #[test]
    fn majority_spec_passes_with_half_plus_one() {
        let n = 6; // majority = 4
        let four: RumorSet = (0..4).map(|i| Rumor::new(ProcessId(i), i as u64)).collect();
        let sets = vec![four; n];
        let report = check_gossip(
            GossipSpec::Majority,
            &sets,
            &initial(n),
            &vec![true; n],
            true,
        );
        assert!(report.gathering_ok);
    }

    #[test]
    fn forged_rumor_fails_validity() {
        let n = 3;
        let mut sets = full_sets(n);
        // Process 1 holds a rumor claiming to originate at 2 with the wrong
        // payload (a "corrupted" rumor).
        sets[1].union(&RumorSet::new());
        let mut forged = RumorSet::new();
        forged.insert(Rumor::new(ProcessId(2), 999));
        let mut bad = RumorSet::new();
        bad.union(&forged);
        bad.union(&sets[1]);
        sets[1] = forged;
        let report = check_gossip(GossipSpec::Full, &sets, &initial(n), &vec![true; n], true);
        assert!(!report.validity_ok);
        assert!(report
            .validity_violations
            .contains(&Rumor::new(ProcessId(2), 999)));
    }

    #[test]
    fn non_quiescent_execution_fails() {
        let n = 3;
        let report = check_gossip(
            GossipSpec::Full,
            &full_sets(n),
            &initial(n),
            &vec![true; n],
            false,
        );
        assert!(!report.quiescence_ok);
        assert!(!report.all_ok());
    }

    #[test]
    fn out_of_range_origin_fails_validity() {
        let n = 2;
        let mut sets = full_sets(n);
        sets[0].insert(Rumor::new(ProcessId(7), 7));
        let report = check_gossip(GossipSpec::Full, &sets, &initial(n), &vec![true; n], true);
        assert!(!report.validity_ok);
    }
}
