//! Adapter from [`GossipEngine`] to the simulator's [`Process`] interface.

use agossip_sim::{Envelope, Outbox, Process, TimeStep};

use crate::engine::GossipEngine;

/// Wraps a [`GossipEngine`] so it can run inside
/// [`agossip_sim::Simulation`].
///
/// One simulator local step maps onto the paper's step structure: first every
/// message delivered at this step is handed to [`GossipEngine::deliver`],
/// then [`GossipEngine::local_step`] computes and emits the step's sends.
#[derive(Debug, Clone)]
pub struct SimGossip<G: GossipEngine> {
    engine: G,
    units_sent: u64,
    units_received: u64,
    /// Reusable buffer for the engine's per-step sends, so steady-state
    /// stepping does not allocate.
    sends: Vec<(agossip_sim::ProcessId, G::Msg)>,
}

impl<G: GossipEngine> SimGossip<G> {
    /// Wraps an engine.
    pub fn new(engine: G) -> Self {
        SimGossip {
            engine,
            units_sent: 0,
            units_received: 0,
            sends: Vec::new(),
        }
    }

    /// Total wire units (see [`crate::wire`]) sent by this process so far.
    pub fn units_sent(&self) -> u64 {
        self.units_sent
    }

    /// Total wire units received by this process so far.
    pub fn units_received(&self) -> u64 {
        self.units_received
    }

    /// Read access to the wrapped engine.
    pub fn engine(&self) -> &G {
        &self.engine
    }

    /// Mutable access to the wrapped engine.
    pub fn engine_mut(&mut self) -> &mut G {
        &mut self.engine
    }

    /// Unwraps the engine.
    pub fn into_engine(self) -> G {
        self.engine
    }
}

impl<G: GossipEngine> Process for SimGossip<G> {
    type Message = G::Msg;

    fn on_step(
        &mut self,
        _now: TimeStep,
        inbox: &mut Vec<Envelope<Self::Message>>,
        out: &mut Outbox<Self::Message>,
    ) {
        for env in inbox.drain(..) {
            self.units_received += G::msg_units(&env.payload);
            self.engine.deliver(env.from, env.payload);
        }
        self.sends.clear();
        self.engine.local_step(&mut self.sends);
        for (to, msg) in self.sends.drain(..) {
            self.units_sent += G::msg_units(&msg);
            out.send(to, msg);
        }
    }

    fn is_quiescent(&self) -> bool {
        self.engine.is_quiescent()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::GossipCtx;
    use crate::trivial::Trivial;
    use agossip_sim::ProcessId;

    #[test]
    fn adapter_forwards_steps_and_quiescence() {
        let ctx = GossipCtx::new(ProcessId(0), 3, 0, 1);
        let mut wrapped = SimGossip::new(Trivial::new(ctx));
        assert!(!Process::is_quiescent(&wrapped));
        let mut out = Outbox::new();
        wrapped.on_step(TimeStep(0), &mut Vec::new(), &mut out);
        assert_eq!(out.len(), 2);
        assert!(Process::is_quiescent(&wrapped));
        assert_eq!(wrapped.engine().steps_taken(), 1);
    }

    #[test]
    fn adapter_delivers_inbox_before_stepping() {
        let ctx = GossipCtx::new(ProcessId(0), 3, 0, 1);
        let mut wrapped = SimGossip::new(Trivial::new(ctx));
        let incoming = Envelope {
            from: ProcessId(2),
            to: ProcessId(0),
            sent_at: TimeStep(0),
            payload: crate::trivial::TrivialMessage {
                rumor: crate::rumor::Rumor::new(ProcessId(2), 2),
            },
        };
        let mut out = Outbox::new();
        wrapped.on_step(TimeStep(1), &mut vec![incoming], &mut out);
        assert!(wrapped.engine().rumors().contains_origin(ProcessId(2)));
    }

    #[test]
    fn adapter_accumulates_wire_units() {
        let ctx = GossipCtx::new(ProcessId(0), 3, 0, 1);
        let mut wrapped = SimGossip::new(Trivial::new(ctx));
        assert_eq!(wrapped.units_sent(), 0);
        let mut out = Outbox::new();
        wrapped.on_step(TimeStep(0), &mut Vec::new(), &mut out);
        // Trivial sends one 2-unit message to each of the other 2 processes.
        assert_eq!(wrapped.units_sent(), 4);
        let incoming = Envelope {
            from: ProcessId(1),
            to: ProcessId(0),
            sent_at: TimeStep(0),
            payload: crate::trivial::TrivialMessage {
                rumor: crate::rumor::Rumor::new(ProcessId(1), 1),
            },
        };
        wrapped.on_step(TimeStep(1), &mut vec![incoming], &mut out);
        assert_eq!(wrapped.units_received(), 2);
    }

    #[test]
    fn into_engine_round_trips() {
        let ctx = GossipCtx::new(ProcessId(1), 4, 0, 1);
        let wrapped = SimGossip::new(Trivial::new(ctx));
        let engine = wrapped.into_engine();
        assert_eq!(engine.pid(), ProcessId(1));
    }
}
