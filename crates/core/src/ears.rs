//! `ears` — Epidemic Asynchronous Rumor Spreading (paper Section 3, Figure 2).
//!
//! Each process `p` maintains:
//!
//! * `V(p)` — the rumors it knows;
//! * `I(p)` — the informed-list of pairs `⟨r, q⟩` ("rumor `r` has been sent
//!   to process `q`");
//! * `L(p)` — derived from the two: the processes `p` cannot ascertain have
//!   been sent every rumor in `V(p)`;
//! * `sleep_cnt` — how many consecutive local steps `L(p)` has been empty.
//!
//! In every local step while `sleep_cnt` is below the shut-down threshold
//! `Θ(n/(n−f)·log n)`, the process picks a target uniformly at random, sends
//! it `⟨V(p), I(p)⟩`, and records in `I(p)` that every rumor in `V(p)` has
//! now been sent to that target. Once the threshold is reached the process
//! *sleeps* (sends nothing); if a received message makes `L(p)` non-empty
//! again — a new rumor not yet sent everywhere — the process wakes up and
//! resumes the epidemic.
//!
//! Against an oblivious adversary the protocol completes gossip in
//! `O(n/(n−f)·log²n·(d+δ))` time using `O(n·log³n·(d+δ))` messages, w.h.p.
//! (Theorem 6).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use agossip_sim::ProcessId;

use crate::codec_view::WireDecodeView;
use crate::engine::{EncodedFrame, GossipCtx, GossipEngine};
use crate::informed_list::InformedList;
use crate::params::EarsParams;
use crate::rumor::RumorSet;

/// Wire message of `ears`: the sender's rumor set and informed-list
/// (Figure 2, line 18 sends `⟨V(p), I(p)⟩`).
///
/// Both components are copy-on-write [`Arc`] snapshots of the sender's state
/// at send time; receivers only union them into their own state, so the
/// shared payloads stay immutable forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EarsMessage {
    /// The sender's rumor collection `V` at send time (shared snapshot).
    pub rumors: Arc<RumorSet>,
    /// The sender's informed-list `I` at send time (shared snapshot).
    pub informed: Arc<InformedList>,
}

/// The `ears` protocol state machine for one process.
#[derive(Debug, Clone)]
pub struct Ears {
    ctx: GossipCtx,
    params: EarsParams,
    rumors: Arc<RumorSet>,
    informed: Arc<InformedList>,
    sleep_cnt: u64,
    shutdown_steps: u64,
    steps: u64,
    rng: StdRng,
}

impl Ears {
    /// Creates an instance with default parameters.
    pub fn new(ctx: GossipCtx) -> Self {
        Self::with_params(ctx, EarsParams::default())
    }

    /// Creates an instance with explicit parameters.
    pub fn with_params(ctx: GossipCtx, params: EarsParams) -> Self {
        let shutdown_steps = params.shutdown_steps(ctx.n, ctx.f);
        Ears {
            rumors: Arc::new(RumorSet::singleton(ctx.rumor)),
            informed: Arc::new(InformedList::new()),
            sleep_cnt: 0,
            shutdown_steps,
            steps: 0,
            rng: StdRng::seed_from_u64(ctx.seed),
            ctx,
            params,
        }
    }

    /// The parameters in effect.
    pub fn params(&self) -> EarsParams {
        self.params
    }

    /// The shut-down threshold `Θ(n/(n−f)·log n)` in local steps.
    pub fn shutdown_steps(&self) -> u64 {
        self.shutdown_steps
    }

    /// The current informed-list `I(p)`.
    pub fn informed(&self) -> &InformedList {
        &self.informed
    }

    /// The current value of the sleep counter.
    pub fn sleep_count(&self) -> u64 {
        self.sleep_cnt
    }

    /// `L(p)`: processes not yet known to have been sent every rumor in
    /// `V(p)`.
    pub fn uncovered(&self) -> Vec<ProcessId> {
        self.informed.uncovered_targets(&self.rumors, self.ctx.n)
    }

    /// True if the process is currently asleep (shut-down phase completed and
    /// `L(p)` empty).
    pub fn is_asleep(&self) -> bool {
        self.sleep_cnt >= self.shutdown_steps
    }

    fn covered(&self) -> bool {
        self.informed.covers_all(&self.rumors, self.ctx.n)
    }
}

impl GossipEngine for Ears {
    type Msg = EarsMessage;

    fn deliver(&mut self, _from: ProcessId, msg: EarsMessage) {
        // Figure 2, lines 8–11: merge V and I; L is recomputed on demand.
        // Superset pre-checks avoid `make_mut` copying a still-shared
        // snapshot when the message brings nothing new.
        if !self.rumors.is_superset_of(&msg.rumors) {
            Arc::make_mut(&mut self.rumors).union(&msg.rumors);
        }
        if !self.informed.is_superset_of(&msg.informed) {
            Arc::make_mut(&mut self.informed).union(&msg.informed);
        }
    }

    fn deliver_encoded<F: EncodedFrame>(&mut self, frames: &[F]) -> usize {
        // Batched form of `deliver`: one borrowed-view decode walk per body,
        // folded into V and I with at most one copy-on-write per set per
        // batch — the first fresh view pays the `Arc` copy, every later
        // `make_mut` sees a unique handle.
        let mut errors = 0usize;
        let (mut unioning_rumors, mut unioning_informed) = (false, false);
        for frame in frames {
            match EarsMessage::decode_view(frame.body()) {
                Ok(view) => {
                    if unioning_rumors || !self.rumors.is_superset_of_view(&view.rumors) {
                        unioning_rumors = true;
                        Arc::make_mut(&mut self.rumors).union_view(&view.rumors);
                    }
                    if unioning_informed || !self.informed.is_superset_of_view(&view.informed) {
                        unioning_informed = true;
                        Arc::make_mut(&mut self.informed).union_view(&view.informed);
                    }
                }
                Err(_) => errors += 1,
            }
        }
        errors
    }

    fn local_step(&mut self, out: &mut Vec<(ProcessId, EarsMessage)>) {
        self.steps += 1;

        // Figure 2, lines 11–14: update L(p); if it is empty the process is
        // one step closer to sleeping, otherwise the countdown resets (this
        // also wakes a sleeping process that has learned of an uncovered
        // rumor).
        if self.covered() {
            self.sleep_cnt = self.sleep_cnt.saturating_add(1);
        } else {
            self.sleep_cnt = 0;
        }

        // Figure 2, line 15: once the shut-down phase has run its course the
        // process sleeps and sends nothing.
        if self.sleep_cnt >= self.shutdown_steps {
            return;
        }

        // Figure 2, lines 16–21: epidemic transmission to one uniformly
        // random target (possibly itself — the paper draws from all of [n]).
        let target = ProcessId(self.rng.gen_range(0..self.ctx.n));
        out.push((
            target,
            EarsMessage {
                rumors: Arc::clone(&self.rumors),
                informed: Arc::clone(&self.informed),
            },
        ));
        // The snapshot must carry I(p) *before* this send is recorded;
        // `make_mut` gives the state its own copy, leaving the snapshot
        // untouched.
        Arc::make_mut(&mut self.informed).insert_all(&self.rumors, target);
    }

    fn pid(&self) -> ProcessId {
        self.ctx.pid
    }

    fn rumors(&self) -> &RumorSet {
        &self.rumors
    }

    fn is_quiescent(&self) -> bool {
        self.is_asleep()
    }

    fn steps_taken(&self) -> u64 {
        self.steps
    }

    fn msg_units(msg: &Self::Msg) -> u64 {
        crate::wire::WireSize::wire_units(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rumor::Rumor;

    fn ctx(pid: usize, n: usize, f: usize) -> GossipCtx {
        GossipCtx::new(ProcessId(pid), n, f, 99)
    }

    fn step(p: &mut Ears) -> Vec<(ProcessId, EarsMessage)> {
        let mut out = Vec::new();
        p.local_step(&mut out);
        out
    }

    #[test]
    fn sends_one_message_per_step_while_active() {
        let mut p = Ears::new(ctx(0, 8, 2));
        for _ in 0..5 {
            let out = step(&mut p);
            assert_eq!(
                out.len(),
                1,
                "ears sends exactly one message per active step"
            );
        }
        assert_eq!(p.steps_taken(), 5);
    }

    #[test]
    fn informed_list_records_every_send() {
        let mut p = Ears::new(ctx(0, 8, 0));
        let out = step(&mut p);
        let (target, _) = out[0];
        assert!(p.informed().contains(ProcessId(0), target));
    }

    #[test]
    fn single_process_system_goes_to_sleep() {
        // With n = 1 the only rumor is its own and the first send covers it,
        // so L(p) becomes empty and the process eventually sleeps.
        let mut p = Ears::new(ctx(0, 1, 0));
        let limit = p.shutdown_steps() + 5;
        for _ in 0..=limit {
            step(&mut p);
        }
        assert!(p.is_asleep());
        assert!(p.is_quiescent());
        let out = step(&mut p);
        assert!(out.is_empty(), "asleep processes send nothing");
    }

    #[test]
    fn new_uncovered_rumor_wakes_the_process() {
        let n = 2;
        let mut p = Ears::new(ctx(0, n, 0));
        // Run until asleep: with n = 2 the random target eventually covers
        // both processes for its single rumor.
        for _ in 0..(p.shutdown_steps() + 50) {
            step(&mut p);
        }
        assert!(p.is_asleep());
        // Deliver a brand-new rumor with an empty informed-list: L(p) becomes
        // non-empty, the sleep counter resets at the next step, and the
        // process sends again.
        p.deliver(
            ProcessId(1),
            EarsMessage {
                rumors: Arc::new(RumorSet::singleton(Rumor::new(ProcessId(1), 1))),
                informed: Arc::new(InformedList::new()),
            },
        );
        let out = step(&mut p);
        assert!(!p.is_asleep());
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn delivery_merges_rumors_and_informed_pairs() {
        let mut p = Ears::new(ctx(0, 4, 1));
        let mut informed = InformedList::new();
        informed.insert(ProcessId(2), ProcessId(3));
        p.deliver(
            ProcessId(2),
            EarsMessage {
                rumors: Arc::new(RumorSet::singleton(Rumor::new(ProcessId(2), 2))),
                informed: Arc::new(informed),
            },
        );
        assert!(p.rumors().contains_origin(ProcessId(2)));
        assert!(p.informed().contains(ProcessId(2), ProcessId(3)));
    }

    #[test]
    fn shutdown_threshold_reflects_params() {
        let p_default = Ears::new(ctx(0, 64, 32));
        let p_long = Ears::with_params(
            ctx(0, 64, 32),
            EarsParams {
                shutdown_factor: 10.0,
            },
        );
        assert!(p_long.shutdown_steps() > p_default.shutdown_steps());
        assert_eq!(p_long.params().shutdown_factor, 10.0);
    }

    #[test]
    fn uncovered_shrinks_as_informed_grows() {
        let n = 4;
        let mut p = Ears::new(ctx(0, n, 0));
        assert_eq!(p.uncovered().len(), n, "initially nothing is covered");
        // Simulate learning that its rumor reached everyone.
        let mut informed = InformedList::new();
        for q in ProcessId::all(n) {
            informed.insert(ProcessId(0), q);
        }
        p.deliver(
            ProcessId(1),
            EarsMessage {
                rumors: Arc::new(RumorSet::new()),
                informed: Arc::new(informed),
            },
        );
        assert!(p.uncovered().is_empty());
    }

    #[test]
    fn sleep_counter_resets_when_uncovered() {
        let mut p = Ears::new(ctx(0, 2, 0));
        // Force coverage of own rumor.
        let mut informed = InformedList::new();
        informed.insert(ProcessId(0), ProcessId(0));
        informed.insert(ProcessId(0), ProcessId(1));
        p.deliver(
            ProcessId(1),
            EarsMessage {
                rumors: Arc::new(RumorSet::new()),
                informed: Arc::new(informed),
            },
        );
        step(&mut p);
        assert!(p.sleep_count() >= 1);
        // A new uncovered rumor resets the counter on the next step.
        p.deliver(
            ProcessId(1),
            EarsMessage {
                rumors: Arc::new(RumorSet::singleton(Rumor::new(ProcessId(1), 1))),
                informed: Arc::new(InformedList::new()),
            },
        );
        step(&mut p);
        // After the step the counter reflects the reset (it may have started
        // counting again if the send happened to cover everything, but it
        // cannot exceed 1).
        assert!(p.sleep_count() <= 1);
    }
}
